"""Differential row-vs-batch tests for the distributed execution modes.

The columnar batch kernels are a wall-clock optimization only: with
``use_batch`` on or off, an execution must produce the same rows *in the
same order*, charge the same simulated nanoseconds (bit for bit), and
leave the same per-category breakdown — in every mode, fork-join and
migrate included, and with FILTER schedules, UNION arms and OPTIONAL
groups in the plan.  These tests run each query through two explorers
that differ only in ``use_batch`` and compare everything.
"""

from repro.core.engine import EngineConfig, WukongSEngine
from repro.core.stats import collect_stats
from repro.rdf.parser import parse_timed_tuples, parse_triples
from repro.rdf.string_server import StringServer
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter
from repro.sparql.parser import parse_query
from repro.sparql.planner import plan_query
from repro.store.distributed import DistributedStore, PersistentAccess
from repro.store.executor import GraphExplorer
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema

XLAB = """
Logan ty XMen .
Erik ty XMen .
Logan fo Erik .
Erik fo Logan .
Logan po T-13 .
Logan po T-14 .
Erik po T-12 .
T-13 ht sosp17 .
T-12 ht sosp17 .
Logan li T-12 .
Erik li T-13 .
Erik li T-14 .
T-12 sc 2 .
T-13 sc 5 .
T-14 sc 9 .
"""

#: Index-start plans (exercise fork-join) and constant-start plans
#: (exercise migrate), with and without FILTER schedules.
INDEX_QUERIES = [
    "SELECT ?U ?P WHERE { ?U po ?P }",
    "SELECT ?U ?P ?T WHERE { ?U po ?P . ?P ht ?T }",
    "SELECT ?P ?S WHERE { ?U po ?P . ?P sc ?S . FILTER (?S > 2) }",
    "SELECT ?U ?P WHERE { ?U po ?P . FILTER (?U != Erik) }",
]
CONST_QUERIES = [
    "SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 . Erik li ?X }",
    "SELECT ?F ?P WHERE { Logan fo ?F . ?F po ?P }",
    "SELECT ?X ?S WHERE { Logan po ?X . ?X sc ?S . FILTER (?S < 9) }",
]
#: Plans that force the row fallback past the exploration stage — the
#: distributed exploration still runs columnar, then converts.
FALLBACK_QUERIES = [
    "SELECT ?P WHERE { { Logan po ?P } UNION { Erik po ?P } }",
    "SELECT ?P ?T WHERE { Logan po ?P . OPTIONAL { ?P ht ?T } }",
    "SELECT ?U ?P ?T WHERE { ?U po ?P . OPTIONAL { ?P ht ?T } }",
]


def build(num_nodes=3, use_rdma=True):
    cluster = Cluster(num_nodes=num_nodes, use_rdma=use_rdma)
    strings = StringServer()
    store = DistributedStore(cluster, strings)
    store.load(parse_triples(XLAB))
    return cluster, strings, store


def factory_for(store):
    def factory(node_id):
        access = PersistentAccess(store, home_node=node_id)
        return lambda pattern: access
    return factory


def run(cluster, strings, store, text, mode, use_batch):
    explorer = GraphExplorer(cluster, strings, use_batch=use_batch)
    meter = LatencyMeter()
    result = explorer.execute(plan_query(parse_query(text)),
                              factory_for(store), meter, mode=mode)
    return result, meter, explorer


def assert_identical(cluster, strings, store, text, mode):
    batch_result, batch_meter, batch_explorer = run(
        cluster, strings, store, text, mode, use_batch=True)
    row_result, row_meter, row_explorer = run(
        cluster, strings, store, text, mode, use_batch=False)
    assert batch_result.rows == row_result.rows, text  # exact order too
    assert batch_result.variables == row_result.variables, text
    assert batch_meter.ns == row_meter.ns, text  # bit-identical
    assert batch_meter.breakdown_ms == row_meter.breakdown_ms, text
    # Pure-UNION plans have no steps, so no step kernel (of either kind)
    # runs; everything else must take exactly the configured path.
    if batch_explorer.batch_executions + batch_explorer.row_executions:
        assert (batch_explorer.batch_executions,
                batch_explorer.row_executions) == (1, 0), text
        assert (row_explorer.row_executions,
                row_explorer.batch_executions) == (1, 0), text


def test_fork_join_differential():
    cluster, strings, store = build()
    for text in INDEX_QUERIES + FALLBACK_QUERIES[2:]:
        assert_identical(cluster, strings, store, text, "fork_join")


def test_migrate_differential():
    cluster, strings, store = build()
    for text in INDEX_QUERIES + CONST_QUERIES + FALLBACK_QUERIES:
        assert_identical(cluster, strings, store, text, "migrate")


def test_migrate_differential_without_rdma():
    """TCP fabric: migrate is the auto mode and messages replace reads."""
    cluster, strings, store = build(use_rdma=False)
    for text in INDEX_QUERIES + CONST_QUERIES:
        assert_identical(cluster, strings, store, text, "migrate")


def test_union_optional_fallback_differential():
    cluster, strings, store = build()
    for text in FALLBACK_QUERIES:
        assert_identical(cluster, strings, store, text, "in_place")


def test_duplicate_edges_differential():
    """Re-inserting an edge at a later snapshot duplicates it in the
    adjacency list; the batch path must detect this (its distinct-rows
    proof fails) and still dedup projected rows exactly like the row
    path's seen-set."""
    cluster, strings, store = build()
    for text in parse_triples("Logan po T-13 .\nErik fo Logan ."):
        store.insert_encoded(strings.encode_triple(text), sn=1)
    for text in INDEX_QUERIES:
        assert_identical(cluster, strings, store, text, "fork_join")
    for text in INDEX_QUERIES + CONST_QUERIES:
        assert_identical(cluster, strings, store, text, "migrate")
    result, _, _ = run(cluster, strings, store, INDEX_QUERIES[0],
                       "fork_join", use_batch=True)
    assert len(result.rows) == len(set(result.rows))


def test_filter_oneshot_takes_batch_path():
    """FILTER schedules no longer force the row kernels: a FILTER-bearing
    one-shot runs columnar end to end (the acceptance counter)."""
    cluster, strings, store = build()
    text = "SELECT ?P ?S WHERE { ?U po ?P . ?P sc ?S . FILTER (?S > 2) }"
    result, _, explorer = run(cluster, strings, store, text, "fork_join",
                              use_batch=True)
    assert len(result.rows) == 2  # T-13 (5) and T-14 (9)
    assert explorer.batch_executions == 1
    assert explorer.row_executions == 0


TWEETS = """
Logan po T-15 @2200
T-15 ht sosp17 @2250
Erik po T-16 @5100
Logan po T-17 @8100
T-17 ht sosp17 @8200
"""

QC = """
REGISTER QUERY QC AS
SELECT ?X ?Z
FROM Tweet_Stream [RANGE 10s STEP 1s]
FROM X-Lab
WHERE {
  GRAPH Tweet_Stream { ?X po ?Z }
  GRAPH X-Lab { ?X fo ?Y }
}
"""


def build_engine(columnar_batch):
    engine = WukongSEngine(
        schemas=[StreamSchema("Tweet_Stream")],
        config=EngineConfig(num_nodes=2, batch_interval_ms=1000,
                            columnar_batch=columnar_batch))
    engine.load_static(parse_triples(XLAB))
    source = StreamSource(engine.schemas["Tweet_Stream"])
    source.queue_tuples(parse_timed_tuples(TWEETS), 0, 1000)
    engine.attach_source(source)
    return engine


def test_engine_differential_row_vs_batch():
    """Whole-engine equivalence: injection records, continuous window
    results and one-shot latencies are identical either way."""
    results = {}
    for columnar_batch in (True, False):
        engine = build_engine(columnar_batch)
        engine.register_continuous(QC)
        engine.run_until(10_000)
        record = engine.oneshot(
            "SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 }")
        handle = engine.continuous.queries["QC"]
        results[columnar_batch] = {
            "injection": [(r.num_tuples, r.total_ms)
                          for r in engine.injection_records],
            "windows": [(r.close_ms, r.meter.ns, sorted(r.result.rows))
                        for r in handle.executions],
            "oneshot": (record.meter.ns, sorted(record.result.rows)),
        }
    assert results[True] == results[False]


def test_engine_counters_report_batch_path():
    engine = build_engine(columnar_batch=True)
    engine.run_until(2_000)
    engine.oneshot(
        "SELECT ?X ?S WHERE { Logan po ?X . ?X sc ?S . FILTER (?S > 2) }")
    caches = collect_stats(engine).caches
    assert caches.batch_executions >= 1
    assert caches.row_executions == 0
    assert "batch" in collect_stats(engine).format()
