"""Tests for the graph-exploration executor."""

import pytest

from repro.rdf.parser import parse_triples
from repro.rdf.string_server import StringServer
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter
from repro.sparql.parser import parse_query
from repro.sparql.planner import plan_query
from repro.store.distributed import DistributedStore, PersistentAccess
from repro.store.executor import GraphExplorer

XLAB = """
Logan ty XMen .
Erik ty XMen .
Logan fo Erik .
Erik fo Logan .
Logan po T-13 .
Logan po T-14 .
Erik po T-12 .
T-13 ht sosp17 .
T-12 ht sosp17 .
Logan li T-12 .
Erik li T-13 .
Erik li T-14 .
"""


def build(num_nodes=2):
    cluster = Cluster(num_nodes=num_nodes)
    strings = StringServer()
    store = DistributedStore(cluster, strings)
    store.load(parse_triples(XLAB))
    return cluster, strings, store


def factory_for(store):
    def factory(node_id):
        access = PersistentAccess(store, home_node=node_id)
        return lambda pattern: access
    return factory


def run(cluster, strings, store, text, mode="auto", home_node=0):
    explorer = GraphExplorer(cluster)
    meter = LatencyMeter()
    result = explorer.execute(plan_query(parse_query(text)),
                              factory_for(store), meter,
                              home_node=home_node, mode=mode)
    named = sorted(tuple(strings.entity_name(v) for v in row)
                   for row in result.rows)
    return named, meter


def test_paper_oneshot_qs():
    cluster, strings, store = build()
    rows, _ = run(cluster, strings, store,
                  "SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 . "
                  "Erik li ?X }")
    assert rows == [("T-13",)]


def test_const_object_start():
    cluster, strings, store = build()
    rows, _ = run(cluster, strings, store,
                  "SELECT ?X WHERE { ?X ht sosp17 }")
    assert rows == [("T-12",), ("T-13",)]


def test_two_hop_exploration():
    cluster, strings, store = build()
    rows, _ = run(cluster, strings, store,
                  "SELECT ?F ?P WHERE { Logan fo ?F . ?F po ?P }")
    assert rows == [("Erik", "T-12")]


def test_index_start_enumerates_all():
    cluster, strings, store = build()
    rows, _ = run(cluster, strings, store,
                  "SELECT ?U ?P WHERE { ?U po ?P }")
    assert rows == [("Erik", "T-12"), ("Logan", "T-13"), ("Logan", "T-14")]


def test_fork_join_equals_in_place():
    cluster, strings, store = build(num_nodes=3)
    text = "SELECT ?U ?P ?T WHERE { ?U po ?P . ?P ht ?T }"
    in_place, _ = run(cluster, strings, store, text, mode="in_place")
    fork_join, _ = run(cluster, strings, store, text, mode="fork_join")
    assert in_place == fork_join == \
        [("Erik", "T-12", "sosp17"), ("Logan", "T-13", "sosp17")]


def test_auto_picks_fork_join_for_index_start():
    cluster, strings, store = build(num_nodes=2)
    explorer = GraphExplorer(cluster)
    plan = plan_query(parse_query("SELECT ?U ?P WHERE { ?U po ?P }"))
    meter = LatencyMeter()
    explorer.execute(plan, factory_for(store), meter, mode="auto")
    assert "fork" in meter.breakdown_ms  # fork-join costs were charged


def test_migrate_mode_equals_in_place():
    cluster, strings, store = build(num_nodes=3)
    for text in ("SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 }",
                 "SELECT ?U ?P ?T WHERE { ?U po ?P . ?P ht ?T }",
                 "SELECT ?F ?P WHERE { Logan fo ?F . ?F po ?P }"):
        in_place, _ = run(cluster, strings, store, text, mode="in_place")
        migrated, _ = run(cluster, strings, store, text, mode="migrate")
        assert migrated == in_place, text


def test_auto_picks_migrate_without_rdma():
    cluster = Cluster(num_nodes=3, use_rdma=False)
    strings = StringServer()
    store = DistributedStore(cluster, strings)
    store.load(parse_triples(XLAB))
    rows, meter = run(cluster, strings, store,
                      "SELECT ?F ?P WHERE { Logan fo ?F . ?F po ?P }")
    assert rows == [("Erik", "T-12")]
    # Migration uses bulk messages, never per-read round trips.
    assert cluster.fabric.stats.rdma_reads == 0


def test_migrate_uses_bulk_rounds_not_per_row_reads():
    cluster, strings, store = build(num_nodes=4)
    text = "SELECT ?F ?P WHERE { Logan fo ?F . ?F po ?P }"
    cluster.fabric.stats.reset()
    run(cluster, strings, store, text, mode="migrate")
    # Network operations are bounded by migration rounds + gather fan-in
    # (2 steps + up to 4 gathering nodes), never one per row/read.
    ops = cluster.fabric.stats.rdma_reads + cluster.fabric.stats.messages
    assert 0 < ops <= 2 + cluster.num_nodes


def test_unknown_constant_yields_empty():
    cluster, strings, store = build()
    rows, _ = run(cluster, strings, store,
                  "SELECT ?X WHERE { Nobody po ?X }")
    assert rows == []


def test_failed_join_yields_empty():
    cluster, strings, store = build()
    rows, _ = run(cluster, strings, store,
                  "SELECT ?X WHERE { Erik po ?X . ?X ht sosp17 . "
                  "Logan li ?X . Erik li ?X }")
    assert rows == []


def test_constant_object_filter():
    cluster, strings, store = build()
    rows, _ = run(cluster, strings, store,
                  "SELECT ?U WHERE { ?U fo Erik }")
    assert rows == [("Logan",)]


def test_projection_deduplicates():
    cluster, strings, store = build()
    # Two matching tweets project to the same ?U value.
    rows, _ = run(cluster, strings, store,
                  "SELECT ?U WHERE { ?U po ?P . ?P ht sosp17 }")
    assert rows == [("Erik",), ("Logan",)]


def test_shared_variable_across_three_patterns():
    cluster, strings, store = build()
    rows, _ = run(cluster, strings, store,
                  "SELECT ?X ?Y ?Z WHERE "
                  "{ ?X po ?Z . ?X fo ?Y . ?Y li ?Z }")
    assert ("Logan", "Erik", "T-13") in rows
    assert ("Erik", "Logan", "T-12") in rows


def test_self_loop_binding_consistency():
    cluster = Cluster(num_nodes=1)
    strings = StringServer()
    store = DistributedStore(cluster, strings)
    store.load(parse_triples("a p a .\na p b ."))
    rows, _ = run(cluster, strings, store, "SELECT ?X WHERE { ?X p ?X }")
    assert rows == [("a",)]


def test_latency_positive_and_deterministic():
    cluster, strings, store = build()
    text = "SELECT ?X WHERE { Logan po ?X }"
    _, first = run(cluster, strings, store, text)
    _, second = run(cluster, strings, store, text)
    assert first.ns > 0
    assert first.ns == second.ns


def test_more_nodes_cost_more_network_for_remote_data():
    single_cluster, s1, st1 = build(num_nodes=1)
    multi_cluster, s2, st2 = build(num_nodes=4)
    text = "SELECT ?F ?P WHERE { Logan fo ?F . ?F po ?P }"
    _, local_meter = run(single_cluster, s1, st1, text)
    _, multi_meter = run(multi_cluster, s2, st2, text)
    assert multi_meter.ns >= local_meter.ns
