"""Adjacency-segment cache: charge equality, invalidation, statistics.

The cache is a wall-clock optimization only — a hit must charge exactly
the remote reads, hash probe and per-entry scan an uncached lookup
charges, in the same order, so simulated time never depends on cache
state.  Inserts invalidate the written key; cached segments survive
compaction and serve any snapshot bound that bisects to the same
visible prefix (each hit is validated against the live SN list).
"""

from repro.rdf.ids import DIR_IN, DIR_OUT, make_key
from repro.rdf.parser import parse_triples
from repro.rdf.string_server import StringServer
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter
from repro.store.distributed import DistributedStore
from repro.store.kvstore import BASE_SN


def build(num_nodes=1):
    cluster = Cluster(num_nodes=num_nodes)
    strings = StringServer()
    store = DistributedStore(cluster, strings)
    return cluster, strings, store


def test_cache_hit_returns_same_neighbors_and_charges():
    cluster, strings, store = build()
    store.load(parse_triples("a p b .\na p c ."))
    a = strings.entity_id("a")
    p = strings.predicate_id("p")

    miss_meter = LatencyMeter()
    missed = store.neighbors_from(0, a, p, DIR_OUT, miss_meter)
    hit_meter = LatencyMeter()
    hit = store.neighbors_from(0, a, p, DIR_OUT, hit_meter)

    assert hit == missed
    assert store.shards[0].cached_adjacency(make_key(a, p, DIR_OUT),
                                            None) is not None
    assert hit_meter.ns == miss_meter.ns


def test_remote_cache_hit_charges_identically():
    cluster, strings, store = build(num_nodes=2)
    store.load(parse_triples("a p b .\na p c .\na p d ."))
    a = strings.entity_id("a")
    p = strings.predicate_id("p")
    remote_home = (cluster.owner_of(a) + 1) % 2

    miss_meter = LatencyMeter()
    missed = store.neighbors_from(remote_home, a, p, DIR_OUT, miss_meter)
    hit_meter = LatencyMeter()
    hit = store.neighbors_from(remote_home, a, p, DIR_OUT, hit_meter)

    assert hit == missed
    assert hit_meter.ns == miss_meter.ns


def test_insert_invalidates_written_key():
    cluster, strings, store = build()
    store.load(parse_triples("a p b ."))
    a = strings.entity_id("a")
    b = strings.entity_id("b")
    p = strings.predicate_id("p")

    assert store.neighbors_from(0, a, p, DIR_OUT, LatencyMeter()) == [b]
    # Grow a's adjacency list after it was cached.
    enc = strings.encode_triple(parse_triples("a p e .")[0])
    store.insert_encoded(enc, sn=BASE_SN)
    e = strings.entity_id("e")
    assert store.neighbors_from(0, a, p, DIR_OUT, LatencyMeter()) == [b, e]


def test_cache_entries_are_snapshot_specific():
    cluster, strings, store = build()
    store.load(parse_triples("a p b ."))
    enc = strings.encode_triple(parse_triples("a p c .")[0])
    store.insert_encoded(enc, sn=BASE_SN + 5)
    a = strings.entity_id("a")
    b = strings.entity_id("b")
    c = strings.entity_id("c")
    p = strings.predicate_id("p")

    old = store.neighbors_from(0, a, p, DIR_OUT, LatencyMeter(),
                               max_sn=BASE_SN)
    assert old == [b]
    # A different snapshot must not be served from the BASE_SN entry.
    new = store.neighbors_from(0, a, p, DIR_OUT, LatencyMeter(),
                               max_sn=BASE_SN + 5)
    assert new == [b, c]


def test_cached_segments_survive_compaction():
    """Relabelling moves SNs, never values, so entries stay correct."""
    cluster, strings, store = build()
    store.load(parse_triples("a p b ."))
    a = strings.entity_id("a")
    p = strings.predicate_id("p")
    key = make_key(a, p, DIR_OUT)

    store.neighbors_from(0, a, p, DIR_OUT, LatencyMeter())
    assert store.shards[0].cached_adjacency(key, None) is not None
    store.compact(BASE_SN)
    assert store.shards[0].cached_adjacency(key, None) is not None
    assert store.neighbors_from(0, a, p, DIR_OUT, LatencyMeter()) == [
        strings.entity_id("b")]


def test_versioned_reads_after_compaction_stay_correct():
    """A segment cached at an old bound must not serve a bound whose
    visible prefix differs, before or after compaction relabels SNs."""
    cluster, strings, store = build()
    store.load(parse_triples("a p b ."))
    a = strings.entity_id("a")
    b = strings.entity_id("b")
    p = strings.predicate_id("p")
    c = strings.entity_id("c")
    store.shards[0].insert(make_key(a, p, DIR_OUT), c, sn=BASE_SN + 3)

    meter = LatencyMeter()
    assert store.neighbors_from(0, a, p, DIR_OUT, meter,
                                max_sn=BASE_SN) == [b]
    # Different bound, different prefix: the BASE_SN entry must miss.
    assert store.neighbors_from(0, a, p, DIR_OUT, meter,
                                max_sn=BASE_SN + 3) == [b, c]
    store.compact(BASE_SN + 3)
    # After relabelling everything into the base, any bound sees both.
    assert store.neighbors_from(0, a, p, DIR_OUT, meter,
                                max_sn=BASE_SN) == [b, c]


def test_predicate_cardinality_counts_entries_and_keys():
    cluster, strings, store = build(num_nodes=2)
    store.load(parse_triples("a p b .\na p c .\nb p c .\na q b ."))
    p = strings.predicate_id("p")
    q = strings.predicate_id("q")

    # p: three edges from two subjects (a, b) onto two objects (b, c).
    assert store.predicate_cardinality(p, DIR_OUT) == (3, 2)
    assert store.predicate_cardinality(p, DIR_IN) == (3, 2)
    assert store.predicate_cardinality(q, DIR_OUT) == (1, 1)
    # Unknown predicates count as empty.
    assert store.predicate_cardinality(q + 999, DIR_OUT) == (0, 0)


def test_cache_counters_track_hits_misses():
    cluster, strings, store = build()
    store.load(parse_triples("a p b ."))
    a = strings.entity_id("a")
    p = strings.predicate_id("p")
    shard = store.shards[0]
    base_misses = shard.adjacency_misses

    store.neighbors_from(0, a, p, DIR_OUT, LatencyMeter())
    assert shard.adjacency_misses == base_misses + 1
    store.neighbors_from(0, a, p, DIR_OUT, LatencyMeter())
    store.neighbors_from(0, a, p, DIR_OUT, LatencyMeter())
    assert shard.adjacency_hits == 2


def test_configured_capacity_and_eviction_counter():
    cluster = Cluster(num_nodes=1)
    strings = StringServer()
    store = DistributedStore(cluster, strings, adjacency_capacity=2)
    store.load(parse_triples("a p x .\nb p x .\nc p x ."))
    p = strings.predicate_id("p")
    shard = store.shards[0]
    for name in ("a", "b", "c"):
        vid = strings.entity_id(name)
        store.neighbors_from(0, vid, p, DIR_OUT, LatencyMeter())
    assert len(shard._adjacency) == 2
    assert shard.adjacency_evictions == 1


def test_unknown_policy_rejected():
    import pytest
    from repro.errors import StoreError
    from repro.store.kvstore import ShardStore
    with pytest.raises(StoreError):
        ShardStore(adjacency_policy="clock")


def test_lru_keeps_hot_key_fifo_evicts_it():
    """Under LRU a re-referenced key survives; under FIFO it is evicted."""
    p_triples = "h p x .\na p x .\nb p x ."

    def probe_order(policy):
        cluster = Cluster(num_nodes=1)
        strings = StringServer()
        store = DistributedStore(cluster, strings, adjacency_capacity=2,
                                 adjacency_policy=policy)
        store.load(parse_triples(p_triples))
        p = strings.predicate_id("p")
        vids = {n: strings.entity_id(n) for n in ("h", "a", "b")}
        # Fill: h, a.  Touch h again.  Insert b (one eviction).
        for name in ("h", "a", "h", "b"):
            store.neighbors_from(0, vids[name], p, DIR_OUT, LatencyMeter())
        shard = store.shards[0]
        return shard.cached_adjacency(make_key(vids["h"], p, DIR_OUT),
                                      None) is not None

    assert probe_order("lru") is True    # the hit refreshed h
    assert probe_order("fifo") is False  # insertion order evicts h


def test_lru_beats_fifo_on_zipf_skew():
    """On a Zipf-skewed probe sequence LRU's hit rate is at least FIFO's.

    A tiny cache over a skewed key popularity distribution is the regime
    the policy knob exists for: recency keeps the hot head keys resident.
    """
    import random

    num_keys = 64
    rng = random.Random(1234)
    # Zipf(s=1.2) over key ranks.
    weights = [1.0 / (rank ** 1.2) for rank in range(1, num_keys + 1)]
    probes = rng.choices(range(num_keys), weights=weights, k=4_000)

    def hit_rate(policy):
        cluster = Cluster(num_nodes=1)
        strings = StringServer()
        store = DistributedStore(cluster, strings, adjacency_capacity=8,
                                 adjacency_policy=policy)
        lines = "\n".join(f"k{i} p x ." for i in range(num_keys))
        store.load(parse_triples(lines))
        p = strings.predicate_id("p")
        vids = [strings.entity_id(f"k{i}") for i in range(num_keys)]
        for index in probes:
            store.neighbors_from(0, vids[index], p, DIR_OUT, LatencyMeter())
        shard = store.shards[0]
        return shard.adjacency_hits / (shard.adjacency_hits
                                       + shard.adjacency_misses)

    lru, fifo = hit_rate("lru"), hit_rate("fifo")
    assert lru >= fifo
    assert lru > 0.5  # the hot head must mostly hit


def test_weighted_eviction_heavy_entry_evicts_multiple():
    """Under entries-weighted eviction, one heavy segment displaces as
    many light segments as its weight requires (weight = 1 + entries)."""
    cluster = Cluster(num_nodes=1)
    strings = StringServer()
    store = DistributedStore(cluster, strings, adjacency_capacity=6,
                             adjacency_weighted=True)
    # a, b, c: one neighbour each (weight 2); big: three (weight 4).
    store.load(parse_triples(
        "a p x .\nb p x .\nc p x .\nbig p x .\nbig p y .\nbig p z ."))
    p = strings.predicate_id("p")
    shard = store.shards[0]

    for name in ("a", "b", "c"):
        store.neighbors_from(0, strings.entity_id(name), p, DIR_OUT,
                             LatencyMeter())
    assert len(shard._adjacency) == 3          # weight 6 = budget
    assert shard.adjacency_evictions == 0

    store.neighbors_from(0, strings.entity_id("big"), p, DIR_OUT,
                         LatencyMeter())
    # Fitting weight 4 into a full budget of 6 evicts TWO unit entries.
    assert shard.adjacency_evictions == 2
    assert len(shard._adjacency) == 2
    assert shard.cached_adjacency(
        make_key(strings.entity_id("big"), p, DIR_OUT), None) is not None
    # Unweighted count-based eviction would have evicted only one.
    assert shard.cached_adjacency(
        make_key(strings.entity_id("a"), p, DIR_OUT), None) is None
    assert shard.cached_adjacency(
        make_key(strings.entity_id("b"), p, DIR_OUT), None) is None


def test_weighted_over_budget_entry_caches_alone():
    """A segment heavier than the whole budget empties the cache and then
    still caches (so repeat probes of the monster key hit)."""
    cluster = Cluster(num_nodes=1)
    strings = StringServer()
    store = DistributedStore(cluster, strings, adjacency_capacity=3,
                             adjacency_weighted=True)
    store.load(parse_triples(
        "a p x .\nbig p w .\nbig p x .\nbig p y .\nbig p z ."))
    p = strings.predicate_id("p")
    shard = store.shards[0]

    store.neighbors_from(0, strings.entity_id("a"), p, DIR_OUT,
                         LatencyMeter())
    store.neighbors_from(0, strings.entity_id("big"), p, DIR_OUT,
                         LatencyMeter())
    assert shard.adjacency_evictions == 1
    assert len(shard._adjacency) == 1  # big alone, over budget
    before = shard.adjacency_hits
    store.neighbors_from(0, strings.entity_id("big"), p, DIR_OUT,
                         LatencyMeter())
    assert shard.adjacency_hits == before + 1


def test_weighted_charges_identical_to_unweighted():
    """Size-aware eviction is wall-clock-only: charges never depend on it."""
    probes = [0, 1, 2, 0, 3, 0, 1, 4, 2, 0]

    def total_ns(weighted):
        cluster = Cluster(num_nodes=1)
        strings = StringServer()
        store = DistributedStore(cluster, strings, adjacency_capacity=4,
                                 adjacency_weighted=weighted)
        lines = "\n".join(f"k{i} p x .\nk{i} p y ." for i in range(5))
        store.load(parse_triples(lines))
        p = strings.predicate_id("p")
        vids = [strings.entity_id(f"k{i}") for i in range(5)]
        meter = LatencyMeter()
        for index in probes:
            store.neighbors_from(0, vids[index], p, DIR_OUT, meter)
        return meter.ns

    assert total_ns(True) == total_ns(False)


def test_simulated_charges_identical_across_policies():
    """Eviction policy is wall-clock-only: charges never depend on it."""
    probes = [0, 1, 2, 0, 3, 0, 1, 4, 2, 0]

    def total_ns(policy):
        cluster = Cluster(num_nodes=1)
        strings = StringServer()
        store = DistributedStore(cluster, strings, adjacency_capacity=2,
                                 adjacency_policy=policy)
        lines = "\n".join(f"k{i} p x ." for i in range(5))
        store.load(parse_triples(lines))
        p = strings.predicate_id("p")
        vids = [strings.entity_id(f"k{i}") for i in range(5)]
        meter = LatencyMeter()
        for index in probes:
            store.neighbors_from(0, vids[index], p, DIR_OUT, meter)
        return meter.ns

    assert total_ns("lru") == total_ns("fifo")


# -- runtime resizing (repro.core.replan.AdjacencyBudget) ------------------

def _skewed_store(capacity, num_keys=6, **kwargs):
    cluster = Cluster(num_nodes=1)
    strings = StringServer()
    store = DistributedStore(cluster, strings, adjacency_capacity=capacity,
                             **kwargs)
    lines = "\n".join(f"k{i} p x ." for i in range(num_keys))
    store.load(parse_triples(lines))
    p = strings.predicate_id("p")
    vids = [strings.entity_id(f"k{i}") for i in range(num_keys)]

    def probe(index):
        store.neighbors_from(0, vids[index], p, DIR_OUT, LatencyMeter())

    return store, probe


def test_set_capacity_shrink_evicts_from_front_and_counts():
    store, probe = _skewed_store(capacity=4)
    for index in range(3):
        probe(index)
    shard = store.shards[0]
    assert len(shard._adjacency) == 3
    evictions_before = shard.adjacency_evictions
    shard.set_adjacency_capacity(1)
    # Front of the insertion-ordered dict goes first — the same victim
    # order steady-state eviction uses — and every drop is counted.
    assert len(shard._adjacency) == 1
    assert shard.adjacency_evictions == evictions_before + 2
    probe(2)  # the newest insert (k2) must be the survivor
    assert shard.adjacency_hits >= 1


def test_set_capacity_rejects_nonpositive():
    import pytest
    from repro.errors import StoreError
    store, _ = _skewed_store(capacity=4)
    with pytest.raises(StoreError):
        store.shards[0].set_adjacency_capacity(0)


def test_set_capacity_weighted_over_budget_entry_survives_alone():
    store, probe = _skewed_store(capacity=64, adjacency_weighted=True)
    probe(0)
    shard = store.shards[0]
    assert len(shard._adjacency) == 1
    # Shrinking below the lone segment's weight keeps it cached alone,
    # exactly like cache_adjacency admits an over-budget segment.
    shard.set_adjacency_capacity(1)
    assert len(shard._adjacency) == 1


def test_budget_grows_on_evictions_up_to_max():
    from repro.core.replan import AdjacencyBudget

    store, probe = _skewed_store(capacity=2)
    budget = AdjacencyBudget(store, min_capacity=2, max_capacity=8,
                             every_ticks=1)
    # Each round sweeps more distinct keys than the cache holds, so the
    # eviction counter moves every window until the working set fits.
    for expected in (4, 8, 8):
        for index in range(6):
            probe(index)
        budget.on_tick()
        assert store.shards[0].adjacency_capacity == expected
    assert budget.grows == 2


def test_budget_shrinks_idle_capacity_and_respects_min():
    from repro.core.replan import AdjacencyBudget

    store, probe = _skewed_store(capacity=16)
    budget = AdjacencyBudget(store, min_capacity=2, max_capacity=64,
                             every_ticks=1)
    probe(0)
    probe(1)
    # Two resident keys, hit traffic, no evictions: 16 -> 8 -> 4, then
    # occupancy * 4 > capacity stops the payback above min_capacity.
    for expected in (8, 4, 4):
        probe(0)
        probe(1)
        budget.on_tick()
        assert store.shards[0].adjacency_capacity == expected
    assert budget.shrinks == 2
    assert len(store.shards[0]._adjacency) == 2


def test_budget_leaves_idle_shards_alone():
    from repro.core.replan import AdjacencyBudget

    store, probe = _skewed_store(capacity=16)
    budget = AdjacencyBudget(store, min_capacity=2, max_capacity=64,
                             every_ticks=1)
    probe(0)
    probe(1)
    budget.on_tick()  # traffic window: may resize
    resized = store.shards[0].adjacency_capacity
    budget.on_tick()  # no traffic since: no evidence, no resize
    assert store.shards[0].adjacency_capacity == resized


def test_budget_resizing_never_changes_simulated_charges():
    """Adaptive capacity is a wall-clock actuator: per-probe charges on a
    resizing store equal a fixed-capacity store's, probe for probe."""
    from repro.core.replan import AdjacencyBudget

    probes = [0, 1, 2, 3, 4, 5, 0, 1, 0, 2, 5, 4, 0, 0, 1, 3]

    def charge_sequence(adaptive):
        cluster = Cluster(num_nodes=1)
        strings = StringServer()
        store = DistributedStore(cluster, strings, adjacency_capacity=2)
        lines = "\n".join(f"k{i} p x .\nk{i} p y ." for i in range(6))
        store.load(parse_triples(lines))
        p = strings.predicate_id("p")
        vids = [strings.entity_id(f"k{i}") for i in range(6)]
        budget = AdjacencyBudget(store, min_capacity=2, max_capacity=32,
                                 every_ticks=1) if adaptive else None
        charges = []
        for index in probes:
            meter = LatencyMeter()
            store.neighbors_from(0, vids[index], p, DIR_OUT, meter)
            charges.append(meter.ns)
            if budget is not None:
                budget.on_tick()
        if budget is not None:
            assert budget.grows > 0  # the budget actually acted
        return charges

    assert charge_sequence(True) == charge_sequence(False)
