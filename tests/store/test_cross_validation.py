"""Property tests: graph exploration == relational join semantics.

The executor's graph exploration and the baselines' relational scan+join
pipeline are two independent evaluators of the same conjunctive queries.
On random graphs and random (connected) patterns they must produce exactly
the same binding sets — a strong cross-check of both engines.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.relational import hash_join, project, scan_pattern
from repro.rdf.string_server import StringServer
from repro.rdf.terms import EncodedTuple, TimedTuple, Triple
from repro.sim.cluster import Cluster
from repro.sim.cost import CostModel, LatencyMeter
from repro.sparql.ast import Query, TriplePattern
from repro.sparql.planner import plan_query
from repro.store.distributed import DistributedStore, PersistentAccess
from repro.store.executor import GraphExplorer

ENTITIES = [f"e{i}" for i in range(8)]
PREDICATES = ["p", "q", "r"]

triple_strategy = st.tuples(
    st.sampled_from(ENTITIES), st.sampled_from(PREDICATES),
    st.sampled_from(ENTITIES))

graph_strategy = st.lists(triple_strategy, min_size=1, max_size=30)


def term_strategy(variables):
    return st.one_of(st.sampled_from(ENTITIES), st.sampled_from(variables))


def query_strategy():
    """Queries of 1-3 patterns whose variables chain them together."""
    def build(draw_terms):
        patterns = []
        for idx, (s, p, o) in enumerate(draw_terms):
            patterns.append(TriplePattern(s, p, o))
        return Query(select=[], patterns=patterns)

    single = st.lists(
        st.tuples(term_strategy(["?a", "?b"]), st.sampled_from(PREDICATES),
                  term_strategy(["?a", "?b"])),
        min_size=1, max_size=1).map(build)
    chained = st.lists(
        st.tuples(term_strategy(["?a"]), st.sampled_from(PREDICATES),
                  st.just("?a")),
        min_size=2, max_size=3).map(build)
    return st.one_of(single, chained)


def relational_answer(triples, query, strings):
    """Evaluate the query with scans + hash joins over the triple table."""
    table = [strings.encode_tuple(TimedTuple(Triple(*t), 0))
             for t in triples]
    cost = CostModel()
    meter = LatencyMeter()
    rows = None
    for pattern in query.patterns:
        scanned = scan_pattern(table, pattern, strings, meter, 1.0, cost)
        if not pattern.variables():
            # All-constant pattern: acts as a boolean filter.
            if not scanned:
                return set()
            continue
        rows = scanned if rows is None else hash_join(rows, scanned, meter,
                                                      cost)
    if rows is None:
        rows = [{}]
    return set(project(rows, query.projected(), meter, cost))


def exploration_answer(triples, query, strings, num_nodes):
    cluster = Cluster(num_nodes=num_nodes)
    store = DistributedStore(cluster, strings)
    store.load([Triple(*t) for t in triples])
    explorer = GraphExplorer(cluster)

    def factory(node_id):
        access = PersistentAccess(store, home_node=node_id)
        return lambda pattern: access

    result = explorer.execute(plan_query(query), factory, LatencyMeter())
    return set(result.rows)


@settings(max_examples=60, deadline=None)
@given(triples=graph_strategy, query=query_strategy(),
       num_nodes=st.sampled_from([1, 3]))
def test_exploration_matches_relational_semantics(triples, query, num_nodes):
    strings = StringServer()
    # Pre-register every vocabulary item so both evaluators share IDs.
    for entity in ENTITIES:
        strings.entity_id(entity)
    for predicate in PREDICATES:
        strings.predicate_id(predicate)

    expected = relational_answer(triples, query, strings)
    actual = exploration_answer(triples, query, strings, num_nodes)
    assert actual == expected


@settings(max_examples=30, deadline=None)
@given(triples=graph_strategy, query=query_strategy())
def test_execution_modes_agree(triples, query):
    strings = StringServer()
    for entity in ENTITIES:
        strings.entity_id(entity)
    for predicate in PREDICATES:
        strings.predicate_id(predicate)
    cluster = Cluster(num_nodes=3)
    store = DistributedStore(cluster, strings)
    store.load([Triple(*t) for t in triples])
    explorer = GraphExplorer(cluster)

    def factory(node_id):
        access = PersistentAccess(store, home_node=node_id)
        return lambda pattern: access

    plan = plan_query(query)
    answers = {
        mode: set(explorer.execute(plan, factory, LatencyMeter(),
                                   mode=mode).rows)
        for mode in ("in_place", "fork_join", "migrate")
    }
    assert answers["in_place"] == answers["fork_join"] == answers["migrate"]


@settings(max_examples=30, deadline=None)
@given(triples=graph_strategy, query=query_strategy(),
       keep=st.sampled_from(ENTITIES))
def test_filters_agree_across_modes_and_with_post_filtering(triples, query,
                                                            keep):
    """An equality FILTER must equal post-hoc filtering, in every mode."""
    from repro.sparql.ast import FilterExpr

    variables = query.variables()
    if not variables:
        return
    target = variables[0]
    filtered_query = type(query)(
        select=list(query.select), patterns=list(query.patterns),
        filters=[FilterExpr(target, "=", keep)])

    strings = StringServer()
    for entity in ENTITIES:
        strings.entity_id(entity)
    for predicate in PREDICATES:
        strings.predicate_id(predicate)
    cluster = Cluster(num_nodes=3)
    store = DistributedStore(cluster, strings)
    store.load([Triple(*t) for t in triples])
    explorer = GraphExplorer(cluster, strings)

    def factory(node_id):
        access = PersistentAccess(store, home_node=node_id)
        return lambda pattern: access

    unfiltered = explorer.execute(plan_query(query), factory,
                                  LatencyMeter())
    keep_vid = strings.entity_id(keep)
    target_index = unfiltered.variables.index(target) \
        if target in unfiltered.variables else None
    if target_index is None:
        return
    expected = {row for row in unfiltered.rows
                if row[target_index] == keep_vid}

    plan = plan_query(filtered_query)
    for mode in ("in_place", "fork_join", "migrate"):
        got = set(explorer.execute(plan, factory, LatencyMeter(),
                                   mode=mode).rows)
        assert got == expected, mode
