"""Tests for the distributed store and placement-aware reads."""

from repro.rdf.ids import DIR_IN, DIR_OUT
from repro.rdf.parser import parse_triples
from repro.rdf.string_server import StringServer
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter
from repro.store.distributed import DistributedStore, PersistentAccess


def build(num_nodes=2):
    cluster = Cluster(num_nodes=num_nodes)
    strings = StringServer()
    store = DistributedStore(cluster, strings)
    return cluster, strings, store


def test_load_counts_triples():
    _, _, store = build()
    n = store.load(parse_triples("a p b .\nb p c ."))
    assert n == 2
    assert store.num_entries == 4  # out + in halves


def test_edges_land_on_owner_shards():
    cluster, strings, store = build(num_nodes=2)
    store.load(parse_triples("a p b ."))
    a, b = strings.entity_id("a"), strings.entity_id("b")
    assert store.shards[cluster.owner_of(a)].num_entries >= 1
    assert store.shards[cluster.owner_of(b)].num_entries >= 1


def test_neighbors_both_directions():
    cluster, strings, store = build()
    store.load(parse_triples("a p b .\na p c ."))
    a = strings.entity_id("a")
    b = strings.entity_id("b")
    p = strings.predicate_id("p")
    meter = LatencyMeter()
    home = cluster.owner_of(a)
    assert store.neighbors_from(home, a, p, DIR_OUT, meter) == \
        [strings.entity_id("b"), strings.entity_id("c")]
    assert store.neighbors_from(cluster.owner_of(b), b, p, DIR_IN,
                                LatencyMeter()) == [a]


def test_remote_read_charges_two_rdma_reads():
    cluster, strings, store = build(num_nodes=2)
    store.load(parse_triples("a p b ."))
    a = strings.entity_id("a")
    p = strings.predicate_id("p")
    owner = cluster.owner_of(a)
    remote_home = (owner + 1) % 2

    local, remote = LatencyMeter(), LatencyMeter()
    store.neighbors_from(owner, a, p, DIR_OUT, local)
    before = cluster.fabric.stats.rdma_reads
    store.neighbors_from(remote_home, a, p, DIR_OUT, remote)
    assert cluster.fabric.stats.rdma_reads == before + 2
    assert remote.ns > local.ns


def test_index_split_across_nodes():
    cluster, strings, store = build(num_nodes=2)
    store.load(parse_triples("a p b .\nc p d .\ne p f ."))
    p = strings.predicate_id("p")
    total = []
    for node_id in range(2):
        total.extend(store.local_index(node_id, p, DIR_OUT, LatencyMeter()))
    subjects = {strings.entity_id(s) for s in "ace"}
    assert set(total) == subjects


def test_gather_index_sees_everything():
    cluster, strings, store = build(num_nodes=3)
    store.load(parse_triples("a p b .\nc p d .\ne p f ."))
    p = strings.predicate_id("p")
    gathered = store.gather_index(0, p, DIR_OUT, LatencyMeter())
    assert set(gathered) == {strings.entity_id(s) for s in "ace"}


def test_persistent_access_snapshot_bound():
    cluster, strings, store = build(num_nodes=1)
    store.load(parse_triples("a p b ."))
    enc = strings.encode_triple(parse_triples("a p c .")[0])
    store.insert_encoded(enc, sn=3)
    a = strings.entity_id("a")
    p = strings.predicate_id("p")

    old = PersistentAccess(store, max_sn=0)
    new = PersistentAccess(store, max_sn=3)
    assert old.neighbors(a, p, DIR_OUT, LatencyMeter()) == \
        [strings.entity_id("b")]
    assert new.neighbors(a, p, DIR_OUT, LatencyMeter()) == \
        [strings.entity_id("b"), strings.entity_id("c")]


def test_local_index_only_access():
    cluster, strings, store = build(num_nodes=2)
    store.load(parse_triples("a p b .\nc p d ."))
    p = strings.predicate_id("p")
    partial = PersistentAccess(store, home_node=0, local_index_only=True)
    full = PersistentAccess(store, home_node=0)
    assert len(partial.index_vertices(p, DIR_OUT, LatencyMeter())) <= \
        len(full.index_vertices(p, DIR_OUT, LatencyMeter()))


def test_resolvers_do_not_allocate():
    _, strings, store = build()
    access = PersistentAccess(store)
    assert access.resolve_entity("nobody") is None
    assert access.resolve_predicate("nothing") is None
    assert strings.num_entities == 0
