"""Tests for the snapshot-versioned shard store."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StoreError
from repro.rdf.ids import DIR_IN, DIR_OUT, make_key
from repro.sim.cost import LatencyMeter
from repro.store.kvstore import BASE_SN, ShardStore, ValueSpan

KEY = make_key(1, 4, DIR_OUT)


def test_insert_and_lookup():
    shard = ShardStore()
    shard.insert(KEY, 5)
    shard.insert(KEY, 6)
    assert shard.lookup(KEY) == [5, 6]


def test_lookup_missing_key_is_empty():
    assert ShardStore().lookup(KEY) == []


def test_snapshot_visibility():
    shard = ShardStore()
    shard.insert(KEY, 5, sn=0)
    shard.insert(KEY, 6, sn=1)
    shard.insert(KEY, 7, sn=2)
    assert shard.lookup(KEY, max_sn=0) == [5]
    assert shard.lookup(KEY, max_sn=1) == [5, 6]
    assert shard.lookup(KEY, max_sn=2) == [5, 6, 7]
    assert shard.lookup(KEY, max_sn=None) == [5, 6, 7]


def test_sn_order_enforced_per_key():
    shard = ShardStore()
    shard.insert(KEY, 5, sn=2)
    with pytest.raises(StoreError):
        shard.insert(KEY, 6, sn=1)


def test_same_sn_appends_fine():
    shard = ShardStore()
    shard.insert(KEY, 5, sn=2)
    shard.insert(KEY, 6, sn=2)
    assert shard.lookup(KEY, max_sn=2) == [5, 6]


def test_spans_address_exact_entries():
    shard = ShardStore()
    spans = [shard.insert(KEY, vid) for vid in (5, 6, 7)]
    assert shard.lookup_span(spans[1]) == [6]
    wide = ValueSpan(KEY, 1, 2)
    assert shard.lookup_span(wide) == [6, 7]


def test_span_out_of_bounds_rejected():
    shard = ShardStore()
    shard.insert(KEY, 5)
    with pytest.raises(StoreError):
        shard.lookup_span(ValueSpan(KEY, 0, 2))
    with pytest.raises(StoreError):
        shard.lookup_span(ValueSpan(make_key(9, 9, 0), 0, 1))


def test_compaction_folds_old_snapshots():
    shard = ShardStore()
    shard.insert(KEY, 5, sn=1)
    shard.insert(KEY, 6, sn=2)
    shard.insert(KEY, 7, sn=3)
    touched = shard.compact(2)
    assert touched == 1
    # Visibility at or above the bound is unchanged...
    assert shard.lookup(KEY, max_sn=2) == [5, 6]
    assert shard.lookup(KEY, max_sn=3) == [5, 6, 7]
    # ...and everything at or below the bound became base-visible.
    assert shard.lookup(KEY, max_sn=0) == [5, 6]


def test_compaction_preserves_spans():
    shard = ShardStore()
    spans = [shard.insert(KEY, vid, sn=sn)
             for sn, vid in [(1, 5), (2, 6), (3, 7)]]
    shard.compact(2)
    assert shard.lookup_span(spans[0]) == [5]
    assert shard.lookup_span(spans[2]) == [7]


def test_index_vertices_deduplicate():
    shard = ShardStore()
    assert shard.add_index(4, DIR_OUT, 1)
    assert not shard.add_index(4, DIR_OUT, 1)
    assert shard.add_index(4, DIR_OUT, 2)
    assert shard.index_vertices(4, DIR_OUT) == [1, 2]
    assert shard.index_vertices(4, DIR_IN) == []


def test_costs_charged_on_lookup():
    shard = ShardStore()
    shard.insert(KEY, 5)
    shard.insert(KEY, 6)
    meter = LatencyMeter()
    shard.lookup(KEY, meter=meter)
    expected = shard.cost.hash_probe_ns + 2 * shard.cost.scan_entry_ns
    assert meter.ns == expected


def test_span_read_skips_hash_probe():
    shard = ShardStore()
    span = shard.insert(KEY, 5)
    meter = LatencyMeter()
    shard.lookup_span(span, meter=meter)
    assert meter.ns == shard.cost.scan_entry_ns


def test_memory_accounting_counts_segments():
    shard = ShardStore()
    shard.insert(KEY, 5, sn=1)
    shard.insert(KEY, 6, sn=2)
    before = shard.memory_bytes()
    shard.compact(2)
    after = shard.memory_bytes()
    assert after < before  # two SN segments collapsed into one


def test_stats():
    shard = ShardStore()
    shard.insert(KEY, 5)
    shard.insert(make_key(2, 4, DIR_OUT), 1)
    assert shard.num_keys == 2
    assert shard.num_entries == 2


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(1, 100)),
                min_size=1, max_size=40))
def test_visibility_is_monotonic_in_sn(entries):
    """Reading at a larger snapshot never sees fewer entries (prefix reads)."""
    shard = ShardStore()
    entries = sorted(entries, key=lambda e: e[0])
    for sn, vid in entries:
        shard.insert(KEY, vid, sn=sn)
    previous = []
    for sn in range(0, 7):
        visible = shard.lookup(KEY, max_sn=sn)
        assert visible[:len(previous)] == previous
        previous = visible
    assert previous == [vid for _, vid in entries]
