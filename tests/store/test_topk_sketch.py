"""Backfill for the lazy-floor TopK sketch eviction (PR 6).

``_TopKSketch.bump`` replaced an O(capacity) ``min`` per eviction with a
lazily maintained *cohort* of floor-count keys.  The contract is that the
optimization is invisible: victim choice — and with it every count the
sketch ever reports — must be bit-identical to the eager space-saving
reference (evict the dict-order-first key holding the minimum count).
These tests pin that equivalence at the places it could break: cohort
boundaries (the floor rises mid-cohort), members bumped after capture
(must be skipped, not evicted), and adversarial interleavings.
"""

from __future__ import annotations

import random

from repro.store.kvstore import _TopKSketch


class EagerTopK:
    """The reference implementation: scan for the minimum on every
    eviction, first-inserted key winning ties (dict order)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.counts = {}

    def bump(self, vid: int) -> None:
        count = self.counts.get(vid)
        if count is not None:
            self.counts[vid] = count + 1
            return
        if len(self.counts) < self.capacity:
            self.counts[vid] = 1
            return
        victim = min(self.counts, key=self.counts.__getitem__)
        floor = self.counts[victim]
        del self.counts[victim]
        self.counts[vid] = floor + 1


def _assert_identical(sketch: _TopKSketch, eager: EagerTopK, context=""):
    # Item *order* included: dict order is the tie-break state, so equal
    # ordered items means every future victim decision agrees too.
    assert list(sketch.counts.items()) == list(eager.counts.items()), context


def _drive(sequence, capacity=4):
    sketch = _TopKSketch(capacity=capacity)
    eager = EagerTopK(capacity=capacity)
    for step, vid in enumerate(sequence):
        sketch.bump(vid)
        eager.bump(vid)
        _assert_identical(sketch, eager,
                          f"diverged at step {step} (vid {vid})")
    return sketch, eager


# -- hand-written cohort boundary cases -----------------------------------

def test_tie_break_is_first_inserted_at_cohort_capture():
    # Fill to capacity with an all-ties cohort, then force evictions:
    # victims must come out in insertion order 1, 2, 3, ...
    sketch, _ = _drive([1, 2, 3, 4, 10, 11, 12])
    # 1, 2, 3 evicted in order; entrants inherit floor 1 -> count 2.
    assert list(sketch.counts.items()) == [(4, 1), (10, 2), (11, 2), (12, 2)]


def test_bumped_cohort_member_is_skipped_not_evicted():
    # Capture the cohort (first eviction), then bump a later cohort
    # member: the lazy scan must skip it (its count left the floor) and
    # take the next in-order key still holding the floor.
    sequence = [1, 2, 3, 4,   # cohort at floor 1: [1, 2, 3, 4]
                10,           # evicts 1, cohort pos now at 2
                3,            # cohort member 3 leaves the floor
                11,           # must evict 2
                12]           # must skip 3 (count 2), evict 4
    sketch, _ = _drive(sequence)
    assert 3 in sketch.counts
    assert 2 not in sketch.counts and 4 not in sketch.counts


def test_floor_rises_across_cohort_exhaustion():
    # Exhaust the floor-1 cohort entirely; the next eviction must rescan
    # and find the new floor (2), not reuse the stale cohort.
    sequence = [1, 2, 3, 4,
                10, 11, 12, 13,  # evict 1..4; all residents now count 2
                20]              # floor must rise to 2; victim is 10
    sketch, _ = _drive(sequence)
    assert 10 not in sketch.counts
    assert sketch.counts[20] == 3  # inherits the new floor 2, plus one


def test_reinserting_an_evicted_key_restarts_from_floor():
    sequence = [1, 2, 3, 4, 10,  # evicts 1
                1]               # 1 re-enters as a fresh entrant
    sketch, _ = _drive(sequence)
    # Re-entry inherits the current floor + 1, like any entrant.
    assert sketch.counts[1] == 2


# -- adversarial interleavings -------------------------------------------

def test_alternating_evict_and_bump_storm():
    # Interleave fresh entrants (each forcing an eviction) with bumps of
    # survivors, so cohort captures are invalidated as fast as possible.
    sequence = []
    for wave in range(1, 40):
        sequence.append(100 + wave)       # fresh key -> eviction
        sequence.append(100 + wave)       # immediately bump it
        sequence.append(100 + wave - 1 if wave > 1 else 100 + wave)
    _drive(sequence, capacity=4)


def test_randomized_differential_small_key_space():
    # Small key space maximizes re-entry of previously evicted keys and
    # keeps many counts tied at the floor — the worst case for lazy
    # cohort bookkeeping.  Several seeds, step-by-step equality.
    for seed in range(6):
        rng = random.Random(seed)
        sequence = [rng.randrange(12) for _ in range(600)]
        _drive(sequence, capacity=4)


def test_randomized_differential_default_capacity():
    for seed in range(3):
        rng = random.Random(1000 + seed)
        sequence = [rng.randrange(30) for _ in range(800)]
        _drive(sequence, capacity=8)


def test_estimate_matches_reference_for_tracked_and_untracked():
    sketch, eager = _drive([1, 1, 2, 3, 4, 5, 6], capacity=4)
    for vid in range(8):
        assert sketch.estimate(vid) == eager.counts.get(vid)
