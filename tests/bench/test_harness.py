"""Tests for the experiment harness and mixed-workload driver."""

import pytest

from repro.bench.harness import (build_wukongs, feed_baseline, format_table,
                                 measure_baseline, measure_wukongs,
                                 median_of, stream_batches_for)
from repro.bench.lsbench import LSBench, LSBenchConfig
from repro.bench.workload import run_mixed_workload


@pytest.fixture(scope="module")
def bench():
    return LSBench(LSBenchConfig.tiny())


class TestBuilders:
    def test_build_wukongs_attaches_all_streams(self, bench):
        engine = build_wukongs(bench, num_nodes=2, duration_ms=1_000)
        assert set(engine.sources) == {"PO", "PO_L", "PH", "PH_L", "GPS"}
        assert engine.cluster.num_nodes == 2

    def test_stream_batches_cover_duration(self, bench):
        batches = stream_batches_for(bench, 1_000, batch_interval_ms=100)
        for stream in ("PO", "PO_L"):
            numbers = [b.batch_no for b in batches if b.stream == stream]
            assert numbers == sorted(numbers)

    def test_feed_baseline_loads_and_ingests(self, bench):
        from repro.baselines.csparql_engine import CSparqlEngine
        engine = feed_baseline(CSparqlEngine(), bench, 1_000)
        assert engine.store.num_triples > 0
        assert engine.buffers


class TestMeasurement:
    def test_measure_wukongs_collects_per_query(self, bench):
        engine = build_wukongs(bench, num_nodes=1, duration_ms=2_000)
        samples = measure_wukongs(
            engine, {"L1": bench.continuous_query("L1")}, 2_000)
        assert samples["L1"]
        assert all(lat > 0 for lat in samples["L1"])

    def test_measure_wukongs_warmup_delays_registration(self, bench):
        engine = build_wukongs(bench, num_nodes=1, duration_ms=2_000)
        samples = measure_wukongs(
            engine, {"L1": bench.continuous_query("L1")}, 2_000,
            warmup_ms=1_500)
        handle = engine.continuous.queries["L1"]
        assert all(rec.close_ms > 1_500 for rec in handle.executions)
        assert samples["L1"]

    def test_measure_baseline(self, bench):
        from repro.baselines.csparql_engine import CSparqlEngine
        engine = feed_baseline(CSparqlEngine(), bench, 2_000)
        samples = measure_baseline(
            engine, {"L1": bench.continuous_query("L1")}, [1_500, 2_000])
        assert len(samples["L1"]) == 2

    def test_median_of_handles_empty(self):
        out = median_of({"a": [1.0, 3.0, 2.0], "b": []})
        assert out["a"] == 2.0
        assert out["b"] != out["b"]  # NaN


class TestMixedWorkload:
    def test_throughput_model(self, bench):
        result = run_mixed_workload(bench, ["L1", "L2"], num_nodes=2,
                                    duration_ms=2_000,
                                    variants_per_class=2)
        assert result.total_workers == 32
        assert result.throughput_qps > 0
        assert result.mixture_mean_latency_ms > 0
        # throughput = workers / mean latency, by construction.
        expected = 32 / (result.mixture_mean_latency_ms / 1e3)
        assert result.throughput_qps == pytest.approx(expected)

    def test_percentiles_and_cdf(self, bench):
        result = run_mixed_workload(bench, ["L1"], num_nodes=1,
                                    duration_ms=2_000)
        p50 = result.latency_percentile_ms(50)
        p99 = result.latency_percentile_ms(99)
        assert p50 <= p99
        cdf = result.class_cdf("L1")
        assert cdf and abs(cdf[-1][1] - 1.0) < 1e-9

    def test_more_nodes_more_throughput(self, bench):
        small = run_mixed_workload(bench, ["L1", "L2"], num_nodes=1,
                                   duration_ms=2_000)
        big = run_mixed_workload(bench, ["L1", "L2"], num_nodes=4,
                                 duration_ms=2_000)
        assert big.total_workers > small.total_workers


class TestFormatting:
    def test_format_table_aligns_and_marks(self):
        table = format_table("T", ["Q", "ms"],
                             [["L1", 0.5], ["L4", float("nan")],
                              ["L5", None], ["L6", 1234.6]],
                             note="note")
        assert "== T ==" in table
        assert "x" in table          # NaN -> unsupported mark
        assert "-" in table          # None -> absent
        assert "1,235" in table      # large values grouped
        assert table.endswith("note")
