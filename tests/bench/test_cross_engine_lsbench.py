"""Cross-engine result agreement on LSBench (L1-L6)."""

import pytest

from repro.baselines.spark import SparkStreamingEngine
from repro.baselines.wukong_ext import WukongExtEngine
from repro.bench.lsbench import LSBench, LSBenchConfig, QUERY_STREAMS
from repro.bench.harness import build_wukongs, feed_baseline
from repro.sim.cluster import Cluster
from repro.sparql.parser import parse_query

DURATION_MS = 3_000
CLOSE_MS = 3_000

L_QUERIES = list(QUERY_STREAMS)


@pytest.fixture(scope="module")
def scenario():
    bench = LSBench(LSBenchConfig.tiny())
    integrated = build_wukongs(bench, num_nodes=3, duration_ms=DURATION_MS)
    handles = {name: integrated.register_continuous(
        bench.continuous_query(name)) for name in L_QUERIES}
    integrated.run_until(DURATION_MS)

    spark = feed_baseline(SparkStreamingEngine(), bench, DURATION_MS)
    ext = feed_baseline(WukongExtEngine(Cluster(num_nodes=3)), bench,
                        DURATION_MS)
    return bench, integrated, handles, spark, ext


def integrated_rows(integrated, handles, name):
    handle = handles[name]
    record = next(rec for rec in handle.executions
                  if rec.close_ms == CLOSE_MS)
    return {tuple(integrated.strings.entity_name(v) for v in row)
            for row in record.result.rows}


@pytest.mark.parametrize("name", L_QUERIES)
def test_spark_agrees(scenario, name):
    bench, integrated, handles, spark, _ = scenario
    query = parse_query(bench.continuous_query(name))
    if name == "L2":
        # L2's stored pattern reads *absorbed* stream posts; Spark's
        # static DataFrame never absorbs them (the statefulness gap the
        # paper highlights), so Spark legitimately under-reports.
        rows, _ = spark.execute_continuous(query, CLOSE_MS)
        got = {tuple(spark.strings.entity_name(v) for v in row)
               for row in rows}
        assert got <= integrated_rows(integrated, handles, name)
        return
    rows, _ = spark.execute_continuous(query, CLOSE_MS)
    got = {tuple(spark.strings.entity_name(v) for v in row) for row in rows}
    assert got == integrated_rows(integrated, handles, name), name


@pytest.mark.parametrize("name", L_QUERIES)
def test_wukong_ext_agrees(scenario, name):
    bench, integrated, handles, _, ext = scenario
    query = parse_query(bench.continuous_query(name))
    result, _ = ext.execute_continuous(query, CLOSE_MS)
    got = {tuple(ext.strings.entity_name(v) for v in row)
           for row in result.rows}
    # Wukong/Ext absorbs everything, including timeless stream data, so
    # it matches the integrated engine exactly (L2 included).
    assert got == integrated_rows(integrated, handles, name), name


def test_group_ii_produces_rows(scenario):
    bench, integrated, handles, _, _ = scenario
    for name in ("L4", "L5"):
        assert integrated_rows(integrated, handles, name), name
