"""Tests for the CityBench generator and query catalogue."""

import pytest

from repro.bench.citybench import (ALL_QUERIES, CityBench, CityBenchConfig,
                                   PAPER_RATES, QUERY_STREAMS, STREAM_ONLY)
from repro.sparql.parser import parse_query


@pytest.fixture(scope="module")
def bench():
    return CityBench(CityBenchConfig.tiny())


class TestStaticData:
    def test_deterministic(self, bench):
        assert bench.static_triples() == \
            CityBench(CityBenchConfig.tiny()).static_triples()

    def test_roads_form_a_chain(self, bench):
        connects = [(t.subject, t.object) for t in bench.static_triples()
                    if t.predicate == "connects"]
        assert len(connects) == bench.config.num_roads - 1

    def test_every_sensor_sits_on_a_road(self, bench):
        triples = bench.static_triples()
        sensors = {t.subject for t in triples
                   if t.predicate == "ty" and t.object == "TrafficSensor"}
        placed = {t.subject for t in triples if t.predicate == "onRoad"}
        assert sensors <= placed

    def test_lots_near_roads(self, bench):
        triples = bench.static_triples()
        lots = {t.subject for t in triples
                if t.predicate == "ty" and t.object == "ParkingLot"}
        near = {t.subject for t in triples if t.predicate == "nearRoad"}
        assert lots == near


class TestStreams:
    def test_deterministic(self, bench):
        assert bench.generate_streams(5_000) == bench.generate_streams(5_000)

    def test_all_eleven_streams(self, bench):
        streams = bench.generate_streams(5_000)
        assert set(streams) == set(PAPER_RATES)
        assert len(PAPER_RATES) == 11

    def test_rates_roughly_match_paper(self, bench):
        streams = bench.generate_streams(10_000)
        for name, rate in PAPER_RATES.items():
            expected = rate * 10
            assert len(streams[name]) == pytest.approx(expected, rel=0.25), \
                name

    def test_timestamps_ordered(self, bench):
        for tuples in bench.generate_streams(5_000).values():
            stamps = [t.timestamp_ms for t in tuples]
            assert stamps == sorted(stamps)


class TestQueries:
    @pytest.mark.parametrize("name", ALL_QUERIES)
    def test_queries_parse_with_declared_streams(self, bench, name):
        query = parse_query(bench.continuous_query(name))
        assert query.is_continuous
        assert set(query.windows) == set(QUERY_STREAMS[name])

    @pytest.mark.parametrize("name", STREAM_ONLY)
    def test_stream_only_queries_have_no_stored_patterns(self, bench, name):
        query = parse_query(bench.continuous_query(name))
        assert query.stored_patterns() == []

    @pytest.mark.parametrize("name",
                             [q for q in ALL_QUERIES
                              if q not in STREAM_ONLY])
    def test_stateful_queries_touch_the_city_graph(self, bench, name):
        query = parse_query(bench.continuous_query(name))
        assert query.stored_patterns()

    def test_default_windows_match_paper(self, bench):
        query = parse_query(bench.continuous_query("C1"))
        for window in query.windows.values():
            assert window.range_ms == 3_000
            assert window.step_ms == 1_000

    def test_variant_rotates_constants(self, bench):
        assert bench.continuous_query("C1", 0) != \
            bench.continuous_query("C1", 1)

    def test_unknown_query_rejected(self, bench):
        with pytest.raises(KeyError):
            bench.continuous_query("C12")


class TestEndToEnd:
    def test_every_query_runs_and_produces_rows_eventually(self, bench):
        from repro.bench.harness import build_wukongs, measure_wukongs

        engine = build_wukongs(bench, num_nodes=1, duration_ms=10_000,
                               batch_interval_ms=1_000)
        queries = {name: bench.continuous_query(name)
                   for name in ALL_QUERIES}
        samples = measure_wukongs(engine, queries, 10_000)
        for name in ALL_QUERIES:
            assert samples[name], f"{name} never executed"
        # At least the dense queries should find matches.
        handle = engine.continuous.queries["C9"]
        assert any(len(rec.result.rows) > 0 for rec in handle.executions)
        handle = engine.continuous.queries["C10"]
        assert any(len(rec.result.rows) > 0 for rec in handle.executions)
