"""Tests for the LSBench generator and query catalogue."""

import pytest

from repro.bench.lsbench import (GROUP_I, GROUP_II, LSBench, LSBenchConfig,
                                 PAPER_RATES, QUERY_STREAMS)
from repro.sparql.parser import parse_query


@pytest.fixture(scope="module")
def bench():
    return LSBench(LSBenchConfig.tiny())


class TestStaticData:
    def test_deterministic(self, bench):
        again = LSBench(LSBenchConfig.tiny())
        assert bench.static_triples() == again.static_triples()

    def test_every_user_has_type_follows_and_posts(self, bench):
        triples = bench.static_triples()
        by_pred = {}
        for t in triples:
            by_pred.setdefault(t.predicate, []).append(t)
        users = {t.subject for t in by_pred["ty"] if t.object == "Person"}
        assert len(users) == bench.config.num_users
        followers = {t.subject for t in by_pred["fo"]}
        assert followers == users
        posters = {t.subject for t in by_pred["po"]}
        assert posters == users

    def test_nobody_follows_themselves(self, bench):
        for t in bench.static_triples():
            if t.predicate == "fo":
                assert t.subject != t.object

    def test_scale_configs_ordered(self):
        tiny = len(LSBench(LSBenchConfig.tiny()).static_triples())
        small = len(LSBench(LSBenchConfig.small()).static_triples())
        assert tiny < small


class TestStreams:
    def test_deterministic(self, bench):
        a = bench.generate_streams(2_000)
        b = bench.generate_streams(2_000)
        assert a == b

    def test_all_five_streams_present(self, bench):
        streams = bench.generate_streams(2_000)
        assert set(streams) == set(PAPER_RATES)

    def test_rates_scale(self, bench):
        slow = bench.generate_streams(2_000, rate_scale=0.01)
        fast = bench.generate_streams(2_000, rate_scale=0.04)
        for name in PAPER_RATES:
            assert len(fast[name]) > len(slow[name])

    def test_relative_rates_match_paper(self, bench):
        streams = bench.generate_streams(4_000)
        # PO-L is the heaviest stream, as in Table 1.
        assert len(streams["PO_L"]) == max(len(v) for v in streams.values())
        ratio = len(streams["PO_L"]) / len(streams["PO"])
        assert ratio == pytest.approx(8.6, rel=0.15)

    def test_timestamps_ordered_per_stream(self, bench):
        for tuples in bench.generate_streams(3_000).values():
            stamps = [t.timestamp_ms for t in tuples]
            assert stamps == sorted(stamps)

    def test_gps_is_timing_only(self, bench):
        schema = {s.name: s for s in bench.schemas()}["GPS"]
        for tup in bench.generate_streams(2_000)["GPS"]:
            assert schema.is_timing(tup.triple.predicate)

    def test_likes_reference_existing_posts(self, bench):
        streams = bench.generate_streams(3_000)
        posts = {t.triple.object for t in streams["PO"]
                 if t.triple.predicate == "po"}
        initial = {f"Post_{i}_{k}"
                   for i in range(bench.config.num_users)
                   for k in range(bench.config.initial_posts_per_user)}
        for like in streams["PO_L"]:
            assert like.triple.object in posts | initial

    def test_rate_overrides(self, bench):
        streams = bench.generate_streams(
            2_000, rates={"PO": 0.0, "PO_L": 0.0, "PH": 0.0, "PH_L": 0.0,
                          "GPS": 1_000.0})
        assert streams["PO"] == []
        assert len(streams["GPS"]) > 0


class TestQueries:
    @pytest.mark.parametrize("name", list(QUERY_STREAMS))
    def test_continuous_queries_parse(self, bench, name):
        query = parse_query(bench.continuous_query(name))
        assert query.is_continuous
        assert set(query.windows) == set(QUERY_STREAMS[name])

    @pytest.mark.parametrize("name", ["S1", "S2", "S3", "S4", "S5", "S6"])
    def test_oneshot_queries_parse(self, bench, name):
        query = parse_query(bench.oneshot_query(name))
        assert not query.is_continuous

    def test_group_partition(self):
        assert set(GROUP_I) | set(GROUP_II) == set(QUERY_STREAMS)
        assert not set(GROUP_I) & set(GROUP_II)

    def test_group_i_starts_from_constant(self, bench):
        from repro.sparql.planner import INDEX_START, plan_query
        for name in GROUP_I:
            plan = plan_query(parse_query(bench.continuous_query(name)))
            assert plan.steps[0].kind != INDEX_START, name

    def test_group_ii_starts_from_index(self, bench):
        from repro.sparql.planner import INDEX_START, plan_query
        for name in GROUP_II:
            plan = plan_query(parse_query(bench.continuous_query(name)))
            assert plan.steps[0].kind == INDEX_START, name

    def test_start_user_varies_query(self, bench):
        assert bench.continuous_query("L1", 0) != \
            bench.continuous_query("L1", 5)

    def test_window_overrides(self, bench):
        query = parse_query(bench.continuous_query(
            "L1", range_ms=5_000, step_ms=500))
        assert query.windows["PO"].range_ms == 5_000
        assert query.windows["PO"].step_ms == 500

    def test_unknown_names_rejected(self, bench):
        with pytest.raises(KeyError):
            bench.continuous_query("L9")
        with pytest.raises(KeyError):
            bench.oneshot_query("S9")
