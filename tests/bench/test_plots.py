"""Tests for the ASCII figure renderer."""

import pytest

from repro.bench.plots import MARKERS, cdf_chart, line_chart


def test_title_and_legend_present():
    chart = line_chart({"L1": [(1, 1.0), (2, 2.0)],
                        "L4": [(1, 3.0), (2, 1.5)]},
                       title="Fig demo", x_label="nodes", y_label="ms")
    assert "Fig demo" in chart
    assert "* L1" in chart
    assert "o L4" in chart
    assert "[x: nodes; y: ms]" in chart


def test_grid_dimensions():
    chart = line_chart({"s": [(0, 0.0), (10, 5.0)]}, width=30, height=8)
    body = [line for line in chart.splitlines() if "|" in line]
    assert len(body) == 8
    for line in body:
        assert len(line.split("|", 1)[1]) == 30


def test_markers_placed_at_extremes():
    chart = line_chart({"s": [(0, 0.0), (10, 10.0)]}, width=20, height=5)
    rows = [line.split("|", 1)[1] for line in chart.splitlines()
            if "|" in line]
    assert rows[0][-1] == "*"    # max x,y -> top right
    assert rows[-1][0] == "*"    # min x,y -> bottom left


def test_axis_ticks():
    chart = line_chart({"s": [(2, 0.5), (8, 4.0)]})
    assert "0.5" in chart
    assert "4" in chart
    assert chart.splitlines()[-2].strip().startswith("2")


def test_log_scale():
    linear = line_chart({"s": [(1, 1.0), (2, 10.0), (3, 100.0)]},
                        height=11)
    logged = line_chart({"s": [(1, 1.0), (2, 10.0), (3, 100.0)]},
                        height=11, log_y=True)
    # On a log axis the middle point sits mid-grid.
    log_rows = [i for i, line in enumerate(logged.splitlines())
                if "|" in line and "*" in line]
    assert len(log_rows) == 3
    spacing = [b - a for a, b in zip(log_rows, log_rows[1:])]
    assert spacing[0] == spacing[1]  # equidistant on log axis


def test_log_scale_rejects_nonpositive():
    with pytest.raises(ValueError):
        line_chart({"s": [(1, 0.0), (2, 1.0)]}, log_y=True)


def test_empty_rejected():
    with pytest.raises(ValueError):
        line_chart({})


def test_many_series_cycle_markers():
    series = {f"s{i}": [(0, float(i)), (1, float(i))] for i in range(10)}
    chart = line_chart(series)
    assert MARKERS[0] in chart
    assert MARKERS[-1] in chart


def test_cdf_clamps_fractions():
    chart = cdf_chart({"L1": [(0.1, 0.0), (0.2, 0.5), (0.3, 1.2)]})
    assert "CDF" in chart
