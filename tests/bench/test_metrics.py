"""Tests for latency statistics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.bench.metrics import cdf_points, geo_mean, mean, median, \
    percentile


class TestPercentile:
    def test_median_of_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_p0_is_min_p100_is_max(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_nearest_rank(self):
        values = list(map(float, range(1, 101)))
        assert percentile(values, 99) == 99.0
        assert percentile(values, 50) == 50.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(min_value=0.001, max_value=1e6),
                    min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_percentile_is_a_member(self, values, p):
        assert percentile(values, p) in values

    @given(st.lists(st.floats(min_value=0.001, max_value=1e6),
                    min_size=1, max_size=50))
    def test_percentiles_monotone(self, values):
        points = [percentile(values, p) for p in (10, 50, 90, 99)]
        assert points == sorted(points)


class TestGeoMean:
    def test_known_value(self):
        assert geo_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geo_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geo_mean([])

    @given(st.lists(st.floats(min_value=0.01, max_value=1e4),
                    min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        gm = geo_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=1e4),
                    min_size=1, max_size=20))
    def test_never_exceeds_arithmetic_mean(self, values):
        assert geo_mean(values) <= mean(values) * (1 + 1e-9)


class TestCdf:
    def test_points_cover_unit_interval(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points[0] == (1.0, pytest.approx(1 / 3))
        assert points[-1] == (3.0, pytest.approx(1.0))

    def test_empty(self):
        assert cdf_points([]) == []

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=40))
    def test_cdf_is_monotone(self, values):
        points = cdf_points(values)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert math.isclose(ys[-1], 1.0)
