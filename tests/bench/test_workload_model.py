"""Tests for the throughput model's mixture arithmetic."""

import pytest

from repro.bench.workload import MixedWorkloadResult


def result_with(latencies):
    return MixedWorkloadResult(
        num_nodes=2, total_workers=32,
        per_class_latencies_ms=latencies)


def test_mixture_mean_is_reciprocal_weighted():
    # Classes at 1ms and 3ms with p_i ~ 1/L_i: mean = 2 / (1/1 + 1/3) = 1.5
    result = result_with({"A": [1.0, 1.0], "B": [3.0, 3.0]})
    assert result.mixture_mean_latency_ms == pytest.approx(1.5)


def test_throughput_is_workers_over_mean():
    result = result_with({"A": [2.0]})
    assert result.throughput_qps == pytest.approx(32 / 0.002)


def test_empty_classes_ignored():
    result = result_with({"A": [1.0], "B": []})
    assert result.mixture_mean_latency_ms == pytest.approx(1.0)


def test_percentiles_weight_fast_classes_heavier():
    # The fast class contributes more executed queries; p50 leans to it.
    result = result_with({"fast": [1.0] * 4, "slow": [9.0] * 4})
    assert result.latency_percentile_ms(50) == 1.0
    assert result.latency_percentile_ms(99) == 9.0


def test_class_cdf_reaches_one():
    result = result_with({"A": [1.0, 2.0, 3.0]})
    cdf = result.class_cdf("A")
    assert cdf[-1] == (3.0, pytest.approx(1.0))
