"""Cross-engine result agreement on CityBench.

Feed the identical city workload to Wukong+S, CSPARQL-engine and Spark
Streaming and require every supported query's rows to match at the same
window close time — the system-level extension of the executor-vs-
relational property tests.
"""

import pytest

from repro.baselines.csparql_engine import CSparqlEngine
from repro.baselines.spark import SparkStreamingEngine
from repro.bench.citybench import ALL_QUERIES, CityBench, CityBenchConfig
from repro.bench.harness import build_wukongs, feed_baseline
from repro.sparql.parser import parse_query

DURATION_MS = 8_000
CLOSE_MS = 8_000


@pytest.fixture(scope="module")
def scenario():
    bench = CityBench(CityBenchConfig.tiny())
    integrated = build_wukongs(bench, num_nodes=2, duration_ms=DURATION_MS,
                               batch_interval_ms=1_000)
    handles = {name: integrated.register_continuous(
        bench.continuous_query(name)) for name in ALL_QUERIES}
    integrated.run_until(DURATION_MS)

    csparql = feed_baseline(CSparqlEngine(), bench, DURATION_MS,
                            batch_interval_ms=1_000)
    spark = feed_baseline(SparkStreamingEngine(), bench, DURATION_MS,
                          batch_interval_ms=1_000)
    return bench, integrated, handles, csparql, spark


def integrated_rows(integrated, handles, name):
    handle = handles[name]
    record = next(rec for rec in handle.executions
                  if rec.close_ms == CLOSE_MS)
    return {tuple(integrated.strings.entity_name(v) for v in row)
            for row in record.result.rows}


def baseline_rows(engine, bench, name):
    rows, _ = engine.execute_continuous(
        parse_query(bench.continuous_query(name)), CLOSE_MS)
    return {tuple(engine.strings.entity_name(v) for v in row)
            for row in rows}


@pytest.mark.parametrize("name", ALL_QUERIES)
def test_csparql_agrees(scenario, name):
    bench, integrated, handles, csparql, _ = scenario
    assert baseline_rows(csparql, bench, name) == \
        integrated_rows(integrated, handles, name), name


@pytest.mark.parametrize("name", ALL_QUERIES)
def test_spark_agrees(scenario, name):
    bench, integrated, handles, _, spark = scenario
    assert baseline_rows(spark, bench, name) == \
        integrated_rows(integrated, handles, name), name


def test_queries_produce_data(scenario):
    bench, integrated, handles, _, _ = scenario
    populated = [name for name in ALL_QUERIES
                 if integrated_rows(integrated, handles, name)]
    # Most of the city queries should find matches in an 8s run.
    assert len(populated) >= 7, populated
