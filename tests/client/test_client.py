"""Tests for the client library, stored procedures and proxies."""

import pytest

from repro.client.library import ClientLibrary
from repro.client.procedures import ProcedureCache
from repro.client.proxy import ProxyPool

from core.test_engine import QC, build_engine


@pytest.fixture
def engine():
    eng = build_engine()
    eng.run_until(4_000)
    return eng


class TestProcedureCache:
    def test_parse_once(self):
        cache = ProcedureCache()
        first = cache.get("SELECT ?x WHERE { Logan po ?x }")
        second = cache.get("SELECT ?x WHERE { Logan po ?x }")
        assert first is second
        assert cache.hits == 1
        assert cache.misses == 1

    def test_constants_collected(self):
        cache = ProcedureCache()
        procedure = cache.get(
            "SELECT ?x WHERE { Logan po ?x . ?x ht sosp17 }")
        assert procedure.constants() == ["Logan", "sosp17"]

    def test_continuous_detection(self):
        cache = ProcedureCache()
        assert cache.get(QC).is_continuous


class TestClientLibrary:
    def test_submit_decodes_strings(self, engine):
        client = ClientLibrary(engine)
        result = client.submit(
            "SELECT ?x WHERE { Logan po ?x . ?x ht sosp17 }")
        assert result.columns == ["?x"]
        assert sorted(row[0] for row in result.rows) == ["T-13", "T-15"]

    def test_client_latency_includes_round_trip(self, engine):
        client = ClientLibrary(engine, include_network=True)
        result = client.submit("SELECT ?x WHERE { Logan po ?x }")
        assert result.client_latency_ms > result.server_latency_ms

    def test_server_only_latency(self, engine):
        client = ClientLibrary(engine, include_network=False)
        result = client.submit("SELECT ?x WHERE { Logan po ?x }")
        assert result.client_latency_ms == pytest.approx(
            result.server_latency_ms)

    def test_string_server_round_trips_batched(self, engine):
        client = ClientLibrary(engine)
        client.submit("SELECT ?x WHERE { Logan po ?x . ?x ht sosp17 }")
        assert client.string_server_roundtrips == 1
        # Same constants again: no new round trip.
        client.submit("SELECT ?x WHERE { Logan po ?x . ?x ht sosp17 }")
        assert client.string_server_roundtrips == 1
        # A new constant costs one more.
        client.submit("SELECT ?x WHERE { Erik po ?x }")
        assert client.string_server_roundtrips == 2

    def test_register_and_poll(self, engine):
        client = ClientLibrary(engine)
        subscription = client.register(QC)
        engine.run_until(8_000)
        results = subscription.poll()
        assert results
        latest = results[-1]
        assert ("Logan", "Erik", "T-15") in latest.rows
        # A second poll returns only new executions.
        assert subscription.poll() == []
        engine.run_until(9_000)
        assert len(subscription.poll()) == 1

    def test_submit_rejects_continuous(self, engine):
        client = ClientLibrary(engine)
        with pytest.raises(ValueError):
            client.submit(QC)
        with pytest.raises(ValueError):
            client.register("SELECT ?x WHERE { Logan po ?x }")

    def test_aggregate_values_pass_through(self, engine):
        client = ClientLibrary(engine)
        result = client.submit(
            "SELECT ?u COUNT(?p) AS ?n WHERE { ?u po ?p } GROUP BY ?u")
        counts = dict(result.rows)
        assert counts["Logan"] >= 2
        assert isinstance(counts["Logan"], int)


class TestProxyPool:
    def test_round_robin_balancing(self, engine):
        pool = ProxyPool(engine, num_proxies=2)
        for _ in range(6):
            pool.submit("SELECT ?x WHERE { Logan po ?x }")
        counts = pool.request_counts()
        assert counts == {0: 3, 1: 3}
        assert pool.total_requests == 6

    def test_proxies_front_different_nodes(self, engine):
        pool = ProxyPool(engine)
        affinities = {proxy.affinity_node for proxy in pool.proxies}
        assert affinities == set(range(engine.cluster.num_nodes))

    def test_registration_through_proxy(self, engine):
        pool = ProxyPool(engine, num_proxies=2)
        subscription = pool.register(QC)
        engine.run_until(8_000)
        assert subscription.poll()

    def test_bad_pool_size(self, engine):
        with pytest.raises(ValueError):
            ProxyPool(engine, num_proxies=0)
