"""Client-library coverage for the newer query surface."""

import pytest

from repro.client.library import ClientLibrary

from core.test_engine import build_engine


@pytest.fixture
def engine():
    eng = build_engine()
    eng.run_until(4_000)
    return eng


def test_ask_through_client(engine):
    client = ClientLibrary(engine)
    result = client.submit("ASK WHERE { Logan fo Erik }")
    assert result.rows == [()]
    result = client.submit("ASK WHERE { Tony fo Erik }")
    assert result.rows == []


def test_optional_decode_maps_unbound_to_none(engine):
    client = ClientLibrary(engine)
    result = client.submit(
        "SELECT ?P ?T WHERE { Logan po ?P . OPTIONAL { ?P ht ?T } }")
    by_post = dict(result.rows)
    assert by_post["T-13"] == "sosp17"
    assert by_post["T-14"] is None


def test_union_through_client(engine):
    client = ClientLibrary(engine)
    result = client.submit(
        "SELECT ?P WHERE { { Logan po ?P } UNION { Logan li ?P } }")
    assert {row[0] for row in result.rows} == \
        {"T-13", "T-14", "T-15", "T-12"}


def test_limit_through_client(engine):
    client = ClientLibrary(engine)
    result = client.submit("SELECT ?U ?P WHERE { ?U po ?P } LIMIT 2")
    assert len(result.rows) == 2


def test_prefixed_query_through_client(engine):
    client = ClientLibrary(engine)
    # Prefixes expand before constant resolution; unknown IRIs just yield
    # empty results rather than failing.
    result = client.submit(
        "PREFIX sn: <http://social/> SELECT ?X WHERE { sn:Ghost po ?X }")
    assert result.rows == []
