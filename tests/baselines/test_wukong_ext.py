"""Tests for the Wukong/Ext baseline."""

from repro.baselines.wukong_ext import WukongExtEngine
from repro.sim.cluster import Cluster
from repro.sparql.parser import parse_query

from baselines.helpers import (EXPECTED_QC_AT_10S, feed, qc_query,
                               stream_batches, to_names)


def build(num_nodes=1):
    return feed(WukongExtEngine(Cluster(num_nodes=num_nodes)))


class TestCorrectness:
    def test_qc_matches_expected(self):
        engine = build()
        result, _ = engine.execute_continuous(qc_query(), 10_000)
        assert to_names(engine.strings, result.rows) == EXPECTED_QC_AT_10S

    def test_window_filtering_by_inline_timestamps(self):
        engine = build()
        # At 20s the like-window [15s, 20s) is empty: no results.
        result, _ = engine.execute_continuous(qc_query(), 20_000)
        assert result.rows == []

    def test_oneshot_sees_absorbed_data(self):
        engine = build()
        result, _ = engine.execute_oneshot(parse_query(
            "SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 }"))
        # Unlike the composite design, Wukong/Ext absorbs stream data.
        assert to_names(engine.strings, result.rows) == [("T-13",), ("T-15",)]


class TestInefficiencies:
    def test_charges_timestamp_filtering(self):
        engine = build()
        _, meter = engine.execute_continuous(qc_query(), 10_000)
        assert meter.breakdown_ms.get("ts-filter", 0) > 0

    def test_memory_grows_with_absorbed_data_and_never_shrinks(self):
        engine = WukongExtEngine(Cluster(1))
        from baselines.helpers import static_triples
        engine.load_static(static_triples())
        base = engine.memory_bytes()
        sizes = [base]
        for batch in stream_batches():
            engine.ingest(batch)
            sizes.append(engine.memory_bytes())
        assert sizes == sorted(sizes)  # monotone: no GC ever
        assert sizes[-1] > base
        assert engine.timestamp_bytes() > 0

    def test_window_extraction_slows_as_data_accumulates(self):
        from repro.streams.stream import StreamBatch
        from repro.rdf.terms import TimedTuple, Triple

        engine = build()
        _, early = engine.execute_continuous(qc_query(), 10_000)

        # Absorb a long history of Erik's likes, then replay an equivalent
        # scenario inside a fresh window.  Without a stream index, the
        # window scan must now filter through the whole accumulated value
        # list, so the same-shaped execution costs strictly more.
        history = [TimedTuple(Triple("Erik", "li", "T-15"), 20_000 + i)
                   for i in range(200)]
        engine.ingest(StreamBatch("Like_Stream", 999, 20_000, 21_000,
                                  history))
        engine.ingest(StreamBatch(
            "Tweet_Stream", 999, 20_000, 31_000,
            [TimedTuple(Triple("Logan", "po", "T-18"), 30_000)]))
        engine.ingest(StreamBatch(
            "Like_Stream", 1000, 21_000, 31_000,
            [TimedTuple(Triple("Erik", "li", "T-18"), 30_500)]))
        result, late = engine.execute_continuous(qc_query(), 32_000)
        assert to_names(engine.strings, result.rows) == \
            [("Logan", "Erik", "T-18")]
        assert late.ms > early.ms
