"""Shared scenario builder for baseline-engine tests.

All engines (Wukong+S and every baseline) are fed the same static graph
and the same stream batches, then asked the paper's QC at the same window
close time; their results must agree — the baselines differ in *cost*, not
in *answers*.
"""

from repro.rdf.parser import parse_timed_tuples, parse_triples
from repro.sparql.parser import parse_query
from repro.streams.stream import StreamSchema, batch_tuples

XLAB = """
Logan ty XMen .
Erik ty XMen .
Logan fo Erik .
Erik fo Logan .
Logan po T-13 .
Logan po T-14 .
Erik po T-12 .
T-13 ht sosp17 .
T-12 ht sosp17 .
Logan li T-12 .
Erik li T-14 .
"""

TWEETS = """
Logan po T-15 @2200
T-15 ga loc31121 @2200
T-15 ht sosp17 @2250
Erik po T-16 @5100
Logan po T-17 @8100
"""

LIKES = """
Erik li T-15 @6100
Tony li T-15 @6200
Bruce li T-15 @6300
Clint li T-15 @9100
Erik li T-17 @9300
"""

QC_TEXT = """
REGISTER QUERY QC AS
SELECT ?X ?Y ?Z
FROM Tweet_Stream [RANGE 10s STEP 1s]
FROM Like_Stream [RANGE 5s STEP 1s]
FROM X-Lab
WHERE {
  GRAPH Tweet_Stream { ?X po ?Z }
  GRAPH X-Lab { ?X fo ?Y }
  GRAPH Like_Stream { ?Y li ?Z }
}
"""

STREAM_ONLY_TEXT = """
REGISTER QUERY QT AS
SELECT ?X ?Z
FROM Tweet_Stream [RANGE 10s STEP 1s]
WHERE { GRAPH Tweet_Stream { ?X po ?Z } }
"""

SCHEMAS = [StreamSchema("Tweet_Stream", frozenset({"ga"})),
           StreamSchema("Like_Stream")]

#: Expected QC rows (as strings) at close time 10s, window contents:
#: tweets within [0s, 10s), likes within [5s, 10s).
EXPECTED_QC_AT_10S = [("Logan", "Erik", "T-15"), ("Logan", "Erik", "T-17")]


def static_triples():
    return parse_triples(XLAB)


def stream_batches():
    """All batches of both streams (1s intervals)."""
    batches = []
    batches += batch_tuples("Tweet_Stream", parse_timed_tuples(TWEETS),
                            0, 1000)
    batches += batch_tuples("Like_Stream", parse_timed_tuples(LIKES),
                            0, 1000)
    return batches


def qc_query():
    return parse_query(QC_TEXT)


def stream_only_query():
    return parse_query(STREAM_ONLY_TEXT)


def feed(engine):
    """Load static data and ingest every stream batch into a baseline."""
    engine.load_static(static_triples())
    for batch in stream_batches():
        engine.ingest(batch)
    return engine


def to_names(strings, rows):
    return sorted(tuple(strings.entity_name(v) for v in row) for row in rows)
