"""Tests for the relational operator substrate."""

from repro.baselines.relational import (WindowBuffer, hash_join, project,
                                        scan_pattern)
from repro.rdf.string_server import StringServer
from repro.rdf.terms import TimedTuple, Triple
from repro.sim.cost import CostModel, LatencyMeter
from repro.sparql.ast import TriplePattern

import pytest


def encode_all(strings, rows):
    return [strings.encode_tuple(TimedTuple(Triple(*r[:3]), r[3]))
            for r in rows]


class TestWindowBuffer:
    def test_window_selects_time_range(self):
        strings = StringServer()
        buffer = WindowBuffer("S")
        buffer.extend(encode_all(strings, [
            ("a", "p", "b", 100), ("c", "p", "d", 250), ("e", "p", "f", 400),
        ]))
        assert len(buffer.window(200, 400)) == 1
        assert len(buffer.window(0, 500)) == 3

    def test_out_of_order_rejected(self):
        strings = StringServer()
        buffer = WindowBuffer("S")
        buffer.extend(encode_all(strings, [("a", "p", "b", 100)]))
        with pytest.raises(ValueError):
            buffer.extend(encode_all(strings, [("c", "p", "d", 50)]))

    def test_evict_before(self):
        strings = StringServer()
        buffer = WindowBuffer("S")
        buffer.extend(encode_all(strings, [
            ("a", "p", "b", 100), ("c", "p", "d", 300)]))
        assert buffer.evict_before(200) == 1
        assert len(buffer) == 1


class TestScan:
    def setup_method(self):
        self.strings = StringServer()
        self.cost = CostModel()
        self.tuples = encode_all(self.strings, [
            ("Logan", "po", "T-15", 10),
            ("Erik", "po", "T-16", 20),
            ("Erik", "li", "T-15", 30),
        ])

    def scan(self, s, p, o, **kwargs):
        return scan_pattern(self.tuples, TriplePattern(s, p, o),
                            self.strings, LatencyMeter(), 100.0, self.cost,
                            **kwargs)

    def test_predicate_filter(self):
        rows = self.scan("?U", "po", "?T")
        assert len(rows) == 2

    def test_constant_subject(self):
        rows = self.scan("Logan", "po", "?T")
        assert rows == [{"?T": self.strings.entity_id("T-15")}]

    def test_constant_object(self):
        rows = self.scan("?U", "li", "T-15")
        assert rows == [{"?U": self.strings.entity_id("Erik")}]

    def test_unknown_terms_yield_empty(self):
        assert self.scan("?U", "nope", "?T") == []
        assert self.scan("Nobody", "po", "?T") == []

    def test_charges_per_tuple(self):
        meter = LatencyMeter()
        scan_pattern(self.tuples, TriplePattern("?U", "po", "?T"),
                     self.strings, meter, 100.0, self.cost)
        assert meter.ns >= 300.0  # 3 tuples x 100ns

    def test_modeled_rows_override(self):
        meter = LatencyMeter()
        scan_pattern(self.tuples, TriplePattern("?U", "po", "?T"),
                     self.strings, meter, 100.0, self.cost,
                     modeled_rows=1000)
        assert meter.ns >= 100_000.0


class TestJoin:
    def setup_method(self):
        self.cost = CostModel()

    def test_joins_on_shared_variable(self):
        left = [{"?X": 1, "?Y": 2}, {"?X": 3, "?Y": 4}]
        right = [{"?Y": 2, "?Z": 9}]
        out = hash_join(left, right, LatencyMeter(), self.cost)
        assert out == [{"?X": 1, "?Y": 2, "?Z": 9}]

    def test_no_shared_variable_is_cross_product(self):
        left = [{"?X": 1}, {"?X": 2}]
        right = [{"?Y": 7}, {"?Y": 8}]
        out = hash_join(left, right, LatencyMeter(), self.cost)
        assert len(out) == 4

    def test_empty_side_empty_result(self):
        assert hash_join([], [{"?Y": 1}], LatencyMeter(), self.cost) == []
        assert hash_join([{"?X": 1}], [], LatencyMeter(), self.cost) == []

    def test_join_charges_build_and_probe(self):
        meter = LatencyMeter()
        hash_join([{"?X": 1}], [{"?X": 1}], meter, self.cost)
        assert meter.ns >= self.cost.join_build_ns + self.cost.join_probe_ns


def test_project_deduplicates():
    rows = [{"?X": 1, "?Y": 2}, {"?X": 1, "?Y": 3}]
    out = project(rows, ["?X"], LatencyMeter(), CostModel())
    assert out == [(1,)]
