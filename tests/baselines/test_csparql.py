"""Tests for the CSPARQL-engine (Esper + Jena) baseline."""

import pytest

from repro.baselines.csparql_engine import CSparqlEngine
from repro.errors import UnsupportedOperationError
from repro.sparql.parser import parse_query

from baselines.helpers import (EXPECTED_QC_AT_10S, feed, qc_query,
                               stream_only_query, to_names)


def build():
    return feed(CSparqlEngine())


class TestCorrectness:
    def test_qc_matches_expected(self):
        engine = build()
        rows, _ = engine.execute_continuous(qc_query(), 10_000)
        assert to_names(engine.strings, rows) == EXPECTED_QC_AT_10S

    def test_stream_only_query(self):
        engine = build()
        rows, _ = engine.execute_continuous(stream_only_query(), 10_000)
        names = to_names(engine.strings, rows)
        assert ("Logan", "T-15") in names
        assert ("Logan", "T-17") in names

    def test_oneshot_on_static_store(self):
        engine = build()
        rows, _ = engine.execute_oneshot(parse_query(
            "SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 }"))
        assert to_names(engine.strings, rows) == [("T-13",)]

    def test_oneshot_rejects_windows(self):
        engine = build()
        with pytest.raises(UnsupportedOperationError):
            engine.execute_oneshot(qc_query())


class TestCosts:
    def test_every_execution_pays_base_overhead(self):
        engine = build()
        _, meter = engine.execute_continuous(stream_only_query(), 10_000)
        assert meter.ns >= engine.cost.csparql_base_ns

    def test_orders_of_magnitude_slower_than_composite(self):
        from repro.baselines.composite import CompositeEngine
        from repro.sim.cluster import Cluster

        csparql = build()
        composite = feed(CompositeEngine(Cluster(1)))
        _, slow = csparql.execute_continuous(qc_query(), 10_000)
        _, fast, _ = composite.execute_continuous(qc_query(), 10_000)
        assert slow.ms > fast.ms

    def test_jena_charges_probes(self):
        engine = build()
        _, meter = engine.execute_continuous(qc_query(), 10_000)
        assert meter.breakdown_ms.get("jena", 0) > 0
        assert meter.breakdown_ms.get("esper", 0) > 0
