"""Tests for the Storm/Heron + Wukong composite engine."""

import pytest

from repro.baselines.composite import CompositeEngine
from repro.sim.cluster import Cluster
from repro.sparql.parser import parse_query

from baselines.helpers import (EXPECTED_QC_AT_10S, feed, qc_query,
                               stream_only_query, to_names)


def build(framework="storm", plan="interleaved", num_nodes=1):
    engine = CompositeEngine(Cluster(num_nodes=num_nodes),
                             framework=framework, plan=plan)
    return feed(engine)


class TestCorrectness:
    def test_qc_matches_expected(self):
        engine = build()
        rows, _, _ = engine.execute_continuous(qc_query(), 10_000)
        assert to_names(engine.strings, rows) == EXPECTED_QC_AT_10S

    def test_stream_first_plan_same_results(self):
        a = build(plan="interleaved")
        b = build(plan="stream_first")
        rows_a, _, _ = a.execute_continuous(qc_query(), 10_000)
        rows_b, _, _ = b.execute_continuous(qc_query(), 10_000)
        assert to_names(a.strings, rows_a) == to_names(b.strings, rows_b)

    def test_stream_only_query_never_touches_wukong(self):
        engine = build()
        _, _, breakdown = engine.execute_continuous(stream_only_query(),
                                                    10_000)
        assert breakdown.wukong_ms == 0.0
        assert breakdown.cross_ms == 0.0

    def test_oneshot_runs_on_static_store_only(self):
        engine = build()
        # T-15 arrived via the stream; the composite one-shot path cannot
        # see it (the design is not fully stateful, §2.3).
        rows, _ = engine.execute_oneshot(parse_query(
            "SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 }"))
        assert to_names(engine.strings, rows) == [("T-13",)]


class TestCrossSystemCost:
    def test_qc_pays_cross_system_cost(self):
        engine = build()
        _, _, breakdown = engine.execute_continuous(qc_query(), 10_000)
        assert breakdown.cross_ms > 0
        assert breakdown.wukong_ms > 0
        assert breakdown.processor_ms > 0
        assert 0 < breakdown.cross_fraction < 1

    def test_interleaved_crosses_twice(self):
        engine = build(plan="interleaved")
        _, _, breakdown = engine.execute_continuous(qc_query(), 10_000)
        wukong_segments = [s for s in breakdown.segments if s[0] == "wukong"]
        assert len(wukong_segments) == 1  # one stored segment, crossed once

    def test_stream_first_ships_larger_intermediate(self):
        inter = build(plan="interleaved")
        first = build(plan="stream_first")
        _, _, bd_inter = inter.execute_continuous(qc_query(), 10_000)
        _, _, bd_first = first.execute_continuous(qc_query(), 10_000)
        # Joining the two stream patterns early produces a bigger
        # intermediate than pruning through the stored pattern (Fig. 4b).
        assert bd_first.processor_ms >= bd_inter.processor_ms


class TestFrameworks:
    def test_heron_is_faster_than_storm(self):
        storm = build(framework="storm")
        heron = build(framework="heron")
        _, storm_meter, _ = storm.execute_continuous(qc_query(), 10_000)
        _, heron_meter, _ = heron.execute_continuous(qc_query(), 10_000)
        assert heron_meter.ms < storm_meter.ms

    def test_heron_same_results(self):
        storm = build(framework="storm")
        heron = build(framework="heron")
        rows_s, _, _ = storm.execute_continuous(qc_query(), 10_000)
        rows_h, _, _ = heron.execute_continuous(qc_query(), 10_000)
        assert to_names(storm.strings, rows_s) == \
            to_names(heron.strings, rows_h)

    def test_unknown_framework_rejected(self):
        with pytest.raises(ValueError):
            CompositeEngine(Cluster(1), framework="flink")

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError):
            CompositeEngine(Cluster(1), plan="zigzag")


class TestAgainstWukongS:
    def test_results_match_integrated_engine(self):
        from repro.core.engine import EngineConfig, WukongSEngine
        from repro.streams.source import StreamSource
        from baselines.helpers import SCHEMAS, static_triples, \
            stream_batches, QC_TEXT

        integrated = WukongSEngine(
            schemas=SCHEMAS,
            config=EngineConfig(num_nodes=2, batch_interval_ms=1000))
        integrated.load_static(static_triples())
        by_stream = {}
        for batch in stream_batches():
            by_stream.setdefault(batch.stream, []).append(batch)
        for stream, batches in by_stream.items():
            source = StreamSource(integrated.schemas[stream])
            for batch in batches:
                source.queue(batch)
            integrated.attach_source(source)
        registered = integrated.register_continuous(QC_TEXT)
        integrated.run_until(10_000)
        record = integrated.continuous.execute_once(registered, 10_000)
        integrated_rows = to_names(integrated.strings, record.result.rows)

        composite = build()
        rows, _, _ = composite.execute_continuous(qc_query(), 10_000)
        assert to_names(composite.strings, rows) == integrated_rows

    def test_composite_is_slower_than_integrated(self):
        # The headline claim: the integrated design beats the composite
        # one on the same query and data.
        from repro.core.engine import EngineConfig, WukongSEngine
        from repro.streams.source import StreamSource
        from baselines.helpers import SCHEMAS, static_triples, \
            stream_batches, QC_TEXT

        integrated = WukongSEngine(
            schemas=SCHEMAS,
            config=EngineConfig(num_nodes=1, batch_interval_ms=1000))
        integrated.load_static(static_triples())
        by_stream = {}
        for batch in stream_batches():
            by_stream.setdefault(batch.stream, []).append(batch)
        for stream, batches in by_stream.items():
            source = StreamSource(integrated.schemas[stream])
            for batch in batches:
                source.queue(batch)
            integrated.attach_source(source)
        registered = integrated.register_continuous(QC_TEXT)
        integrated.run_until(10_000)
        record = integrated.continuous.execute_once(registered, 10_000)

        composite = build()
        _, meter, _ = composite.execute_continuous(qc_query(), 10_000)
        assert meter.ms > record.latency_ms
