"""Tests for the Spark-Streaming and Structured-Streaming baselines."""

import pytest

from repro.baselines.spark import SparkStreamingEngine
from repro.baselines.structured import StructuredStreamingEngine
from repro.errors import UnsupportedOperationError
from repro.sparql.parser import parse_query

from baselines.helpers import (EXPECTED_QC_AT_10S, feed, qc_query,
                               stream_only_query, to_names)


class TestSparkStreaming:
    def test_qc_matches_expected(self):
        engine = feed(SparkStreamingEngine())
        rows, _ = engine.execute_continuous(qc_query(), 10_000)
        assert to_names(engine.strings, rows) == EXPECTED_QC_AT_10S

    def test_charges_full_table_scan_for_stored_pattern(self):
        engine = feed(SparkStreamingEngine())
        _, meter = engine.execute_continuous(qc_query(), 10_000)
        # Stored pattern scan is charged at the whole DataFrame size.
        scan_ms = meter.breakdown_ms["scan"]
        assert scan_ms * 1e6 >= engine.num_stored * engine.cost.spark_row_ns

    def test_charges_per_stage_scheduling(self):
        engine = feed(SparkStreamingEngine())
        _, meter = engine.execute_continuous(qc_query(), 10_000)
        assert meter.breakdown_ms["scheduling"] * 1e6 >= \
            3 * engine.cost.spark_task_ns

    def test_latency_is_hundreds_of_ms_scale(self):
        engine = feed(SparkStreamingEngine())
        _, meter = engine.execute_continuous(qc_query(), 10_000)
        assert meter.ms > 100.0

    def test_oneshot_static(self):
        engine = feed(SparkStreamingEngine())
        rows, _ = engine.execute_oneshot(parse_query(
            "SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 }"))
        assert to_names(engine.strings, rows) == [("T-13",)]


class TestStructuredStreaming:
    def test_single_stream_query_works(self):
        engine = feed(StructuredStreamingEngine())
        rows, _ = engine.execute_continuous(stream_only_query(), 10_000)
        names = to_names(engine.strings, rows)
        assert ("Logan", "T-15") in names

    def test_stream_stream_join_unsupported(self):
        engine = feed(StructuredStreamingEngine())
        with pytest.raises(UnsupportedOperationError):
            engine.execute_continuous(qc_query(), 10_000)

    def test_scans_unbounded_table(self):
        engine = feed(StructuredStreamingEngine())
        assert engine.unbounded_rows > 0
        _, meter = engine.execute_continuous(stream_only_query(), 10_000)
        assert meter.breakdown_ms["scan"] * 1e6 >= \
            engine.unbounded_rows * engine.cost.structured_row_ns

    def test_slower_than_spark_streaming(self):
        structured = feed(StructuredStreamingEngine())
        spark = feed(SparkStreamingEngine())
        _, slow = structured.execute_continuous(stream_only_query(), 10_000)
        _, fast = spark.execute_continuous(stream_only_query(), 10_000)
        assert slow.ms > fast.ms

    def test_unbounded_table_grows_without_eviction(self):
        engine = feed(StructuredStreamingEngine())
        before = engine.unbounded_rows
        from baselines.helpers import stream_batches
        # Re-ingesting more data only ever grows the table.
        for batch in stream_batches():
            if batch.tuples:
                from repro.streams.stream import StreamBatch
                shifted = StreamBatch(
                    batch.stream, batch.batch_no + 100,
                    batch.start_ms + 100_000, batch.end_ms + 100_000,
                    [type(t)(t.triple, t.timestamp_ms + 100_000)
                     for t in batch.tuples])
                engine.ingest(shifted)
        assert engine.unbounded_rows > before
