"""Run the package's docstring examples as tests.

Public-API docstrings carry runnable examples; this keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    failures, _ = doctest.testmod(module, verbose=False)
    assert failures == 0, f"doctest failures in {module_name}"
