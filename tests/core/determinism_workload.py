"""A fixed, seeded workload whose simulated latencies are golden-recorded.

Wall-clock optimizations (compiled binding rows, skip-indexed stream
lookups, aggregated cost accounting) must never change *simulated*
nanoseconds — that invariant is what keeps every calibrated figure valid.
This module drives a deterministic scenario through every hot path of the
engine and captures the exact simulated latency and per-category breakdown
of each query execution and injected batch.  The recorded values live in
``golden_determinism.json``; ``test_determinism.py`` replays the workload
and asserts exact float equality against them.

Coverage: constant-start and index-start continuous queries, FILTER
pruning, aggregation, UNION and OPTIONAL groups, timing predicates (the
transient store), one-shot queries under contention, time-scoped one-shot
queries, injection/indexing accounting, GC — on both the RDMA and the TCP
fabric (in-place, fork-join and migrating execution modes).

Regenerate the golden file only when the *cost model itself* changes (a
calibration change, never an optimization):

    PYTHONPATH=src:tests python -m core.determinism_workload --write
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.core.engine import EngineConfig, WukongSEngine
from repro.rdf.parser import parse_timed_tuples, parse_triples
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema

GOLDEN_PATH = os.path.join(os.path.dirname(__file__),
                           "golden_determinism.json")

#: Ticks the simulation runs (at a 100 ms batch interval).
TICKS = 60

NUM_USERS = 12


def _static_triples() -> str:
    lines = []
    for i in range(NUM_USERS):
        lines.append(f"u{i} ty {'XMen' if i % 3 else 'Human'} .")
        lines.append(f"u{i} fo u{(i + 1) % NUM_USERS} .")
        lines.append(f"u{i} fo u{(i + 5) % NUM_USERS} .")
        lines.append(f"u{i} livesIn city{i % 4} .")
    return "\n".join(lines)


def _tweet_tuples() -> str:
    lines = []
    for t in range(1, TICKS + 1):
        at = 100 * (t - 1) + 10
        user = t % NUM_USERS
        lines.append(f"u{user} po p{t} @{at}")
        lines.append(f"p{t} ht tag{t % 3} @{at + 5}")
        lines.append(f"p{t} score {t % 7} @{at + 6}")
        # ``ga`` is a timing predicate: these go to the transient store.
        lines.append(f"p{t} ga loc{t % 4} @{at + 20}")
    return "\n".join(lines)


def _like_tuples() -> str:
    lines = []
    for t in range(3, TICKS + 1):
        at = 100 * (t - 1) + 40
        lines.append(f"u{(t + 3) % NUM_USERS} li p{t - 2} @{at}")
        if t % 4 == 0:
            lines.append(f"u{(t + 7) % NUM_USERS} li p{t - 1} @{at + 9}")
    return "\n".join(lines)


CONTINUOUS_QUERIES = {
    # Constant-free join across two windows and stored data (QC shape).
    "QJ": """
        REGISTER QUERY QJ AS
        SELECT ?X ?Y ?Z
        FROM Tweet_Stream [RANGE 2s STEP 500ms]
        FROM Like_Stream [RANGE 1s STEP 500ms]
        FROM Static
        WHERE {
          GRAPH Tweet_Stream { ?X po ?Z }
          GRAPH Static { ?X fo ?Y }
          GRAPH Like_Stream { ?Y li ?Z }
        }
    """,
    # FILTER pruning mid-exploration.
    "QF": """
        REGISTER QUERY QF AS
        SELECT ?P ?S
        FROM Tweet_Stream [RANGE 1s STEP 300ms]
        WHERE { GRAPH Tweet_Stream { ?P score ?S . FILTER (?S >= 3) } }
    """,
    # Aggregation over an index-start window pattern.
    "QA": """
        REGISTER QUERY QA AS
        SELECT ?H COUNT(?P) AS ?N
        FROM Tweet_Stream [RANGE 3s STEP 500ms]
        WHERE { GRAPH Tweet_Stream { ?P ht ?H } }
        GROUP BY ?H
    """,
    # Timing predicate: served by the transient store.
    "QG": """
        REGISTER QUERY QG AS
        SELECT ?P ?L
        FROM Tweet_Stream [RANGE 1s STEP 400ms]
        WHERE { GRAPH Tweet_Stream { ?P ga ?L } }
    """,
    # UNION over stored alternatives joined with a window.
    "QU": """
        REGISTER QUERY QU AS
        SELECT ?X ?Z
        FROM Tweet_Stream [RANGE 1s STEP 500ms]
        FROM Static
        WHERE {
          GRAPH Tweet_Stream { ?X po ?Z }
          { GRAPH Static { ?X ty XMen } } UNION
          { GRAPH Static { ?X ty Human } }
        }
    """,
    # OPTIONAL group leaving some rows unbound.
    "QO": """
        REGISTER QUERY QO AS
        SELECT ?X ?Z ?W
        FROM Like_Stream [RANGE 1s STEP 500ms]
        FROM Static
        WHERE {
          GRAPH Like_Stream { ?X li ?Z }
          OPTIONAL { GRAPH Static { ?X livesIn ?W } }
        }
    """,
}

ONESHOT_QUERIES = {
    # Constant start over evolving stored data.
    "O1": "SELECT ?X WHERE { u1 fo ?X }",
    # Index start over streamed timeless data in the persistent store.
    "O2": "SELECT ?U ?P WHERE { ?U po ?P . ?P ht tag1 }",
}

TIME_SCOPED_QUERY = """
    SELECT ?U ?P
    FROM Tweet_Stream [RANGE 1s STEP 1s]
    WHERE { GRAPH Tweet_Stream { ?U po ?P } }
"""


def _build_engine(use_rdma: bool, tracing: bool = False) -> WukongSEngine:
    config = EngineConfig(num_nodes=2, batch_interval_ms=100,
                          use_rdma=use_rdma, gc_every_ticks=10,
                          gc_retention_ms=4_000, tracing=tracing)
    engine = WukongSEngine(
        schemas=[StreamSchema("Tweet_Stream", frozenset({"ga"})),
                 StreamSchema("Like_Stream")],
        config=config)
    engine.load_static(parse_triples(_static_triples()))
    tweets = StreamSource(engine.schemas["Tweet_Stream"])
    tweets.queue_tuples(parse_timed_tuples(_tweet_tuples()), 0, 100)
    likes = StreamSource(engine.schemas["Like_Stream"])
    likes.queue_tuples(parse_timed_tuples(_like_tuples()), 0, 100)
    engine.attach_source(tweets)
    engine.attach_source(likes)
    return engine


def _meter_facts(meter) -> List:
    """The exact simulated facts of one meter: [ns, breakdown_ms]."""
    return [meter.ns, dict(sorted(meter.breakdown_ms.items()))]


def _run_variant(use_rdma: bool, tracing: bool = False) -> Dict:
    engine = _build_engine(use_rdma, tracing=tracing)
    handles = {name: engine.register_continuous(text)
               for name, text in CONTINUOUS_QUERIES.items()}
    oneshots: List = []
    for tick in range(1, TICKS + 1):
        engine.step()
        if tick % 5 == 0 and tick >= 20:
            for label, text in ONESHOT_QUERIES.items():
                record = engine.oneshot(text)
                oneshots.append([engine.clock.now_ms, label,
                                 len(record.result.rows)]
                                + _meter_facts(record.meter))
    time_scoped = []
    for start_ms, end_ms in ((4_500, 5_500), (5_000, 6_000)):
        record = engine.oneshot_time_scoped(TIME_SCOPED_QUERY,
                                            start_ms, end_ms)
        time_scoped.append([start_ms, end_ms, len(record.result.rows)]
                           + _meter_facts(record.meter))
    continuous = {
        name: [[rec.close_ms, len(rec.result.rows)] + _meter_facts(rec.meter)
               for rec in handle.executions]
        for name, handle in handles.items()
    }
    injection = [[rec.stream, rec.batch_no, rec.num_tuples]
                 + _meter_facts(rec.meter)
                 for rec in engine.injection_records]
    return {"continuous": continuous, "oneshot": oneshots,
            "time_scoped": time_scoped, "injection": injection}


def run_workload(tracing: bool = False) -> Dict:
    """Run the full deterministic scenario; returns all simulated facts.

    ``tracing`` replays the same workload with the observability tracer
    attached — the facts must be bit-identical either way (the tracer only
    reads meters; see ``tests/obs/test_trace_neutrality.py``).
    """
    return {"rdma": _run_variant(use_rdma=True, tracing=tracing),
            "tcp": _run_variant(use_rdma=False, tracing=tracing)}


def main() -> None:
    import sys
    facts = run_workload()
    if "--write" in sys.argv:
        with open(GOLDEN_PATH, "w") as handle:
            json.dump(facts, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {GOLDEN_PATH}")
    else:
        executions = sum(len(execs)
                         for variant in facts.values()
                         for execs in variant["continuous"].values())
        print(f"continuous executions: {executions}")


if __name__ == "__main__":
    main()
