"""One-shot fast path: ordering is answer-preserving, caches behave.

Three guarantees of the selectivity-ordered, cached, batched one-shot
pipeline:

* **Ordering never changes the answer** — seeded property test: for
  LSBench and CityBench one-shot queries, the statistics-ordered plan,
  the plain textual-order plan and random seeded pattern orders all
  produce the same solution set.
* **Ordering is deterministic** — two identically built engines pick
  identical plan orders (statistics are pure functions of store state).
* **The caches are transparent** — the compiled-plan and query-parse
  caches return reused objects without changing results, stay bounded,
  and the columnar batch path charges exactly what the row path charges.
"""

import random

import pytest

from repro.bench.citybench import CityBench, CityBenchConfig
from repro.bench.harness import build_wukongs
from repro.bench.lsbench import LSBench, LSBenchConfig
from repro.core.oneshot import PLAN_CACHE_CAPACITY
from repro.sim.cost import LatencyMeter
from repro.sparql.parser import parse_query
from repro.sparql.planner import plan_order, plan_query
from repro.store.distributed import PersistentAccess

DURATION_MS = 1_000
S_QUERIES = ["S1", "S2", "S3", "S4", "S5", "S6"]

#: Ad-hoc one-shot queries over CityBench's static graph (the catalogue
#: itself is all-continuous).
CITY_ONESHOTS = [
    "SELECT ?S ?R WHERE { ?S onRoad ?R }",
    "SELECT ?L ?R ?A WHERE { ?L nearRoad ?R . ?R inArea ?A }",
    "SELECT ?X ?Y ?A WHERE { ?X connects ?Y . ?Y inArea ?A }",
    "SELECT ?S ?A WHERE { ?S ty PollutionSensor . ?S inArea ?A }",
    "SELECT ?R WHERE { ?R ty Road . ?R inArea Area0 }",
]


@pytest.fixture(scope="module")
def ls_engine():
    bench = LSBench(LSBenchConfig.tiny())
    engine = build_wukongs(bench, num_nodes=1, duration_ms=DURATION_MS)
    engine.run_until(DURATION_MS)
    return bench, engine


@pytest.fixture(scope="module")
def city_engine():
    bench = CityBench(CityBenchConfig.tiny())
    engine = build_wukongs(bench, num_nodes=1, duration_ms=DURATION_MS)
    engine.run_until(DURATION_MS)
    return bench, engine


def rows_for_plan(engine, plan):
    """Execute a prepared plan at the stable snapshot, bypassing caches."""
    access = PersistentAccess(engine.store, home_node=0,
                              max_sn=engine.coordinator.stable_sn)
    result = engine.oneshot_engine.explorer.execute(
        plan, lambda node: (lambda pattern: access), LatencyMeter(),
        home_node=0)
    return result


def assert_all_orders_agree(engine, text, rng):
    parsed = parse_query(text)
    ordered = engine.oneshot(text)
    unordered = rows_for_plan(engine, plan_query(parse_query(text)))
    assert ordered.result.variables == unordered.variables
    assert set(ordered.result.rows) == set(unordered.rows), text
    for _ in range(3):
        order = list(range(len(parsed.patterns)))
        rng.shuffle(order)
        shuffled = rows_for_plan(
            engine, plan_query(parse_query(text), fixed_order=order))
        assert set(shuffled.rows) == set(unordered.rows), (text, order)


@pytest.mark.parametrize("name", S_QUERIES)
def test_lsbench_ordering_preserves_answers(ls_engine, name):
    bench, engine = ls_engine
    rng = random.Random(f"oneshot-order-{name}")
    assert_all_orders_agree(engine, bench.oneshot_query(name), rng)


@pytest.mark.parametrize("text", CITY_ONESHOTS)
def test_citybench_ordering_preserves_answers(city_engine, text):
    _, engine = city_engine
    rng = random.Random(f"oneshot-order-{text}")
    assert_all_orders_agree(engine, text, rng)


def test_lsbench_queries_return_rows(ls_engine):
    bench, engine = ls_engine
    for name in ("S1", "S4", "S6"):
        assert engine.oneshot(bench.oneshot_query(name)).result.rows, name


def test_stats_ordering_is_deterministic(ls_engine):
    bench, engine = ls_engine
    twin = build_wukongs(LSBench(LSBenchConfig.tiny()), num_nodes=1,
                         duration_ms=DURATION_MS)
    twin.run_until(DURATION_MS)
    for name in S_QUERIES:
        parsed = parse_query(bench.oneshot_query(name))
        order = plan_order(parsed.patterns,
                           stats=engine.oneshot_engine._statistics())
        again = plan_order(parsed.patterns,
                           stats=engine.oneshot_engine._statistics())
        twin_order = plan_order(parsed.patterns,
                                stats=twin.oneshot_engine._statistics())
        assert order == again == twin_order, name
        assert sorted(order) == list(range(len(parsed.patterns)))


def test_plan_cache_reuses_compiled_plans(ls_engine):
    bench, engine = ls_engine
    parsed = parse_query(bench.oneshot_query("S6"))
    first = engine.oneshot_engine.plan(parsed)
    second = engine.oneshot_engine.plan(parsed)
    assert first is second
    # An equivalent but separately parsed query hits the same entry.
    assert engine.oneshot_engine.plan(
        parse_query(bench.oneshot_query("S6"))) is first


def test_plan_cache_stays_bounded(ls_engine):
    bench, engine = ls_engine
    for i in range(PLAN_CACHE_CAPACITY + 20):
        engine.oneshot_engine.plan(
            parse_query(f"SELECT ?P WHERE {{ ghost{i} po ?P }}"))
    assert len(engine.oneshot_engine._plan_cache) <= PLAN_CACHE_CAPACITY


def test_parse_cache_reuses_parsed_queries(ls_engine):
    bench, engine = ls_engine
    text = bench.oneshot_query("S3")
    engine.oneshot(text)
    cached = engine._oneshot_parse_cache.get(text)
    assert cached is not None
    engine.oneshot(text)
    assert engine._oneshot_parse_cache.get(text) is cached


def test_batch_path_charges_match_row_path(ls_engine):
    """The columnar kernels must be charge-identical to the row kernels."""
    bench, engine = ls_engine
    explorer = engine.oneshot_engine.explorer
    access = PersistentAccess(engine.store, home_node=0,
                              max_sn=engine.coordinator.stable_sn)

    def factory(node):
        return lambda pattern: access

    for name in S_QUERIES:
        plan = engine.oneshot_engine.plan(
            parse_query(bench.oneshot_query(name)))
        compiled = explorer._compile(plan)
        batch_meter = LatencyMeter()
        batch_result = explorer.execute(plan, factory, batch_meter,
                                        home_node=0)
        row_meter = LatencyMeter()
        rows = explorer._run_steps(compiled, factory(0), row_meter)
        row_result = explorer._project(plan, compiled, rows, row_meter)
        assert batch_result.rows == row_result.rows, name
        assert batch_meter.ns == row_meter.ns, name
        assert batch_meter.breakdown_ms == row_meter.breakdown_ms, name
