"""Tests for the coordinator: stable VTS, SN advancement, compaction."""

import pytest

from repro.core.coordinator import Coordinator
from repro.errors import ConsistencyError
from repro.rdf.parser import parse_triples
from repro.rdf.string_server import StringServer
from repro.sim.cluster import Cluster
from repro.store.distributed import DistributedStore


def make(num_nodes=2, streams=("S0", "S1"), **kwargs):
    return Coordinator(num_nodes, list(streams), **kwargs)


def insert_batch(coord, stream, batch_no, nodes):
    for node_id in nodes:
        coord.on_batch_inserted(node_id, stream, batch_no)


def test_plan_announced_ahead():
    coord = make()
    assert coord.plan.latest_sn == 1
    assert coord.sn_for_batch("S0", 1) is not None


def test_stable_vts_tracks_slowest_node():
    coord = make()
    coord.on_batch_inserted(0, "S0", 1)
    assert coord.stable_vts().get("S0") == 0
    coord.on_batch_inserted(1, "S0", 1)
    assert coord.stable_vts().get("S0") == 1


def test_is_ready():
    coord = make()
    insert_batch(coord, "S0", 1, [0, 1])
    assert coord.is_ready({"S0": 1})
    assert not coord.is_ready({"S0": 2})
    assert not coord.is_ready({"S1": 1})


def test_sn_advances_when_all_nodes_reach_mapping():
    coord = make(plan_width=1)
    assert coord.stable_sn == 0
    insert_batch(coord, "S0", 1, [0, 1])
    insert_batch(coord, "S1", 1, [0, 1])
    assert coord.advance() == 1
    # A new mapping was published so injection can continue.
    assert coord.plan.latest_sn == 2
    assert coord.sn_for_batch("S0", 2) == 2


def test_sn_stalls_on_lagging_node():
    coord = make(plan_width=1)
    insert_batch(coord, "S0", 1, [0, 1])
    coord.on_batch_inserted(0, "S1", 1)  # node 1 lags on S1
    assert coord.advance() == 0


def test_sn_stalls_on_lagging_stream():
    coord = make(plan_width=1)
    insert_batch(coord, "S0", 1, [0, 1])  # S1 has no data yet
    assert coord.advance() == 0


def test_batch_beyond_plan_stalls():
    coord = make(plan_width=1)
    assert coord.sn_for_batch("S0", 2) is None


def test_wider_plans_admit_more_batches():
    coord = make(plan_width=4)
    assert coord.sn_for_batch("S0", 4) == 1
    assert coord.sn_for_batch("S0", 5) is None


def test_compaction_follows_stable_sn():
    cluster = Cluster(num_nodes=1)
    strings = StringServer()
    store = DistributedStore(cluster, strings)
    store.load(parse_triples("a p b ."))
    coord = make(num_nodes=1, streams=("S",), plan_width=1)

    enc = strings.encode_triple(parse_triples("a p c .")[0])
    for batch in range(1, 5):
        sn = coord.sn_for_batch("S", batch)
        assert sn is not None
        store.insert_encoded(strings.encode_triple(
            parse_triples(f"a p x{batch} .")[0]), sn=sn)
        coord.on_batch_inserted(0, "S", batch)
        coord.advance(store)
    # stable_sn is 4; snapshots <= 3 should be compacted into the base.
    assert coord.stable_sn == 4
    assert coord.compacted_through == 3


def test_scalarization_disabled_never_compacts():
    cluster = Cluster(num_nodes=1)
    strings = StringServer()
    store = DistributedStore(cluster, strings)
    coord = make(num_nodes=1, streams=("S",), plan_width=1,
                 scalarization=False)
    for batch in range(1, 4):
        coord.on_batch_inserted(0, "S", batch)
        coord.advance(store)
    assert coord.compacted_through == 0


def test_dynamic_stream_addition():
    coord = make(plan_width=1)
    coord.add_stream("S2")
    assert "S2" in coord.streams
    # Existing mapping covers batch 0 of S2; the next mapping includes it.
    insert_batch(coord, "S0", 1, [0, 1])
    insert_batch(coord, "S1", 1, [0, 1])
    coord.advance()
    assert coord.sn_for_batch("S2", 1) == 2


def test_invalid_configs_rejected():
    with pytest.raises(ConsistencyError):
        make(plan_width=0)
    with pytest.raises(ConsistencyError):
        make(keep_snapshots=1)
