"""End-to-end consistency properties of the Wukong+S engine.

Two classes of invariant from §4.3:

* **window correctness** — every continuous execution returns exactly the
  joins of the stored data with the tuples of its (batch-aligned) windows,
  validated against a brute-force reference evaluator on random streams;
* **prefix integrity / snapshot monotonicity** — one-shot queries observe
  an append-only history: re-reading at later stable snapshots never loses
  rows, and the batches admitted by snapshot N are a prefix of those
  admitted by N+1.
"""

from hypothesis import given, settings, strategies as st

from repro.core.engine import EngineConfig, WukongSEngine
from repro.rdf.parser import parse_triples
from repro.rdf.terms import TimedTuple, Triple
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema

USERS = ["u0", "u1", "u2"]
STATIC = "u0 fo u1 .\nu1 fo u2 .\nu2 fo u0 ."

QC_TEMPLATE = """
REGISTER QUERY QC AS
SELECT ?X ?Y ?Z
FROM Posts [RANGE {range_ms}ms STEP 1000ms]
FROM Likes [RANGE {range_ms}ms STEP 1000ms]
FROM X-Lab
WHERE {{
    GRAPH Posts {{ ?X po ?Z }}
    GRAPH X-Lab {{ ?X fo ?Y }}
    GRAPH Likes {{ ?Y li ?Z }}
}}
"""

FOLLOWS = {("u0", "u1"), ("u1", "u2"), ("u2", "u0")}


def event_strategy():
    return st.tuples(
        st.sampled_from(USERS),          # actor
        st.integers(0, 5),               # post id
        st.integers(0, 7),               # batch index (1s batches)
        st.booleans(),                   # is_like (else post)
    )


def build_streams(events):
    posts, likes = [], []
    for actor, post_id, batch, is_like in sorted(
            events, key=lambda e: e[2]):
        ts = batch * 1000 + 500
        post = f"t{post_id}"
        if is_like:
            likes.append(TimedTuple(Triple(actor, "li", post), ts))
        else:
            posts.append(TimedTuple(Triple(actor, "po", post), ts))
    return posts, likes


def reference_answer(posts, likes, close_ms, range_ms):
    """Brute-force QC evaluation over the raw tuples."""
    start = close_ms - range_ms
    window_posts = [(t.triple.subject, t.triple.object) for t in posts
                    if start <= t.timestamp_ms < close_ms]
    window_likes = [(t.triple.subject, t.triple.object) for t in likes
                    if start <= t.timestamp_ms < close_ms]
    out = set()
    for x, z in window_posts:
        for (fx, fy) in FOLLOWS:
            if fx != x:
                continue
            if (fy, z) in window_likes:
                out.add((x, fy, z))
    return out


@settings(max_examples=25, deadline=None)
@given(events=st.lists(event_strategy(), max_size=24),
       range_s=st.sampled_from([1, 2, 4]),
       num_nodes=st.sampled_from([1, 3]))
def test_continuous_results_match_reference(events, range_s, num_nodes):
    posts, likes = build_streams(events)
    engine = WukongSEngine(
        schemas=[StreamSchema("Posts"), StreamSchema("Likes")],
        config=EngineConfig(num_nodes=num_nodes, batch_interval_ms=1000))
    engine.load_static(parse_triples(STATIC))
    post_source = StreamSource(engine.schemas["Posts"])
    post_source.queue_tuples(posts, 0, 1000)
    like_source = StreamSource(engine.schemas["Likes"])
    like_source.queue_tuples(likes, 0, 1000)
    engine.attach_source(post_source)
    engine.attach_source(like_source)

    handle = engine.register_continuous(
        QC_TEMPLATE.format(range_ms=range_s * 1000))
    engine.run_until(10_000)

    assert handle.executions, "the query must have fired"
    for record in handle.executions:
        got = {tuple(engine.strings.entity_name(v) for v in row)
               for row in record.result.rows}
        want = reference_answer(posts, likes, record.close_ms,
                                range_s * 1000)
        assert got == want, f"at close={record.close_ms}"


@settings(max_examples=15, deadline=None)
@given(events=st.lists(event_strategy(), max_size=20),
       plan_width=st.sampled_from([1, 3]))
def test_oneshot_snapshots_grow_monotonically(events, plan_width):
    posts, likes = build_streams(events)
    engine = WukongSEngine(
        schemas=[StreamSchema("Posts"), StreamSchema("Likes")],
        config=EngineConfig(num_nodes=2, batch_interval_ms=1000,
                            plan_width=plan_width))
    engine.load_static(parse_triples(STATIC))
    post_source = StreamSource(engine.schemas["Posts"])
    post_source.queue_tuples(posts, 0, 1000)
    like_source = StreamSource(engine.schemas["Likes"])
    like_source.queue_tuples(likes, 0, 1000)
    engine.attach_source(post_source)
    engine.attach_source(like_source)

    query = "SELECT ?U ?P WHERE { ?U po ?P }"
    previous_rows = set()
    previous_sn = 0
    while engine.clock.now_ms < 10_000:
        engine.step()
        record = engine.oneshot(query)
        rows = set(record.result.rows)
        assert record.snapshot >= previous_sn
        assert rows >= previous_rows, \
            "append-only history must never lose one-shot rows"
        previous_rows = rows
        previous_sn = record.snapshot
    # Eventually every post is visible.
    expected = {(t.triple.subject, t.triple.object) for t in posts}
    final = {(engine.strings.entity_name(a), engine.strings.entity_name(b))
             for a, b in previous_rows}
    assert final == expected
