"""Tests for vector timestamps."""

import pytest
from hypothesis import given, strategies as st

from repro.core.vts import VectorTimestamp
from repro.errors import ConsistencyError


def test_starts_at_zero():
    vts = VectorTimestamp(["S0", "S1"])
    assert vts.get("S0") == 0
    assert vts.as_dict() == {"S0": 0, "S1": 0}


def test_updates_must_be_in_order():
    vts = VectorTimestamp(["S0"])
    vts.update("S0", 1)
    vts.update("S0", 2)
    with pytest.raises(ConsistencyError):
        vts.update("S0", 2)
    with pytest.raises(ConsistencyError):
        vts.update("S0", 4)


def test_unknown_stream_rejected():
    vts = VectorTimestamp(["S0"])
    with pytest.raises(ConsistencyError):
        vts.update("S9", 1)
    with pytest.raises(ConsistencyError):
        vts.get("S9")


def test_stable_is_elementwise_min():
    a = VectorTimestamp(["S0", "S1"])
    b = VectorTimestamp(["S0", "S1"])
    for k in range(1, 6):
        a.update("S0", k)
    for k in range(1, 4):
        b.update("S0", k)
        b.update("S1", k)
    stable = VectorTimestamp.stable([a, b])
    assert stable.as_dict() == {"S0": 3, "S1": 0}


def test_stable_requires_same_streams():
    a = VectorTimestamp(["S0"])
    b = VectorTimestamp(["S1"])
    with pytest.raises(ConsistencyError):
        VectorTimestamp.stable([a, b])


def test_covers():
    vts = VectorTimestamp(["S0", "S1"])
    vts.update("S0", 1)
    assert vts.covers({"S0": 1})
    assert vts.covers({"S0": 0, "S1": 0})
    assert not vts.covers({"S0": 2})
    assert not vts.covers({"S1": 1})
    assert vts.covers({})


def test_covers_unknown_stream_means_not_covered():
    vts = VectorTimestamp(["S0"])
    assert not vts.covers({"S9": 1})


def test_add_stream_dynamic():
    vts = VectorTimestamp(["S0"])
    vts.add_stream("S1")
    assert vts.get("S1") == 0
    with pytest.raises(ConsistencyError):
        vts.add_stream("S1")


def test_copy_is_independent():
    vts = VectorTimestamp(["S0"])
    clone = vts.copy()
    vts.update("S0", 1)
    assert clone.get("S0") == 0


def test_equality():
    a = VectorTimestamp(["S0"])
    b = VectorTimestamp(["S0"])
    assert a == b
    a.update("S0", 1)
    assert a != b


@given(st.lists(st.lists(st.integers(0, 10), min_size=2, max_size=2),
                min_size=1, max_size=6))
def test_stable_never_exceeds_any_local(counts):
    """The stable vector is a lower bound of every local vector."""
    locals_ = []
    for pair in counts:
        vts = VectorTimestamp(["S0", "S1"])
        for name, value in zip(["S0", "S1"], pair):
            for k in range(1, value + 1):
                vts.update(name, k)
        locals_.append(vts)
    stable = VectorTimestamp.stable(locals_)
    for vts in locals_:
        for stream in ("S0", "S1"):
            assert stable.get(stream) <= vts.get(stream)
    # And it is attained: for each stream, some node sits exactly there.
    for stream in ("S0", "S1"):
        assert any(vts.get(stream) == stable.get(stream) for vts in locals_)
