"""Tests for durable checkpoints on disk and cold-start recovery."""

import json

import pytest

from repro.core.durability import (query_from_dict, query_to_dict,
                                   restore_engine, save_engine)
from repro.errors import FaultToleranceError
from repro.rdf.parser import parse_timed_tuples
from repro.sparql.parser import parse_query
from repro.streams.source import StreamSource

from core.test_engine import LIKES, QC, TWEETS, build_engine, names


@pytest.fixture
def checkpoint(tmp_path):
    return str(tmp_path / "engine.ckpt.json")


def ft_engine(**overrides):
    overrides.setdefault("fault_tolerance", True)
    return build_engine(**overrides)


def _fresh_source(engine, name):
    """A new upstream source for ``name``, as a restart would create it."""
    source = StreamSource(engine.schemas[name])
    text = TWEETS if name == "Tweet_Stream" else LIKES
    source.queue_tuples(parse_timed_tuples(text), 0, 1000)
    return source


class TestQuerySerialization:
    @pytest.mark.parametrize("text", [
        QC,
        "SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 }",
        "ASK WHERE { Logan fo Erik }",
        "SELECT ?U COUNT(?P) AS ?n WHERE { ?U po ?P } GROUP BY ?U LIMIT 3",
        "SELECT ?P ?T WHERE { Logan po ?P . OPTIONAL { ?P ht ?T } . "
        "FILTER (?P != T-12) }",
    ])
    def test_roundtrip(self, text):
        query = parse_query(text)
        assert query_from_dict(query_to_dict(query)) == query


class TestSaveRestore:
    def test_oneshot_answers_survive_restart(self, checkpoint):
        engine = ft_engine()
        engine.run_until(5_000)
        probe = "SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 }"
        before = names(engine, engine.oneshot(probe, home_node=0).result.rows)

        save_engine(engine, checkpoint)
        revived = restore_engine(checkpoint)
        after = names(revived, revived.oneshot(probe,
                                               home_node=0).result.rows)
        assert after == before == [("T-13",), ("T-15",)]

    def test_store_content_identical(self, checkpoint):
        engine = ft_engine()
        engine.run_until(6_000)
        save_engine(engine, checkpoint)
        revived = restore_engine(checkpoint)
        for node_id in range(engine.cluster.num_nodes):
            old = engine.store.shards[node_id]
            new = revived.store.shards[node_id]
            assert {k: old.lookup(k) for k in old.iter_keys()} == \
                {k: new.lookup(k) for k in new.iter_keys()}

    def test_clock_and_vts_restored(self, checkpoint):
        engine = ft_engine()
        engine.run_until(5_000)
        save_engine(engine, checkpoint)
        revived = restore_engine(checkpoint)
        assert revived.clock.now_ms == engine.clock.now_ms
        assert revived.coordinator.stable_vts().as_dict() == \
            engine.coordinator.stable_vts().as_dict()
        assert revived.coordinator.stable_sn == engine.coordinator.stable_sn

    def test_continuous_queries_resume(self, checkpoint):
        engine = ft_engine()
        engine.register_continuous(QC)
        engine.run_until(5_000)
        save_engine(engine, checkpoint)

        revived = restore_engine(checkpoint)
        assert "QC" in revived.continuous.queries
        handle = revived.continuous.queries["QC"]
        assert handle.next_close_ms == \
            engine.continuous.queries["QC"].next_close_ms
        # Locality-aware replication was re-established.
        assert revived.registry.is_local("Tweet_Stream", handle.home_node)
        # Processing resumes over the recovered state (sources would be
        # re-attached upstream; auto-padding keeps the timeline moving).
        records = revived.run_until(7_000)
        assert [rec.close_ms for rec in records] == [6_000, 7_000]
        # The 10s tweet window still reaches the recovered T-15 data.
        requirement = handle.requirement_at(6_000)
        assert revived.coordinator.stable_vts().covers(requirement)

    def test_save_requires_fault_tolerance(self, checkpoint):
        engine = build_engine()  # fault_tolerance=False
        engine.run_until(2_000)
        with pytest.raises(FaultToleranceError):
            save_engine(engine, checkpoint)

    def test_version_mismatch_rejected(self, checkpoint):
        engine = ft_engine()
        engine.run_until(2_000)
        save_engine(engine, checkpoint)
        import json
        with open(checkpoint) as handle:
            data = json.load(handle)
        data["version"] = 99
        with open(checkpoint, "w") as handle:
            json.dump(data, handle)
        with pytest.raises(FaultToleranceError):
            restore_engine(checkpoint)

    def test_restore_preserves_source_attachment_order(self, checkpoint):
        """Regression: the dump records the attachment order, and restore
        must honour it even when the caller hands sources over in a
        different (say, sorted) order.  Attachment order is part of the
        engine's durable identity — padding and batch pulls iterate the
        sources dict, so a reordered restore would diverge from the
        original timeline."""
        engine = ft_engine()
        engine.run_until(4_000)
        # build_engine attaches Tweet_Stream before Like_Stream: the
        # attachment order is *not* the sorted order.
        attached = list(engine.sources)
        assert attached == ["Tweet_Stream", "Like_Stream"]
        save_engine(engine, checkpoint)
        with open(checkpoint) as handle:
            assert json.load(handle)["sources"] == attached

        fresh = [_fresh_source(engine, name)
                 for name in sorted(engine.schemas)]  # wrong order on purpose
        revived = restore_engine(checkpoint, sources=fresh)
        assert list(revived.sources) == attached

    def test_restore_attaches_unknown_sources_in_name_order(
            self, checkpoint):
        engine = ft_engine()
        engine.run_until(2_000)
        save_engine(engine, checkpoint)
        with open(checkpoint) as handle:
            data = json.load(handle)
        data["sources"] = []  # an old dump without the recorded order
        with open(checkpoint, "w") as handle:
            json.dump(data, handle)
        fresh = [_fresh_source(engine, name)
                 for name in ("Tweet_Stream", "Like_Stream")]
        revived = restore_engine(checkpoint, sources=fresh)
        assert list(revived.sources) == ["Like_Stream", "Tweet_Stream"]

    def test_double_restore_is_idempotent(self, checkpoint, tmp_path):
        """save -> restore -> save must reproduce the dump bit for bit
        (before the attachment-order fix, the second dump recorded the
        caller's re-attachment order instead of the original)."""
        engine = ft_engine()
        engine.register_continuous(QC)
        engine.run_until(5_000)
        save_engine(engine, checkpoint)
        with open(checkpoint) as handle:
            first = json.load(handle)

        revived = restore_engine(
            checkpoint, sources=[_fresh_source(engine, name)
                                 for name in sorted(engine.schemas)])
        second_path = str(tmp_path / "second.ckpt.json")
        save_engine(revived, second_path)
        with open(second_path) as handle:
            second = json.load(handle)
        assert second == first

        # And the twice-removed engine still answers like the original.
        again = restore_engine(
            second_path, sources=[_fresh_source(engine, name)
                                  for name in sorted(engine.schemas)])
        probe = "SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 }"
        assert names(again, again.oneshot(probe, home_node=0).result.rows) \
            == names(engine, engine.oneshot(probe, home_node=0).result.rows)

    def test_time_scoped_queries_survive(self, checkpoint):
        engine = ft_engine(gc_every_ticks=0)
        engine.run_until(6_000)
        save_engine(engine, checkpoint)
        revived = restore_engine(checkpoint)
        record = revived.oneshot_time_scoped(
            "SELECT ?U ?T FROM Tweet_Stream [RANGE 1s STEP 1s] "
            "WHERE { GRAPH Tweet_Stream { ?U po ?T } }", 2_000, 3_000)
        assert names(revived, record.result.rows) == [("Logan", "T-15")]
