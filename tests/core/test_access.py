"""Tests for WindowAccess: the continuous queries' data paths."""

import pytest

from repro.core.stream_index import IndexSlice, StreamIndexRegistry
from repro.core.access import WindowAccess, _merge_spans
from repro.core.transient import TransientStore
from repro.rdf.ids import DIR_IN, DIR_OUT, make_key
from repro.rdf.parser import parse_triples
from repro.rdf.string_server import StringServer
from repro.rdf.terms import EncodedTriple, EncodedTuple
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter
from repro.store.distributed import DistributedStore
from repro.store.kvstore import ValueSpan
from repro.streams.stream import StreamSchema


class TestMergeSpans:
    KEY = make_key(5, 2, DIR_OUT)

    def test_contiguous_spans_merge_across_batches(self):
        spans = [(0, ValueSpan(self.KEY, 0, 2)),
                 (0, ValueSpan(self.KEY, 2, 3)),
                 (0, ValueSpan(self.KEY, 5, 1))]
        merged = _merge_spans(spans)
        assert merged == [(0, ValueSpan(self.KEY, 0, 6))]

    def test_gaps_stay_split(self):
        spans = [(0, ValueSpan(self.KEY, 0, 2)),
                 (0, ValueSpan(self.KEY, 4, 1))]
        assert len(_merge_spans(spans)) == 2

    def test_owner_change_stays_split(self):
        spans = [(0, ValueSpan(self.KEY, 0, 2)),
                 (1, ValueSpan(self.KEY, 2, 1))]
        assert len(_merge_spans(spans)) == 2

    def test_empty(self):
        assert _merge_spans([]) == []


class TestWindowAccess:
    def build(self):
        cluster = Cluster(num_nodes=1)
        strings = StringServer()
        store = DistributedStore(cluster, strings)
        registry = StreamIndexRegistry()
        registry.create_stream("S")
        schema = StreamSchema("S", frozenset({"ga"}))
        transients = [TransientStore("S")]

        # Inject two batches by hand: batch 1 has (u, po, p1); batch 2 has
        # (u, po, p2) and timing (u, ga, l1).
        u = strings.entity_id("u")
        p1, p2 = strings.entity_id("p1"), strings.entity_id("p2")
        l1 = strings.entity_id("l1")
        po, ga = strings.predicate_id("po"), strings.predicate_id("ga")

        piece1 = IndexSlice(1)
        span = store.insert_out_edge(EncodedTriple(u, po, p1), sn=1)
        piece1.add_span(0, span)
        registry.index("S").append_slice(piece1)

        piece2 = IndexSlice(2)
        span = store.insert_out_edge(EncodedTriple(u, po, p2), sn=1)
        piece2.add_span(0, span)
        registry.index("S").append_slice(piece2)
        transients[0].append_slice(
            2, [EncodedTuple(EncodedTriple(u, ga, l1), 150)], [])

        return (cluster, strings, store, registry, schema, transients,
                dict(u=u, p1=p1, p2=p2, l1=l1, po=po, ga=ga))

    def access(self, parts, first, last, **kwargs):
        cluster, strings, store, registry, schema, transients, ids = parts
        return WindowAccess(cluster=cluster, store=store, strings=strings,
                            registry=registry, stream_schema=schema,
                            transients=transients, first_batch=first,
                            last_batch=last, **kwargs), ids

    def test_timeless_respects_batch_window(self):
        parts = self.build()
        both, ids = self.access(parts, 1, 2)
        only_second, _ = self.access(parts, 2, 2)
        meter = LatencyMeter()
        assert both.neighbors(ids["u"], ids["po"], DIR_OUT, meter) == \
            [ids["p1"], ids["p2"]]
        assert only_second.neighbors(ids["u"], ids["po"], DIR_OUT, meter) \
            == [ids["p2"]]

    def test_timing_routes_to_transient_store(self):
        parts = self.build()
        access, ids = self.access(parts, 1, 2)
        meter = LatencyMeter()
        assert access.neighbors(ids["u"], ids["ga"], DIR_OUT, meter) == \
            [ids["l1"]]
        # Outside the window: nothing.
        early, _ = self.access(parts, 1, 1)
        assert early.neighbors(ids["u"], ids["ga"], DIR_OUT, meter) == []

    def test_index_vertices_by_predicate_kind(self):
        parts = self.build()
        access, ids = self.access(parts, 1, 2)
        meter = LatencyMeter()
        assert access.index_vertices(ids["po"], DIR_OUT, meter) == \
            [ids["u"]]
        assert access.index_vertices(ids["ga"], DIR_OUT, meter) == \
            [ids["u"]]

    def test_non_replicated_index_costs_more(self):
        parts = self.build()
        remote_access, ids = self.access(parts, 1, 2)
        # A replica exists nowhere; force_local_index simulates one.
        local_access, _ = self.access(parts, 1, 2, force_local_index=True)
        remote_meter, local_meter = LatencyMeter(), LatencyMeter()
        remote_access.neighbors(ids["u"], ids["po"], DIR_OUT, remote_meter)
        local_access.neighbors(ids["u"], ids["po"], DIR_OUT, local_meter)
        assert remote_meter.ns > local_meter.ns

    def test_resolvers(self):
        parts = self.build()
        access, ids = self.access(parts, 1, 2)
        assert access.resolve_entity("u") == ids["u"]
        assert access.resolve_entity("ghost") is None
        assert access.resolve_predicate("po") == ids["po"]

    def test_index_vertices_local_partitions_by_owner(self):
        parts = self.build()
        access, ids = self.access(parts, 1, 2)
        meter = LatencyMeter()
        local = access.index_vertices_local(ids["po"], DIR_OUT, 0, meter)
        assert local == [ids["u"]]  # single-node cluster owns everything
