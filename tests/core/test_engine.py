"""Integration tests for the Wukong+S engine (the paper's running example)."""

import pytest

from repro.core.engine import EngineConfig, WukongSEngine
from repro.errors import RegistrationError, StreamError
from repro.rdf.parser import parse_timed_tuples, parse_triples
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema

XLAB = """
Logan ty XMen .
Erik ty XMen .
Logan fo Erik .
Erik fo Logan .
Logan po T-13 .
Logan po T-14 .
Erik po T-12 .
T-13 ht sosp17 .
T-12 ht sosp17 .
Logan li T-12 .
Erik li T-14 .
"""

TWEETS = """
Logan po T-15 @2200
T-15 ga loc31121 @2200
T-15 ht sosp17 @2250
Erik po T-16 @5100
T-16 ga loc4174 @5150
Logan po T-17 @8100
T-17 ga loc31121 @8200
"""

LIKES = """
Erik li T-15 @6100
Tony li T-15 @6200
Bruce li T-15 @6300
Clint li T-15 @9100
Steve li T-15 @9200
Erik li T-17 @9300
"""

QC = """
REGISTER QUERY QC AS
SELECT ?X ?Y ?Z
FROM Tweet_Stream [RANGE 10s STEP 1s]
FROM Like_Stream [RANGE 5s STEP 1s]
FROM X-Lab
WHERE {
  GRAPH Tweet_Stream { ?X po ?Z }
  GRAPH X-Lab { ?X fo ?Y }
  GRAPH Like_Stream { ?Y li ?Z }
}
"""


def build_engine(num_nodes=2, **overrides):
    config = EngineConfig(num_nodes=num_nodes, batch_interval_ms=1000,
                          **overrides)
    engine = WukongSEngine(
        schemas=[StreamSchema("Tweet_Stream", frozenset({"ga"})),
                 StreamSchema("Like_Stream")],
        config=config)
    engine.load_static(parse_triples(XLAB))
    tweet = StreamSource(engine.schemas["Tweet_Stream"])
    tweet.queue_tuples(parse_timed_tuples(TWEETS), 0, 1000)
    like = StreamSource(engine.schemas["Like_Stream"])
    like.queue_tuples(parse_timed_tuples(LIKES), 0, 1000)
    engine.attach_source(tweet)
    engine.attach_source(like)
    return engine


def names(engine, rows):
    return sorted(tuple(engine.strings.entity_name(v) for v in row)
                  for row in rows)


class TestContinuousQueries:
    def test_paper_example_results(self):
        engine = build_engine()
        engine.register_continuous(QC)
        records = engine.run_until(11_000)
        by_close = {rec.close_ms: names(engine, rec.result.rows)
                    for rec in records}
        # First match once Erik's like (6100) joins Logan's tweet (2200).
        assert by_close[7000] == [("Logan", "Erik", "T-15")]
        # At 10s, Erik's like of T-17 is in both windows too.
        assert by_close[10000] == [("Logan", "Erik", "T-15"),
                                   ("Logan", "Erik", "T-17")]

    def test_windows_slide_content_out(self):
        engine = build_engine()
        engine.register_continuous(QC)
        records = engine.run_until(16_000)
        last = {rec.close_ms: names(engine, rec.result.rows)
                for rec in records}
        # By 15s, all likes are older than the 5s like-window.
        assert last[15000] == []

    def test_execution_fires_every_step(self):
        engine = build_engine()
        engine.register_continuous(QC)
        records = engine.run_until(10_000)
        closes = [rec.close_ms for rec in records]
        assert closes == sorted(closes)
        assert closes[0] == 1000  # registered at 0, step 1s
        assert all(b - a == 1000 for a, b in zip(closes, closes[1:]))

    def test_sub_millisecond_latency(self):
        engine = build_engine()
        engine.register_continuous(QC)
        records = engine.run_until(11_000)
        assert all(rec.latency_ms < 1.0 for rec in records)

    def test_registration_replicates_stream_index(self):
        engine = build_engine()
        registered = engine.register_continuous(QC)
        home = registered.home_node
        assert engine.registry.is_local("Tweet_Stream", home)
        assert engine.registry.is_local("Like_Stream", home)

    def test_unregister_drops_interest(self):
        engine = build_engine()
        registered = engine.register_continuous(QC)
        engine.continuous.unregister(registered.name)
        assert not engine.registry.is_local("Tweet_Stream",
                                            registered.home_node)
        with pytest.raises(RegistrationError):
            engine.continuous.unregister(registered.name)

    def test_oneshot_query_cannot_be_registered(self):
        engine = build_engine()
        with pytest.raises(RegistrationError):
            engine.register_continuous("SELECT ?X WHERE { Logan po ?X }")

    def test_timing_data_reaches_transient_store_only(self):
        engine = build_engine()
        engine.run_until(4_000)
        # 'ga' (timing) tuples are in the transient store...
        total = sum(t.num_slices for t in engine.transients["Tweet_Stream"])
        assert total > 0
        # ...and never in the persistent store.
        ga = engine.strings.lookup_predicate("ga")
        t15 = engine.strings.lookup_entity("T-15")
        assert ga is not None and t15 is not None
        from repro.rdf.ids import DIR_OUT, make_key
        for shard in engine.store.shards:
            assert shard.lookup(make_key(t15, ga, DIR_OUT)) == []

    def test_timing_patterns_query_transient_store(self):
        engine = build_engine()
        engine.register_continuous("""
            REGISTER QUERY QG AS
            SELECT ?T ?L
            FROM Tweet_Stream [RANGE 10s STEP 1s]
            WHERE { GRAPH Tweet_Stream { ?T ga ?L } }
        """)
        records = engine.run_until(9_500)
        latest = records[-1]
        assert ("T-17", "loc31121") in names(engine, latest.result.rows)


class TestOneShotQueries:
    def test_sees_absorbed_timeless_data(self):
        engine = build_engine()
        engine.run_until(3_000)
        record = engine.oneshot(
            "SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 }")
        assert names(engine, record.result.rows) == [("T-13",), ("T-15",)]

    def test_snapshot_is_stable_not_future(self):
        engine = build_engine(plan_width=1)
        engine.run_until(3_000)
        record = engine.oneshot("SELECT ?X WHERE { Logan po ?X }")
        assert record.snapshot == engine.coordinator.stable_sn

    def test_timestamps_never_pollute_oneshot(self):
        engine = build_engine()
        engine.run_until(9_000)
        # ga (timing) data is invisible to one-shot queries entirely.
        record = engine.oneshot("SELECT ?T ?L WHERE { ?T ga ?L }")
        assert record.result.rows == []

    def test_contention_marks_when_continuous_running(self):
        engine = build_engine()
        engine.run_until(2_000)
        free = engine.oneshot("SELECT ?X WHERE { Logan po ?X }",
                              home_node=0)
        engine.register_continuous(QC)
        busy = engine.oneshot("SELECT ?X WHERE { Logan po ?X }",
                              home_node=0)
        assert busy.meter.ns > free.meter.ns
        assert "contention" in busy.meter.breakdown_ms


class TestGarbageCollection:
    def test_gc_frees_expired_slices(self):
        engine = build_engine(gc_every_ticks=2)
        engine.register_continuous(QC)
        engine.run_until(20_000)
        assert engine.gc.stats.transient_slices_freed > 0
        assert engine.gc.stats.index_slices_freed > 0

    def test_gc_never_frees_live_window_data(self):
        engine = build_engine(gc_every_ticks=1)
        engine.register_continuous(QC)
        records = engine.run_until(12_000)
        # GC must never reach past the expiry floor of the next execution.
        index = engine.registry.index("Tweet_Stream")
        earliest = index.earliest_batch
        assert earliest is not None
        floor = engine.gc.expiry_floor_batch("Tweet_Stream",
                                             engine.clock.now_ms)
        assert earliest >= floor
        # Functional check: aggressive GC does not change results.  The
        # tweet T-17 (posted at 8.1s) is still inside the 10s window of
        # the execution closing at 12s and must still be found.
        latest = {rec.close_ms: names(engine, rec.result.rows)
                  for rec in records}
        assert ("Logan", "Erik", "T-17") in latest[12000]


class TestDynamicStreams:
    def test_add_stream_after_start(self):
        engine = build_engine()
        engine.run_until(2_000)
        engine.add_stream(StreamSchema("New_Stream"))
        source = StreamSource(engine.schemas["New_Stream"])
        source.queue_tuples(
            parse_timed_tuples("Zed po T-99 @2500"), 0, 1000)
        engine.attach_source(source)
        # One extra tick lets the stable snapshot catch up to the batch
        # that carries the tuple (bounded staleness, §4.3).
        engine.run_until(6_000)
        record = engine.oneshot("SELECT ?X WHERE { Zed po ?X }")
        assert names(engine, record.result.rows) == [("T-99",)]

    def test_duplicate_stream_rejected(self):
        engine = build_engine()
        with pytest.raises(StreamError):
            engine.add_stream(StreamSchema("Tweet_Stream"))

    def test_unknown_source_rejected(self):
        engine = build_engine()
        with pytest.raises(StreamError):
            engine.attach_source(StreamSource(StreamSchema("ghost")))


class TestInjectionAccounting:
    def test_injection_records_collected(self):
        engine = build_engine()
        engine.run_until(5_000)
        assert engine.injection_records
        tweets = [r for r in engine.injection_records
                  if r.stream == "Tweet_Stream" and r.num_tuples > 0]
        assert tweets
        assert all(r.total_ms > 0 for r in tweets)
        with_index = [r for r in tweets if r.indexing_ms > 0]
        assert with_index  # timeless tuples build stream-index slices

    def test_memory_accounting_nonzero(self):
        engine = build_engine()
        engine.register_continuous(QC)
        engine.run_until(5_000)
        assert engine.raw_stream_bytes("Tweet_Stream") > 0
        assert engine.stream_index_bytes("Tweet_Stream") > 0
        assert engine.store_memory_bytes() > 0
