"""Tests for the Adaptor -> Dispatcher -> Injector pipeline."""

import pytest

from repro.core.adaptor import Adaptor
from repro.core.dispatcher import Dispatcher
from repro.core.injector import Injector
from repro.core.stream_index import IndexSlice
from repro.core.transient import TransientStore
from repro.rdf.ids import DIR_IN, DIR_OUT, make_key
from repro.rdf.parser import parse_timed_tuples
from repro.rdf.string_server import StringServer
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter
from repro.store.distributed import DistributedStore
from repro.streams.stream import StreamBatch, StreamSchema

BATCH_TEXT = """
Logan po T-15 @120
T-15 ga loc1 @130
Erik li T-15 @150
"""


def make_batch():
    batch = StreamBatch("S", 2, 100, 200)
    for tup in parse_timed_tuples(BATCH_TEXT):
        batch.add(tup)
    return batch


class TestAdaptor:
    def test_classifies_timing_and_timeless(self):
        strings = StringServer()
        adaptor = Adaptor(StreamSchema("S", frozenset({"ga"})), strings)
        adapted = adaptor.adapt(make_batch())
        assert len(adapted.timeless) == 2
        assert len(adapted.timing) == 1
        assert adapted.batch_no == 2

    def test_discards_unrelated_predicates(self):
        strings = StringServer()
        adaptor = Adaptor(StreamSchema("S"), strings,
                          relevant_predicates={"po"})
        adapted = adaptor.adapt(make_batch())
        assert len(adapted.timeless) == 1
        assert adapted.discarded == 2

    def test_encodes_through_string_server(self):
        strings = StringServer()
        adaptor = Adaptor(StreamSchema("S"), strings)
        adaptor.adapt(make_batch())
        assert strings.lookup_entity("Logan") is not None
        assert strings.lookup_predicate("po") is not None


class TestDispatcher:
    def test_partitions_by_owner(self):
        cluster = Cluster(num_nodes=3)
        strings = StringServer()
        adaptor = Adaptor(StreamSchema("S", frozenset({"ga"})), strings)
        adapted = adaptor.adapt(make_batch())
        dispatcher = Dispatcher(cluster, source_node=0)
        node_batches = dispatcher.dispatch(adapted)
        # Every node receives a batch (even if empty) for VTS advancement.
        assert set(node_batches) == {0, 1, 2}
        logan = strings.entity_id("Logan")
        owner = cluster.owner_of(logan)
        assert any(t.triple.s == logan
                   for t in node_batches[owner].out_timeless)
        # Each tuple lands exactly once per edge half.
        total_out = sum(len(nb.out_timeless) + len(nb.out_timing)
                        for nb in node_batches.values())
        assert total_out == 3

    def test_remote_transfer_charged(self):
        cluster = Cluster(num_nodes=2)
        strings = StringServer()
        adaptor = Adaptor(StreamSchema("S"), strings)
        adapted = adaptor.adapt(make_batch())
        meter = LatencyMeter()
        Dispatcher(cluster, source_node=0).dispatch(adapted, meter=meter)
        assert meter.breakdown_ms.get("dispatch", 0) > 0


class TestInjector:
    def build(self, num_nodes=2):
        cluster = Cluster(num_nodes=num_nodes)
        strings = StringServer()
        store = DistributedStore(cluster, strings)
        transients = {
            "S": [TransientStore("S") for _ in range(num_nodes)]
        }
        injectors = [Injector(n, store,
                              {"S": transients["S"][n]})
                     for n in range(num_nodes)]
        return cluster, strings, store, transients, injectors

    def inject_all(self, cluster, strings, injectors, sn=1,
                   index_slice=None):
        adaptor = Adaptor(StreamSchema("S", frozenset({"ga"})), strings)
        adapted = adaptor.adapt(make_batch())
        dispatcher = Dispatcher(cluster, source_node=0)
        for node_id, node_batch in dispatcher.dispatch(adapted).items():
            injectors[node_id].inject(node_batch, sn, index_slice)

    def test_timeless_reaches_persistent_store(self):
        cluster, strings, store, transients, injectors = self.build()
        self.inject_all(cluster, strings, injectors)
        logan = strings.entity_id("Logan")
        po = strings.predicate_id("po")
        values = store.neighbors_from(cluster.owner_of(logan), logan, po,
                                      DIR_OUT, LatencyMeter())
        assert values == [strings.entity_id("T-15")]

    def test_timing_reaches_transient_store_only(self):
        cluster, strings, store, transients, injectors = self.build()
        self.inject_all(cluster, strings, injectors)
        t15 = strings.entity_id("T-15")
        ga = strings.predicate_id("ga")
        total = sum(t.lookup(t15, ga, DIR_OUT, 1, 5)
                    != [] for t in transients["S"])
        assert total == 1
        owner = cluster.owner_of(t15)
        assert store.shards[owner].lookup(make_key(t15, ga, DIR_OUT)) == []

    def test_spans_collected_into_index_slice(self):
        cluster, strings, store, transients, injectors = self.build()
        piece = IndexSlice(2)
        self.inject_all(cluster, strings, injectors, index_slice=piece)
        # Two timeless tuples -> four spans (out+in halves), coalescing
        # aside.
        assert piece.num_entries >= 2
        logan = strings.entity_id("Logan")
        po = strings.predicate_id("po")
        assert make_key(logan, po, DIR_OUT) in piece.entries

    def test_empty_slices_keep_transient_timeline(self):
        cluster, strings, store, transients, injectors = self.build(1)
        batch = StreamBatch("S", 1, 0, 100)  # empty batch
        adaptor = Adaptor(StreamSchema("S", frozenset({"ga"})), strings)
        adapted = adaptor.adapt(batch)
        node_batch = Dispatcher(cluster).dispatch(adapted)[0]
        injectors[0].inject(node_batch, 1, None)
        assert transients["S"][0].num_slices == 1

    def test_multithreaded_injection_same_content(self):
        single = self.build(1)
        multi_cluster, m_strings, m_store, m_transients, _ = self.build(1)
        multi_injectors = [Injector(0, m_store,
                                    {"S": m_transients["S"][0]}, threads=4)]
        self.inject_all(single[0], single[1], single[4])
        self.inject_all(multi_cluster, m_strings, multi_injectors)
        s_shard, m_shard = single[2].shards[0], m_store.shards[0]
        assert {k: sorted(s_shard.lookup(k)) for k in s_shard.iter_keys()} \
            == {k: sorted(m_shard.lookup(k)) for k in m_shard.iter_keys()}

    def test_multithreaded_injection_is_faster(self):
        from repro.core.adaptor import Adaptor
        from repro.rdf.terms import TimedTuple, Triple
        from repro.streams.stream import StreamBatch

        tuples = [TimedTuple(Triple(f"u{i}", "po", f"t{i}"), 100 + i)
                  for i in range(64)]
        big = StreamBatch("S", 2, 100, 200, tuples)

        def run(threads):
            cluster, strings, store, transients, _ = self.build(1)
            injector = Injector(0, store, {"S": transients["S"][0]},
                                threads=threads)
            adapted = Adaptor(StreamSchema("S"), strings).adapt(big)
            node_batch = Dispatcher(cluster).dispatch(adapted)[0]
            meter = LatencyMeter()
            injector.inject(node_batch, 1, None, meter=meter)
            return meter.ms

        assert run(4) < run(1)

    def test_injector_threads_validated(self):
        cluster, strings, store, transients, _ = self.build(1)
        import pytest as _pytest
        with _pytest.raises(ValueError):
            Injector(0, store, {"S": transients["S"][0]}, threads=0)

    def test_injection_respects_snapshot_tag(self):
        cluster, strings, store, transients, injectors = self.build(1)
        self.inject_all(cluster, strings, injectors, sn=7)
        logan = strings.entity_id("Logan")
        po = strings.predicate_id("po")
        shard = store.shards[0]
        assert shard.lookup(make_key(logan, po, DIR_OUT), max_sn=6) == []
        assert shard.lookup(make_key(logan, po, DIR_OUT), max_sn=7) != []
