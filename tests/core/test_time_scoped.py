"""Tests for time-scoped one-shot queries (the footnote-10 extension)."""

import pytest

from repro.errors import StoreError, StreamError

from core.test_engine import build_engine, names

TIME_QUERY = """
SELECT ?U ?T
FROM Tweet_Stream [RANGE 1s STEP 1s]
WHERE { GRAPH Tweet_Stream { ?U po ?T } }
"""

JOINED_QUERY = """
SELECT ?U ?F ?T
FROM Tweet_Stream [RANGE 1s STEP 1s]
FROM X-Lab
WHERE {
    GRAPH Tweet_Stream { ?U po ?T }
    GRAPH X-Lab { ?U fo ?F }
}
"""


@pytest.fixture
def engine():
    # Disable periodic GC so history stays queryable in most tests.
    eng = build_engine(gc_every_ticks=0)
    eng.run_until(10_000)
    return eng


def test_scope_selects_historical_interval(engine):
    # Tweets: T-15 @2200, T-16 @5100, T-17 @8100.
    early = engine.oneshot_time_scoped(TIME_QUERY, 2_000, 3_000)
    assert names(engine, early.result.rows) == [("Logan", "T-15")]
    middle = engine.oneshot_time_scoped(TIME_QUERY, 5_000, 6_000)
    assert names(engine, middle.result.rows) == [("Erik", "T-16")]
    everything = engine.oneshot_time_scoped(TIME_QUERY, 0, 10_000)
    assert len(everything.result.rows) == 3


def test_scope_boundaries_are_batch_aligned(engine):
    # [2000, 9000) covers T-15, T-16 and T-17 (batches 3..9).
    record = engine.oneshot_time_scoped(TIME_QUERY, 2_000, 9_000)
    assert len(record.result.rows) == 3
    # [3000, 8000) excludes T-15 (batch 3) and T-17 (batch 9).
    record = engine.oneshot_time_scoped(TIME_QUERY, 3_000, 8_000)
    assert names(engine, record.result.rows) == [("Erik", "T-16")]


def test_joins_with_stored_data(engine):
    record = engine.oneshot_time_scoped(JOINED_QUERY, 2_000, 3_000)
    assert names(engine, record.result.rows) == [("Logan", "Erik", "T-15")]


def test_empty_scope_rejected(engine):
    with pytest.raises(StoreError):
        engine.oneshot_time_scoped(TIME_QUERY, 3_000, 3_000)


def test_pure_stored_query_rejected(engine):
    with pytest.raises(StoreError):
        engine.oneshot_time_scoped("SELECT ?x WHERE { Logan po ?x }",
                                   0, 1_000)


def test_unknown_stream_rejected(engine):
    with pytest.raises(StreamError):
        engine.oneshot_time_scoped(
            "SELECT ?x FROM Ghost [RANGE 1s STEP 1s] WHERE "
            "{ GRAPH Ghost { ?x p o } }", 0, 1_000)


def test_collected_history_raises():
    engine = build_engine(gc_every_ticks=1, gc_retention_ms=2_000)
    engine.run_until(10_000)
    with pytest.raises(StoreError):
        engine.oneshot_time_scoped(TIME_QUERY, 1_000, 3_000)
    # Recent history is still there.
    record = engine.oneshot_time_scoped(TIME_QUERY, 8_000, 10_000)
    assert names(engine, record.result.rows) == [("Logan", "T-17")]


def test_scope_starting_exactly_at_gc_frontier_succeeds():
    # A scope whose first batch equals ``collected_before`` reads the
    # oldest retained batch: the boundary itself is still queryable.
    engine = build_engine(gc_every_ticks=1, gc_retention_ms=2_000)
    engine.run_until(10_000)
    cfg = engine.config
    frontier = engine.registry.index("Tweet_Stream").collected_before
    assert frontier > 1  # GC must actually have collected something
    start_ms = cfg.stream_start_ms + (frontier - 1) * cfg.batch_interval_ms
    record = engine.oneshot_time_scoped(
        TIME_QUERY, start_ms, start_ms + cfg.batch_interval_ms)
    assert record.result.rows is not None  # executed without StoreError


def test_scope_one_batch_below_gc_frontier_raises():
    # Shifting the scope down a single batch crosses the GC frontier and
    # must fail loudly instead of silently returning partial history.
    engine = build_engine(gc_every_ticks=1, gc_retention_ms=2_000)
    engine.run_until(10_000)
    cfg = engine.config
    frontier = engine.registry.index("Tweet_Stream").collected_before
    assert frontier > 1
    boundary_ms = cfg.stream_start_ms + (frontier - 1) * cfg.batch_interval_ms
    with pytest.raises(StoreError, match="garbage-collected"):
        engine.oneshot_time_scoped(
            TIME_QUERY, boundary_ms - cfg.batch_interval_ms,
            boundary_ms + cfg.batch_interval_ms)
