"""End-to-end FILTER + aggregation through the full engine and baselines."""

import pytest

from repro.baselines.csparql_engine import CSparqlEngine
from repro.baselines.spark import SparkStreamingEngine
from repro.core.engine import EngineConfig, WukongSEngine
from repro.rdf.parser import parse_timed_tuples, parse_triples
from repro.sparql.parser import parse_query
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema, batch_tuples

STATIC = """
s1 onRoad r1 .
s2 onRoad r1 .
s3 onRoad r2 .
"""

READINGS = """
s1 temp 10 @1100
s2 temp 20 @1200
s3 temp 30 @1300
s1 temp 40 @2100
s2 temp 8 @2200
"""

AVG_QUERY = """
REGISTER QUERY QAVG AS
SELECT ?r AVG(?v) AS ?mean COUNT(?v) AS ?n
FROM WT [RANGE 5s STEP 1s]
FROM City
WHERE {
    GRAPH WT { ?s temp ?v }
    GRAPH City { ?s onRoad ?r }
}
GROUP BY ?r
"""

HOT_QUERY = """
REGISTER QUERY QHOT AS
SELECT ?s ?v
FROM WT [RANGE 5s STEP 1s]
WHERE { GRAPH WT { ?s temp ?v . FILTER (?v >= 20) } }
"""


def build_engine(num_nodes=2):
    engine = WukongSEngine(schemas=[StreamSchema("WT")],
                          config=EngineConfig(num_nodes=num_nodes,
                                              batch_interval_ms=1000))
    engine.load_static(parse_triples(STATIC))
    source = StreamSource(engine.schemas["WT"])
    source.queue_tuples(parse_timed_tuples(READINGS), 0, 1000)
    engine.attach_source(source)
    return engine


def name(engine, vid):
    return engine.strings.entity_name(vid)


class TestEngineAggregation:
    def test_avg_per_road(self):
        engine = build_engine()
        handle = engine.register_continuous(AVG_QUERY)
        engine.run_until(3000)
        record = handle.executions[-1]
        assert record.result.variables == ["?r", "?mean", "?n"]
        by_road = {name(engine, row[0]): row[1:]
                   for row in record.result.rows}
        # r1: temps 10, 20, 40, 8 -> mean 19.5, n 4; r2: 30 -> mean 30.
        assert by_road["r1"] == (19.5, 4)
        assert by_road["r2"] == (30.0, 1)

    def test_aggregates_follow_window(self):
        engine = build_engine()
        handle = engine.register_continuous(AVG_QUERY.replace(
            "RANGE 5s", "RANGE 1s"))
        engine.run_until(3000)
        final = handle.executions[-1]  # window [2s,3s): 40 and 8 on r1
        by_road = {name(engine, row[0]): row[1:] for row in final.result.rows}
        assert by_road == {"r1": (24.0, 2)}

    def test_filter_prunes_mid_exploration(self):
        engine = build_engine()
        handle = engine.register_continuous(HOT_QUERY)
        engine.run_until(3000)
        record = handle.executions[-1]
        readings = {(name(engine, s), name(engine, v))
                    for s, v in record.result.rows}
        assert readings == {("s2", "20"), ("s3", "30"), ("s1", "40"),
                            ("s2", "8")} - {("s2", "8")}
        assert "filter" in record.meter.breakdown_ms

    def test_oneshot_aggregation(self):
        engine = build_engine()
        engine.run_until(3000)
        record = engine.oneshot(
            "SELECT ?r COUNT(?s) AS ?n WHERE { ?s onRoad ?r } GROUP BY ?r")
        by_road = {name(engine, row[0]): row[1] for row in record.result.rows}
        assert by_road == {"r1": 2, "r2": 1}


class TestBaselineAgreement:
    def feed(self, engine):
        engine.load_static(parse_triples(STATIC))
        for batch in batch_tuples("WT", parse_timed_tuples(READINGS),
                                  0, 1000):
            engine.ingest(batch)
        return engine

    @pytest.mark.parametrize("engine_cls", [CSparqlEngine,
                                            SparkStreamingEngine])
    def test_aggregation_matches_wukongs(self, engine_cls):
        integrated = build_engine()
        handle = integrated.register_continuous(AVG_QUERY)
        integrated.run_until(3000)
        record = handle.executions[-1]
        integrated_rows = {(name(integrated, row[0]),) + tuple(row[1:])
                           for row in record.result.rows}

        baseline = self.feed(engine_cls())
        rows, _ = baseline.execute_continuous(parse_query(AVG_QUERY),
                                              record.close_ms)
        baseline_rows = {(baseline.strings.entity_name(row[0]),)
                         + tuple(row[1:]) for row in rows}
        assert baseline_rows == integrated_rows

    @pytest.mark.parametrize("engine_cls", [CSparqlEngine,
                                            SparkStreamingEngine])
    def test_filter_matches_wukongs(self, engine_cls):
        integrated = build_engine()
        handle = integrated.register_continuous(HOT_QUERY)
        integrated.run_until(3000)
        record = handle.executions[-1]
        integrated_rows = {tuple(name(integrated, v) for v in row)
                           for row in record.result.rows}

        baseline = self.feed(engine_cls())
        rows, _ = baseline.execute_continuous(parse_query(HOT_QUERY),
                                              record.close_ms)
        baseline_rows = {tuple(baseline.strings.entity_name(v) for v in row)
                         for row in rows}
        assert baseline_rows == integrated_rows
