"""Tests for the engine stats snapshot."""

from repro.core.stats import collect_stats

from core.test_engine import QC, build_engine


def snapshot():
    engine = build_engine()
    engine.register_continuous(QC)
    engine.run_until(6_000)
    return engine, collect_stats(engine)


def test_snapshot_covers_all_subsystems():
    engine, stats = snapshot()
    assert stats.clock_ms == 6_000
    assert stats.num_nodes == 2
    assert stats.stable_sn > 0
    assert stats.store_entries > 0
    assert stats.tuples_injected > 0
    assert stats.mean_injection_ms > 0
    assert {s.name for s in stats.streams} == {"Tweet_Stream",
                                               "Like_Stream"}


def test_stream_stats_track_delivery_and_retention():
    engine, stats = snapshot()
    tweet = next(s for s in stats.streams if s.name == "Tweet_Stream")
    assert tweet.batches_delivered == 6
    assert tweet.index_slices > 0
    assert tweet.transient_slices > 0  # 'ga' timing data
    assert tweet.index_replicas >= 1
    assert tweet.raw_bytes > 0


def test_query_stats_track_executions():
    engine, stats = snapshot()
    qc = next(q for q in stats.queries if q.name == "QC")
    assert qc.executions == 6
    assert qc.median_ms is not None and qc.median_ms > 0
    assert qc.p99_ms >= qc.median_ms
    assert qc.home_node in (0, 1)


def test_format_renders_dashboard():
    engine, stats = snapshot()
    text = stats.format()
    assert "engine @ t=6.0s" in text
    assert "stream Tweet_Stream" in text
    assert "query QC" in text
    assert "p50" in text


def test_fresh_engine_stats():
    engine = build_engine()
    stats = collect_stats(engine)
    assert stats.tuples_injected == 0
    assert stats.mean_injection_ms == 0.0
    assert stats.queries == []
    assert "no executions" not in stats.format()
