"""Dedicated tests for the one-shot engine and the garbage collector."""

import pytest

from repro.core.gc import GarbageCollector
from repro.sparql.parser import parse_query

from core.test_engine import QC, build_engine, names


class TestOneShotEngine:
    def test_rejects_continuous_queries(self):
        engine = build_engine()
        with pytest.raises(ValueError):
            engine.oneshot_engine.execute(parse_query(QC))

    def test_snapshot_override(self):
        # Scalarization compacts retired snapshots into the base, so
        # historical reads need it off to be observable.
        engine = build_engine(scalarization=False)
        engine.run_until(4_000)
        query = parse_query("SELECT ?X WHERE { Logan po ?X }")
        # At snapshot 0 only the initially loaded posts are visible.
        old = engine.oneshot_engine.execute(query, snapshot=0)
        new = engine.oneshot_engine.execute(query)
        assert len(old.result.rows) < len(new.result.rows)
        assert old.snapshot == 0

    def test_compaction_folds_history_into_base(self):
        # With scalarization on, reading below the stable snapshot still
        # sees the compacted (base) data — retired snapshots are gone by
        # design (§4.3's bounded memory).
        engine = build_engine()
        engine.run_until(4_000)
        query = parse_query("SELECT ?X WHERE { Logan po ?X }")
        base = engine.oneshot_engine.execute(query, snapshot=0)
        stable = engine.oneshot_engine.execute(query)
        compacted_bound = engine.coordinator.compacted_through
        assert compacted_bound > 0
        assert len(base.result.rows) >= 2  # includes compacted stream posts

    def test_round_robin_homes(self):
        engine = build_engine()
        engine.run_until(2_000)
        first = engine.oneshot_engine._next_home
        engine.oneshot("SELECT ?X WHERE { Logan po ?X }")
        engine.oneshot("SELECT ?X WHERE { Logan po ?X }")
        assert engine.oneshot_engine._next_home == first + 2

    def test_dispatch_floor_applies(self):
        engine = build_engine()
        engine.run_until(2_000)
        record = engine.oneshot("SELECT ?X WHERE { Logan po ?X }")
        assert record.latency_ms >= \
            engine.config.cost.task_dispatch_ns / 1e6


class TestGarbageCollector:
    def test_retention_governs_unconsumed_streams(self):
        engine = build_engine(gc_every_ticks=1, gc_retention_ms=3_000)
        engine.run_until(10_000)
        # No queries registered: the retention horizon drives collection.
        floor = engine.gc.expiry_floor_batch("Tweet_Stream",
                                             engine.clock.now_ms)
        assert floor == (10_000 - 3_000) // 1_000 + 1

    def test_registered_window_blocks_collection(self):
        engine = build_engine(gc_every_ticks=1, gc_retention_ms=1_000)
        engine.register_continuous(QC)
        engine.run_until(10_000)
        registered = engine.continuous.queries["QC"]
        floor = engine.gc.expiry_floor_batch("Tweet_Stream",
                                             engine.clock.now_ms)
        window = registered.query.windows["Tweet_Stream"]
        oldest_needed_ms = registered.next_close_ms - window.range_ms
        assert floor <= oldest_needed_ms // 1_000 + 1

    def test_multiple_queries_minimum_floor_wins(self):
        engine = build_engine(gc_every_ticks=1)
        engine.register_continuous(QC)  # tweet window 10s
        engine.register_continuous("""
            REGISTER QUERY SHORT AS
            SELECT ?U ?T
            FROM Tweet_Stream [RANGE 1s STEP 1s]
            WHERE { GRAPH Tweet_Stream { ?U po ?T } }
        """)
        engine.run_until(8_000)
        floor = engine.gc.expiry_floor_batch("Tweet_Stream",
                                             engine.clock.now_ms)
        # The 10s window (QC) dominates the 1s one.
        assert floor <= (9_000 - 10_000) // 1_000 + 1 or floor == 1

    def test_stats_accumulate(self):
        engine = build_engine(gc_every_ticks=2, gc_retention_ms=2_000)
        engine.run_until(12_000)
        stats = engine.gc.stats
        assert stats.runs >= 5
        assert stats.transient_slices_freed > 0

    def test_gc_unblocks_transient_memory(self):
        engine = build_engine(gc_every_ticks=1, gc_retention_ms=2_000)
        engine.run_until(12_000)
        total = sum(t.memory_bytes()
                    for t in engine.transients["Tweet_Stream"])
        # Only ~2s of timing data is retained.
        retained = sum(t.num_slices
                       for t in engine.transients["Tweet_Stream"])
        assert retained <= 3 * 2 + 2  # per-node slices within retention
