"""Edge cases of engine configuration and the simulation loop."""

import pytest

from repro.core.engine import EngineConfig, WukongSEngine
from repro.errors import StreamError
from repro.rdf.parser import parse_timed_tuples, parse_triples
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema

from core.test_engine import build_engine


class TestConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.num_nodes == 1
        assert config.plan_width == 1
        assert config.keep_snapshots == 2
        assert config.scalarization
        assert not config.fault_tolerance

    def test_engine_without_streams(self):
        engine = WukongSEngine(schemas=[])
        engine.load_static(parse_triples("a p b ."))
        record = engine.oneshot("SELECT ?x WHERE { a p ?x }")
        assert len(record.result.rows) == 1
        # The loop runs even with no streams to pump.
        engine.run_until(1_000)

    def test_auto_pad_disabled_stalls_visibility(self):
        engine = WukongSEngine(
            schemas=[StreamSchema("S")],
            config=EngineConfig(batch_interval_ms=1000,
                                auto_pad_streams=False))
        engine.load_static(parse_triples("a p b ."))
        source = StreamSource(engine.schemas["S"])
        source.queue_tuples(parse_timed_tuples("x q y @500"), 0, 1000)
        engine.attach_source(source)
        engine.run_until(5_000)
        # Without padding the VTS stops at the delivered batch.
        assert engine.coordinator.stable_vts().get("S") == 1

    def test_auto_pad_keeps_vts_moving(self):
        engine = WukongSEngine(
            schemas=[StreamSchema("S")],
            config=EngineConfig(batch_interval_ms=1000))
        engine.attach_source(StreamSource(engine.schemas["S"]))
        engine.run_until(5_000)
        assert engine.coordinator.stable_vts().get("S") == 5

    def test_gc_disabled(self):
        engine = build_engine(gc_every_ticks=0)
        engine.run_until(8_000)
        assert engine.gc.stats.runs == 0

    def test_step_returns_only_new_records(self):
        engine = build_engine()
        engine.register_continuous("""
            REGISTER QUERY Q AS SELECT ?U ?T
            FROM Tweet_Stream [RANGE 2s STEP 1s]
            WHERE { GRAPH Tweet_Stream { ?U po ?T } }
        """)
        first = engine.step()
        second = engine.step()
        closes = [r.close_ms for r in first + second]
        assert closes == sorted(set(closes))

    def test_run_until_is_idempotent_at_target(self):
        engine = build_engine()
        engine.run_until(3_000)
        assert engine.run_until(3_000) == []
        assert engine.clock.now_ms == 3_000


class TestSourceIntegration:
    def test_two_sources_same_stream_rejected(self):
        engine = build_engine()
        replacement = StreamSource(engine.schemas["Tweet_Stream"])
        engine.attach_source(replacement)  # re-attach is allowed (replace)
        assert engine.sources["Tweet_Stream"] is replacement

    def test_unknown_stream_source_rejected(self):
        engine = build_engine()
        with pytest.raises(StreamError):
            engine.attach_source(StreamSource(StreamSchema("nope")))
