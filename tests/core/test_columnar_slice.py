"""ColumnarSlice: incremental window deltas vs fresh materialization.

The columnar view must be a pure cache: after any sequence of advances,
every column it serves must equal what a fresh view built directly at
the final range would produce — same values, same merged-span geometry
(the simulated-charge input), same vertex columns.  The counters the
stats dashboard surfaces (hits/misses, delta hits/misses, evictions) are
checked alongside.
"""

from repro.core.stream_index import ColumnarSlice, IndexSlice, StreamIndex
from repro.rdf.ids import DIR_OUT, make_key
from repro.store.kvstore import ValueSpan

KEY = make_key(7, 3, DIR_OUT)
OTHER = make_key(8, 3, DIR_OUT)


class _FakeShard:
    def __init__(self, values):
        self._values = values

    def lookup_span(self, span, meter=None, category="store"):
        return self._values[span.key][span.offset:span.offset + span.length]


class _FakeStore:
    def __init__(self, values):
        self.shards = [_FakeShard(values)]


def make_slice(batch_no, spans):
    piece = IndexSlice(batch_no)
    for owner, span in spans:
        piece.add_span(owner, span)
    return piece


def build_fixture():
    """Three batches of KEY (with a duplicate value in batch 1) and one
    batch of OTHER, all owner 0."""
    index = StreamIndex("S")
    index.append_slice(make_slice(1, [(0, ValueSpan(KEY, 0, 3))]))
    index.append_slice(make_slice(2, [(0, ValueSpan(KEY, 3, 2)),
                                      (0, ValueSpan(OTHER, 0, 1))]))
    index.append_slice(make_slice(3, [(0, ValueSpan(KEY, 5, 1))]))
    store = _FakeStore({KEY: [10, 11, 10, 12, 13, 14], OTHER: [20]})
    return index, store


def assert_same_view(advanced, fresh, keys=(KEY, OTHER)):
    for key in keys:
        a, f = advanced.key_column(key), fresh.key_column(key)
        if f is None:
            assert a is None
            continue
        assert a.values == f.values
        assert a.merged == f.merged
        assert a.batch_counts == f.batch_counts
    assert advanced.vertices(3, DIR_OUT) == fresh.vertices(3, DIR_OUT)


def test_slide_forward_equals_fresh_build():
    index, store = build_fixture()
    view = ColumnarSlice(index, store)
    view.advance(1, 2)
    view.key_column(KEY)  # materialize before the slide
    view.key_column(OTHER)
    view.vertices(3, DIR_OUT)
    view.advance(2, 3)  # drop batch 1, append batch 3
    fresh = ColumnarSlice(index, store)
    fresh.advance(2, 3)
    assert_same_view(view, fresh)
    assert view.key_column(KEY).values == [12, 13, 14]


def test_drop_only_and_extend_only_slides():
    index, store = build_fixture()
    view = ColumnarSlice(index, store)
    view.advance(1, 2)
    view.key_column(KEY)
    view.advance(2, 2)  # pure drop
    fresh = ColumnarSlice(index, store)
    fresh.advance(2, 2)
    assert_same_view(view, fresh)
    view.advance(2, 3)  # pure extend
    fresh2 = ColumnarSlice(index, store)
    fresh2.advance(2, 3)
    assert_same_view(view, fresh2)


def test_merged_spans_recoalesce_across_slides():
    # Batches 1 and 2 are contiguous in KEY's value list: the fresh view
    # merges them into one span, and the delta path must end with the
    # same geometry after dropping/appending.
    index, store = build_fixture()
    view = ColumnarSlice(index, store)
    view.advance(1, 2)
    assert view.key_column(KEY).merged == [(0, ValueSpan(KEY, 0, 5))]
    view.advance(2, 3)
    assert view.key_column(KEY).merged == [(0, ValueSpan(KEY, 3, 3))]


def test_disjoint_advance_resets_and_counts_evictions():
    index, store = build_fixture()
    view = ColumnarSlice(index, store)
    view.advance(1, 2)
    view.key_column(KEY)
    view.vertices(3, DIR_OUT)
    assert view.delta_misses == 1  # first materialization
    view.advance(2, 3)
    assert view.delta_hits == 1
    cached = view.entries
    assert cached > 0
    # A range sharing no slice with the previous one rebuilds from
    # scratch: every cached column is evicted and the delta misses.
    view.advance(10, 12)
    assert view.delta_misses == 2
    assert view.evictions >= cached
    assert view.key_column(KEY) is None  # nothing in that range


def test_hit_miss_counters_and_memo_invalidation():
    index, store = build_fixture()
    view = ColumnarSlice(index, store)
    view.advance(1, 2)
    col = view.key_column(KEY)
    assert (view.hits, view.misses) == (0, 1)
    assert view.key_column(KEY) is col
    assert view.hits == 1
    # Batch 1 holds a duplicate (10): not distinct, and the verdict and
    # set are memoized on the column.
    assert col.values == [10, 11, 10, 12, 13]
    assert not col.is_distinct()
    assert col.value_set() == {10, 11, 12, 13}
    view.advance(2, 3)
    # Same column object survives the slide; memos must be recomputed
    # for the new values.
    assert view.key_column(KEY) is col
    assert col.is_distinct()
    assert col.value_set() == {12, 13, 14}


def test_cached_absent_key_invalidated_by_extension():
    index, store = build_fixture()
    absent_until_3 = make_key(9, 3, DIR_OUT)
    store.shards[0]._values[absent_until_3] = [30]
    view = ColumnarSlice(index, store)
    view.advance(1, 2)
    assert view.key_column(absent_until_3) is None  # cached absent
    index.append_slice(make_slice(4, [(0, ValueSpan(absent_until_3,
                                                    0, 1))]))
    view.advance(2, 4)
    col = view.key_column(absent_until_3)
    assert col is not None and col.values == [30]


def test_absent_key_lookups_count_as_hits_once_cached():
    index, store = build_fixture()
    missing = make_key(99, 3, DIR_OUT)
    view = ColumnarSlice(index, store)
    view.advance(1, 2)
    # First ask walks the postings and caches the absence (a miss);
    # every later ask is served from the cache (a hit), same as a
    # present key — absent keys are first-class cache entries.
    assert view.key_column(missing) is None
    assert (view.hits, view.misses) == (0, 1)
    assert view.entries == 1
    assert view.key_column(missing) is None
    assert (view.hits, view.misses) == (1, 1)
    # The invalidation paths must account for them too: a reset evicts
    # the cached absence along with everything else.
    view.key_column(KEY)
    before = view.entries
    view.advance(10, 12)
    assert view.evictions >= before
    assert view.entries == 0


def test_absent_key_invalidation_recounts_as_miss():
    index, store = build_fixture()
    late = make_key(9, 3, DIR_OUT)
    store.shards[0]._values[late] = [30]
    view = ColumnarSlice(index, store)
    view.advance(1, 2)
    assert view.key_column(late) is None
    hits, misses = view.hits, view.misses
    index.append_slice(make_slice(4, [(0, ValueSpan(late, 0, 1))]))
    view.advance(2, 4)
    # The extension dropped the stale absence without counting an
    # eviction-by-expiry; the re-materialization is a fresh miss.
    assert view.key_column(late).values == [30]
    assert (view.hits, view.misses) == (hits, misses + 1)


def test_counters_flow_into_cache_stats_and_obs_metrics():
    """The PR that added the columnar window views wired their counters
    into the stats dashboard and the metrics registry; assert the full
    path end to end on a real engine run."""
    from core.test_engine import QC, build_engine
    from repro.core.stats import collect_stats
    from repro.obs.metrics import collect_metrics

    engine = build_engine()
    engine.register_continuous(QC)
    engine.run_until(6_000)

    views = [view for handle in engine.continuous.queries.values()
             for view in handle.window_views.values()]
    assert views, "the run must have materialized window views"
    hits = sum(view.hits for view in views)
    misses = sum(view.misses for view in views)
    evictions = sum(view.evictions for view in views)
    delta_hits = sum(view.delta_hits for view in views)
    assert misses > 0 and delta_hits > 0
    assert evictions > 0, "sliding windows must have evicted columns"

    caches = collect_stats(engine).caches
    assert caches.window_hits == hits
    assert caches.window_misses == misses
    assert caches.window_evictions == evictions
    assert caches.window_delta_hits == delta_hits
    assert 0.0 <= caches.window_hit_rate <= 1.0
    assert "evictions" in collect_stats(engine).format()

    counters = collect_metrics(engine).snapshot()["counters"]
    assert counters["window_view_hits"] == hits
    assert counters["window_view_misses"] == misses
    assert counters["window_view_evictions"] == evictions
    assert counters["window_delta_hits"] == delta_hits
