"""Tests for the time-based transient store."""

import pytest

from repro.errors import StoreError
from repro.rdf.ids import DIR_IN, DIR_OUT
from repro.rdf.terms import EncodedTriple, EncodedTuple
from repro.core.transient import TransientStore


def enc(s, p, o, ts=0):
    return EncodedTuple(EncodedTriple(s, p, o), ts)


def filled_store(**kwargs):
    store = TransientStore("GPS", **kwargs)
    store.append_slice(1, [enc(1, 7, 100)], [enc(1, 7, 100)])
    store.append_slice(2, [enc(1, 7, 101), enc(2, 7, 100)],
                       [enc(1, 7, 101), enc(2, 7, 100)])
    store.append_slice(3, [enc(1, 7, 102)], [enc(1, 7, 102)])
    return store


def test_lookup_within_batch_range():
    store = filled_store()
    assert store.lookup(1, 7, DIR_OUT, 1, 3) == [100, 101, 102]
    assert store.lookup(1, 7, DIR_OUT, 2, 2) == [101]
    assert store.lookup(1, 7, DIR_OUT, 4, 9) == []


def test_in_edges_indexed_by_object():
    store = filled_store()
    assert store.lookup(100, 7, DIR_IN, 1, 3) == [1, 2]


def test_vertices_in_range_deduplicated():
    store = filled_store()
    assert store.vertices(7, DIR_OUT, 1, 3) == [1, 2]
    assert store.vertices(7, DIR_OUT, 3, 3) == [1]


def test_slices_must_append_in_order():
    store = filled_store()
    with pytest.raises(StoreError):
        store.append_slice(2, [], [])


def test_collect_frees_early_side():
    store = filled_store()
    assert store.collect(3) == 2
    assert store.num_slices == 1
    assert store.earliest_batch == 3
    assert store.lookup(1, 7, DIR_OUT, 1, 3) == [102]


def test_collect_is_idempotent():
    store = filled_store()
    store.collect(3)
    assert store.collect(3) == 0


def test_ring_buffer_budget_evicts_expired():
    store = TransientStore("GPS", budget_bytes=100)
    store.append_slice(1, [enc(1, 7, 100)], [])
    store.note_expired(1)
    # Appending more forces eviction of the expired slice.
    store.append_slice(2, [enc(2, 7, 101), enc(3, 7, 102),
                           enc(4, 7, 103), enc(5, 7, 104)], [])
    assert store.evictions >= 1
    assert store.lookup(1, 7, DIR_OUT, 1, 2) == []


def test_ring_buffer_budget_refuses_to_evict_live_data():
    store = TransientStore("GPS", budget_bytes=64)
    store.append_slice(1, [enc(1, 7, 100)], [])
    with pytest.raises(StoreError):
        store.append_slice(2, [enc(i, 7, 100 + i) for i in range(2, 8)], [])


def test_memory_grows_and_shrinks():
    store = filled_store()
    before = store.memory_bytes()
    assert before > 0
    store.collect(4)
    assert store.memory_bytes() == 0
