"""Tests for the SN <-> VTS plan (bounded snapshot scalarization)."""

import pytest

from repro.core.snapshot import SNVTSPlan
from repro.errors import ConsistencyError


def test_paper_fig11_example():
    plan = SNVTSPlan(["S0", "S1"])
    plan.publish({"S0": 3, "S1": 9})    # SN 2 in the figure (our SN 1)
    plan.publish({"S0": 5, "S1": 12})   # SN 3 in the figure (our SN 2)
    assert plan.sn_for("S0", 3) == 1
    assert plan.sn_for("S0", 4) == 2
    assert plan.sn_for("S0", 5) == 2
    assert plan.sn_for("S1", 10) == 2
    assert plan.sn_for("S0", 6) is None  # beyond the plan: injector stalls


def test_publish_returns_increasing_sns():
    plan = SNVTSPlan(["S"])
    assert plan.publish({"S": 2}) == 1
    assert plan.publish({"S": 4}) == 2
    assert plan.latest_sn == 2


def test_mapping_must_cover_all_streams():
    plan = SNVTSPlan(["S0", "S1"])
    with pytest.raises(ConsistencyError):
        plan.publish({"S0": 1})


def test_mapping_must_be_monotonic():
    plan = SNVTSPlan(["S"])
    plan.publish({"S": 5})
    with pytest.raises(ConsistencyError):
        plan.publish({"S": 4})


def test_equal_upper_allowed_for_idle_stream():
    plan = SNVTSPlan(["S0", "S1"])
    plan.publish({"S0": 2, "S1": 2})
    plan.publish({"S0": 4, "S1": 2})  # S1 idle
    assert plan.sn_for("S0", 3) == 2
    assert plan.sn_for("S1", 3) is None


def test_requirement_for():
    plan = SNVTSPlan(["S0", "S1"])
    plan.publish({"S0": 3, "S1": 9})
    assert plan.requirement_for(1) == {"S0": 3, "S1": 9}
    with pytest.raises(ConsistencyError):
        plan.requirement_for(2)


def test_bad_lookups_rejected():
    plan = SNVTSPlan(["S"])
    plan.publish({"S": 2})
    with pytest.raises(ConsistencyError):
        plan.sn_for("other", 1)
    with pytest.raises(ConsistencyError):
        plan.sn_for("S", 0)


def test_dynamic_stream_addition():
    plan = SNVTSPlan(["S0"])
    plan.publish({"S0": 2})
    plan.add_stream("S1")
    # Existing mappings implicitly cover batch 0 of the new stream.
    assert plan.requirement_for(1) == {"S0": 2, "S1": 0}
    plan.publish({"S0": 4, "S1": 2})
    assert plan.sn_for("S1", 1) == 2
    with pytest.raises(ConsistencyError):
        plan.add_stream("S1")


def test_sn_assignment_is_monotone_in_batch_no():
    plan = SNVTSPlan(["S"])
    for upper in (2, 5, 9):
        plan.publish({"S": upper})
    previous = 0
    for batch in range(1, 10):
        sn = plan.sn_for("S", batch)
        assert sn is not None and sn >= previous
        previous = sn
