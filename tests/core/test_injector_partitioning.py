"""Property tests for the injector's lock-free key-space partitioning."""

from hypothesis import given, settings, strategies as st

from repro.core.injector import Injector
from repro.core.transient import TransientStore
from repro.rdf.terms import EncodedTriple, EncodedTuple
from repro.rdf.string_server import StringServer
from repro.sim.cluster import Cluster
from repro.store.distributed import DistributedStore


def make_injector(threads):
    cluster = Cluster(num_nodes=1)
    strings = StringServer()
    store = DistributedStore(cluster, strings)
    return Injector(0, store, {"S": TransientStore("S")}, threads=threads)


tuples_strategy = st.lists(
    st.tuples(st.integers(1, 40), st.integers(1, 5), st.integers(1, 40)),
    max_size=60,
).map(lambda raw: [EncodedTuple(EncodedTriple(s, p, o), i)
                   for i, (s, p, o) in enumerate(raw)])


@settings(max_examples=50, deadline=None)
@given(tuples=tuples_strategy, threads=st.sampled_from([1, 2, 3, 4, 8]))
def test_partitioning_is_a_partition(tuples, threads):
    """Every tuple lands in exactly one partition."""
    injector = make_injector(threads)
    parts = injector._partition(tuples, by_subject=True)
    assert len(parts) == (1 if threads == 1 else threads)
    flattened = [t for part in parts for t in part]
    assert sorted(flattened, key=id) == sorted(tuples, key=id)


@settings(max_examples=50, deadline=None)
@given(tuples=tuples_strategy, threads=st.sampled_from([2, 4, 8]))
def test_same_key_same_partition(tuples, threads):
    """All tuples touching one key go to one thread (the lock-free
    guarantee) and keep their arrival order within it."""
    injector = make_injector(threads)
    parts = injector._partition(tuples, by_subject=True)
    owner = {}
    for index, part in enumerate(parts):
        for tup in part:
            key = tup.triple.s
            assert owner.setdefault(key, index) == index
    for part in parts:
        stamps = [t.timestamp_ms for t in part if True]
        # Arrival order within each partition is preserved.
        per_key = {}
        for t in part:
            per_key.setdefault(t.triple.s, []).append(t.timestamp_ms)
        for series in per_key.values():
            assert series == sorted(series)


@settings(max_examples=20, deadline=None)
@given(tuples=tuples_strategy)
def test_partitioning_avoids_cluster_aliasing(tuples):
    """With threads == num_nodes, partitioning must still spread keys.

    (Regression: `vid % threads` aliased the cluster's `vid % num_nodes`
    placement, collapsing every local key into partition 0.)
    """
    cluster = Cluster(num_nodes=4)
    strings = StringServer()
    store = DistributedStore(cluster, strings)
    injector = Injector(0, store, {"S": TransientStore("S")}, threads=4)
    # Only node-0 keys, as the dispatcher would deliver them.
    local = [t for t in tuples if t.triple.s % 4 == 0]
    if len({t.triple.s for t in local}) < 4:
        return
    parts = injector._partition(local, by_subject=True)
    assert sum(1 for p in parts if p) >= 2
