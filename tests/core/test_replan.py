"""Adaptive re-planning (``repro.core.replan``): the tentpole guarantees.

* **Swap-on-skew**: a skew-inversion workload (the hot predicate flips
  mid-run) makes the cold registration-time plan wrong; the monitor
  re-plans it once the statistics prove a >= hysteresis improvement.
* **Differential bit-identity**: every close executed *after* the swap is
  bit-identical (rows, simulated ns, per-category breakdown) to the same
  close of a twin engine registered with the final order from the start,
  pre-swap closes agree as multisets, and the engines' full state digests
  are equal — planning never touches store state.
* **Hysteresis / cool-down**: oscillating statistics trigger at most one
  re-plan per cool-down window; sub-threshold improvements never swap.
* **Pinning**: ``fixed_order`` registrations are exempt forever — that is
  what keeps golden workloads valid on adaptive engines.
"""

from __future__ import annotations

import pytest

from repro.chaos.state import engine_state_digest
from repro.core.engine import EngineConfig, WukongSEngine
from repro.core.replan import AdjacencyBudget, PlanMonitor
from repro.core.stats import PredicateStatistics, StatsSnapshot
from repro.rdf.parser import parse_timed_tuples
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema

pytestmark = pytest.mark.adaptive

#: Ticks of light-pa / heavy-pb traffic, then the skew inverts.
PHASE1_TICKS = 10
TOTAL_TICKS = 40

QUERY = """
    REGISTER QUERY SKEW AS
    SELECT ?U ?L
    FROM A [RANGE 300ms STEP 100ms]
    FROM B [RANGE 300ms STEP 100ms]
    WHERE {
        GRAPH A { ?U pa ?P }
        GRAPH B { ?L pb ?P }
    }
"""


def _skew_tuples():
    """Two streams whose hot predicate inverts after PHASE1_TICKS.

    Most objects are unique (so join fan-outs stay ~1 and the cost
    comparison is dominated by the index-start size), plus one shared hot
    id per tick so every close joins a few rows.
    """
    pa, pb = [], []
    na = nb = 0
    for tick in range(1, TOTAL_TICKS + 1):
        at = 100 * (tick - 1) + 10
        pa_rate, pb_rate = (1, 12) if tick <= PHASE1_TICKS else (12, 1)
        # Shared hot ids first (timestamps must be non-decreasing):
        # both windows always hold h{tick % 3}.
        pa.append(f"ax{tick} pa h{tick % 3} @{at}")
        pb.append(f"bx{tick} pb h{tick % 3} @{at}")
        for i in range(pa_rate):
            pa.append(f"a{na} pa p{na} @{at + 1 + i}")
            na += 1
        for i in range(pb_rate):
            pb.append(f"b{nb} pb q{nb} @{at + 1 + i}")
            nb += 1
    return "\n".join(pa), "\n".join(pb)


def _build(adaptive: bool, fixed_order=None, **config_kwargs):
    config = EngineConfig(num_nodes=2, batch_interval_ms=100,
                          adaptive_replan=adaptive,
                          replan_check_closes=4,
                          replan_cooldown_closes=6,
                          **config_kwargs)
    engine = WukongSEngine(
        schemas=[StreamSchema("A"), StreamSchema("B")], config=config)
    pa_text, pb_text = _skew_tuples()
    for name, text in (("A", pa_text), ("B", pb_text)):
        source = StreamSource(engine.schemas[name])
        source.queue_tuples(parse_timed_tuples(text), 0, 100)
        engine.attach_source(source)
    handle = engine.register_continuous(QUERY, fixed_order=fixed_order)
    return engine, handle


def _run(engine, ticks=TOTAL_TICKS):
    for _ in range(ticks):
        engine.step()


# -- swap-on-skew --------------------------------------------------------

def test_skew_inversion_triggers_replan():
    engine, handle = _build(adaptive=True)
    assert handle.plan_order == (0, 1)  # cold positional plan starts at pa
    _run(engine)
    assert len(handle.replans) >= 1
    assert handle.plan_order == (1, 0)  # now starts at the light pb index
    event = handle.replans[0]
    assert event.old_order == (0, 1) and event.new_order == (1, 0)
    assert event.estimated_improvement >= engine.config.replan_hysteresis
    # The decision is stamped with the snapshot epoch it was made under.
    stats = PredicateStatistics(engine.store)
    assert 0 < event.stats_epoch <= stats.epoch()


def test_replan_disabled_by_default():
    engine, handle = _build(adaptive=False)
    assert engine.plan_monitor is None
    _run(engine)
    assert handle.replans == []
    assert handle.plan_order == (0, 1)


# -- differential bit-identity -------------------------------------------

def test_post_swap_closes_bit_identical_to_fixed_order_run():
    adaptive_engine, adaptive_handle = _build(adaptive=True)
    _run(adaptive_engine)
    assert adaptive_handle.replans, "workload must actually re-plan"
    final_order = list(adaptive_handle.plan_order)
    swap_close = adaptive_handle.replans[-1].close_index

    fixed_engine, fixed_handle = _build(adaptive=False,
                                        fixed_order=final_order)
    _run(fixed_engine)

    adaptive_execs = adaptive_handle.executions
    fixed_execs = fixed_handle.executions
    assert len(adaptive_execs) == len(fixed_execs)
    assert [r.close_ms for r in adaptive_execs] == \
        [r.close_ms for r in fixed_execs]
    for i, (ours, theirs) in enumerate(zip(adaptive_execs, fixed_execs)):
        if i >= swap_close:
            # Bit-identical: same plan, same window data, same stable SN.
            assert ours.result.rows == theirs.result.rows
            assert ours.meter.ns == theirs.meter.ns
            assert ours.meter.breakdown_ms == theirs.meter.breakdown_ms
        else:
            # Different plan order may permute rows, never change them.
            assert sorted(ours.result.rows) == sorted(theirs.result.rows)
    # Planning never touches store/stream/injection state.
    assert engine_state_digest(adaptive_engine) == \
        engine_state_digest(fixed_engine)


# -- hysteresis and cool-down --------------------------------------------

class _ScriptedStats:
    """A statistics provider whose index sizes are scripted per call."""

    def __init__(self, sizes_for_call):
        self.calls = 0
        self._sizes_for_call = sizes_for_call

    def snapshot(self, patterns):
        self.calls += 1
        sizes = self._sizes_for_call(self.calls)
        return StatsSnapshot(
            epoch=self.calls,
            out_degrees={p: 1.0 for p in sizes},
            in_degrees={p: 1.0 for p in sizes},
            index_sizes=dict(sizes),
            subject_degrees={}, object_degrees={})


def test_oscillating_stats_swap_at_most_once_per_cooldown():
    # Every check sees the skew inverted vs the current plan, so without
    # the cool-down the plan would thrash on every single check.
    engine, handle = _build(adaptive=True)
    engine.config.replan_check_closes = 1
    monitor = engine.plan_monitor
    monitor.check_every_closes = 1
    cooldown = monitor.cooldown_closes

    def flip(call):
        heavy = {"pa": 1000.0, "pb": 10.0}
        light = {"pa": 10.0, "pb": 1000.0}
        return heavy if call % 2 else light

    monitor.statistics = _ScriptedStats(flip)
    _run(engine)
    events = handle.replans
    assert len(events) >= 2, "oscillation must still re-plan eventually"
    for before, after in zip(events, events[1:]):
        assert after.close_index - before.close_index >= cooldown
    # Every suppressed oscillation is visible, not silent.
    assert monitor.skipped_cooldown > 0


def test_sub_threshold_improvement_never_swaps():
    engine, handle = _build(adaptive=True)
    monitor = engine.plan_monitor
    # Candidate (start at pb) differs but is only ~1.2x better.
    monitor.statistics = _ScriptedStats(
        lambda call: {"pa": 12.0, "pb": 10.0})
    _run(engine)
    assert handle.replans == []
    assert handle.plan_order == (0, 1)
    assert monitor.skipped_hysteresis > 0
    assert monitor.replans == 0


def test_identical_candidate_is_not_a_skip():
    engine, handle = _build(adaptive=True)
    monitor = engine.plan_monitor
    # Stats agree with the current order: pa is the smaller index.
    monitor.statistics = _ScriptedStats(
        lambda call: {"pa": 10.0, "pb": 1000.0})
    _run(engine)
    assert handle.replans == []
    assert monitor.checks > 0
    assert monitor.skipped_hysteresis == 0
    assert monitor.skipped_cooldown == 0


# -- pinning --------------------------------------------------------------

def test_fixed_order_pins_query_against_replanning():
    engine, handle = _build(adaptive=True, fixed_order=[0, 1])
    monitor = engine.plan_monitor
    monitor.statistics = _ScriptedStats(
        lambda call: {"pa": 1000.0, "pb": 1.0})
    _run(engine)
    assert handle.pinned
    assert handle.replans == []
    assert handle.plan_order == (0, 1)
    assert monitor.checks == 0  # pinned queries are never even examined


def test_pinned_run_matches_unpinned_cold_run_bit_identically():
    # Pinning the cold order on an adaptive-off engine is a no-op: that
    # is what keeps the goldens valid without regenerating them.
    pinned_engine, pinned = _build(adaptive=False, fixed_order=[0, 1])
    cold_engine, cold = _build(adaptive=False)
    _run(pinned_engine)
    _run(cold_engine)
    assert [r.meter.ns for r in pinned.executions] == \
        [r.meter.ns for r in cold.executions]
    assert [r.result.rows for r in pinned.executions] == \
        [r.result.rows for r in cold.executions]


# -- determinism of the decision inputs -----------------------------------

def test_stats_snapshot_deterministic_per_epoch():
    engine, handle = _build(adaptive=False)
    _run(engine, ticks=10)
    stats = PredicateStatistics(engine.store)
    patterns = handle.query.patterns
    first = stats.snapshot(patterns)
    second = stats.snapshot(patterns)
    assert first == second
    assert first.epoch == second.epoch == stats.epoch()
    engine.step()  # more injection -> the epoch must move
    assert stats.epoch() > first.epoch
    # Snapshot accessors answer exactly like the live view they froze.
    third = stats.snapshot(patterns)
    for predicate in ("pa", "pb"):
        assert third.index_size(predicate) == stats.index_size(predicate)
        assert third.out_degree(predicate) == stats.out_degree(predicate)
        assert third.in_degree(predicate) == stats.in_degree(predicate)


def test_monitor_rejects_bad_parameters():
    engine, _ = _build(adaptive=True)
    stats = PredicateStatistics(engine.store)
    with pytest.raises(ValueError):
        PlanMonitor(engine.continuous, stats, check_every_closes=0)
    with pytest.raises(ValueError):
        PlanMonitor(engine.continuous, stats, hysteresis=0.9)
    with pytest.raises(ValueError):
        PlanMonitor(engine.continuous, stats, cooldown_closes=0)
    with pytest.raises(ValueError):
        AdjacencyBudget(engine.store, min_capacity=16, max_capacity=8)


# -- plan cache: swaps never serve a stale compiled executor --------------

def test_plan_cache_keyed_by_order_swaps_and_reuses():
    engine, handle = _build(adaptive=False)
    continuous = engine.continuous
    original_plan = handle.plan
    misses_before = continuous.plan_cache_misses

    swapped = continuous.swap_plan(handle, (1, 0))
    assert swapped is not original_plan
    assert [s.kind for s in swapped.steps] != \
        [s.kind for s in original_plan.steps] or \
        [s.pattern for s in swapped.steps] != \
        [s.pattern for s in original_plan.steps]
    assert continuous.plan_cache_misses == misses_before + 1

    # Swapping back reuses the original plan object — and with it the
    # executor's compiled form, which is always compiled from the plan's
    # own step order, so no stale order can ever be served.
    hits_before = continuous.plan_cache_hits
    back = continuous.swap_plan(handle, (0, 1))
    assert back is original_plan
    assert continuous.plan_cache_hits == hits_before + 1
    assert handle.plan_order == (0, 1)


# -- observability ---------------------------------------------------------

def test_replan_emits_trace_span_and_counters():
    engine, handle = _build(adaptive=True, tracing=True)
    _run(engine)
    assert handle.replans
    spans = [s for s in engine.tracer.spans
             if s.name == "replan" and s.cat == "planner"]
    assert len(spans) == len(handle.replans)
    span = spans[0]
    assert span.labels["query"] == handle.name
    assert span.labels["old_order"] == "0,1"
    assert span.labels["new_order"] == "1,0"

    from repro.obs.metrics import collect_metrics
    registry = collect_metrics(engine)
    assert registry.counter("planner_replans_total").value == \
        len(handle.replans)
    assert registry.counter(
        "planner_replans", query=handle.name).value == len(handle.replans)
    assert registry.counter("planner_replan_checks").value == \
        engine.plan_monitor.checks
    # Estimated-vs-actual gauges of the active plan were published.
    assert registry.gauge("planner_estimated_cost",
                          query=handle.name).value > 0
    assert registry.gauge("planner_actual_close_ns",
                          query=handle.name).value > 0
