"""Bit-identical simulated time: the wall-clock fast path's guard rail.

Replays the fixed workload of :mod:`core.determinism_workload` and asserts
that every simulated latency and per-category breakdown equals the golden
recording (exact float equality, no tolerance).  Wall-clock optimizations
— compiled binding rows, skip-indexed stream lookups, aggregated charges,
cached window accesses — must all pass through this unchanged; see
DESIGN.md, "Wall-clock vs simulated time".
"""

import json

import pytest

from core.determinism_workload import GOLDEN_PATH, run_workload


@pytest.fixture(scope="module")
def facts():
    # One run covers both fabric variants; JSON round-trip normalizes
    # container types so the comparison matches the golden file exactly.
    return json.loads(json.dumps(run_workload(), sort_keys=True))


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("variant", ["rdma", "tcp"])
class TestSimulatedTimeIsBitIdentical:
    def test_continuous_latencies(self, facts, golden, variant):
        got = facts[variant]["continuous"]
        want = golden[variant]["continuous"]
        assert sorted(got) == sorted(want)
        for name in want:
            assert got[name] == want[name], (
                f"{variant}/{name}: simulated continuous-query time "
                f"diverged from the golden recording")

    def test_oneshot_latencies(self, facts, golden, variant):
        assert facts[variant]["oneshot"] == golden[variant]["oneshot"]

    def test_time_scoped_latencies(self, facts, golden, variant):
        assert facts[variant]["time_scoped"] == \
            golden[variant]["time_scoped"]

    def test_injection_accounting(self, facts, golden, variant):
        assert facts[variant]["injection"] == golden[variant]["injection"]


def test_workload_is_substantial(golden):
    """The guard is only meaningful if the workload exercises the engine."""
    executions = sum(len(execs)
                     for variant in golden.values()
                     for execs in variant["continuous"].values())
    assert executions >= 100
    for variant in golden.values():
        categories = set()
        for execs in variant["continuous"].values():
            for _, _, _, breakdown in execs:
                categories |= set(breakdown)
        assert {"dispatch", "explore", "project", "store"} <= categories
