"""Tests for the stream index and its replication registry."""

import pytest

from repro.core.stream_index import IndexSlice, StreamIndex, \
    StreamIndexRegistry
from repro.errors import StoreError, StreamError
from repro.rdf.ids import DIR_OUT, make_key
from repro.sim.cost import LatencyMeter
from repro.store.kvstore import ValueSpan

KEY = make_key(7, 3, DIR_OUT)
OTHER = make_key(8, 3, DIR_OUT)


def make_slice(batch_no, spans):
    piece = IndexSlice(batch_no)
    for owner, span in spans:
        piece.add_span(owner, span)
    return piece


class TestIndexSlice:
    def test_contiguous_spans_coalesce(self):
        piece = IndexSlice(1)
        piece.add_span(0, ValueSpan(KEY, 4, 1))
        piece.add_span(0, ValueSpan(KEY, 5, 1))
        piece.add_span(0, ValueSpan(KEY, 6, 1))
        assert piece.entries[KEY] == [(0, ValueSpan(KEY, 4, 3))]

    def test_non_contiguous_spans_stay_separate(self):
        piece = IndexSlice(1)
        piece.add_span(0, ValueSpan(KEY, 4, 1))
        piece.add_span(0, ValueSpan(KEY, 9, 1))
        assert len(piece.entries[KEY]) == 2

    def test_different_owners_stay_separate(self):
        piece = IndexSlice(1)
        piece.add_span(0, ValueSpan(KEY, 4, 1))
        piece.add_span(1, ValueSpan(KEY, 5, 1))
        assert len(piece.entries[KEY]) == 2

    def test_vertices_tracked_per_predicate(self):
        piece = make_slice(1, [(0, ValueSpan(KEY, 0, 1)),
                               (0, ValueSpan(OTHER, 0, 1))])
        assert piece.vertices[(3, DIR_OUT)] == {7, 8}


class TestStreamIndex:
    def build(self):
        index = StreamIndex("Like_Stream")
        index.append_slice(make_slice(1, [(0, ValueSpan(KEY, 0, 3))]))
        index.append_slice(make_slice(2, [(0, ValueSpan(KEY, 3, 2)),
                                          (1, ValueSpan(OTHER, 0, 1))]))
        index.append_slice(make_slice(3, [(0, ValueSpan(KEY, 5, 1))]))
        return index

    def test_lookup_spans_by_batch_range(self):
        index = self.build()
        spans = index.lookup_spans(KEY, 2, 3)
        assert [s for _, s in spans] == [ValueSpan(KEY, 3, 2),
                                         ValueSpan(KEY, 5, 1)]
        assert index.lookup_spans(KEY, 4, 9) == []

    def test_vertices_by_batch_range(self):
        index = self.build()
        assert index.vertices(3, DIR_OUT, 1, 1) == [7]
        assert set(index.vertices(3, DIR_OUT, 1, 3)) == {7, 8}

    def test_append_out_of_order_rejected(self):
        index = self.build()
        with pytest.raises(StoreError):
            index.append_slice(make_slice(2, []))

    def test_collect_removes_early_slices(self):
        index = self.build()
        assert index.collect(3) == 2
        assert index.num_slices == 1
        assert index.earliest_batch == 3
        assert index.lookup_spans(KEY, 1, 3) == [(0, ValueSpan(KEY, 5, 1))]

    def test_memory_accounting(self):
        index = self.build()
        before = index.memory_bytes()
        assert before > 0
        index.collect(4)
        assert index.memory_bytes() == 0


class TestRegistry:
    def test_replication_follows_interest(self):
        registry = StreamIndexRegistry()
        registry.create_stream("S")
        assert registry.replicas("S") == set()
        registry.add_interest("S", 2)
        registry.add_interest("S", 2)
        registry.add_interest("S", 5)
        assert registry.replicas("S") == {2, 5}
        assert registry.is_local("S", 2)
        assert not registry.is_local("S", 0)

    def test_replica_dropped_when_last_query_leaves(self):
        registry = StreamIndexRegistry()
        registry.create_stream("S")
        registry.add_interest("S", 1)
        registry.add_interest("S", 1)
        registry.drop_interest("S", 1)
        assert registry.is_local("S", 1)
        registry.drop_interest("S", 1)
        assert not registry.is_local("S", 1)

    def test_drop_without_interest_rejected(self):
        registry = StreamIndexRegistry()
        registry.create_stream("S")
        with pytest.raises(StreamError):
            registry.drop_interest("S", 0)

    def test_duplicate_stream_rejected(self):
        registry = StreamIndexRegistry()
        registry.create_stream("S")
        with pytest.raises(StreamError):
            registry.create_stream("S")

    def test_unknown_stream_rejected(self):
        registry = StreamIndexRegistry()
        with pytest.raises(StreamError):
            registry.index("nope")
        with pytest.raises(StreamError):
            registry.add_interest("nope", 0)

    def test_memory_scales_with_replicas(self):
        registry = StreamIndexRegistry()
        index = registry.create_stream("S")
        index.append_slice(make_slice(1, [(0, ValueSpan(KEY, 0, 4))]))
        one = registry.memory_bytes("S")
        registry.add_interest("S", 0)
        registry.add_interest("S", 1)
        assert registry.memory_bytes("S") == 2 * one
