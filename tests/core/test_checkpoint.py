"""Tests for fault tolerance: logging, checkpoints, crash recovery."""

import pytest

from repro.core.checkpoint import CheckpointManager
from repro.errors import FaultToleranceError, StreamError

from core.test_engine import QC, build_engine, names


def ft_engine(**overrides):
    overrides.setdefault("fault_tolerance", True)
    overrides.setdefault("checkpoint_interval_ms", 2_000)
    return build_engine(**overrides)


class TestLogging:
    def test_batches_are_logged(self):
        engine = ft_engine()
        engine.run_until(3_000)
        assert engine.checkpoints is not None
        assert engine.checkpoints.logged_for_node(0)
        assert engine.checkpoints.logged_for_node(1)

    def test_logging_adds_delay(self):
        plain = build_engine()
        logged = ft_engine()
        plain.run_until(4_000)
        logged.run_until(4_000)
        pick = lambda eng: [r.total_ms for r in eng.injection_records
                            if r.stream == "Tweet_Stream" and r.num_tuples]
        assert sum(pick(logged)) > sum(pick(plain))
        assert logged.checkpoints.mean_logging_delay_ms() > 0


class TestCheckpoints:
    def test_periodic_checkpoints_happen(self):
        engine = ft_engine()
        engine.run_until(8_000)
        assert engine.checkpoints.num_checkpoints >= 2
        marker = engine.checkpoints.latest_marker
        assert marker.stable_vts["Tweet_Stream"] > 0

    def test_checkpoints_ack_sources(self):
        engine = ft_engine()
        before = engine.sources["Tweet_Stream"].backup_size
        engine.run_until(8_000)
        # Acked batches were trimmed from the upstream-backup buffer.
        source = engine.sources["Tweet_Stream"]
        marker = engine.checkpoints.latest_marker
        assert all(b.batch_no > marker.stable_vts["Tweet_Stream"]
                   for b in source.replay(marker.stable_vts["Tweet_Stream"]))

    def test_interval_must_be_positive(self):
        with pytest.raises(FaultToleranceError):
            CheckpointManager(interval_ms=0)


class TestRecovery:
    def test_recovered_node_answers_identically(self):
        engine = ft_engine()
        engine.register_continuous(QC)
        engine.run_until(7_000)
        probe = "SELECT ?X WHERE { Logan po ?X . ?X ht sosp17 }"
        before = names(engine, engine.oneshot(probe, home_node=0).result.rows)

        engine.crash_node(1)
        engine.recover_node(1)
        after = names(engine, engine.oneshot(probe, home_node=0).result.rows)
        assert after == before == [("T-13",), ("T-15",)]

    def test_recovery_restores_every_shard_key(self):
        engine = ft_engine()
        engine.run_until(6_000)
        shard = engine.store.shards[1]
        keys_before = {key: shard.lookup(key) for key in shard.iter_keys()}

        engine.crash_node(1)
        assert engine.store.shards[1].num_keys == 0
        engine.recover_node(1)
        shard = engine.store.shards[1]
        keys_after = {key: shard.lookup(key) for key in shard.iter_keys()}
        assert keys_after == keys_before

    def test_recovery_preserves_stream_index_spans(self):
        engine = ft_engine()
        registered = engine.register_continuous(QC)
        engine.run_until(7_000)
        record_before = engine.continuous.execute_once(registered, 7_000)
        before = names(engine, record_before.result.rows)

        engine.crash_node(0)
        engine.recover_node(0)
        record_after = engine.continuous.execute_once(registered, 7_000)
        assert names(engine, record_after.result.rows) == before

    def test_continuous_processing_continues_after_recovery(self):
        engine = ft_engine()
        engine.register_continuous(QC)
        engine.run_until(5_000)
        engine.crash_node(1)
        engine.recover_node(1)
        records = engine.run_until(10_000)
        latest = {rec.close_ms: names(engine, rec.result.rows)
                  for rec in records}
        assert ("Logan", "Erik", "T-15") in latest[10_000]

    def test_recover_live_node_rejected(self):
        engine = ft_engine()
        engine.run_until(2_000)
        with pytest.raises(FaultToleranceError):
            engine.recover_node(0)

    def test_recover_without_ft_rejected(self):
        engine = build_engine()
        engine.run_until(2_000)
        engine.crash_node(0)
        with pytest.raises(StreamError):
            engine.recover_node(0)
