"""Randomized soak test: arbitrary configurations and stream content.

A final robustness net over the whole engine: random cluster sizes, plan
widths, batch intervals, schemas and stream contents must always run to
completion with the core invariants intact — the stable VTS never exceeds
what was delivered, snapshots stay bounded, stats collect, and one-shot
queries answer.
"""

from hypothesis import given, settings, strategies as st

from repro.core.engine import EngineConfig, WukongSEngine
from repro.core.stats import collect_stats
from repro.rdf.terms import TimedTuple, Triple
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema

USERS = [f"u{i}" for i in range(6)]
THINGS = [f"t{i}" for i in range(6)]
PREDICATES = ["po", "li", "ga"]


config_strategy = st.fixed_dictionaries({
    "num_nodes": st.sampled_from([1, 2, 3, 5]),
    "plan_width": st.sampled_from([1, 2, 5]),
    "batch_interval_ms": st.sampled_from([100, 250, 500]),
    "injector_threads": st.sampled_from([1, 3]),
    "fault_tolerance": st.booleans(),
    "gc_every_ticks": st.sampled_from([0, 2]),
})

events_strategy = st.lists(
    st.tuples(st.sampled_from(USERS), st.sampled_from(PREDICATES),
              st.sampled_from(THINGS), st.integers(0, 3_000)),
    max_size=40)


@settings(max_examples=25, deadline=None)
@given(config=config_strategy, events=events_strategy,
       timing_ga=st.booleans())
def test_engine_survives_arbitrary_runs(config, events, timing_ga):
    schema = StreamSchema("S", frozenset({"ga"}) if timing_ga
                          else frozenset())
    engine = WukongSEngine(schemas=[schema],
                           config=EngineConfig(**config))
    engine.load_static([Triple("u0", "fo", "u1"), Triple("u1", "fo", "u2")])

    tuples = sorted(
        (TimedTuple(Triple(s, p, o), ts) for s, p, o, ts in events),
        key=lambda t: t.timestamp_ms)
    source = StreamSource(engine.schemas["S"])
    source.queue_tuples(tuples, 0, config["batch_interval_ms"])
    engine.attach_source(source)

    if config["batch_interval_ms"] in (100, 250, 500):
        step = config["batch_interval_ms"] * 2
        engine.register_continuous(f"""
            REGISTER QUERY Q AS
            SELECT ?U ?X
            FROM S [RANGE {step * 2}ms STEP {step}ms]
            WHERE {{ GRAPH S {{ ?U po ?X }} }}
        """)

    engine.run_until(4_000)

    # Invariant: stable VTS never exceeds the delivered frontier.
    stable = engine.coordinator.stable_vts().get("S")
    assert stable <= engine._last_delivered["S"]
    # Invariant: bounded scalarization keeps per-key SN segments small.
    for shard in engine.store.shards:
        for values in shard._values.values():
            assert values.distinct_sns() <= config["plan_width"] + 2
    # The engine stays queryable and observable.
    record = engine.oneshot("SELECT ?U ?X WHERE { ?U po ?X }")
    timeless_po = {(t.triple.subject, t.triple.object) for t in tuples
                   if t.triple.predicate == "po"}
    decoded = {(engine.strings.entity_name(a), engine.strings.entity_name(b))
               for a, b in record.result.rows}
    assert decoded <= timeless_po
    stats = collect_stats(engine)
    assert stats.clock_ms == 4_000
    assert stats.format()
