"""Tracer unit behaviour: spans, phases, groups, sampling, nesting."""

import pytest

from repro.obs.trace import ACTIVITY, BRANCH, EVENT, JOIN, PHASE, Tracer
from repro.sim.cost import LatencyMeter


def test_activity_records_meter_readings():
    tracer = Tracer()
    meter = LatencyMeter()
    act = tracer.begin("oneshot", "query", meter, anchor_ms=250)
    meter.charge(1000, category="dispatch")
    act.mark("dispatch")
    meter.charge(500, category="explore")
    act.mark("explore")
    act.end()

    root = tracer.activities("oneshot")[0]
    assert root.kind == ACTIVITY
    assert root.anchor_ms == 250
    assert root.t0 == 0.0 and root.t1 == meter.ns
    assert root.labels["meter_ns"] == meter.ns

    phases = [s for s in tracer.children(root.sid) if s.kind == PHASE]
    assert [p.name for p in phases] == ["dispatch", "explore"]
    assert phases[0].t0 == 0.0 and phases[0].t1 == 1000.0
    assert phases[1].t0 == 1000.0 and phases[1].t1 == 1500.0
    # Phase spans live on the activity's root track.
    assert all(p.track == root.track for p in phases)


def test_group_marks_first_strict_maximum_critical():
    tracer = Tracer()
    meter = LatencyMeter()
    act = tracer.begin("inject", "injection", meter, anchor_ms=0)
    meter.charge(100, category="insert")
    group = act.group("insert")
    branches = []
    for ns in (300.0, 700.0, 700.0):  # tie: the first 700 must win
        branch = meter.spawn()
        branch.charge(ns, category="insert")
        branches.append(branch)
        group.branch(f"b{len(branches)}", branch)
    meter.join_parallel(branches)
    group.close()
    act.end()

    root = tracer.activities("inject")[0]
    joins = [s for s in tracer.children(root.sid) if s.kind == JOIN]
    assert len(joins) == 1
    assert joins[0].t0 == 100.0 and joins[0].t1 == meter.ns
    branch_spans = [s for s in tracer.children(root.sid)
                    if s.kind == BRANCH]
    assert [s.critical for s in branch_spans] == [False, True, False]
    # Each branch rides its own track; t1 is the branch meter's reading.
    assert len({s.track for s in branch_spans}) == 3
    assert [s.t1 for s in branch_spans] == [300.0, 700.0, 700.0]


def test_empty_group_records_no_join():
    tracer = Tracer()
    meter = LatencyMeter()
    act = tracer.begin("inject", "injection", meter, anchor_ms=0)
    group = act.group("insert")
    meter.join_parallel([])
    group.close()
    act.end()
    root = tracer.activities("inject")[0]
    assert [s for s in tracer.children(root.sid) if s.kind == JOIN] == []


def test_sampling_is_per_activity_name():
    tracer = Tracer(sample_every=2)
    for _ in range(4):
        act = tracer.begin("a", "query", LatencyMeter(), anchor_ms=0)
        if act is not None:
            act.end()
    act = tracer.begin("b", "query", LatencyMeter(), anchor_ms=0)
    assert act is not None  # first "b" recorded despite four "a" begins
    act.end()
    assert len(tracer.activities("a")) == 2
    assert len(tracer.activities("b")) == 1


def test_nested_activities_form_a_tree():
    tracer = Tracer()
    outer_meter = LatencyMeter()
    outer = tracer.begin("window", "continuous", outer_meter, anchor_ms=0)
    inner = tracer.begin("oneshot", "query", LatencyMeter(), anchor_ms=0)
    assert tracer.current is inner
    inner.end()
    assert tracer.current is outer
    outer.end()
    roots = tracer.activities()
    assert roots[1].parent == roots[0].sid


def test_event_span_records_completed_interval():
    tracer = Tracer()
    span = tracer.event_span("recover", "chaos", ns=12_345.0,
                             anchor_ms=4_200, node_id=1)
    assert span.kind == EVENT
    assert span.ns == 12_345.0
    assert span.anchor_ms == 4_200
    assert span.labels == {"node_id": 1}


def test_invalid_sample_every_rejected():
    with pytest.raises(ValueError):
        Tracer(sample_every=0)
