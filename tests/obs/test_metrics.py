"""Metrics registry semantics and the collect_metrics engine sweep."""

from repro.core.engine import EngineConfig, WukongSEngine
from repro.obs.metrics import MetricsRegistry, collect_metrics
from repro.rdf.parser import parse_timed_tuples, parse_triples
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema


def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    registry.counter("hits").inc()
    registry.counter("hits").inc(3)
    registry.gauge("entries", node=1).set(42)
    hist = registry.histogram("latency_ns")
    for ns in (500.0, 5_000.0, 2e6):
        hist.observe(ns)

    snap = registry.snapshot()
    assert snap["counters"]["hits"] == 4
    assert snap["gauges"]["entries{node=1}"] == 42
    record = snap["histograms"]["latency_ns"]
    assert record["count"] == 3
    assert record["total_ns"] == 500.0 + 5_000.0 + 2e6
    # 500 -> bucket <=1e3; 5e3 -> <=1e4; 2e6 -> <=1e7.
    assert record["counts"][0] == 1
    assert record["counts"][1] == 1
    assert record["counts"][4] == 1


def test_label_keys_are_order_insensitive():
    registry = MetricsRegistry()
    registry.counter("c", b=2, a=1).inc()
    registry.counter("c", a=1, b=2).inc()
    assert registry.snapshot()["counters"] == {"c{a=1,b=2}": 2}


def test_render_lists_every_metric():
    registry = MetricsRegistry()
    registry.counter("hits").inc(7)
    registry.gauge("depth").set(2.5)
    registry.histogram("lat_ns").observe(1e6)
    text = registry.render()
    assert "hits 7" in text
    assert "depth 2.5" in text
    assert "lat_ns count=1" in text


def _tiny_engine(ticks=6):
    config = EngineConfig(num_nodes=2, batch_interval_ms=100)
    engine = WukongSEngine(schemas=[StreamSchema("S")], config=config)
    engine.load_static(parse_triples(
        "a fo b .\nb fo c .\nc fo a ."))
    source = StreamSource(engine.schemas["S"])
    source.queue_tuples(parse_timed_tuples(
        "\n".join(f"a po p{t} @{100 * t + 10}" for t in range(ticks))),
        0, 100)
    engine.attach_source(source)
    for _ in range(ticks):
        engine.step()
    return engine


def test_collect_metrics_pulls_cache_counters():
    engine = _tiny_engine()
    text = "SELECT ?X WHERE { a fo ?X }"
    engine.oneshot(text)
    engine.oneshot(text)  # plan + parse cache hits
    engine.oneshot("SELECT ?X WHERE { ?X fo b }")

    registry = collect_metrics(engine)
    snap = registry.snapshot()
    assert snap["counters"]["parse_cache_hits"] == 1
    assert snap["counters"]["parse_cache_misses"] == 2
    assert snap["counters"]["plan_cache_hits"] == 1
    assert snap["counters"]["plan_cache_misses"] == 2
    assert snap["counters"]["adjacency_cache_misses"] > 0
    assert snap["counters"]["tuples_injected"] > 0
    assert snap["gauges"]["store_entries"] > 0
    assert "stream_index_slices{stream=S}" in snap["gauges"]


def test_collect_metrics_is_idempotent_and_deterministic():
    engine = _tiny_engine()
    engine.oneshot("SELECT ?X WHERE { a fo ?X }")
    first = collect_metrics(engine).snapshot()
    second = collect_metrics(engine, registry=MetricsRegistry()).snapshot()
    assert first == second  # pulled counters are set, not accumulated

    other = _tiny_engine()
    other.oneshot("SELECT ?X WHERE { a fo ?X }")
    assert collect_metrics(other).snapshot() == first


def test_engine_pushes_latency_histograms_when_attached():
    config = EngineConfig(num_nodes=2, batch_interval_ms=100, tracing=True)
    engine = WukongSEngine(schemas=[StreamSchema("S")], config=config)
    engine.load_static(parse_triples("a fo b ."))
    source = StreamSource(engine.schemas["S"])
    source.queue_tuples(parse_timed_tuples("a po p1 @10\na po p2 @110"),
                        0, 100)
    engine.attach_source(source)
    for _ in range(3):
        engine.step()
    engine.oneshot("SELECT ?X WHERE { a fo ?X }")

    snap = engine.metrics.snapshot()
    assert snap["histograms"]["oneshot_ns"]["count"] == 1
    assert snap["histograms"]["injection_ns{stream=S}"]["count"] >= 2
