"""Tracing must be invisible in simulated time.

Replays the golden determinism workload with the tracer attached and
asserts the recorded simulated facts — every latency and per-category
breakdown — still equal the golden file with exact float equality.  Any
instrumentation that charges a meter (instead of only reading it) fails
here immediately.
"""

import json

import pytest

from core.determinism_workload import GOLDEN_PATH, run_workload


@pytest.fixture(scope="module")
def traced_facts():
    return json.loads(json.dumps(run_workload(tracing=True),
                                 sort_keys=True))


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("variant", ["rdma", "tcp"])
@pytest.mark.parametrize("section", ["continuous", "oneshot",
                                     "time_scoped", "injection"])
def test_traced_run_matches_golden(traced_facts, golden, variant, section):
    assert traced_facts[variant][section] == golden[variant][section], (
        f"{variant}/{section}: enabling tracing changed simulated time")
