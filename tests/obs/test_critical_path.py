"""Critical-path exactness on live engine traces, plus export round-trip.

The acceptance bar for the observability subsystem: for every traced
activity — in particular fork-join one-shot queries — the reconstructed
critical path must sum to the activity meter's reported latency with
**bit-identical** float equality, both on the live tracer's spans and
after a Chrome-trace export/import round trip.
"""

import pytest

from repro.core.engine import EngineConfig, WukongSEngine
from repro.obs.analysis import critical_path, render_flame
from repro.obs.export import (chrome_trace, spans_from_chrome,
                              validate_chrome_trace)
from repro.rdf.parser import parse_timed_tuples, parse_triples
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema

#: An index start (all-variable first pattern): fork-join on RDMA
#: multi-node clusters, migrate on TCP.
FORK_JOIN_QUERY = "SELECT ?X ?Y WHERE { ?X fo ?Y }"

#: A constant start: in-place execution with phase marks only.
IN_PLACE_QUERY = "SELECT ?Y WHERE { u0 fo ?Y }"

CONTINUOUS = """
    REGISTER QUERY QW AS
    SELECT ?X ?P
    FROM S [RANGE 1s STEP 500ms]
    WHERE { GRAPH S { ?X po ?P } }
"""


def build_engine(use_rdma=True, ticks=8):
    config = EngineConfig(num_nodes=2, batch_interval_ms=100,
                          use_rdma=use_rdma, tracing=True)
    engine = WukongSEngine(schemas=[StreamSchema("S")], config=config)
    engine.load_static(parse_triples("\n".join(
        f"u{i} fo u{(i + 1) % 6} ." for i in range(6))))
    source = StreamSource(engine.schemas["S"])
    source.queue_tuples(parse_timed_tuples(
        "\n".join(f"u{t % 6} po p{t} @{100 * t + 10}"
                  for t in range(ticks))), 0, 100)
    engine.attach_source(source)
    engine.register_continuous(CONTINUOUS)
    for _ in range(ticks):
        engine.step()
    return engine


def assert_exact(spans, activity):
    path = critical_path(spans, activity)
    assert path.exact, path.problems
    assert path.total_ns == activity.labels["meter_ns"]
    return path


@pytest.mark.parametrize("use_rdma", [True, False])
def test_every_activity_reconstructs_exactly(use_rdma):
    engine = build_engine(use_rdma=use_rdma)
    records = [engine.oneshot(FORK_JOIN_QUERY),
               engine.oneshot(IN_PLACE_QUERY)]
    tracer = engine.tracer
    activities = tracer.activities()
    kinds = {a.name for a in activities}
    assert {"oneshot", "window", "inject"} <= kinds
    for activity in activities:
        assert_exact(tracer.spans, activity)
    # The oneshot activities' meter_ns match the records' meters.
    oneshots = tracer.activities("oneshot")
    for record, activity in zip(records, oneshots[-2:]):
        assert activity.labels["meter_ns"] == record.meter.ns


@pytest.mark.parametrize("use_rdma", [True, False])
def test_fork_join_path_includes_critical_branches(use_rdma):
    engine = build_engine(use_rdma=use_rdma)
    record = engine.oneshot(FORK_JOIN_QUERY)
    activity = engine.tracer.activities("oneshot")[-1]
    path = assert_exact(engine.tracer.spans, activity)
    branch_segments = [s for s in path.segments if s.kind == "branch"]
    assert branch_segments, \
        "a distributed index-start query must cross at least one join"
    assert path.total_ns == record.meter.ns


def test_injection_joins_reconstruct_exactly():
    engine = build_engine()
    injections = engine.tracer.activities("inject")
    assert injections
    for activity in injections:
        path = assert_exact(engine.tracer.spans, activity)
        assert any(s.kind == "branch" for s in path.segments)


def test_chrome_round_trip_preserves_exactness():
    engine = build_engine()
    engine.oneshot(FORK_JOIN_QUERY)
    document = chrome_trace(engine.tracer)
    assert validate_chrome_trace(document) == []

    spans = spans_from_chrome(document)
    assert len(spans) == len(engine.tracer.spans)
    by_sid = {s.sid: s for s in spans}
    for original in engine.tracer.spans:
        restored = by_sid[original.sid]
        assert restored.t0 == original.t0
        assert restored.t1 == original.t1
        assert restored.labels == original.labels
    for activity in (s for s in spans if s.kind == "activity"):
        assert_exact(spans, activity)


def test_tampered_trace_is_detected():
    engine = build_engine()
    engine.oneshot(FORK_JOIN_QUERY)
    spans = spans_from_chrome(chrome_trace(engine.tracer))
    joins = [s for s in spans if s.kind == "join"]
    assert joins
    joins[0].t1 += 1.0  # corrupt one reading by a single nanosecond
    activity = next(s for s in spans if s.sid == joins[0].parent)
    path = critical_path(spans, activity)
    assert not path.exact


def test_flame_render_shows_phases_and_branches():
    engine = build_engine()
    engine.oneshot(FORK_JOIN_QUERY)
    activity = engine.tracer.activities("oneshot")[-1]
    text = render_flame(engine.tracer.spans, activity)
    assert "oneshot [query]" in text
    assert "phase:dispatch" in text
    assert "join:" in text and "*" in text  # a marked critical branch


def test_sampled_tracer_records_fewer_activities():
    config = EngineConfig(num_nodes=2, batch_interval_ms=100,
                          tracing=True, trace_sample_every=4)
    engine = WukongSEngine(schemas=[StreamSchema("S")], config=config)
    engine.load_static(parse_triples("a fo b ."))
    source = StreamSource(engine.schemas["S"])
    source.queue_tuples(parse_timed_tuples(
        "\n".join(f"a po p{t} @{100 * t + 10}" for t in range(8))), 0, 100)
    engine.attach_source(source)
    for _ in range(8):
        engine.step()
    injections = engine.tracer.activities("inject")
    assert 0 < len(injections) <= 2  # 8 batches, every 4th recorded
    for activity in injections:
        assert_exact(engine.tracer.spans, activity)
