"""Shared pytest configuration.

Puts the tests directory on ``sys.path`` so test modules can import shared
helpers across subpackages (e.g. ``baselines.helpers``, ``core.test_engine``
fixtures).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
