"""Tests for the string server."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StoreError
from repro.rdf.string_server import StringServer
from repro.rdf.terms import TimedTuple, Triple


def test_ids_are_stable():
    server = StringServer()
    first = server.entity_id("Logan")
    assert server.entity_id("Logan") == first


def test_entity_ids_start_after_index_vid():
    server = StringServer()
    assert server.entity_id("anything") >= 1


def test_entities_and_predicates_are_separate_spaces():
    server = StringServer()
    vid = server.entity_id("po")
    eid = server.predicate_id("po")
    assert server.entity_name(vid) == "po"
    assert server.predicate_name(eid) == "po"


def test_reverse_lookup_roundtrip():
    server = StringServer()
    for name in ["Logan", "Erik", "T-15"]:
        assert server.entity_name(server.entity_id(name)) == name


def test_reverse_lookup_of_index_vid_rejected():
    with pytest.raises(StoreError):
        StringServer().entity_name(0)


def test_unknown_ids_rejected():
    server = StringServer()
    with pytest.raises(StoreError):
        server.entity_name(99)
    with pytest.raises(StoreError):
        server.predicate_name(99)


def test_lookup_does_not_allocate():
    server = StringServer()
    assert server.lookup_entity("ghost") is None
    assert server.lookup_predicate("ghost") is None
    assert server.num_entities == 0
    assert server.num_predicates == 0


def test_encode_decode_triple():
    server = StringServer()
    triple = Triple("Logan", "po", "T-15")
    enc = server.encode_triple(triple)
    assert server.decode_triple(enc) == triple


def test_encode_tuple_keeps_timestamp():
    server = StringServer()
    enc = server.encode_tuple(TimedTuple(Triple("Logan", "po", "T-15"), 802))
    assert enc.timestamp_ms == 802


def test_counts():
    server = StringServer()
    server.encode_triple(Triple("a", "p", "b"))
    server.encode_triple(Triple("a", "q", "c"))
    assert server.num_entities == 3
    assert server.num_predicates == 2


@given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=30))
def test_distinct_names_get_distinct_ids(names):
    server = StringServer()
    ids = [server.entity_id(n) for n in names]
    assert len(set(ids)) == len(set(names))
    for name, vid in zip(names, ids):
        assert server.entity_name(vid) == name
