"""Tests for RDF text parsing."""

import pytest

from repro.errors import ParseError
from repro.rdf.parser import (format_triples, parse_timed_tuples,
                              parse_triples)
from repro.rdf.terms import TimedTuple, Triple


def test_parse_triples_basic():
    triples = parse_triples("Logan fo Erik .\nLogan po T-13")
    assert triples == [Triple("Logan", "fo", "Erik"),
                       Triple("Logan", "po", "T-13")]


def test_comments_and_blank_lines_skipped():
    text = """
    # the X-Lab graph
    Logan fo Erik .

    Erik fo Logan   # mutual
    """
    assert len(parse_triples(text)) == 2


def test_iri_brackets_stripped():
    triples = parse_triples("<http://x/Logan> <fo> <http://x/Erik> .")
    assert triples[0].subject == "http://x/Logan"
    assert triples[0].predicate == "fo"


def test_quoted_literals_keep_spaces():
    triples = parse_triples('T-15 body "hello sosp world" .')
    assert triples[0].object == "hello sosp world"


def test_wrong_arity_rejected():
    with pytest.raises(ParseError):
        parse_triples("only two")
    with pytest.raises(ParseError):
        parse_triples("one two three four five")


def test_parse_timed_tuples():
    tuples = parse_timed_tuples("Logan po T-15 @802\nErik li T-15 @806")
    assert tuples[0] == TimedTuple(Triple("Logan", "po", "T-15"), 802)
    assert tuples[1].timestamp_ms == 806


def test_timed_tuple_requires_at_sign():
    with pytest.raises(ParseError):
        parse_timed_tuples("Logan po T-15 802")


def test_timed_tuple_bad_timestamp():
    with pytest.raises(ParseError):
        parse_timed_tuples("Logan po T-15 @soon")


def test_parse_error_reports_line():
    try:
        parse_triples("good p1 x .\nbad line")
    except ParseError as exc:
        assert exc.line == 2
    else:
        pytest.fail("expected ParseError")


def test_format_roundtrip():
    triples = [Triple("a", "p", "b"), Triple("c", "q", "d")]
    assert parse_triples(format_triples(triples)) == triples
