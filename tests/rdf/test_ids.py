"""Tests for key packing/unpacking."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StoreError
from repro.rdf.ids import (DIR_IN, DIR_OUT, INDEX_VID, MAX_EID, MAX_VID,
                           index_key, key_vid, make_key, split_key)


def test_roundtrip_simple():
    key = make_key(7, 4, DIR_OUT)
    assert split_key(key) == (7, 4, DIR_OUT)


def test_paper_fig6_keys_are_distinct():
    # [1|4|1] (Logan's po out-edges) vs [0|4|0] (po index, in direction).
    logan_posts = make_key(1, 4, DIR_OUT)
    po_index = index_key(4, DIR_IN)
    assert logan_posts != po_index
    assert split_key(po_index) == (INDEX_VID, 4, DIR_IN)


def test_key_vid_extraction():
    assert key_vid(make_key(12345, 6, DIR_IN)) == 12345


def test_bounds_enforced():
    with pytest.raises(StoreError):
        make_key(MAX_VID + 1, 0, DIR_IN)
    with pytest.raises(StoreError):
        make_key(0, MAX_EID + 1, DIR_IN)
    with pytest.raises(StoreError):
        make_key(0, 0, 2)
    with pytest.raises(StoreError):
        make_key(-1, 0, DIR_IN)


def test_extremes_roundtrip():
    key = make_key(MAX_VID, MAX_EID, DIR_OUT)
    assert split_key(key) == (MAX_VID, MAX_EID, DIR_OUT)


@given(vid=st.integers(min_value=0, max_value=MAX_VID),
       eid=st.integers(min_value=0, max_value=MAX_EID),
       d=st.sampled_from([DIR_IN, DIR_OUT]))
def test_roundtrip_property(vid, eid, d):
    assert split_key(make_key(vid, eid, d)) == (vid, eid, d)


@given(a=st.tuples(st.integers(0, MAX_VID), st.integers(0, MAX_EID),
                   st.sampled_from([DIR_IN, DIR_OUT])),
       b=st.tuples(st.integers(0, MAX_VID), st.integers(0, MAX_EID),
                   st.sampled_from([DIR_IN, DIR_OUT])))
def test_packing_is_injective(a, b):
    if a != b:
        assert make_key(*a) != make_key(*b)
