"""Tests for FILTER expressions and aggregate parsing + evaluation."""

import pytest

from repro.errors import ParseError, PlanError
from repro.rdf.string_server import StringServer
from repro.sparql.ast import Aggregate, FilterExpr
from repro.sparql.evaluate import (aggregate_rows, apply_filters,
                                   filter_matches, filters_by_step,
                                   term_number)
from repro.sparql.parser import parse_query


class TestParsing:
    def test_filter_parses(self):
        query = parse_query(
            "SELECT ?x ?y WHERE { ?x p ?y . FILTER (?y > 10) }")
        assert query.filters == [FilterExpr("?y", ">", "10")]

    def test_filter_in_graph_group(self):
        query = parse_query("""
            SELECT ?x ?v FROM S [RANGE 1s STEP 1s] WHERE {
                GRAPH S { ?x temp ?v . FILTER (?v >= 30) }
            }""")
        assert query.filters == [FilterExpr("?v", ">=", "30")]

    def test_all_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            query = parse_query(
                f"SELECT ?x ?y WHERE {{ ?x p ?y . FILTER (?y {op} 5) }}")
            assert query.filters[0].op == op

    def test_count_star(self):
        query = parse_query(
            "SELECT COUNT(*) AS ?n WHERE { ?x p ?y }")
        assert query.aggregates == [Aggregate("COUNT", None, "?n")]
        assert query.output_columns() == ["?n"]

    def test_group_by_aggregate(self):
        query = parse_query("""
            SELECT ?x COUNT(?y) AS ?n AVG(?y) AS ?mean
            WHERE { ?x p ?y } GROUP BY ?x""")
        assert len(query.aggregates) == 2
        assert query.group_by == ["?x"]
        assert query.output_columns() == ["?x", "?n", "?mean"]

    def test_iri_still_parses_next_to_comparisons(self):
        query = parse_query(
            "SELECT ?x ?y WHERE { ?x <p> ?y . FILTER (?y < 5) . "
            "FILTER (?y > 1) }")
        assert query.patterns[0].predicate == "p"
        assert len(query.filters) == 2

    def test_filter_unbound_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?x WHERE { ?x p o . FILTER (?z = 1) }")

    def test_bare_select_var_needs_group_by(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?x COUNT(?y) AS ?n WHERE { ?x p ?y }")

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?x WHERE { ?x p ?y } GROUP BY ?x")

    def test_sum_star_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT SUM(*) AS ?s WHERE { ?x p ?y }")

    def test_alias_collision_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNT(?y) AS ?x WHERE { ?x p ?y }")


class TestFilterEvaluation:
    def setup_method(self):
        self.strings = StringServer()
        self.v5 = self.strings.entity_id("5")
        self.v10 = self.strings.entity_id("10")
        self.logan = self.strings.entity_id("Logan")

    def match(self, expr, row):
        return filter_matches(expr, row, self.strings.entity_name,
                              self.strings.lookup_entity)

    def test_numeric_comparisons(self):
        row = {"?x": self.v5}
        assert self.match(FilterExpr("?x", "<", "10"), row)
        assert not self.match(FilterExpr("?x", ">", "10"), row)
        assert self.match(FilterExpr("?x", "<=", "5"), row)
        assert self.match(FilterExpr("?x", ">=", "5"), row)

    def test_equality_on_entities(self):
        row = {"?x": self.logan}
        assert self.match(FilterExpr("?x", "=", "Logan"), row)
        assert self.match(FilterExpr("?x", "!=", "Erik"), row)

    def test_var_to_var(self):
        row = {"?a": self.v5, "?b": self.v10}
        assert self.match(FilterExpr("?a", "<", "?b"), row)
        assert self.match(FilterExpr("?a", "!=", "?b"), row)

    def test_non_numeric_ordering_eliminates(self):
        row = {"?x": self.logan}
        assert not self.match(FilterExpr("?x", "<", "10"), row)

    def test_apply_filters_keeps_matching_rows(self):
        rows = [{"?x": self.v5}, {"?x": self.v10}]
        kept = apply_filters(rows, [FilterExpr("?x", ">", "7")],
                             self.strings.entity_name,
                             self.strings.lookup_entity)
        assert kept == [{"?x": self.v10}]

    def test_term_number(self):
        assert term_number("5") == 5.0
        assert term_number("-2.5") == -2.5
        assert term_number("Spots95") is None

    def test_filters_by_step_schedule(self):
        query = parse_query(
            "SELECT ?x ?y WHERE { a p ?x . ?x q ?y . FILTER (?y > 1) . "
            "FILTER (?x != b) }")
        schedule, leftover = filters_by_step(query, [{"?x"}, {"?x", "?y"}])
        assert [f.op for f in schedule[0]] == ["!="]
        assert [f.op for f in schedule[1]] == [">"]
        assert leftover == []

    def test_filters_on_optional_vars_become_leftovers(self):
        query = parse_query(
            "SELECT ?x ?y WHERE { a p ?x . OPTIONAL { ?x q ?y } . "
            "FILTER (?y > 1) }")
        schedule, leftover = filters_by_step(query, [{"?x"}])
        assert schedule == [[]]
        assert [f.op for f in leftover] == [">"]


class TestAggregation:
    def setup_method(self):
        self.strings = StringServer()
        self.ids = {name: self.strings.entity_id(name)
                    for name in ("a", "b", "10", "20", "30", "zzz")}

    def rows(self, pairs):
        return [{"?g": self.ids[g], "?v": self.ids[v]} for g, v in pairs]

    def aggregate(self, text, rows):
        query = parse_query(text)
        return aggregate_rows(rows, query, self.strings.entity_name)

    def test_count_group_by(self):
        rows = self.rows([("a", "10"), ("a", "20"), ("b", "30")])
        out = self.aggregate(
            "SELECT ?g COUNT(?v) AS ?n WHERE { ?g p ?v } GROUP BY ?g", rows)
        assert out == [(self.ids["a"], 2), (self.ids["b"], 1)]

    def test_sum_and_avg(self):
        rows = self.rows([("a", "10"), ("a", "20")])
        out = self.aggregate(
            "SELECT ?g SUM(?v) AS ?s AVG(?v) AS ?m WHERE { ?g p ?v } "
            "GROUP BY ?g", rows)
        assert out == [(self.ids["a"], 30.0, 15.0)]

    def test_min_max_numeric(self):
        rows = self.rows([("a", "10"), ("a", "30")])
        out = self.aggregate(
            "SELECT ?g MIN(?v) AS ?lo MAX(?v) AS ?hi WHERE { ?g p ?v } "
            "GROUP BY ?g", rows)
        assert out == [(self.ids["a"], 10.0, 30.0)]

    def test_min_lexicographic_fallback(self):
        rows = self.rows([("a", "10"), ("a", "zzz")])
        out = self.aggregate(
            "SELECT ?g MIN(?v) AS ?lo WHERE { ?g p ?v } GROUP BY ?g", rows)
        assert out == [(self.ids["a"], "10")]

    def test_count_star_global(self):
        rows = self.rows([("a", "10"), ("b", "20")])
        out = self.aggregate(
            "SELECT COUNT(*) AS ?n WHERE { ?g p ?v }", rows)
        assert out == [(2,)]

    def test_duplicate_solutions_counted_once(self):
        rows = self.rows([("a", "10"), ("a", "10")])
        out = self.aggregate(
            "SELECT ?g COUNT(?v) AS ?n WHERE { ?g p ?v } GROUP BY ?g", rows)
        assert out == [(self.ids["a"], 1)]

    def test_avg_of_nothing_is_none(self):
        rows = self.rows([("a", "zzz")])
        out = self.aggregate(
            "SELECT ?g AVG(?v) AS ?m WHERE { ?g p ?v } GROUP BY ?g", rows)
        assert out == [(self.ids["a"], None)]
