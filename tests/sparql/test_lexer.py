"""Unit tests for the tokenizer."""

import pytest

from repro.errors import ParseError
from repro.sparql.lexer import Token, TokenCursor, tokenize


def texts(source):
    return [t.text for t in tokenize(source)]


class TestTokenize:
    def test_basic_stream(self):
        assert texts("SELECT ?X { ?X po T-13 . }") == \
            ["SELECT", "?X", "{", "?X", "po", "T-13", ".", "}"]

    def test_iri_delimiters_stripped(self):
        assert texts("<http://a/b> p <c>") == ["http://a/b", "p", "c"]

    def test_string_literal(self):
        assert texts('?x body "hello world"') == ["?x", "body",
                                                  "hello world"]

    def test_comments_stripped(self):
        assert texts("a p b # trailing comment\nc q d") == \
            ["a", "p", "b", "c", "q", "d"]

    def test_comparison_operators(self):
        assert texts("FILTER ( ?x <= 5 )") == \
            ["FILTER", "(", "?x", "<=", "5", ")"]
        assert texts("?a != ?b") == ["?a", "!=", "?b"]
        assert texts("?a<?b") == ["?a", "<", "?b"]

    def test_less_than_vs_iri(self):
        # '<' followed by a space-free '>' is an IRI...
        assert texts("?x <p> ?y") == ["?x", "p", "?y"]
        # ...but a '<' whose '>' lies past whitespace is a comparison.
        assert texts("FILTER (?x < 5) FILTER (?y > 2)") == \
            ["FILTER", "(", "?x", "<", "5", ")",
             "FILTER", "(", "?y", ">", "2", ")"]

    def test_unterminated_string_rejected(self):
        with pytest.raises(ParseError):
            tokenize('?x p "oops')

    def test_positions_tracked(self):
        tokens = tokenize("a p b\nc q d")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[3].line == 2 and tokens[3].column == 1

    def test_brackets_and_star(self):
        assert texts("SELECT * [RANGE 1s]") == \
            ["SELECT", "*", "[", "RANGE", "1s", "]"]


class TestCursor:
    def test_expect_case_insensitive(self):
        cursor = TokenCursor(tokenize("select ?x"))
        cursor.expect("SELECT")
        assert cursor.next().text == "?x"
        assert cursor.exhausted

    def test_expect_mismatch(self):
        cursor = TokenCursor(tokenize("ASK"))
        with pytest.raises(ParseError):
            cursor.expect("SELECT")

    def test_accept_consumes_only_on_match(self):
        cursor = TokenCursor(tokenize("a b"))
        assert not cursor.accept("b")
        assert cursor.accept("a")
        assert cursor.accept("b")

    def test_next_past_end(self):
        cursor = TokenCursor([])
        with pytest.raises(ParseError):
            cursor.next()

    def test_peek_with_offset(self):
        cursor = TokenCursor(tokenize("a b c"))
        assert cursor.peek(2).text == "c"
        assert cursor.peek(3) is None
