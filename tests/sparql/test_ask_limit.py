"""Tests for ASK queries and LIMIT/OFFSET."""

import pytest

from repro.errors import ParseError
from repro.sparql.parser import parse_query

from core.test_engine import build_engine


class TestParsing:
    def test_ask_parses(self):
        query = parse_query("ASK WHERE { Logan po ?X }")
        assert query.is_ask
        assert not query.select

    def test_limit_offset(self):
        query = parse_query(
            "SELECT ?X WHERE { ?U po ?X } LIMIT 10 OFFSET 5")
        assert query.limit == 10
        assert query.offset == 5

    def test_limit_alone(self):
        query = parse_query("SELECT ?X WHERE { ?U po ?X } LIMIT 3")
        assert query.limit == 3
        assert query.offset == 0

    def test_bad_limit_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?X WHERE { ?U po ?X } LIMIT many")
        with pytest.raises(ParseError):
            parse_query("SELECT ?X WHERE { ?U po ?X } LIMIT -1")

    def test_group_by_then_limit(self):
        query = parse_query(
            "SELECT ?U COUNT(?P) AS ?n WHERE { ?U po ?P } "
            "GROUP BY ?U LIMIT 2")
        assert query.limit == 2
        assert query.aggregates


class TestExecution:
    @pytest.fixture
    def engine(self):
        eng = build_engine()
        eng.run_until(4_000)
        return eng

    def test_ask_true_false(self, engine):
        yes = engine.oneshot("ASK WHERE { Logan po ?X }")
        assert yes.result.as_bool()
        no = engine.oneshot("ASK WHERE { Nobody po ?X }")
        assert not no.result.as_bool()

    def test_ask_constant_only(self, engine):
        yes = engine.oneshot("ASK WHERE { Logan fo Erik }")
        assert yes.result.as_bool()
        no = engine.oneshot("ASK WHERE { Erik fo Tony }")
        assert not no.result.as_bool()

    def test_limit_truncates(self, engine):
        full = engine.oneshot("SELECT ?U ?P WHERE { ?U po ?P }")
        limited = engine.oneshot(
            "SELECT ?U ?P WHERE { ?U po ?P } LIMIT 2")
        assert len(limited.result.rows) == 2
        assert limited.result.rows == full.result.rows[:2]

    def test_offset_skips(self, engine):
        full = engine.oneshot("SELECT ?U ?P WHERE { ?U po ?P }")
        sliced = engine.oneshot(
            "SELECT ?U ?P WHERE { ?U po ?P } LIMIT 2 OFFSET 1")
        assert sliced.result.rows == full.result.rows[1:3]

    def test_limit_on_aggregates(self, engine):
        record = engine.oneshot(
            "SELECT ?U COUNT(?P) AS ?n WHERE { ?U po ?P } "
            "GROUP BY ?U LIMIT 1")
        assert len(record.result.rows) == 1

    def test_baselines_honor_ask_and_limit(self, engine):
        from repro.baselines.csparql_engine import CSparqlEngine
        from repro.rdf.parser import parse_triples
        from core.test_engine import XLAB

        baseline = CSparqlEngine()
        baseline.load_static(parse_triples(XLAB))
        rows, _ = baseline.execute_oneshot(
            parse_query("SELECT ?X WHERE { Logan po ?X }"))
        assert len(rows) == 2

        from repro.baselines.spark import SparkStreamingEngine
        spark = SparkStreamingEngine()
        spark.load_static(parse_triples(XLAB))
        limited, _ = spark.execute_oneshot(
            parse_query("SELECT ?X WHERE { Logan po ?X } LIMIT 1"))
        assert len(limited) == 1
        asked, _ = spark.execute_oneshot(
            parse_query("ASK WHERE { Logan po ?X }"))
        assert asked == [()]
