"""Tests for the SPARQL / C-SPARQL parser."""

import pytest

from repro.errors import ParseError
from repro.sparql.ast import WindowSpec
from repro.sparql.parser import parse_query

QC = """
REGISTER QUERY QC AS
SELECT ?X ?Y ?Z
FROM Tweet_Stream [RANGE 10s STEP 1s]
FROM Like_Stream [RANGE 5s STEP 1s]
FROM X-Lab
WHERE {
  GRAPH Tweet_Stream { ?X po ?Z }
  GRAPH X-Lab { ?X fo ?Y }
  GRAPH Like_Stream { ?Y li ?Z }
}
"""


def test_parse_paper_continuous_query():
    query = parse_query(QC)
    assert query.name == "QC"
    assert query.is_continuous
    assert query.select == ["?X", "?Y", "?Z"]
    assert query.windows["Tweet_Stream"] == WindowSpec(10_000, 1_000)
    assert query.windows["Like_Stream"] == WindowSpec(5_000, 1_000)
    assert query.static_graphs == ["X-Lab"]
    assert len(query.patterns) == 3
    assert query.patterns[0].graph == "Tweet_Stream"
    assert query.patterns[1].graph == "X-Lab"


def test_parse_paper_oneshot_query():
    query = parse_query("""
        SELECT ?X
        FROM X-Lab
        WHERE { Logan po ?X . ?X ht #sosp17-tag . Erik li ?X }
    """.replace("#sosp17-tag", "sosp17"))
    assert not query.is_continuous
    assert len(query.patterns) == 3
    assert query.patterns[0].graph is None


def test_select_star():
    query = parse_query("SELECT * WHERE { ?A p ?B }")
    assert query.select == []
    assert query.projected() == ["?A", "?B"]


def test_durations():
    query = parse_query(
        "SELECT ?X FROM S [RANGE 500ms STEP 100ms] WHERE "
        "{ GRAPH S { ?X p o } }")
    assert query.windows["S"] == WindowSpec(500, 100)
    query = parse_query(
        "SELECT ?X FROM S [RANGE 2m STEP 1m] WHERE { GRAPH S { ?X p o } }")
    assert query.windows["S"].range_ms == 120_000


def test_keywords_case_insensitive():
    query = parse_query(
        "select ?X from S [range 1s step 1s] where { graph S { ?X p o } }")
    assert "S" in query.windows


def test_nested_graph_groups():
    query = parse_query("""
        SELECT ?X WHERE {
            GRAPH A { ?X p ?Y . ?Y q ?Z }
            ?X r c
        }
    """)
    assert [p.graph for p in query.patterns] == ["A", "A", None]


def test_bad_duration_rejected():
    with pytest.raises(ParseError):
        parse_query("SELECT ?X FROM S [RANGE soon STEP 1s] WHERE "
                    "{ GRAPH S { ?X p o } }")


def test_duplicate_stream_rejected():
    with pytest.raises(ParseError):
        parse_query("SELECT ?X FROM S [RANGE 1s STEP 1s] "
                    "FROM S [RANGE 2s STEP 1s] WHERE { GRAPH S { ?X p o } }")


def test_empty_where_rejected():
    with pytest.raises(ParseError):
        parse_query("SELECT ?X WHERE { }")


def test_undeclared_graph_rejected():
    with pytest.raises(ParseError):
        parse_query("SELECT ?X FROM A WHERE { GRAPH B { ?X p o } }")


def test_unbound_select_variable_rejected():
    with pytest.raises(ParseError):
        parse_query("SELECT ?Z WHERE { ?X p ?Y }")


def test_trailing_tokens_rejected():
    with pytest.raises(ParseError):
        parse_query("SELECT ?X WHERE { ?X p o } garbage")


def test_select_requires_variables():
    with pytest.raises(ParseError):
        parse_query("SELECT WHERE { ?X p o }")


def test_prefix_expansion():
    query = parse_query("""
        PREFIX sn: <http://social.net/>
        SELECT ?X WHERE { sn:Logan sn:po ?X . ?X sn:ht sn:sosp17 }
    """)
    assert query.patterns[0].subject == "http://social.net/Logan"
    assert query.patterns[0].predicate == "http://social.net/po"
    assert query.patterns[1].object == "http://social.net/sosp17"


def test_prefix_expansion_in_filters_and_graphs():
    query = parse_query("""
        PREFIX sn: <http://social.net/>
        SELECT ?X
        FROM sn:Stream [RANGE 1s STEP 1s]
        WHERE {
            GRAPH sn:Stream { ?X sn:po ?P . FILTER (?X != sn:Erik) }
        }
    """)
    assert "http://social.net/Stream" in query.windows
    assert query.patterns[0].graph == "http://social.net/Stream"
    assert query.filters[0].right == "http://social.net/Erik"


def test_unknown_prefix_left_alone():
    query = parse_query(
        "PREFIX sn: <http://s/> SELECT ?X WHERE { other:Logan sn:po ?X }")
    assert query.patterns[0].subject == "other:Logan"


def test_select_distinct_accepted():
    query = parse_query("SELECT DISTINCT ?X WHERE { Logan po ?X }")
    assert query.select == ["?X"]


def test_window_step_zero_rejected():
    with pytest.raises(ValueError):
        parse_query("SELECT ?X FROM S [RANGE 1s STEP 0s] WHERE "
                    "{ GRAPH S { ?X p o } }")
