"""Tests for OPTIONAL (left outer join) across engines."""

import pytest

from repro.baselines.composite import CompositeEngine
from repro.baselines.csparql_engine import CSparqlEngine
from repro.baselines.spark import SparkStreamingEngine
from repro.errors import ParseError, UnsupportedOperationError
from repro.rdf.parser import parse_triples
from repro.sim.cluster import Cluster
from repro.sparql.parser import parse_query

from core.test_engine import build_engine, names

OPTIONAL_TAGS = """
SELECT ?P ?T WHERE {
    Logan po ?P .
    OPTIONAL { ?P ht ?T }
}
"""


class TestParsing:
    def test_optional_group_parses(self):
        query = parse_query(OPTIONAL_TAGS)
        assert len(query.patterns) == 1
        assert len(query.optionals) == 1
        assert query.optionals[0][0].predicate == "ht"

    def test_optional_variables_selectable(self):
        query = parse_query(OPTIONAL_TAGS)
        assert query.variables() == ["?P", "?T"]

    def test_nested_optional_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?x ?y WHERE { a p ?x . "
                        "OPTIONAL { ?x q ?y . OPTIONAL { ?y r ?z } } }")

    def test_empty_optional_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?x WHERE { a p ?x . OPTIONAL { } }")

    def test_graph_inside_optional(self):
        query = parse_query("""
            SELECT ?x ?v FROM S [RANGE 1s STEP 1s] WHERE {
                ?x p c .
                OPTIONAL { GRAPH S { ?x temp ?v } }
            }""")
        assert query.optionals[0][0].graph == "S"


class TestEngineExecution:
    @pytest.fixture
    def engine(self):
        eng = build_engine()
        eng.run_until(4_000)
        return eng

    def test_unmatched_rows_survive(self, engine):
        record = engine.oneshot(OPTIONAL_TAGS)
        rows = record.result.rows
        by_post = {engine.strings.entity_name(p):
                   (engine.strings.entity_name(t) if t > 0 else None)
                   for p, t in rows}
        # T-13 and T-15 carry the sosp17 hashtag; T-14 has none but stays.
        assert by_post["T-13"] == "sosp17"
        assert by_post["T-15"] == "sosp17"
        assert by_post["T-14"] is None

    def test_optional_over_stream_window(self, engine):
        engine.run_until(10_000)  # T-16 arrives at 5.1s
        record = engine.oneshot_time_scoped("""
            SELECT ?U ?T ?L
            FROM Tweet_Stream [RANGE 1s STEP 1s]
            WHERE {
                GRAPH Tweet_Stream { ?U po ?T }
                OPTIONAL { GRAPH Tweet_Stream { ?T ga ?L } }
            }""", 0, 10_000)
        by_tweet = {engine.strings.entity_name(t):
                    (engine.strings.entity_name(l) if l > 0 else None)
                    for _, t, l in record.result.rows}
        assert by_tweet["T-15"] == "loc31121"
        assert by_tweet["T-16"] == "loc4174"

    def test_filter_on_optional_variable(self, engine):
        record = engine.oneshot("""
            SELECT ?P ?T WHERE {
                Logan po ?P .
                OPTIONAL { ?P ht ?T }
                FILTER (?T = sosp17)
            }""")
        # Rows without a hashtag fail the filter (error-as-false).
        posts = {engine.strings.entity_name(p)
                 for p, _ in record.result.rows}
        assert posts == {"T-13", "T-15"}

    def test_two_optional_groups(self, engine):
        record = engine.oneshot("""
            SELECT ?P ?T ?L WHERE {
                Logan po ?P .
                OPTIONAL { ?P ht ?T }
                OPTIONAL { ?L li ?P }
            }""")
        decoded = [(engine.strings.entity_name(p),
                    engine.strings.entity_name(t) if t > 0 else None,
                    engine.strings.entity_name(l) if l > 0 else None)
                   for p, t, l in record.result.rows]
        # T-13 has a hashtag but no likes; T-14 has a like but no hashtag;
        # T-15 (absorbed from the stream) has a hashtag and no likes yet.
        assert ("T-13", "sosp17", None) in decoded
        assert ("T-14", None, "Erik") in decoded
        assert ("T-15", "sosp17", None) in decoded


class TestBaselines:
    def feed(self, engine):
        from core.test_engine import XLAB
        engine.load_static(parse_triples(XLAB))
        return engine

    def test_csparql_matches_wukongs(self):
        integrated = build_engine()
        integrated.run_until(1_000)
        want = {(a, b) for a, b in (
            (integrated.strings.entity_name(p),
             integrated.strings.entity_name(t) if t > 0 else None)
            for p, t in integrated.oneshot(OPTIONAL_TAGS).result.rows)}

        baseline = self.feed(CSparqlEngine())
        rows, _ = baseline.execute_oneshot(parse_query(
            "SELECT ?P WHERE { Logan po ?P }"))
        # CSPARQL one-shot path has no optional support historically;
        # run the optional through the continuous path instead.
        rows, _ = baseline.execute_continuous(parse_query(OPTIONAL_TAGS), 0)
        got = {(baseline.strings.entity_name(p),
                baseline.strings.entity_name(t) if t > 0 else None)
               for p, t in rows}
        # The integrated engine additionally absorbed streamed tweets.
        assert got <= want
        assert ("T-14", None) in got

    def test_spark_left_join(self):
        baseline = self.feed(SparkStreamingEngine())
        rows, _ = baseline.execute_continuous(parse_query(OPTIONAL_TAGS), 0)
        decoded = {(baseline.strings.entity_name(p),
                    baseline.strings.entity_name(t) if t > 0 else None)
                   for p, t in rows}
        assert ("T-13", "sosp17") in decoded
        assert ("T-14", None) in decoded

    def test_composite_rejects_optional(self):
        baseline = self.feed(CompositeEngine(Cluster(1)))
        with pytest.raises(UnsupportedOperationError):
            baseline.execute_continuous(parse_query(OPTIONAL_TAGS), 0)
