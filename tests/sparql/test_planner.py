"""Tests for the graph-exploration planner."""

import pytest

from repro.errors import PlanError
from repro.sparql.parser import parse_query
from repro.sparql.planner import (BOUND_OBJECT, BOUND_SUBJECT, CONST_OBJECT,
                                  CONST_SUBJECT, INDEX_START, plan_query,
                                  plan_steps)


def test_constant_start_preferred():
    # Both patterns have a constant; the tie breaks on WHERE order, so the
    # const-object pattern leads and the const-subject one follows.
    plan = plan_query(parse_query(
        "SELECT ?X WHERE { ?X ht tag . Logan po ?X }"))
    assert plan.steps[0].kind == CONST_OBJECT
    assert plan.steps[1].kind == CONST_SUBJECT
    assert plan.steps[1].pattern.subject == "Logan"


def test_bound_expansion_follows_constants():
    plan = plan_query(parse_query(
        "SELECT ?F ?P WHERE { Logan fo ?F . ?F po ?P }"))
    assert [s.kind for s in plan.steps] == [CONST_SUBJECT, BOUND_SUBJECT]


def test_bound_object_kind():
    plan = plan_query(parse_query(
        "SELECT ?P ?L WHERE { Logan po ?P . ?L li ?P }"))
    assert plan.steps[1].kind == BOUND_OBJECT


def test_index_start_when_no_constants():
    plan = plan_query(parse_query("SELECT ?U ?P WHERE { ?U po ?P }"))
    assert plan.steps[0].kind == INDEX_START


def test_index_start_then_bound():
    plan = plan_query(parse_query(
        "SELECT ?U ?P ?T WHERE { ?U po ?P . ?P ht ?T }"))
    assert [s.kind for s in plan.steps] == [INDEX_START, BOUND_SUBJECT]


def test_variable_predicate_rejected():
    with pytest.raises(PlanError):
        plan_query(parse_query("SELECT ?X ?P WHERE { ?X ?P o }"))


def test_fixed_order_respected():
    query = parse_query(
        "SELECT ?X ?Y WHERE { Logan po ?X . ?Y li ?X . ?Y fo Erik }")
    plan = plan_query(query, fixed_order=[2, 1, 0])
    assert plan.steps[0].pattern is query.patterns[2]
    assert plan.steps[1].pattern is query.patterns[1]


def test_fixed_order_must_be_permutation():
    query = parse_query("SELECT ?X WHERE { Logan po ?X . ?X ht t }")
    with pytest.raises(PlanError):
        plan_query(query, fixed_order=[0, 0])


def test_plan_covers_all_patterns_once():
    query = parse_query(
        "SELECT ?X ?Y ?Z WHERE { ?X po ?Z . ?X fo ?Y . ?Y li ?Z }")
    plan = plan_query(query)
    assert sorted(id(s.pattern) for s in plan.steps) == \
        sorted(id(p) for p in query.patterns)


def test_plan_steps_with_prebound_variables():
    query = parse_query("SELECT ?X ?Y WHERE { ?X fo ?Y }")
    steps = plan_steps(query.patterns, prebound={"?X"})
    assert steps[0].kind == BOUND_SUBJECT


def test_skewed_constant_reorders_plan():
    """A heavy-hitter constant subject is demoted behind a lighter one.

    Predicate ``p`` has a *low mean* out-degree but the constant ``hot``
    holds most of its edges; ``q``'s mean is higher but ``hot``'s own
    ``q``-degree is small.  Mean-only statistics order the ``p`` pattern
    first (lower mean); the top-k degree sketch knows ``hot``'s actual
    fan-out and flips the order.
    """
    from repro.core.stats import PredicateStatistics
    from repro.rdf.parser import parse_triples
    from repro.rdf.string_server import StringServer
    from repro.sim.cluster import Cluster
    from repro.sparql.planner import plan_order
    from repro.store.distributed import DistributedStore

    cluster = Cluster(num_nodes=1)
    strings = StringServer()
    store = DistributedStore(cluster, strings)
    lines = [f"hot p n{i} ." for i in range(6)]          # hot: 6 p-edges
    lines += [f"s{i} p m{i} ." for i in range(10)]       # 10 cold subjects
    lines += ["hot q t0 .", "hot q t1 ."]                # hot: 2 q-edges
    store.load(parse_triples("\n".join(lines)))
    stats = PredicateStatistics(store)

    # Mean fan-out says p is the cheaper start; hot's own degree says q.
    assert stats.out_degree("p") < stats.out_degree("q")
    assert stats.subject_degree("p", "hot") > stats.subject_degree("q", "hot")

    query = parse_query("SELECT ?X ?Y WHERE { hot p ?X . hot q ?Y }")

    class MeanOnly:
        """The pre-sketch statistics surface (no per-constant degrees)."""
        out_degree = staticmethod(stats.out_degree)
        in_degree = staticmethod(stats.in_degree)
        index_size = staticmethod(stats.index_size)

    assert plan_order(query.patterns, stats=MeanOnly()) == [0, 1]
    assert plan_order(query.patterns, stats=stats) == [1, 0]
    # Every step after the first should be const or bound, never a fresh
    # index start, when the pattern graph is connected.
    query = parse_query("""
        SELECT ?X ?Y ?Z WHERE {
            GRAPH T { ?X po ?Z }
            GRAPH X { ?X fo ?Y }
            GRAPH L { ?Y li ?Z }
        }
    """.replace("GRAPH T", "GRAPH stream1").replace("GRAPH L", "GRAPH stream2")
        .replace("GRAPH X", "GRAPH stat"))
    plan = plan_query(query)
    assert plan.steps[0].kind == INDEX_START
    for step in plan.steps[1:]:
        assert step.kind in (BOUND_SUBJECT, BOUND_OBJECT)
