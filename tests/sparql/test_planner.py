"""Tests for the graph-exploration planner."""

import pytest

from repro.errors import PlanError
from repro.sparql.parser import parse_query
from repro.sparql.planner import (BOUND_OBJECT, BOUND_SUBJECT, CONST_OBJECT,
                                  CONST_SUBJECT, INDEX_START, plan_query,
                                  plan_steps)


def test_constant_start_preferred():
    # Both patterns have a constant; the tie breaks on WHERE order, so the
    # const-object pattern leads and the const-subject one follows.
    plan = plan_query(parse_query(
        "SELECT ?X WHERE { ?X ht tag . Logan po ?X }"))
    assert plan.steps[0].kind == CONST_OBJECT
    assert plan.steps[1].kind == CONST_SUBJECT
    assert plan.steps[1].pattern.subject == "Logan"


def test_bound_expansion_follows_constants():
    plan = plan_query(parse_query(
        "SELECT ?F ?P WHERE { Logan fo ?F . ?F po ?P }"))
    assert [s.kind for s in plan.steps] == [CONST_SUBJECT, BOUND_SUBJECT]


def test_bound_object_kind():
    plan = plan_query(parse_query(
        "SELECT ?P ?L WHERE { Logan po ?P . ?L li ?P }"))
    assert plan.steps[1].kind == BOUND_OBJECT


def test_index_start_when_no_constants():
    plan = plan_query(parse_query("SELECT ?U ?P WHERE { ?U po ?P }"))
    assert plan.steps[0].kind == INDEX_START


def test_index_start_then_bound():
    plan = plan_query(parse_query(
        "SELECT ?U ?P ?T WHERE { ?U po ?P . ?P ht ?T }"))
    assert [s.kind for s in plan.steps] == [INDEX_START, BOUND_SUBJECT]


def test_variable_predicate_rejected():
    with pytest.raises(PlanError):
        plan_query(parse_query("SELECT ?X ?P WHERE { ?X ?P o }"))


def test_fixed_order_respected():
    query = parse_query(
        "SELECT ?X ?Y WHERE { Logan po ?X . ?Y li ?X . ?Y fo Erik }")
    plan = plan_query(query, fixed_order=[2, 1, 0])
    assert plan.steps[0].pattern is query.patterns[2]
    assert plan.steps[1].pattern is query.patterns[1]


def test_fixed_order_must_be_permutation():
    query = parse_query("SELECT ?X WHERE { Logan po ?X . ?X ht t }")
    with pytest.raises(PlanError):
        plan_query(query, fixed_order=[0, 0])


def test_plan_covers_all_patterns_once():
    query = parse_query(
        "SELECT ?X ?Y ?Z WHERE { ?X po ?Z . ?X fo ?Y . ?Y li ?Z }")
    plan = plan_query(query)
    assert sorted(id(s.pattern) for s in plan.steps) == \
        sorted(id(p) for p in query.patterns)


def test_plan_steps_with_prebound_variables():
    query = parse_query("SELECT ?X ?Y WHERE { ?X fo ?Y }")
    steps = plan_steps(query.patterns, prebound={"?X"})
    assert steps[0].kind == BOUND_SUBJECT


def test_greedy_keeps_exploration_connected():
    # Every step after the first should be const or bound, never a fresh
    # index start, when the pattern graph is connected.
    query = parse_query("""
        SELECT ?X ?Y ?Z WHERE {
            GRAPH T { ?X po ?Z }
            GRAPH X { ?X fo ?Y }
            GRAPH L { ?Y li ?Z }
        }
    """.replace("GRAPH T", "GRAPH stream1").replace("GRAPH L", "GRAPH stream2")
        .replace("GRAPH X", "GRAPH stat"))
    plan = plan_query(query)
    assert plan.steps[0].kind == INDEX_START
    for step in plan.steps[1:]:
        assert step.kind in (BOUND_SUBJECT, BOUND_OBJECT)
