"""Tests for UNION alternation across engines."""

import pytest

from repro.baselines.composite import CompositeEngine
from repro.baselines.csparql_engine import CSparqlEngine
from repro.baselines.spark import SparkStreamingEngine
from repro.errors import ParseError, UnsupportedOperationError
from repro.rdf.parser import parse_triples
from repro.sim.cluster import Cluster
from repro.sparql.parser import parse_query

from core.test_engine import XLAB, build_engine, names

POSTS_OR_LIKES = """
SELECT ?P WHERE {
    { Logan po ?P } UNION { Logan li ?P }
}
"""

ANCHORED_UNION = """
SELECT ?P ?W WHERE {
    ?P ht sosp17 .
    { ?W po ?P } UNION { ?W li ?P }
}
"""


class TestParsing:
    def test_union_parses(self):
        query = parse_query(POSTS_OR_LIKES)
        assert not query.patterns
        assert len(query.unions) == 1
        assert len(query.unions[0]) == 2

    def test_three_way_union(self):
        query = parse_query(
            "SELECT ?P WHERE { { a p ?P } UNION { a q ?P } "
            "UNION { a r ?P } }")
        assert len(query.unions[0]) == 3

    def test_mismatched_branch_variables_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?P WHERE { { a p ?P } UNION { a q ?Q } }")

    def test_single_branch_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?P WHERE { { a p ?P } }")

    def test_union_variables_visible(self):
        query = parse_query(ANCHORED_UNION)
        assert query.variables() == ["?P", "?W"]


class TestEngineExecution:
    @pytest.fixture
    def engine(self):
        eng = build_engine()
        eng.run_until(4_000)
        return eng

    def test_pure_union(self, engine):
        record = engine.oneshot(POSTS_OR_LIKES)
        rows = {engine.strings.entity_name(p) for (p,) in
                record.result.rows}
        # Logan posted T-13/T-14 (+T-15 via stream) and liked T-12.
        assert rows == {"T-13", "T-14", "T-15", "T-12"}

    def test_union_joined_with_mandatory(self, engine):
        record = engine.oneshot(ANCHORED_UNION)
        decoded = {(engine.strings.entity_name(p),
                    engine.strings.entity_name(w))
                   for p, w in record.result.rows}
        # Tagged posts (T-12, T-13, T-15) with their authors or likers.
        assert ("T-13", "Logan") in decoded    # author branch
        assert ("T-12", "Logan") in decoded    # liker branch
        assert ("T-15", "Logan") in decoded    # absorbed stream post

    def test_union_then_optional(self, engine):
        record = engine.oneshot("""
            SELECT ?P ?T WHERE {
                { Logan po ?P } UNION { Logan li ?P }
                OPTIONAL { ?P ht ?T }
            }""")
        by_post = {engine.strings.entity_name(p):
                   (engine.strings.entity_name(t) if t > 0 else None)
                   for p, t in record.result.rows}
        assert by_post["T-13"] == "sosp17"
        assert by_post["T-14"] is None

    def test_union_over_streams(self, engine):
        record = engine.oneshot_time_scoped("""
            SELECT ?X
            FROM Tweet_Stream [RANGE 1s STEP 1s]
            FROM Like_Stream [RANGE 1s STEP 1s]
            WHERE {
                { GRAPH Tweet_Stream { Logan po ?X } }
                UNION
                { GRAPH Like_Stream { Erik li ?X } }
            }""", 0, 4_000)
        rows = {engine.strings.entity_name(x) for (x,) in
                record.result.rows}
        assert rows == {"T-15"}


class TestBaselines:
    def feed(self, engine):
        engine.load_static(parse_triples(XLAB))
        return engine

    @pytest.mark.parametrize("engine_cls", [CSparqlEngine,
                                            SparkStreamingEngine])
    def test_relational_union_matches(self, engine_cls):
        baseline = self.feed(engine_cls())
        rows, _ = baseline.execute_continuous(
            parse_query(POSTS_OR_LIKES), 0)
        decoded = {baseline.strings.entity_name(p) for (p,) in rows}
        assert decoded == {"T-13", "T-14", "T-12"}

    def test_composite_rejects_union(self):
        baseline = self.feed(CompositeEngine(Cluster(1)))
        with pytest.raises(UnsupportedOperationError):
            baseline.execute_continuous(parse_query(POSTS_OR_LIKES), 0)
