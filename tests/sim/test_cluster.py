"""Tests for the simulated cluster."""

import pytest

from repro.errors import ReproError
from repro.sim.cluster import Cluster, Node


def test_cluster_has_requested_nodes():
    cluster = Cluster(num_nodes=8, workers_per_node=16)
    assert cluster.num_nodes == 8
    assert cluster.total_workers == 128


def test_owner_partitioning_is_stable_and_total():
    cluster = Cluster(num_nodes=4)
    owners = {cluster.owner_of(vid) for vid in range(100)}
    assert owners == {0, 1, 2, 3}
    assert all(cluster.owner_of(v) == cluster.owner_of(v) for v in range(20))


def test_is_local_matches_owner():
    cluster = Cluster(num_nodes=3)
    for vid in range(12):
        owner = cluster.owner_of(vid)
        assert cluster.is_local(vid, owner)
        assert not cluster.is_local(vid, (owner + 1) % 3)


def test_kill_and_restart_node():
    cluster = Cluster(num_nodes=2)
    cluster.kill_node(1)
    assert len(cluster.alive_nodes()) == 1
    assert cluster.total_workers == cluster.nodes[0].workers
    cluster.restart_node(1)
    assert len(cluster.alive_nodes()) == 2


def test_bad_node_id_rejected():
    cluster = Cluster(num_nodes=2)
    with pytest.raises(ReproError):
        cluster.kill_node(5)


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        Cluster(num_nodes=0)
    with pytest.raises(ValueError):
        Node(0, workers=0)


def test_single_node_cluster_owns_everything():
    cluster = Cluster(num_nodes=1)
    assert all(cluster.owner_of(v) == 0 for v in range(50))
