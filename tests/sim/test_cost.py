"""Tests for the cost model and latency meter."""

import pytest

from repro.sim.cost import CostModel, LatencyMeter, MemoryModel


class TestCostModel:
    def test_rdma_read_cost_includes_bytes(self):
        cost = CostModel(rdma_read_ns=1000.0, rdma_byte_ns=0.5)
        assert cost.rdma_read_cost(100) == 1000.0 + 50.0

    def test_tcp_cost_includes_bytes(self):
        cost = CostModel(tcp_rtt_ns=50_000.0, tcp_byte_ns=1.0)
        assert cost.tcp_cost(200) == 50_200.0

    def test_negative_bytes_clamped(self):
        cost = CostModel()
        assert cost.rdma_read_cost(-10) == cost.rdma_read_ns
        assert cost.tcp_cost(-10) == cost.tcp_rtt_ns

    def test_rdma_is_cheaper_than_tcp_by_default(self):
        cost = CostModel()
        assert cost.rdma_read_cost(1024) < cost.tcp_cost(1024)


class TestLatencyMeter:
    def test_starts_empty(self):
        meter = LatencyMeter()
        assert meter.ns == 0.0
        assert meter.ms == 0.0

    def test_charge_accumulates(self):
        meter = LatencyMeter()
        meter.charge(500)
        meter.charge(250, times=2)
        assert meter.ns == 1000.0
        assert meter.us == 1.0

    def test_charge_rejects_negative(self):
        meter = LatencyMeter()
        with pytest.raises(ValueError):
            meter.charge(-1)
        with pytest.raises(ValueError):
            meter.charge(1, times=-1)

    def test_category_breakdown(self):
        meter = LatencyMeter()
        meter.charge(1_000_000, category="store")
        meter.charge(2_000_000, category="network")
        meter.charge(500_000, category="store")
        breakdown = meter.breakdown_ms
        assert breakdown["store"] == pytest.approx(1.5)
        assert breakdown["network"] == pytest.approx(2.0)

    def test_add_is_sequential(self):
        a, b = LatencyMeter(), LatencyMeter()
        a.charge(100, category="x")
        b.charge(200, category="x")
        a.add(b)
        assert a.ns == 300.0
        assert a.breakdown_ms["x"] == pytest.approx(300 / 1e6)

    def test_join_parallel_takes_max(self):
        meter = LatencyMeter()
        meter.charge(500)
        fast, slow = meter.spawn(), meter.spawn()
        fast.charge(1_000)
        slow.charge(3_000)
        meter.join_parallel([fast, slow])
        assert meter.ns == 3_500.0

    def test_join_parallel_merges_slowest_breakdown(self):
        meter = LatencyMeter()
        fast, slow = meter.spawn(), meter.spawn()
        fast.charge(1, category="fast-work")
        slow.charge(100, category="slow-work")
        meter.join_parallel([fast, slow])
        assert "slow-work" in meter.breakdown_ms
        assert "fast-work" not in meter.breakdown_ms

    def test_join_parallel_empty_is_noop(self):
        meter = LatencyMeter()
        meter.charge(10)
        meter.join_parallel([])
        assert meter.ns == 10.0


class TestMemoryModel:
    def test_defaults_are_positive(self):
        model = MemoryModel()
        assert model.entry_bytes > 0
        assert model.fat_pointer_bytes > 0
        assert model.tuple_bytes > model.entry_bytes
