"""Tests for the virtual clock."""

import pytest

from repro.sim.clock import VirtualClock


def test_starts_at_zero_by_default():
    assert VirtualClock().now_ms == 0


def test_starts_at_given_time():
    assert VirtualClock(start_ms=800).now_ms == 800


def test_advance_moves_forward():
    clock = VirtualClock()
    assert clock.advance(100) == 100
    assert clock.advance(50) == 150
    assert clock.now_ms == 150


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        VirtualClock().advance(-1)


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        VirtualClock(start_ms=-5)


def test_advance_to_moves_forward_only():
    clock = VirtualClock(start_ms=100)
    assert clock.advance_to(300) == 300
    assert clock.advance_to(200) == 300  # no-op when already past


def test_advance_zero_is_noop():
    clock = VirtualClock(start_ms=7)
    assert clock.advance(0) == 7
