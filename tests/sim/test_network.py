"""Tests for the simulated fabric."""

from repro.sim.cost import CostModel, LatencyMeter
from repro.sim.network import Fabric


def test_rdma_read_charges_rdma_cost():
    cost = CostModel()
    fabric = Fabric(cost, use_rdma=True)
    meter = LatencyMeter()
    fabric.remote_read(meter, 128)
    assert meter.ns == cost.rdma_read_cost(128)
    assert fabric.stats.rdma_reads == 1
    assert fabric.stats.rdma_bytes == 128


def test_non_rdma_read_falls_back_to_tcp():
    cost = CostModel()
    fabric = Fabric(cost, use_rdma=False)
    meter = LatencyMeter()
    fabric.remote_read(meter, 128)
    assert meter.ns == cost.tcp_cost(128)
    assert fabric.stats.rdma_reads == 0
    assert fabric.stats.messages == 1


def test_message_always_uses_tcp():
    cost = CostModel()
    fabric = Fabric(cost, use_rdma=True)
    meter = LatencyMeter()
    fabric.message(meter, 64)
    assert meter.ns == cost.tcp_cost(64)


def test_one_way_is_half_round_trip():
    cost = CostModel()
    fabric = Fabric(cost, use_rdma=True)
    meter = LatencyMeter()
    fabric.one_way(meter, 64)
    assert meter.ns == cost.tcp_cost(64) / 2.0


def test_stats_reset():
    fabric = Fabric(CostModel())
    fabric.remote_read(LatencyMeter(), 10)
    fabric.stats.reset()
    assert fabric.stats.rdma_reads == 0
    assert fabric.stats.rdma_bytes == 0


def test_rdma_slower_when_disabled():
    cost = CostModel()
    rdma, tcp = Fabric(cost, True), Fabric(cost, False)
    fast, slow = LatencyMeter(), LatencyMeter()
    rdma.remote_read(fast, 1024)
    tcp.remote_read(slow, 1024)
    assert slow.ns > fast.ns
