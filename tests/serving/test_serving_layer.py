"""Serving layer mechanics: sharing, fan-out, cursors, lifecycle, metrics.

The behavioural contract: registrations deduplicate by normalized plan
(registration names never matter), one window close feeds every
subscriber of a shared entry with identical decoded results, late
subscribers only see closes after their registration, the backing query
dies with its last subscriber, and the always-on counters reconcile
exactly with what was delivered.
"""

import pytest

from repro.errors import RegistrationError
from repro.obs.metrics import collect_metrics
from repro.serving import AdmissionPolicy
from serving.serving_workload import build_serving, window_query

pytestmark = pytest.mark.serving


def result_facts(results):
    return [(r.columns, r.rows, r.server_latency_ms, r.client_latency_ms,
             r.snapshot) for r in results]


def test_same_plan_shares_one_backing_query():
    bench, serving = build_serving()
    text = window_query(bench)
    first = serving.register("alpha", text)
    # A different registration name over the identical plan must share:
    # the sharing key is the normalized AST + window spec, name excluded.
    renamed = text.replace("QUERY L1 AS", "QUERY L1_ALT AS")
    second = serving.register("beta", renamed)
    assert serving.registry.num_shared == 1
    assert serving.registry.num_subscribers == 2
    assert (serving.registry.shared_misses,
            serving.registry.shared_hits) == (1, 1)
    assert first.shared_name == second.shared_name
    assert first.num_cosubscribers == 2
    assert len(serving.engine.continuous.queries) == 1


def test_distinct_plans_get_distinct_backing_queries():
    bench, serving = build_serving()
    serving.register("alpha", window_query(bench, "L1"))
    serving.register("alpha", window_query(bench, "L2"))
    serving.register("alpha", window_query(bench, "L1", step_ms=400))
    assert serving.registry.num_shared == 3
    assert serving.registry.shared_hits == 0


def test_fanout_delivers_identical_results_to_every_subscriber():
    bench, serving = build_serving()
    text = window_query(bench)
    subs = [serving.register(f"tenant{i}", text) for i in range(3)]
    serving.run_until(1_000)
    polled = [result_facts(sub.poll()) for sub in subs]
    assert polled[0], "the window must have closed at least once"
    assert polled[1] == polled[0] and polled[2] == polled[0]
    closes = len(subs[0].entry.handle.executions)
    assert serving.closes_evaluated == closes
    assert serving.results_delivered == closes * 3
    assert serving.executions_saved == closes * 2
    # Nothing left after the fan-out is consumed.
    assert all(sub.poll() == [] for sub in subs)


def test_late_subscriber_sees_only_future_closes():
    bench, serving = build_serving()
    text = window_query(bench)
    early = serving.register("alpha", text)
    serving.run_until(600)
    already = len(early.entry.handle.executions)
    assert already > 0, "early subscriber must have seen closes"
    late = serving.register("beta", text)
    serving.run_until(1_000)
    early_results = result_facts(early.poll())
    late_results = result_facts(late.poll())
    assert len(early_results) == already + len(late_results)
    assert early_results[already:] == late_results


def test_backing_query_dies_with_its_last_subscriber():
    bench, serving = build_serving()
    text = window_query(bench)
    first = serving.register("alpha", text)
    second = serving.register("beta", text)
    name = first.shared_name
    first.cancel()
    assert name in serving.engine.continuous.queries
    assert serving.tenants["alpha"].subscriptions == 0
    first.cancel()  # idempotent
    assert serving.registry.num_subscribers == 1
    second.cancel()
    assert serving.registry.num_shared == 0
    assert name not in serving.engine.continuous.queries
    # Capacity is actually released: the freed budget admits a newcomer.
    assert serving.register("gamma", text).num_cosubscribers == 1


def test_register_rejects_oneshot_text():
    bench, serving = build_serving()
    with pytest.raises(RegistrationError, match="submitted, not registered"):
        serving.register("alpha", bench.oneshot_query("S1"))
    assert serving.registry.num_subscribers == 0


def test_unsaturated_oneshots_are_submillisecond():
    bench, serving = build_serving()
    serving.register("alpha", window_query(bench))
    for _ in range(8):
        serving.submit("alpha", bench.oneshot_query("S1"))
        serving.submit("beta", bench.oneshot_query("S2"))
        serving.tick()
    serving.tick()  # drain the last tick's submissions
    assert serving.oneshots_served == 16
    assert serving.scheduler.backlog == 0
    percentiles = serving.latency_percentiles("oneshot")
    # The headline serving property: with free slots, a one-shot's
    # simulated latency is the execution itself — no queueing tax.
    assert percentiles["p50_ms"] < 1.0
    assert percentiles["p99_ms"] < 1.0


def test_least_loaded_node_follows_dispatch_counters():
    bench, serving = build_serving(num_nodes=2)
    serving.run_until(500)
    load = {node.node_id: 0 for node in serving.engine.cluster.nodes}
    for dispatcher in serving.engine.dispatchers.values():
        for node_id, routed in dispatcher.tuples_routed.items():
            load[node_id] += routed
    assert sum(load.values()) > 0, "the workload must have routed tuples"
    expected = min(load, key=lambda node_id: (load[node_id], node_id))
    assert serving._least_loaded_node() == expected


def test_collect_metrics_exports_serving_counters():
    bench, serving = build_serving(num_nodes=2)
    text = window_query(bench)
    for i in range(4):
        serving.register(f"tenant{i % 2}", text)
    for _ in range(5):
        serving.submit("tenant0", bench.oneshot_query("S1"))
        serving.tick()
    serving.tick()
    registry = collect_metrics(serving.engine, proxies=serving.proxies,
                               serving=serving)
    snapshot = serving.snapshot()
    counters = registry.snapshot()["counters"]
    gauges = registry.snapshot()["gauges"]
    assert gauges["serving_subscriptions"] == snapshot.subscriptions == 4
    assert gauges["serving_shared_queries"] == snapshot.shared_queries == 1
    assert counters["serving_shared_hits"] == 3
    assert counters["serving_closes_evaluated"] == \
        snapshot.closes_evaluated
    assert counters["serving_results_delivered"] == \
        snapshot.closes_evaluated * 4
    assert counters["serving_executions_saved"] == \
        snapshot.closes_evaluated * 3
    assert counters["serving_oneshots_served"] == 5
    # Every serving registration flows through a proxy subscription.
    multiplexed = sum(p.stats.multiplexed_subscriptions
                      for p in serving.proxies.proxies)
    assert multiplexed == 4
    # Per-tenant latency histograms were pushed by the layer itself.
    histograms = serving.metrics.snapshot()["histograms"]
    assert histograms["serving_oneshot_ns{tenant=tenant0}"]["count"] == 5
    assert histograms["serving_close_ns{tenant=tenant0}"]["count"] > 0


def test_snapshot_reports_per_tenant_percentiles():
    bench, serving = build_serving(
        policy=AdmissionPolicy(oneshot_slots_per_tick=8))
    serving.register("alpha", window_query(bench))
    for _ in range(6):
        serving.submit("alpha", bench.oneshot_query("S1"))
        serving.tick()
    serving.tick()
    report = serving.snapshot().tenants["alpha"]
    assert report["subscriptions"] == 1
    assert report["oneshots_served"] == 6
    assert report["close_results"] > 0
    for kind in ("oneshot", "close"):
        for p in ("p50", "p99", "p99_9"):
            assert report[f"{kind}_{p}_ms"] > 0.0
