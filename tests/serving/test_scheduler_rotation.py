"""FairScheduler edge cases: a tenant unregisters mid-rotation.

The rotation cursor is an index into the ring list, so removing a ring
slot must compensate: the next drain may neither skip the tenant whose
turn it was, nor touch the departed tenant's queue.  These tests drive
``remove_tenant`` at every cursor position.
"""

from __future__ import annotations

import pytest

from repro.serving.scheduler import FairScheduler, OneshotRequest

pytestmark = pytest.mark.serving


def _request(tenant, n=0):
    return OneshotRequest(tenant=tenant, text=f"q{n}", arrival_ms=0)


def _scheduler(tenants, depth=3, slots=1):
    scheduler = FairScheduler(slots_per_tick=slots)
    for n in range(depth):
        for tenant in tenants:
            scheduler.enqueue(_request(tenant, n))
    return scheduler


def _drain_one(scheduler):
    """Serve exactly one request; returns the tenant it went to."""
    served = scheduler.drain(0, lambda request, now: request.tenant)
    assert len(served) == 1
    return served[0]


def test_removing_tenant_at_cursor_keeps_successor_turn():
    scheduler = _scheduler(["A", "B", "C"])
    assert _drain_one(scheduler) == "A"  # cursor now rests on B
    discarded = scheduler.remove_tenant("B")
    assert discarded == 3
    # B's turn passes to its successor; C must not be skipped.
    assert _drain_one(scheduler) == "C"
    assert _drain_one(scheduler) == "A"
    assert scheduler.tenants == ["A", "C"]


def test_removing_tenant_before_cursor_shifts_back():
    scheduler = _scheduler(["A", "B", "C"])
    assert _drain_one(scheduler) == "A"
    assert _drain_one(scheduler) == "B"  # cursor now rests on C
    scheduler.remove_tenant("A")
    # C's turn is still next — the cursor shifted down with the ring.
    assert _drain_one(scheduler) == "C"
    assert _drain_one(scheduler) == "B"


def test_removing_last_ring_slot_wraps_cursor():
    scheduler = _scheduler(["A", "B", "C"])
    assert _drain_one(scheduler) == "A"
    assert _drain_one(scheduler) == "B"  # cursor on C (last slot)
    scheduler.remove_tenant("C")
    # C's turn wraps to the ring head.
    assert _drain_one(scheduler) == "A"
    assert _drain_one(scheduler) == "B"


def test_removed_queue_never_dereferenced():
    scheduler = _scheduler(["A", "B", "C"], depth=2)
    assert _drain_one(scheduler) == "A"
    scheduler.remove_tenant("B")
    # A full drain visits every surviving slot without KeyError and
    # without serving the departed tenant.
    scheduler.slots_per_tick = 8
    served = scheduler.drain(0, lambda request, now: request.tenant)
    assert served == ["C", "A", "C"]
    assert scheduler.backlog == 0


def test_removing_only_tenant_resets_ring():
    scheduler = _scheduler(["A"], depth=2)
    assert scheduler.remove_tenant("A") == 2
    assert scheduler.tenants == []
    assert scheduler.drain(0, lambda request, now: request.tenant) == []
    # Re-submission re-enters cleanly at the ring head.
    scheduler.enqueue(_request("A"))
    assert _drain_one(scheduler) == "A"


def test_removing_unknown_tenant_is_a_noop():
    scheduler = _scheduler(["A", "B"])
    assert scheduler.remove_tenant("Z") == 0
    assert scheduler.tenants == ["A", "B"]
    assert _drain_one(scheduler) == "A"


def test_departed_tenant_can_resubscribe_at_ring_back():
    scheduler = _scheduler(["A", "B", "C"])
    assert _drain_one(scheduler) == "A"
    scheduler.remove_tenant("A")
    scheduler.enqueue(_request("A", 9))
    # A rejoined at the back: the rotation continues B, C, then A.
    assert _drain_one(scheduler) == "B"
    assert _drain_one(scheduler) == "C"
    assert _drain_one(scheduler) == "A"
