"""Shared fixtures for the serving battery: a tiny LSBench cell.

Every test builds a fresh engine from the same tiny deterministic
dataset, fronted by a :class:`~repro.serving.server.ServingLayer`;
knobs (node count, sharing, admission policy) vary per test.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bench.harness import build_wukongs
from repro.bench.lsbench import LSBench, LSBenchConfig
from repro.serving import AdmissionPolicy, ServingLayer

#: Simulated horizon the workload engines are built for.
DURATION_MS = 1_000


def build_serving(num_nodes: int = 1, sharing: bool = True,
                  policy: Optional[AdmissionPolicy] = None,
                  duration_ms: int = DURATION_MS,
                  ) -> Tuple[LSBench, ServingLayer]:
    bench = LSBench(LSBenchConfig.tiny())
    engine = build_wukongs(bench, num_nodes=num_nodes,
                           duration_ms=duration_ms)
    serving = ServingLayer(engine, policy=policy, sharing=sharing)
    return bench, serving


def window_query(bench: LSBench, template: str = "L1",
                 start_user: int = 0, range_ms: int = 400,
                 step_ms: int = 200) -> str:
    return bench.continuous_query(template, start_user=start_user,
                                  range_ms=range_ms, step_ms=step_ms)
