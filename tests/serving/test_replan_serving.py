"""A re-planned backing query keeps serving all its subscribers.

The sharing key is the normalized AST (``Query.cache_key``), never the
plan, and a plan swap mutates the shared ``RegisteredQuery`` in place —
so adaptive re-planning must be completely invisible to the serving
layer: no re-registration, no dropped delivery cursors, every subscriber
sees every close (pre- and post-swap) exactly once.
"""

from __future__ import annotations

import pytest

from core.test_replan import QUERY, TOTAL_TICKS, _build
from repro.serving import ServingLayer

pytestmark = pytest.mark.adaptive


def _serve_skew(tenants=("alice", "bob", "carol"), subs_per_tenant=2):
    engine, _ = _build(adaptive=True)
    # Drop the direct registration _build made; subscribers create the
    # backing query through the registry instead.
    engine.continuous.unregister("SKEW")
    serving = ServingLayer(engine)
    subscriptions = [serving.register(tenant, QUERY)
                     for tenant in tenants
                     for _ in range(subs_per_tenant)]
    for _ in range(TOTAL_TICKS):
        serving.tick()
    return serving, subscriptions


def test_replanned_backing_query_keeps_serving_all_subscribers():
    serving, subscriptions = _serve_skew()
    registry = serving.registry

    # All six subscriptions deduped onto one backing query, which the
    # skew-inversion workload re-planned mid-run.
    assert registry.num_shared == 1
    entry = registry.entries()[0]
    assert entry.handle.replans, "backing query must have re-planned"
    assert registry.total_replans == len(entry.handle.replans)
    assert serving.snapshot().replans == registry.total_replans

    # The swap kept the same handle: every subscriber still hangs off it
    # and drained the full execution stream, pre- and post-swap closes
    # alike, with identical rows per close.
    closes = len(entry.handle.executions)
    assert closes > 0
    per_subscriber = [subscription.poll()
                      for subscription in subscriptions]
    for results in per_subscriber:
        assert len(results) == closes
    reference = [sorted(r.rows) for r in per_subscriber[0]]
    for results in per_subscriber[1:]:
        assert [sorted(r.rows) for r in results] == reference
    # Fan-out accounting saw every subscriber of every close.
    assert serving.results_delivered == closes * len(subscriptions)


def test_late_subscriber_joins_replanned_query_cleanly():
    engine, _ = _build(adaptive=True)
    engine.continuous.unregister("SKEW")
    serving = ServingLayer(engine)
    early = serving.register("alice", QUERY)
    for _ in range(TOTAL_TICKS - 5):
        serving.tick()
    entry = serving.registry.entries()[0]
    assert entry.handle.replans, "swap must land before the late join"
    # A subscriber arriving *after* the swap attaches to the same entry
    # (the key is the AST, not the plan) and only sees closes from now on.
    late = serving.register("bob", QUERY)
    assert late.shared_name == early.shared_name
    before = len(entry.handle.executions)
    for _ in range(5):
        serving.tick()
    fresh = len(entry.handle.executions) - before
    assert fresh > 0
    assert len(late.poll()) == fresh
    assert len(early.poll()) == len(entry.handle.executions)
