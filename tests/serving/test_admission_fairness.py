"""Admission budgets reject loudly; the fair scheduler protects tenants.

Two guarantees under saturation:

* Every refusal is a typed :class:`~repro.errors.AdmissionError`
  subclass carrying the tenant and the exhausted budget — the engine and
  the queues are left exactly as they were (no half-admitted work).
* A tenant flooding its own queue lengthens only its own latency: in any
  tick where a well-behaved tenant has work queued it receives its
  ``floor(slots / active tenants)`` share, so its p99 stays at the
  execution latency (sub-millisecond on the simulated clock) while the
  flooder's p99 climbs into tick multiples.
"""

import pytest

from repro.errors import (AdmissionError, BacklogAdmissionError,
                          RegistrationAdmissionError)
from repro.serving import AdmissionPolicy, FairScheduler, OneshotRequest
from serving.serving_workload import build_serving, window_query

pytestmark = pytest.mark.serving


def test_subscription_budget_rejects_with_context():
    bench, serving = build_serving(
        policy=AdmissionPolicy(max_subscriptions=2))
    text = window_query(bench)
    serving.register("alpha", text)
    serving.register("beta", text)
    before = len(serving.engine.continuous.queries)
    with pytest.raises(RegistrationAdmissionError) as excinfo:
        serving.register("gamma", text)
    error = excinfo.value
    assert isinstance(error, AdmissionError)
    assert (error.tenant, error.budget, error.in_use) == ("gamma", 2, 2)
    # The refusal left no trace: no subscription, no backing query.
    assert serving.registry.num_subscribers == 2
    assert len(serving.engine.continuous.queries) == before
    assert serving.snapshot().registrations_rejected == 1
    assert serving.metrics.counter("serving_rejections",
                                   kind="registration").value == 1


def test_per_tenant_subscription_budget_spares_other_tenants():
    bench, serving = build_serving(
        policy=AdmissionPolicy(max_tenant_subscriptions=1))
    text = window_query(bench)
    serving.register("alpha", text)
    with pytest.raises(RegistrationAdmissionError, match="per-tenant"):
        serving.register("alpha", text)
    # The budget is per tenant: a different tenant is still admitted.
    serving.register("beta", text)
    assert serving.registry.num_subscribers == 2
    assert serving.tenants["alpha"].registrations_rejected == 1


def test_shared_plan_budget_never_charges_dedup_hits():
    bench, serving = build_serving(
        policy=AdmissionPolicy(max_shared_queries=1))
    serving.register("alpha", window_query(bench, "L1"))
    # A dedup hit re-uses the existing backing query: admitted even
    # though the shared budget is exhausted.
    serving.register("beta", window_query(bench, "L1"))
    with pytest.raises(RegistrationAdmissionError, match="shared-plan"):
        serving.register("beta", window_query(bench, "L2"))
    assert serving.registry.num_shared == 1
    assert serving.registry.num_subscribers == 2


def test_backlog_budgets_reject_without_enqueueing():
    bench, serving = build_serving(
        policy=AdmissionPolicy(max_backlog=3, max_tenant_backlog=1))
    query = bench.oneshot_query("S1")
    serving.submit("alpha", query)
    with pytest.raises(BacklogAdmissionError) as excinfo:
        serving.submit("alpha", query)
    assert (excinfo.value.tenant, excinfo.value.budget) == ("alpha", 1)
    assert serving.scheduler.backlog == 1, "rejection must not enqueue"
    serving.submit("beta", query)
    serving.submit("gamma", query)
    # Total backlog budget, hit by a tenant with per-tenant headroom.
    with pytest.raises(BacklogAdmissionError, match="backlog full"):
        serving.submit("delta", query)
    assert serving.scheduler.backlog == 3
    assert serving.snapshot().oneshots_rejected == 2
    assert serving.metrics.counter("serving_rejections",
                                   kind="backlog").value == 2


def test_fair_scheduler_divides_slots_and_rotates():
    scheduler = FairScheduler(slots_per_tick=4)
    for tenant, count in (("a", 5), ("b", 5), ("c", 5)):
        for _ in range(count):
            scheduler.enqueue(OneshotRequest(tenant=tenant, text="q",
                                             arrival_ms=0))
    dispatched = []
    execute = lambda request, now_ms: dispatched.append(request.tenant)

    scheduler.drain(0, lambda r, now: execute(r, now))
    # floor(4 / 3) = 1 slot guaranteed each; the spare slot goes to the
    # ring head, and the cursor rotates past the last tenant visited.
    assert sorted(dispatched) == ["a", "a", "b", "c"]
    dispatched.clear()
    scheduler.drain(0, lambda r, now: execute(r, now))
    assert sorted(dispatched) == ["a", "b", "b", "c"]
    dispatched.clear()
    scheduler.drain(0, lambda r, now: execute(r, now))
    assert sorted(dispatched) == ["a", "b", "c", "c"]
    # Empty queues are skipped without consuming slots.
    dispatched.clear()
    scheduler.drain(0, lambda r, now: execute(r, now))
    assert sorted(dispatched) == ["a", "b", "c"]
    assert scheduler.backlog == 0


def test_saturating_tenant_cannot_starve_others():
    bench, serving = build_serving(
        policy=AdmissionPolicy(oneshot_slots_per_tick=4,
                               max_tenant_backlog=512))
    flood_query = bench.oneshot_query("S1")
    polite_query = bench.oneshot_query("S2")
    per_tick = {}
    for _ in range(20):
        for _ in range(12):  # 3x the entire serving capacity, every tick
            serving.submit("flood", flood_query)
        serving.submit("alpha", polite_query)
        serving.submit("beta", polite_query)
        served = serving.tick()
        for done in served:
            per_tick.setdefault(done.request.tenant, []).append(done)
    # Every tick dispatches exactly one alpha and one beta request — the
    # floor(4/3) guarantee — and the flooder gets the two spare slots.
    assert len(per_tick["alpha"]) == 20
    assert len(per_tick["beta"]) == 20
    assert len(per_tick["flood"]) == 2 * 20
    # The polite tenants never wait: their p99 is the execution latency.
    report = serving.snapshot().tenants
    assert report["alpha"]["oneshot_p99_ms"] < 1.0
    assert report["beta"]["oneshot_p99_ms"] < 1.0
    # The flooder queues behind itself, ticks deep — and only itself.
    assert report["flood"]["oneshot_p99_ms"] > 100.0
    assert all(done.queue_wait_ms == 0.0
               for done in per_tick["alpha"] + per_tick["beta"])
    assert serving.scheduler.tenant_backlog("flood") > 0
    assert serving.scheduler.tenant_backlog("alpha") == 0
