"""Property test: plan sharing is answer-preserving, differentially.

For any mix of subscriptions — templates, parameter bindings, copy
counts — running the workload with common-subplan sharing on must be
indistinguishable, subscriber by subscriber, from running it with every
subscription backed by its own private registration:

* identical decoded results per subscriber (rows, columns, latencies,
  snapshots),
* identical execution meters (total ns and per-category breakdown) on
  every backing execution, and
* an identical engine state digest (data plane: shards, stream indexes,
  transients, coordinator) — the backing-registration bookkeeping is
  excluded, since N private queries vs the deduped shared set is exactly
  the difference sharing is *supposed* to make.

Same differential shape as ``tests/chaos/test_columnar_differential.py``:
sharing, like the columnar kernels, must be a pure evaluation-cost
optimization with no observable effect.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos.state import diff_digests, engine_state_digest
from serving.serving_workload import build_serving, window_query

pytestmark = pytest.mark.serving

DURATION_MS = 800

#: One subscription group: (template, parameter binding, copies).
subscription_groups = st.lists(
    st.tuples(st.sampled_from(("L1", "L2", "L3", "L4")),
              st.integers(min_value=0, max_value=3),
              st.integers(min_value=1, max_value=3)),
    min_size=1, max_size=5)


def run_workload(groups, sharing):
    bench, serving = build_serving(num_nodes=1, sharing=sharing,
                                   duration_ms=DURATION_MS)
    subscriptions = []
    for template, start_user, copies in groups:
        text = window_query(bench, template, start_user=start_user)
        for copy in range(copies):
            subscriptions.append(serving.register(f"tenant{copy}", text))
    serving.run_until(DURATION_MS)
    return serving, subscriptions


def subscriber_facts(subscription):
    return [(r.columns, r.rows, r.server_latency_ms, r.client_latency_ms,
             r.snapshot) for r in subscription.poll()]


def execution_meter_facts(subscription):
    return [(rec.close_ms, rec.meter.ns,
             dict(sorted(rec.meter.breakdown_ms.items())))
            for rec in subscription.entry.handle.executions]


def data_plane_digest(engine):
    digest = engine_state_digest(engine)
    # The backing registrations legitimately differ between the runs
    # (shared entries vs one per subscription); everything that
    # determines query answers must not.
    digest.pop("queries")
    return digest


@settings(max_examples=8, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(groups=subscription_groups)
def test_shared_and_unshared_serving_are_indistinguishable(groups):
    shared, shared_subs = run_workload(groups, sharing=True)
    unshared, unshared_subs = run_workload(groups, sharing=False)

    # The runs must actually differ in evaluation work whenever a plan
    # has more than one subscriber, or the differential proves nothing.
    copies = sum(c for _, _, c in groups)
    assert unshared.registry.num_shared == copies
    assert shared.registry.num_shared <= copies
    if any(c > 1 for _, _, c in groups):
        assert shared.executions_saved > 0

    delivered = 0
    for ours, theirs in zip(shared_subs, unshared_subs):
        results = subscriber_facts(ours)
        assert results == subscriber_facts(theirs)
        assert execution_meter_facts(ours) == execution_meter_facts(theirs)
        delivered += len(results)
    # Both layers account for the same delivered-result volume.
    assert delivered == shared.results_delivered == \
        unshared.results_delivered
    assert diff_digests(data_plane_digest(shared.engine),
                        data_plane_digest(unshared.engine)) == []
