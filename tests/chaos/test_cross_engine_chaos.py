"""Cross-engine differential under faults: Wukong+S vs the composite.

The composite baseline (stream processor + RDF store) knows nothing about
our fault-tolerance machinery, so a fault-free composite run is an
independent oracle for what each window close of an LSBench continuous
query must contain.  A faulted-then-recovered Wukong+S run is held to the
at-least-once relation against that oracle: **no lost bindings** (every
row the oracle reports appears in Wukong+S's answer for that close) and
**duplicates flagged** (rows exceeding the oracle's multiplicity are
reported, never silently absorbed).  Because recovery replays the durable
log with original SNs, the relation here is actually exact — zero lost,
zero duplicated — which the test pins down.
"""

from collections import Counter

import pytest

from baselines.helpers import to_names
from repro.baselines.composite import CompositeEngine
from repro.bench.harness import build_wukongs, feed_baseline
from repro.bench.lsbench import LSBench, LSBenchConfig
from repro.chaos import ChaosController, FaultPlan, KillNode
from repro.sparql.parser import parse_query
from repro.sim.cluster import Cluster

pytestmark = pytest.mark.chaos

TICKS = 30
DURATION_MS = TICKS * 100
RATE_SCALE = 0.01  # PO 10/batch, PO_L 86/batch: small but join-dense

#: Kill node 1 mid-run for 4 ticks: the 1500 ms closes land in the outage.
PLAN = FaultPlan([KillNode(at_tick=12, node_id=1, down_ticks=4)],
                 name="cross-engine-kill")

#: One group-II query per shape: L4 (stream-only index start) and L5 (the
#: paper's QC: two windows joined through stored fo edges).
QUERIES = ("L4", "L5")


def _at_least_once(oracle_rows, observed_rows):
    """(lost, duplicated) decoded-row multiset differences."""
    oracle, observed = Counter(oracle_rows), Counter(observed_rows)
    lost = list((oracle - observed).elements())
    duplicated = list((observed - oracle).elements())
    return lost, duplicated


@pytest.fixture(scope="module")
def runs():
    bench = LSBench(LSBenchConfig.tiny())
    texts = {name: bench.continuous_query(name, step_ms=500)
             for name in QUERIES}

    wukong = build_wukongs(bench, num_nodes=2, duration_ms=DURATION_MS,
                           rate_scale=RATE_SCALE, fault_tolerance=True)
    handles = {name: wukong.register_continuous(text)
               for name, text in texts.items()}
    controller = ChaosController(PLAN)
    controller.attach(wukong, ticks=TICKS)
    for _ in range(TICKS):
        wukong.step()

    composite = CompositeEngine(Cluster(num_nodes=2))
    feed_baseline(composite, bench, DURATION_MS, rate_scale=RATE_SCALE)
    return bench, texts, wukong, handles, controller, composite


def test_outage_actually_hit_window_closes(runs):
    _, _, _, handles, controller, _ = runs
    assert controller.reports, "the kill must have been recovered"
    gaps = [gap for handle in handles.values() for gap in handle.gaps]
    assert gaps, "the outage must cover at least one window close"
    assert all(gap.resolved for gap in gaps)


@pytest.mark.parametrize("name", QUERIES)
def test_no_lost_bindings_and_duplicates_flagged(runs, name):
    bench, texts, wukong, handles, _, composite = runs
    handle = handles[name]
    closes = [rec.close_ms for rec in handle.executions]
    assert len(closes) >= 4, f"{name} executed only at {closes}"

    query = parse_query(texts[name])
    nonempty = 0
    for rec in handle.executions:
        oracle_raw, _, _ = composite.execute_continuous(query, rec.close_ms)
        oracle = to_names(composite.strings, oracle_raw)
        observed = to_names(wukong.strings, rec.result.rows)
        lost, duplicated = _at_least_once(oracle, observed)
        assert not lost, (f"{name}@{rec.close_ms}: {len(lost)} bindings "
                          f"lost to the fault: {lost[:5]}")
        # At-least-once permits duplicates but never hides them; with
        # log-replay recovery there are none to flag.
        assert not duplicated, (f"{name}@{rec.close_ms}: "
                                f"{len(duplicated)} duplicated bindings "
                                f"flagged: {duplicated[:5]}")
        nonempty += bool(oracle)
    assert nonempty, f"oracle produced no rows for {name}: vacuous test"


def test_faulted_run_matches_fault_free_run(runs):
    """The same Wukong+S workload without the plan: results identical,
    so the cross-engine agreement is not an artifact of the fault."""
    bench, texts, wukong, handles, _, _ = runs
    clean = build_wukongs(bench, num_nodes=2, duration_ms=DURATION_MS,
                          rate_scale=RATE_SCALE, fault_tolerance=True)
    clean_handles = {name: clean.register_continuous(text)
                     for name, text in texts.items()}
    for _ in range(TICKS):
        clean.step()
    for name in QUERIES:
        faulted = [(rec.close_ms, to_names(wukong.strings, rec.result.rows))
                   for rec in handles[name].executions]
        pristine = [(rec.close_ms, to_names(clean.strings, rec.result.rows))
                    for rec in clean_handles[name].executions]
        assert faulted == pristine
