"""Client-visible fault semantics: timeout, backoff, retry, gap markers.

The acceptance scenario: a proxy request that hits a dead node retries
with seeded-jitter exponential backoff and succeeds — with the complete
answer — once ``recover_node`` has replayed the durable log.  No silent
partial answers, no silent drops: exhausted requests fail loudly with
:class:`ProxyTimeoutError`, and continuous subscribers see gap markers
that are resolved once catch-up delivers the late windows.
"""

import pytest

from chaos.chaos_workload import build_engine
from core.determinism_workload import CONTINUOUS_QUERIES, ONESHOT_QUERIES
from repro.client.proxy import Proxy, ProxyPool, RetryPolicy
from repro.errors import ProxyTimeoutError

pytestmark = pytest.mark.chaos

#: Index-start over streamed timeless data: the answer depends on every
#: injected batch, so a partial answer would be visible as missing rows.
QUERY = ONESHOT_QUERIES["O2"]


def _run(engine, ticks):
    for _ in range(ticks):
        engine.step()


def test_healthy_submission_is_one_attempt():
    engine = build_engine()
    _run(engine, 10)
    proxy = Proxy(engine, proxy_id=0, affinity_node=0, seed=7)
    request = proxy.submit_robust(QUERY)
    assert request.done and request.attempts == 1
    assert request.waited_ns == 0.0 and request.backoffs_ns == []
    assert proxy.stats.timeouts == 0
    assert proxy.wait_for(request).rows


def test_retry_succeeds_after_recovery_without_data_loss():
    engine = build_engine()
    _run(engine, 15)
    proxy = Proxy(engine, proxy_id=0, affinity_node=0, seed=7)

    engine.crash_node(1)
    request = proxy.submit_robust(QUERY)
    assert not request.done
    assert proxy.stats.timeouts == 1 and request.backoffs_ns

    # Two degraded ticks: the request keeps timing out on its backoff
    # schedule, never executing against the half-empty cluster.
    for _ in range(2):
        engine.step()
        assert proxy.pump() == []
    assert not request.done and request.attempts > 1
    attempts_while_down = request.attempts

    engine.recover_node(1)
    engine.step()  # catch-up: the stalled injections drain
    finished = proxy.pump()
    assert finished == [request] and proxy.pending == []

    result = proxy.wait_for(request)
    assert request.attempts == attempts_while_down + 1
    assert proxy.stats.retries >= attempts_while_down
    # The client pays for the wait: timeouts + jittered backoffs.
    assert request.waited_ms > 0
    assert result.client_latency_ms >= request.waited_ms
    expected_wait = (len(request.backoffs_ns) * proxy.policy.timeout_ns
                     + sum(request.backoffs_ns))
    assert request.waited_ns == pytest.approx(expected_wait)

    # No client-visible data loss: a never-faulted engine driven through
    # the same 18 ticks gives the exact same decoded answer.
    reference = build_engine()
    _run(reference, 18)
    ref_proxy = Proxy(reference, proxy_id=0, affinity_node=0, seed=7)
    ref_result = ref_proxy.wait_for(ref_proxy.submit_robust(QUERY))
    assert ref_result.rows, "reference answer must be non-trivial"
    assert sorted(result.rows) == sorted(ref_result.rows)
    assert result.snapshot == ref_result.snapshot


def test_backoff_jitter_is_seeded_and_reproducible():
    def drained_backoffs(seed):
        engine = build_engine()
        _run(engine, 12)
        proxy = Proxy(engine, proxy_id=0, affinity_node=0, seed=seed)
        engine.crash_node(0)
        request = proxy.submit_robust(QUERY)
        engine.step()
        proxy.pump()
        return list(request.backoffs_ns)

    first, second = drained_backoffs(7), drained_backoffs(7)
    assert len(first) > 2
    assert first == second, "same seed must draw the same jitter"
    assert drained_backoffs(8) != first, "different seed, different jitter"
    # Bounded exponential: no draw exceeds the cap, later draws grow
    # until they saturate at [cap/2, cap].
    cap = RetryPolicy().backoff_cap_ns
    assert all(draw <= cap for draw in first)
    assert max(first) > first[0]


def test_exhausted_request_fails_loudly():
    engine = build_engine()
    _run(engine, 12)
    policy = RetryPolicy(max_attempts=4)
    proxy = Proxy(engine, proxy_id=0, affinity_node=0, policy=policy,
                  seed=3)
    engine.crash_node(0)
    request = proxy.submit_robust(QUERY)
    for _ in range(3):  # never recovered: the attempt budget runs out
        engine.step()
        proxy.pump()
    assert request.failed and request.attempts == policy.max_attempts
    assert proxy.stats.failures == 1 and proxy.pending == []
    with pytest.raises(ProxyTimeoutError, match="gave up after 4 attempts"):
        proxy.wait_for(request)


def test_pending_request_cannot_be_waited_on_early():
    engine = build_engine()
    _run(engine, 12)
    proxy = Proxy(engine, proxy_id=0, affinity_node=0, seed=3)
    engine.crash_node(0)
    request = proxy.submit_robust(QUERY)
    with pytest.raises(ProxyTimeoutError, match="still pending"):
        proxy.wait_for(request)


def test_pool_pumps_all_proxies_through_an_outage():
    engine = build_engine()
    _run(engine, 15)
    pool = ProxyPool(engine, num_proxies=2, seed=11)
    engine.crash_node(1)
    requests = [pool.submit_robust(QUERY) for _ in range(4)]
    assert pool.total_pending == 4
    engine.step()
    assert pool.pump() == []
    engine.recover_node(1)
    engine.step()
    finished = pool.pump()
    assert sorted(map(id, finished)) == sorted(map(id, requests))
    assert pool.total_pending == 0
    answers = {tuple(sorted(r.result.rows)) for r in requests}
    assert len(answers) == 1, "every client sees the same complete answer"


def test_subscription_gap_markers_resolve_after_catchup():
    engine = build_engine()
    proxy = Proxy(engine, proxy_id=0, affinity_node=0, seed=5)
    text = CONTINUOUS_QUERIES["QG"].replace("QG", "QG_SUB")
    subscription = proxy.register(text)
    _run(engine, 14)
    subscription.poll()
    assert subscription.poll_gaps() == []

    engine.crash_node(0)
    _run(engine, 5)  # misses QG_SUB closes at 1800 and 2200 ms
    markers = subscription.poll_gaps()
    assert markers and all(not m.resolved for m in markers)
    assert subscription.poll() == [], "no silent partial windows"

    engine.recover_node(0)
    _run(engine, 2)
    late = subscription.poll()
    assert len(late) >= len(markers), "catch-up delivers the late windows"
    assert all(m.resolved for m in markers)
    assert subscription.poll_gaps() == [], "no new gaps after the heal"
