"""The chaos golden: a pinned multi-fault run, reproduced exactly.

``golden_chaos.json`` records the chronicle of the hand-written
:func:`~chaos.chaos_workload.golden_plan` (hold, corrupt, kill, recover,
straggle — all four fault families over the RNG-free 50-tick workload):
every chaos event with its tick and simulated millisecond, every gap
marker with its resolution time, the recovery report, and SHA-256
fingerprints of the full result set and final state digest.  Replaying
the plan must reproduce the file field for field in any process — the
chaos machinery itself is deterministic, not just fault-free execution.

Regenerate deliberately with ``scripts/regen_goldens.py``.
"""

import json

import pytest

from chaos.chaos_workload import (GOLDEN_CHAOS_PATH, TICKS, build_engine,
                                  golden_plan)
from repro.chaos import chaos_run_facts

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def facts():
    recomputed = chaos_run_facts(build_engine, golden_plan(), TICKS)
    return json.loads(json.dumps(recomputed, sort_keys=True))


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_CHAOS_PATH) as handle:
        return json.load(handle)


def test_plan_and_window(facts, golden):
    assert facts["plan"] == golden["plan"]
    assert facts["ticks"] == golden["ticks"] == TICKS
    assert facts["first_fault_ms"] == golden["first_fault_ms"]
    assert facts["heal_ms"] == golden["heal_ms"]


def test_event_chronicle_is_exact(facts, golden):
    assert facts["events"] == golden["events"]


def test_gap_ledger_is_exact(facts, golden):
    assert facts["gaps"] == golden["gaps"]
    assert golden["gaps"], "the golden plan must miss at least one close"
    assert all(gap["resolved_ms"] is not None for gap in golden["gaps"])


def test_recovery_reports_are_exact(facts, golden):
    assert facts["recoveries"] == golden["recoveries"]
    # The corrupt record was detected and rebuilt during replay.
    assert sum(rep["rejected_entries"]
               for rep in golden["recoveries"]) == 1
    assert any(rep["rebuilt"] for rep in golden["recoveries"])


def test_result_and_state_fingerprints(facts, golden):
    assert facts["results_sha256"] == golden["results_sha256"]
    assert facts["state_sha256"] == golden["state_sha256"]


def test_golden_exercises_every_fault_family(golden):
    kinds = {event["kind"] for event in golden["events"]}
    assert {"hold", "release", "corrupt", "kill", "recover",
            "straggle_on", "straggle_off"} <= kinds, kinds
