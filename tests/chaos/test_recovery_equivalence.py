"""Recovery equivalence: faulted + recovered == never faulted, bit for bit.

The headline invariant of the fault model (DESIGN.md §5): after every
fault in a plan has healed and the engine has caught up, query results,
injection records and the full queryable-state digest are identical to a
fault-free replay of the same 50-tick workload.  Checked here for 28
seeded random plans (covering all four fault families plus mid-batch
kills) and a handful of hand-written worst cases.
"""

import pytest

from chaos.chaos_workload import (NUM_NODES, STREAMS, TICKS,
                                  TICKS_PER_CHECKPOINT, build_engine,
                                  golden_plan)
from repro.chaos import (CorruptRecord, DelayMessage, DropMessage,
                         FaultPlan, KillNode, Straggler, random_fault_plan,
                         run_equivalence)
from repro.errors import ChaosError

pytestmark = pytest.mark.chaos

#: 28 consecutive seeds: seed % 4 cycles the fault kind, so each family
#: (kill / delay-or-drop / straggler / corrupt-then-kill) appears 7 times.
SEEDS = list(range(28))


def _check(plan: FaultPlan) -> None:
    report = run_equivalence(build_engine, plan, TICKS)
    assert report.equivalent, \
        f"{report.summary()}\n  " + "\n  ".join(report.mismatches[:10])
    # The plan must actually have fired (a vacuous pass proves nothing).
    assert report.first_fault_ms is not None, report.summary()
    assert report.events, report.summary()


@pytest.mark.parametrize("seed", SEEDS)
def test_random_plan_equivalence(seed):
    plan = random_fault_plan(seed, TICKS, NUM_NODES, STREAMS,
                             ticks_per_checkpoint=TICKS_PER_CHECKPOINT)
    _check(plan)


def test_seed_sweep_covers_every_fault_kind():
    kinds = set()
    for seed in SEEDS:
        plan = random_fault_plan(seed, TICKS, NUM_NODES, STREAMS,
                                 ticks_per_checkpoint=TICKS_PER_CHECKPOINT)
        kinds.update(plan.kinds)
    assert kinds == {"KillNode", "DelayMessage", "DropMessage",
                     "Straggler", "CorruptRecord"}


def test_mid_batch_kill():
    """Kill between the tick's two batch injections: the nastiest spot."""
    plan = FaultPlan([KillNode(at_tick=14, node_id=0, down_ticks=3,
                               after_batches=1)], name="mid-batch-kill")
    _check(plan)


def test_kill_during_checkpoint_tick():
    """Kill on a grid tick: the skipped checkpoint must rejoin the grid."""
    plan = FaultPlan([KillNode(at_tick=20, node_id=1, down_ticks=4)],
                     name="kill-on-grid")
    _check(plan)


def test_corrupt_then_kill_rebuilds_from_upstream():
    plan = FaultPlan([CorruptRecord(at_tick=23, node_id=1),
                      KillNode(at_tick=26, node_id=1, down_ticks=3)],
                     name="corrupt-kill")
    report = run_equivalence(build_engine, plan, TICKS)
    assert report.equivalent, "\n".join(report.mismatches[:10])
    corrupts = [e for e in report.events if e["kind"] == "corrupt"]
    assert len(corrupts) == 1
    assert any(e["kind"] == "recover" and e["detail"]["rejected"] == 1
               for e in report.events), report.events


def test_delay_and_drop_release_in_batch_order():
    """Held/lost batches re-enter in batch order even when a later batch
    was already staged as pending — the release must not overtake it."""
    for fault in (DelayMessage(stream="Tweet_Stream", batch_no=11,
                               hold_ticks=3),
                  DropMessage(stream="Like_Stream", batch_no=11,
                              detect_ticks=3)):
        _check(FaultPlan([fault], name="reorder-hazard"))


def test_straggler_perturbs_meters_only():
    plan = FaultPlan([Straggler(at_tick=10, node_id=0, factor=3.0,
                                duration_ticks=6)], name="straggle")
    report = run_equivalence(build_engine, plan, TICKS)
    assert report.equivalent, "\n".join(report.mismatches[:10])
    # A straggler degrades nothing: no gaps, no recoveries.
    assert report.gaps == [] and report.recoveries == 0


def test_golden_plan_is_equivalent():
    """The multi-fault plan behind the golden file also holds."""
    _check(golden_plan())


def test_gaps_are_noted_and_resolved_for_kills():
    plan = FaultPlan([KillNode(at_tick=12, node_id=0, down_ticks=5)],
                     name="gap-accounting")
    report = run_equivalence(build_engine, plan, TICKS)
    assert report.equivalent, "\n".join(report.mismatches[:10])
    assert report.gaps, "a 5-tick outage must miss at least one close"
    for gap in report.gaps:
        assert gap["resolved_ms"] is not None
        assert gap["resolved_ms"] >= gap["noted_ms"] >= gap["close_ms"]


class TestPlanValidation:
    def test_overlapping_kills_rejected(self):
        plan = FaultPlan([KillNode(at_tick=10, node_id=0, down_ticks=5),
                          KillNode(at_tick=12, node_id=1, down_ticks=5)])
        with pytest.raises(ChaosError, match="overlapping kills"):
            plan.validate(NUM_NODES, STREAMS, TICKS)

    def test_corrupt_without_kill_rejected(self):
        plan = FaultPlan([CorruptRecord(at_tick=15, node_id=0)])
        with pytest.raises(ChaosError, match="needs a later kill"):
            plan.validate(NUM_NODES, STREAMS, TICKS)

    def test_corrupt_crossing_checkpoint_window_rejected(self):
        plan = FaultPlan([CorruptRecord(at_tick=18, node_id=0),
                          KillNode(at_tick=25, node_id=0, down_ticks=3)])
        with pytest.raises(ChaosError, match="checkpoint window"):
            plan.validate(NUM_NODES, STREAMS, TICKS)

    def test_unknown_stream_rejected(self):
        plan = FaultPlan([DelayMessage(stream="No_Stream", batch_no=5,
                                       hold_ticks=1)])
        with pytest.raises(ChaosError, match="unknown stream"):
            plan.validate(NUM_NODES, STREAMS, TICKS)

    def test_kill_healing_too_late_rejected(self):
        plan = FaultPlan([KillNode(at_tick=TICKS - 3, node_id=0,
                                   down_ticks=4)])
        with pytest.raises(ChaosError, match="heal before the run ends"):
            plan.validate(NUM_NODES, STREAMS, TICKS)

    def test_kill_requires_fault_tolerance(self):
        from repro.chaos import ChaosController
        from repro.core.engine import EngineConfig, WukongSEngine
        from repro.streams.stream import StreamSchema
        engine = WukongSEngine(
            schemas=[StreamSchema("Tweet_Stream")],
            config=EngineConfig(num_nodes=2, fault_tolerance=False))
        plan = FaultPlan([KillNode(at_tick=10, node_id=0, down_ticks=2)])
        with pytest.raises(ChaosError, match="fault_tolerance"):
            ChaosController(plan).attach(engine, ticks=TICKS)
