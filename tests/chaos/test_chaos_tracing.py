"""Recovery equivalence with the observability tracer attached.

Tracing must be neutral under faults too: a traced chaotic run still
matches the fault-free replay bit for bit, the chaos controller records a
``recover`` event span per recovery, and recovery event spans carry the
recovery meter's exact simulated cost.
"""

import pytest

from chaos.chaos_workload import NUM_NODES, STREAMS, TICKS, \
    TICKS_PER_CHECKPOINT, build_engine
from repro.chaos import FaultPlan, KillNode, random_fault_plan, \
    run_equivalence

pytestmark = pytest.mark.chaos


def build_traced_engine():
    engine = build_engine()
    engine.enable_observability()
    return engine


def test_equivalence_holds_with_tracing_enabled():
    plan = FaultPlan([KillNode(at_tick=14, node_id=0, down_ticks=3)],
                     name="traced-kill")
    report = run_equivalence(build_traced_engine, plan, TICKS)
    assert report.equivalent, \
        f"{report.summary()}\n  " + "\n  ".join(report.mismatches[:10])
    assert report.recoveries == 1


def test_recovery_event_span_carries_meter_cost():
    plan = FaultPlan([KillNode(at_tick=14, node_id=0, down_ticks=3)],
                     name="traced-kill-span")
    engine = build_traced_engine()
    from repro.chaos import ChaosController
    controller = ChaosController(plan)
    controller.attach(engine, ticks=TICKS)
    for _ in range(TICKS):
        engine.step()
    recoveries = [s for s in engine.tracer.spans
                  if s.kind == "event" and s.name == "recover"]
    assert len(recoveries) == 1
    span = recoveries[0]
    assert span.cat == "chaos"
    assert span.labels["node_id"] == 0
    assert span.ns == controller.reports[0].meter.ns
    assert span.ns > 0


def test_random_plan_equivalence_with_tracing():
    plan = random_fault_plan(7, TICKS, NUM_NODES, STREAMS,
                             ticks_per_checkpoint=TICKS_PER_CHECKPOINT)
    report = run_equivalence(build_traced_engine, plan, TICKS)
    assert report.equivalent, "\n".join(report.mismatches[:10])
