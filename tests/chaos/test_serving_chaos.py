"""Chaos under serving load: kill + recovery with ~10^3 registered queries.

The serving layer multiplies the registration count a thousand-fold
without multiplying the evaluation work — so the recovery story must
hold unchanged underneath it: a node kill mid-run, healed by durable-log
replay, leaves every subscriber's delivered rows and the engine's entire
queryable state bit-identical to a never-faulted run, with the missed
closes surfaced as gap markers that resolve after catch-up.  And the
whole thing — fan-out bookkeeping, per-tenant latency samples, proxy
retry jitter — must be deterministic across reruns.
"""

import pytest

from chaos.chaos_workload import (NUM_NODES, STREAMS, TICKS,
                                  TICKS_PER_CHECKPOINT, build_engine)
from core.determinism_workload import CONTINUOUS_QUERIES, ONESHOT_QUERIES
from repro.chaos.controller import ChaosController
from repro.chaos.harness import _execution_facts
from repro.chaos.plan import FaultPlan, KillNode
from repro.chaos.state import diff_digests, engine_state_digest
from repro.serving import AdmissionPolicy, ServingLayer

pytestmark = [pytest.mark.chaos, pytest.mark.serving]

#: Enough subscriptions for the "thousands of registered queries" story;
#: they dedupe to the 6 distinct workload plans.
NUM_SUBSCRIPTIONS = 1_002
NUM_TENANTS = 6

#: Kill node 1 at tick 26 for 4 ticks (mid window-close schedule, inside
#: checkpoint window 3), as in the columnar differential suite.
KILL_TICK, DOWN_TICKS = 26, 4
#: Meters of closes inside the opaque interval — first fault to the
#: checkpoint boundary after the heal — legitimately differ (catch-up
#: executes at a later stable SN); rows must match everywhere.
OPAQUE_MS = (KILL_TICK * 100, ((KILL_TICK + DOWN_TICKS) * 100 // 1_000
                               + 1) * 1_000)


def kill_plan() -> FaultPlan:
    plan = FaultPlan(
        faults=[KillNode(at_tick=KILL_TICK, node_id=1,
                         down_ticks=DOWN_TICKS)],
        name="kill-under-serving-load")
    plan.validate(NUM_NODES, STREAMS, TICKS,
                  ticks_per_checkpoint=TICKS_PER_CHECKPOINT)
    return plan


def build_serving():
    engine = build_engine(register_queries=False)
    serving = ServingLayer(engine, policy=AdmissionPolicy(
        max_subscriptions=2 * NUM_SUBSCRIPTIONS))
    texts = list(CONTINUOUS_QUERIES.values())
    subscriptions = []
    for i in range(NUM_SUBSCRIPTIONS):
        subscriptions.append(serving.register(f"tenant{i % NUM_TENANTS}",
                                              texts[i % len(texts)]))
    return engine, serving, subscriptions


def run_workload(faulted: bool):
    engine, serving, subscriptions = build_serving()
    if faulted:
        controller = ChaosController(kill_plan())
        controller.attach(engine, ticks=TICKS)
    for _ in range(TICKS):
        serving.tick()
    engine.gc.run(engine.clock.now_ms)
    return engine, serving, subscriptions


def rows_facts(engine):
    """Execution facts without meters (rows must match even for the
    catch-up closes whose meters are opaque)."""
    return {name: [fact[:3] for fact in facts]
            for name, facts in _execution_facts(engine).items()}


def meter_facts_outside_opaque(engine):
    return {name: [fact[3:] for fact in facts
                   if not OPAQUE_MS[0] <= fact[0] <= OPAQUE_MS[1]]
            for name, facts in _execution_facts(engine).items()}


def test_kill_recovery_equivalence_under_serving_load():
    golden_engine, golden, golden_subs = run_workload(faulted=False)
    chaos_engine, chaotic, chaos_subs = run_workload(faulted=True)
    assert chaotic.registry.num_subscribers == NUM_SUBSCRIPTIONS
    assert chaotic.registry.num_shared == len(CONTINUOUS_QUERIES)

    # The kill must actually have disturbed the close schedule.
    markers = [marker for sub in chaos_subs for marker in sub.poll_gaps()]
    assert markers, "fault plan no longer disturbs any window close"
    assert all(marker.resolved for marker in markers), \
        "catch-up must resolve every gap before the run ends"

    # Recovery equivalence, through the serving layer: same rows on
    # every backing execution, same meters outside the opaque interval,
    # same engine state (backing registrations included — both runs
    # share the same deduped set).
    assert rows_facts(chaos_engine) == rows_facts(golden_engine)
    assert meter_facts_outside_opaque(chaos_engine) == \
        meter_facts_outside_opaque(golden_engine)
    assert diff_digests(engine_state_digest(golden_engine),
                        engine_state_digest(chaos_engine)) == []

    # Subscriber-visible equivalence, sampled across tenants and plans:
    # identical decoded rows, including the catch-up deliveries.
    for golden_sub, chaos_sub in list(zip(golden_subs, chaos_subs))[::101]:
        golden_results = [(r.columns, r.rows) for r in golden_sub.poll()]
        chaos_results = [(r.columns, r.rows) for r in chaos_sub.poll()]
        assert golden_results == chaos_results
        assert golden_results, "sampled subscriber saw no closes"
    # Fan-out accounting survives the fault path.
    assert chaotic.results_delivered == golden.results_delivered
    assert chaotic.closes_evaluated == golden.closes_evaluated


def test_chaotic_serving_run_deterministic_across_reruns():
    first_engine, first, _ = run_workload(faulted=True)
    second_engine, second, _ = run_workload(faulted=True)
    # Bit-identical everything, meters included: same fault plan, same
    # catch-up schedule, same simulated charges.
    assert _execution_facts(first_engine) == _execution_facts(second_engine)
    assert diff_digests(engine_state_digest(first_engine),
                        engine_state_digest(second_engine)) == []
    assert first.snapshot() == second.snapshot()
    assert first.latency_percentiles("close") == \
        second.latency_percentiles("close")


def test_proxy_retry_under_serving_load_deterministic():
    """One-shot requests hitting the degraded window retry on the seeded
    backoff schedule and succeed after the heal — identically on reruns."""
    query = ONESHOT_QUERIES["O2"]

    def run_with_retries():
        engine, serving, _ = build_serving()
        controller = ChaosController(kill_plan())
        controller.attach(engine, ticks=TICKS)
        requests = []
        for tick in range(TICKS):
            serving.tick()
            if tick == KILL_TICK:  # cluster degraded: request must queue
                requests = [serving.proxies.submit_robust(query)
                            for _ in range(3)]
            serving.proxies.pump()
        return engine, serving, requests

    first_engine, first_serving, first_requests = run_with_retries()
    assert all(request.done and not request.failed
               for request in first_requests)
    assert all(request.attempts > 1 for request in first_requests), \
        "requests must actually have retried through the outage"
    # Complete answers, no partial reads against the half-dead cluster:
    # every retried client sees the same rows.
    answers = {tuple(sorted(request.result.rows))
               for request in first_requests}
    assert len(answers) == 1 and all(request.result.rows
                                     for request in first_requests)

    second_engine, second_serving, second_requests = run_with_retries()
    for ours, theirs in zip(first_requests, second_requests):
        assert ours.backoffs_ns == theirs.backoffs_ns
        assert ours.waited_ns == theirs.waited_ns
        assert ours.attempts == theirs.attempts
        assert ours.result.rows == theirs.result.rows
        assert ours.result.client_latency_ms == \
            theirs.result.client_latency_ms
    assert diff_digests(engine_state_digest(first_engine),
                        engine_state_digest(second_engine)) == []
