"""Differential check: columnar vs row window closes are bit-identical.

The columnar window-close path — flat-column stream-index reads through
``ColumnarSlice`` and the ``WindowAccess`` batch hooks, with incremental
window deltas between closes — is a wall-clock optimization only.  This
suite runs the same chaos workload twice, once on the columnar batch
kernels and once on the row kernels, and demands:

* identical rows for every continuous execution (including catch-ups),
* identical simulated meters, total and per-category breakdown,
* identical injection records, and
* an identical engine state digest after a final GC pass,

under a fault plan that kills a node in the middle of the window-close
schedule (so recovery, catch-up closes and delta-cache resets all happen
on both paths).
"""

import pytest

from chaos.chaos_workload import (NUM_NODES, STREAMS, TICKS,
                                  TICKS_PER_CHECKPOINT, build_engine)
from repro.chaos.controller import ChaosController
from repro.chaos.harness import _execution_facts, _injection_facts
from repro.chaos.plan import FaultPlan, KillNode
from repro.chaos.state import diff_digests, engine_state_digest

pytestmark = pytest.mark.chaos


def kill_during_close_plan() -> FaultPlan:
    """Kill node 1 at tick 26 for 4 ticks: with 100 ms batches and
    STEP 100 windows, closes fire every tick, so the crash lands mid-
    schedule and forces catch-up closes after the heal."""
    plan = FaultPlan(faults=[KillNode(at_tick=26, node_id=1, down_ticks=4)],
                     name="kill-during-close")
    plan.validate(NUM_NODES, STREAMS, TICKS,
                  ticks_per_checkpoint=TICKS_PER_CHECKPOINT)
    return plan


def run_workload(columnar: bool, faulted: bool):
    engine = build_engine()
    if not columnar:
        # Same engine, row kernels: every window close takes the per-row
        # span walk instead of the columnar window views.
        engine.continuous.explorer.use_batch = False
        engine.oneshot_engine.explorer.use_batch = False
    if faulted:
        controller = ChaosController(kill_during_close_plan())
        controller.attach(engine, ticks=TICKS)
    for _ in range(TICKS):
        engine.step()
    engine.gc.run(engine.clock.now_ms)
    return engine


def assert_runs_identical(batch_engine, row_engine):
    assert _execution_facts(batch_engine) == _execution_facts(row_engine)
    assert _injection_facts(batch_engine, with_meters=True) == \
        _injection_facts(row_engine, with_meters=True)
    assert diff_digests(engine_state_digest(batch_engine),
                        engine_state_digest(row_engine)) == []


def test_columnar_and_row_closes_identical_fault_free():
    assert_runs_identical(run_workload(columnar=True, faulted=False),
                          run_workload(columnar=False, faulted=False))


def test_columnar_and_row_closes_identical_under_kill_during_close():
    batch_engine = run_workload(columnar=True, faulted=True)
    row_engine = run_workload(columnar=False, faulted=True)
    # The kill must actually have disturbed the close schedule, or this
    # test degenerates into the fault-free case.
    assert any(handle.gaps
               for handle in batch_engine.continuous.queries.values()), \
        "fault plan no longer disturbs any window close"
    assert_runs_identical(batch_engine, row_engine)


def test_columnar_path_actually_ran_under_chaos():
    """Guard against the differential silently comparing row vs row."""
    engine = run_workload(columnar=True, faulted=True)
    views = [view for handle in engine.continuous.queries.values()
             for view in handle.window_views.values()]
    assert views, "columnar run produced no window views"
    assert any(view.hits + view.misses > 0 for view in views)
    assert any(view.delta_hits > 0 for view in views)
