"""Tests for the error hierarchy and top-level package surface."""

import pytest

import repro
from repro.errors import (AdmissionError, BacklogAdmissionError,
                          ConsistencyError, FaultToleranceError, ParseError,
                          PlanError, RegistrationAdmissionError,
                          RegistrationError, ReproError, StoreError,
                          StreamError, UnsupportedOperationError)


def test_all_errors_derive_from_repro_error():
    for exc_type in (ParseError, PlanError, StoreError, StreamError,
                     ConsistencyError, RegistrationError,
                     UnsupportedOperationError, FaultToleranceError,
                     AdmissionError, RegistrationAdmissionError,
                     BacklogAdmissionError):
        assert issubclass(exc_type, ReproError)


def test_admission_errors_carry_budget_context():
    error = RegistrationAdmissionError("tenant over budget", tenant="t3",
                                       budget=16, in_use=16)
    assert isinstance(error, AdmissionError)
    assert (error.tenant, error.budget, error.in_use) == ("t3", 16, 16)
    assert issubclass(BacklogAdmissionError, AdmissionError)
    assert not issubclass(BacklogAdmissionError, RegistrationAdmissionError)


def test_parse_error_carries_position():
    error = ParseError("bad token", line=3, column=7)
    assert error.line == 3
    assert error.column == 7
    assert "line 3" in str(error)


def test_parse_error_without_position():
    assert str(ParseError("oops")) == "oops"


def test_package_exports():
    assert repro.__version__
    engine = repro.WukongSEngine(schemas=[repro.StreamSchema("S")],
                                 config=repro.EngineConfig(num_nodes=1))
    assert engine.cluster.num_nodes == 1
    query = repro.parse_query("SELECT ?x WHERE { a p ?x }")
    assert query.projected() == ["?x"]


def test_catching_base_class_catches_all():
    with pytest.raises(ReproError):
        repro.parse_query("not a query")
