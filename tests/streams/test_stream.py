"""Tests for stream schemas, batches and batching."""

import pytest

from repro.errors import StreamError
from repro.rdf.parser import parse_timed_tuples
from repro.rdf.terms import TimedTuple, Triple
from repro.streams.stream import StreamBatch, StreamSchema, batch_tuples


def tup(s, p, o, ts):
    return TimedTuple(Triple(s, p, o), ts)


class TestSchema:
    def test_timing_classification(self):
        schema = StreamSchema("Tweet_Stream", frozenset({"ga"}))
        assert schema.is_timing("ga")
        assert not schema.is_timing("po")

    def test_default_is_all_timeless(self):
        assert not StreamSchema("S").is_timing("anything")


class TestBatch:
    def test_add_checks_interval(self):
        batch = StreamBatch("S", 1, 0, 100)
        batch.add(tup("a", "p", "b", 50))
        with pytest.raises(StreamError):
            batch.add(tup("a", "p", "b", 100))
        with pytest.raises(StreamError):
            batch.add(tup("a", "p", "b", -1))

    def test_batch_numbers_one_based(self):
        with pytest.raises(StreamError):
            StreamBatch("S", 0, 0, 100)

    def test_empty_interval_rejected(self):
        with pytest.raises(StreamError):
            StreamBatch("S", 1, 100, 100)

    def test_split_by_schema(self):
        schema = StreamSchema("S", frozenset({"ga"}))
        batch = StreamBatch("S", 1, 0, 1000, [
            tup("u", "po", "t1", 10),
            tup("t1", "ga", "loc", 20),
            tup("v", "li", "t1", 30),
        ])
        timeless, timing = batch.split(schema)
        assert [t.triple.predicate for t in timeless] == ["po", "li"]
        assert [t.triple.predicate for t in timing] == ["ga"]


class TestBatching:
    def test_groups_by_interval(self):
        tuples = parse_timed_tuples("""
            a p b @50
            c p d @150
            e p f @199
            g p h @350
        """)
        batches = batch_tuples("S", tuples, start_ms=0, interval_ms=100)
        assert [b.batch_no for b in batches] == [1, 2, 3, 4]
        assert [len(b) for b in batches] == [1, 2, 0, 1]
        assert batches[3].start_ms == 300

    def test_intermediate_empty_batches_created(self):
        batches = batch_tuples("S", [tup("a", "p", "b", 500)], 0, 100)
        assert len(batches) == 6
        assert all(len(b) == 0 for b in batches[:5])

    def test_out_of_order_rejected(self):
        tuples = [tup("a", "p", "b", 200), tup("c", "p", "d", 100)]
        with pytest.raises(StreamError):
            batch_tuples("S", tuples, 0, 100)

    def test_tuple_before_start_rejected(self):
        with pytest.raises(StreamError):
            batch_tuples("S", [tup("a", "p", "b", 10)], start_ms=100,
                         interval_ms=100)

    def test_bad_interval_rejected(self):
        with pytest.raises(StreamError):
            batch_tuples("S", [], 0, 0)

    def test_boundary_timestamps(self):
        batches = batch_tuples(
            "S", [tup("a", "p", "b", 100), tup("c", "p", "d", 199)], 0, 100)
        assert len(batches) == 2
        assert len(batches[1]) == 2

    def test_nonzero_start(self):
        batches = batch_tuples("S", [tup("a", "p", "b", 1234)],
                               start_ms=1000, interval_ms=100)
        assert batches[-1].batch_no == 3
        assert batches[-1].start_ms == 1200
