"""Tests for replayable stream sources (upstream backup)."""

import pytest

from repro.errors import StreamError
from repro.rdf.terms import TimedTuple, Triple
from repro.streams.source import StreamSource
from repro.streams.stream import StreamBatch, StreamSchema


def make_source(n_batches=5):
    source = StreamSource(StreamSchema("S"))
    for k in range(1, n_batches + 1):
        source.queue(StreamBatch("S", k, (k - 1) * 100, k * 100))
    return source


def test_batches_delivered_in_order():
    source = make_source(3)
    delivered = [b.batch_no for b in source.drain()]
    assert delivered == [1, 2, 3]
    assert source.next_batch() is None


def test_wrong_stream_rejected():
    source = StreamSource(StreamSchema("S"))
    with pytest.raises(StreamError):
        source.queue(StreamBatch("other", 1, 0, 100))


def test_out_of_order_queue_rejected():
    source = StreamSource(StreamSchema("S"))
    source.queue(StreamBatch("S", 1, 0, 100))
    with pytest.raises(StreamError):
        source.queue(StreamBatch("S", 3, 200, 300))


def test_delivered_batches_are_backed_up():
    source = make_source(4)
    for _ in range(3):
        source.next_batch()
    assert source.backup_size == 3
    assert [b.batch_no for b in source.replay(1)] == [2, 3]


def test_ack_trims_backup():
    source = make_source(4)
    list(source.drain())
    source.ack(2)
    assert source.backup_size == 2
    assert [b.batch_no for b in source.replay(2)] == [3, 4]


def test_replay_below_ack_rejected():
    source = make_source(4)
    list(source.drain())
    source.ack(2)
    with pytest.raises(StreamError):
        source.replay(1)


def test_ack_cannot_regress():
    source = make_source(3)
    list(source.drain())
    source.ack(2)
    with pytest.raises(StreamError):
        source.ack(1)


def test_queue_tuples_batches_automatically():
    source = StreamSource(StreamSchema("S"))
    tuples = [TimedTuple(Triple("a", "p", "b"), 50),
              TimedTuple(Triple("c", "p", "d"), 250)]
    n = source.queue_tuples(tuples, start_ms=0, interval_ms=100)
    assert n == 3
    assert [len(b) for b in source.drain()] == [1, 0, 1]
