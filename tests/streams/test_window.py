"""Tests for window arithmetic."""

import pytest

from repro.errors import StreamError
from repro.sparql.ast import WindowSpec
from repro.streams.window import (WindowPlanner, expiry_floor_ms,
                                  next_execution_ms)


def planner(range_ms=1000, step_ms=100, interval=100, start=0):
    return WindowPlanner(WindowSpec(range_ms, step_ms), interval, start)


def test_last_batch_needed():
    p = planner()
    assert p.last_batch_needed(0) == 0
    assert p.last_batch_needed(99) == 0
    assert p.last_batch_needed(100) == 1
    assert p.last_batch_needed(1000) == 10


def test_batch_range_full_window():
    p = planner(range_ms=500)
    first, last = p.batch_range(1000)
    assert (first, last) == (6, 10)  # batches covering [500, 1000)


def test_batch_range_clamped_at_stream_start():
    p = planner(range_ms=2000)
    first, last = p.batch_range(1000)
    assert (first, last) == (1, 10)


def test_batch_range_empty_before_start():
    p = planner()
    first, last = p.batch_range(0)
    assert first > last


def test_step_must_align_with_interval():
    with pytest.raises(StreamError):
        WindowPlanner(WindowSpec(1000, 150), 100)


def test_nonzero_stream_start():
    p = planner(start=1000)
    assert p.last_batch_needed(1000) == 0
    assert p.last_batch_needed(1200) == 2
    assert p.batch_range(2000) == (1, 10)


def test_next_execution_times():
    assert next_execution_ms(0, 100, 0) == 100
    assert next_execution_ms(0, 100, 50) == 100
    assert next_execution_ms(0, 100, 100) == 100
    assert next_execution_ms(0, 100, 101) == 200
    assert next_execution_ms(500, 1000, 2600) == 3500


def test_batch_range_opens_before_nonzero_stream_start():
    # Window [1500, 2500) over a stream whose batch #1 opens at 2000:
    # the pre-stream half clamps to batch 1, not to a negative number.
    p = planner(range_ms=1000, start=2000)
    assert p.batch_range(2500) == (1, 5)
    # A window lying entirely before the stream opened is empty.
    p_wide = planner(range_ms=500, start=2000)
    assert p_wide.batch_range(1800)[0] > p_wide.batch_range(1800)[1]


def test_batch_range_empty_windows_first_exceeds_last():
    # Close exactly at stream start: nothing has been delivered.
    p = planner(start=1000)
    first, last = p.batch_range(1000)
    assert first > last
    # Mid-first-batch close: batch 1 has not closed its interval yet.
    first, last = p.batch_range(1050)
    assert first > last
    assert p.batch_range(1100) == (1, 1)


def test_batch_range_step_equals_batch_interval_boundaries():
    # STEP == batch interval: consecutive closes slide by exactly one
    # batch — drop one expired batch, append one newly closed batch.
    p = planner(range_ms=1000, step_ms=100, interval=100)
    previous = None
    for close in range(1000, 2100, 100):
        first, last = p.batch_range(close)
        assert last - first + 1 == 10  # full 10-batch window
        if previous is not None:
            assert (first, last) == (previous[0] + 1, previous[1] + 1)
        previous = (first, last)


def test_batch_range_slide_overlap_is_delta_reusable():
    # RANGE 1000 STEP 300 over 100ms batches: each slide drops 3
    # batches and appends 3 — the overlap a delta-maintained window
    # view retains between closes.
    p = planner(range_ms=1000, step_ms=300)
    f1, l1 = p.batch_range(2000)
    f2, l2 = p.batch_range(2300)
    assert (f2 - f1, l2 - l1) == (3, 3)
    assert f2 <= l1  # overlapping, so the delta path applies


def test_expiry_floor():
    windows = {"A": WindowSpec(1000, 100), "B": WindowSpec(5000, 100)}
    assert expiry_floor_ms(10_000, windows) == 5_000
    assert expiry_floor_ms(10_000, {}) == 10_000


def test_span_at():
    p = planner(range_ms=300)
    assert p.span_at(1000) == (700, 1000)
