"""Tests for window arithmetic."""

import pytest

from repro.errors import StreamError
from repro.sparql.ast import WindowSpec
from repro.streams.window import (WindowPlanner, expiry_floor_ms,
                                  next_execution_ms)


def planner(range_ms=1000, step_ms=100, interval=100, start=0):
    return WindowPlanner(WindowSpec(range_ms, step_ms), interval, start)


def test_last_batch_needed():
    p = planner()
    assert p.last_batch_needed(0) == 0
    assert p.last_batch_needed(99) == 0
    assert p.last_batch_needed(100) == 1
    assert p.last_batch_needed(1000) == 10


def test_batch_range_full_window():
    p = planner(range_ms=500)
    first, last = p.batch_range(1000)
    assert (first, last) == (6, 10)  # batches covering [500, 1000)


def test_batch_range_clamped_at_stream_start():
    p = planner(range_ms=2000)
    first, last = p.batch_range(1000)
    assert (first, last) == (1, 10)


def test_batch_range_empty_before_start():
    p = planner()
    first, last = p.batch_range(0)
    assert first > last


def test_step_must_align_with_interval():
    with pytest.raises(StreamError):
        WindowPlanner(WindowSpec(1000, 150), 100)


def test_nonzero_stream_start():
    p = planner(start=1000)
    assert p.last_batch_needed(1000) == 0
    assert p.last_batch_needed(1200) == 2
    assert p.batch_range(2000) == (1, 10)


def test_next_execution_times():
    assert next_execution_ms(0, 100, 0) == 100
    assert next_execution_ms(0, 100, 50) == 100
    assert next_execution_ms(0, 100, 100) == 100
    assert next_execution_ms(0, 100, 101) == 200
    assert next_execution_ms(500, 1000, 2600) == 3500


def test_expiry_floor():
    windows = {"A": WindowSpec(1000, 100), "B": WindowSpec(5000, 100)}
    assert expiry_floor_ms(10_000, windows) == 5_000
    assert expiry_floor_ms(10_000, {}) == 10_000


def test_span_at():
    p = planner(range_ms=300)
    assert p.span_at(1000) == (700, 1000)
