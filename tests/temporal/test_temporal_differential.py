"""Differential properties of FROM SNAPSHOT queries.

* A ``FROM SNAPSHOT <latest>`` query is bit-identical to its plain
  one-shot twin: same rows in the same order, same simulated charges,
  and neither execution mutates the engine (state digests equal).
* A snapshot query's answer is immutable: re-asking at the same
  snapshot after arbitrary further ingestion returns the same rows
  (scalarization is disabled so deep history stays readable).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos.state import engine_state_digest
from repro.core.engine import EngineConfig, WukongSEngine
from repro.rdf.parser import parse_triples
from repro.rdf.terms import TimedTuple, Triple
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema

pytestmark = pytest.mark.temporal

USERS = ["u0", "u1", "u2", "u3"]
STATIC = "u0 fo u1 .\nu1 fo u2 .\nu2 fo u3 .\nu3 fo u0 ."

QUERIES = [
    "SELECT ?U ?P WHERE { ?U po ?P }",
    "SELECT ?P WHERE { u0 po ?P }",
    "SELECT ?F ?P WHERE { u0 fo ?F . ?F po ?P }",
]


def event_strategy():
    return st.tuples(
        st.sampled_from(USERS),          # actor
        st.integers(0, 5),               # post id
        st.integers(0, 5),               # batch index (1s batches)
    )


def build_engine(events, scalarization=True):
    posts = [TimedTuple(Triple(actor, "po", f"t{post_id}"),
                        batch * 1000 + 500)
             for actor, post_id, batch in sorted(events, key=lambda e: e[2])]
    engine = WukongSEngine(
        schemas=[StreamSchema("Posts")],
        config=EngineConfig(num_nodes=2, batch_interval_ms=1000,
                            scalarization=scalarization))
    engine.load_static(parse_triples(STATIC))
    source = StreamSource(engine.schemas["Posts"])
    source.queue_tuples(posts, 0, 1000)
    engine.attach_source(source)
    return engine


def snapshot_twin(query: str, snapshot: int) -> str:
    return query.replace("WHERE", f"FROM SNAPSHOT <{snapshot}> WHERE", 1)


@settings(max_examples=12, deadline=None)
@given(events=st.lists(event_strategy(), max_size=20),
       query=st.sampled_from(QUERIES))
def test_snapshot_at_latest_is_bit_identical(events, query):
    engine = build_engine(events)
    engine.run_until(7_000)

    plain = engine.oneshot(query)
    digest_before = engine_state_digest(engine)
    twin = engine.oneshot(snapshot_twin(query, plain.snapshot))
    digest_after = engine_state_digest(engine)

    assert twin.result.rows == plain.result.rows
    assert twin.result.variables == plain.result.variables
    assert twin.meter.ns == plain.meter.ns
    assert twin.snapshot == plain.snapshot
    assert digest_after == digest_before
    # Any produced row came from counted snapshot reads.
    if plain.result.rows:
        assert twin.snapshot_reads >= 1


@settings(max_examples=10, deadline=None)
@given(events=st.lists(event_strategy(), min_size=1, max_size=16),
       query=st.sampled_from(QUERIES))
def test_snapshot_results_immutable_under_ingestion(events, query):
    engine = build_engine(events, scalarization=False)
    engine.run_until(3_000)

    snapshot = engine.coordinator.stable_sn
    first = engine.oneshot(snapshot_twin(query, snapshot))

    # Keep ingesting well past the pinned snapshot...
    engine.run_until(7_000)
    assert engine.coordinator.stable_sn >= snapshot

    # ...and the answer at that snapshot must not move, while the live
    # answer is free to grow.
    again = engine.oneshot(snapshot_twin(query, snapshot))
    live = engine.oneshot(query)
    assert again.result.rows == first.result.rows
    assert set(live.result.rows) >= set(first.result.rows)


def test_pins_released_after_execution():
    engine = build_engine([("u0", 1, 0), ("u1", 2, 1)])
    engine.run_until(4_000)
    engine.oneshot(snapshot_twin(QUERIES[0], engine.coordinator.stable_sn))
    assert engine.coordinator.pinned_snapshots == {}
