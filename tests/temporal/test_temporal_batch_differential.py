"""Differential: columnar batch interval kernels vs the row evaluator.

The batch path (:mod:`repro.temporal.kernels`) is a wall-clock
optimization only.  Over random ingestion histories and random
quintuple/interval queries, twin engines — one on the batch kernels,
one on the row evaluator (``use_batch=False``) — must produce:

* identical rows in identical order, identical projected variables,
* identical simulated meters, total and per-category breakdown,
* identical traversal counters (snapshot reads, entries, max chain),
* identical engine state digests after the query, and
* answers matching the brute-force history oracle
  (:mod:`repro.temporal.reference`),

including under a kill-during-query chaos plan: a node killed and
recovered mid-ingestion, with the interval queries running against the
replayed store on both twins.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos.controller import ChaosController
from repro.chaos.plan import FaultPlan, KillNode
from repro.chaos.state import diff_digests, engine_state_digest
from repro.core.engine import EngineConfig, WukongSEngine
from repro.rdf.parser import parse_triples
from repro.rdf.terms import TimedTuple, Triple
from repro.sparql.parser import parse_query
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema
from repro.temporal.reference import (decode_result, dump_history,
                                      reference_rows)

pytestmark = pytest.mark.temporal

USERS = ["u0", "u1", "u2", "u3"]
STATIC = "u0 fo u1 .\nu1 fo u2 .\nu2 fo u3 .\nu3 fo u0 ."

OPS = ["OVERLAPS", "DURING", "BEFORE", "AFTER", "STARTS"]


def event_strategy():
    return st.tuples(
        st.sampled_from(USERS),          # actor
        st.integers(0, 5),               # post id
        st.integers(0, 5),               # batch index (1s batches)
    )


def query_strategy():
    """Random interval queries spanning every kernel branch: single and
    multi-pattern quintuples, constant and variable endpoints, plain
    and interval FILTERs, and a shared-``?ts`` join."""
    op = st.sampled_from(OPS)
    lo = st.integers(0, 6)
    width = st.integers(1, 6)
    actor = st.sampled_from(USERS)

    single_ifilter = st.builds(
        lambda op, lo, width:
        f"SELECT ?U ?P ?ts WHERE {{ ?U po ?P [?ts, ?te) "
        f"FILTER ([?ts, ?te) {op} [{lo}, {lo + width})) }}",
        op, lo, width)
    const_subject = st.builds(
        lambda actor, lo:
        f"SELECT ?P ?ts WHERE {{ {actor} po ?P [?ts, ?te) "
        f"FILTER (?ts >= {lo}) }}",
        actor, lo)
    two_filters = st.builds(
        lambda actor, op, lo, width:
        f"SELECT ?P ?ts WHERE {{ {actor} po ?P [?ts, ?te) "
        f"FILTER (?ts >= {lo}) "
        f"FILTER ([?ts, ?te) {op} [{lo}, {lo + width})) }}",
        actor, op, lo, width)
    quintuple_join = st.builds(
        lambda actor:
        f"SELECT ?F ?P ?pts WHERE {{ {actor} fo ?F [?fts, ?fte) . "
        f"?F po ?P [?pts, ?pte) FILTER (?pts >= ?fts) }}",
        actor)
    shared_ts_join = st.just(
        "SELECT ?U ?F ?P WHERE { ?U fo ?F [?ts, ?fte) . "
        "?F po ?P [?ts, ?pte) }")
    return st.one_of(single_ifilter, const_subject, two_filters,
                     quintuple_join, shared_ts_join)


def build_engine(events):
    posts = [TimedTuple(Triple(actor, "po", f"t{post_id}"),
                        batch * 1000 + 500)
             for actor, post_id, batch in sorted(events, key=lambda e: e[2])]
    engine = WukongSEngine(
        schemas=[StreamSchema("Posts")],
        config=EngineConfig(num_nodes=2, batch_interval_ms=1000,
                            scalarization=False))
    engine.load_static(parse_triples(STATIC))
    source = StreamSource(engine.schemas["Posts"])
    source.queue_tuples(posts, 0, 1000)
    engine.attach_source(source)
    return engine


def assert_twins_identical(batch_engine, row_engine, query_text):
    batch_engine.temporal.use_batch = True
    row_engine.temporal.use_batch = False
    batch = batch_engine.oneshot(query_text)
    row = row_engine.oneshot(query_text)

    assert batch.result.variables == row.result.variables
    assert batch.result.rows == row.result.rows
    assert batch.meter.ns == row.meter.ns
    assert batch.meter._breakdown == row.meter._breakdown
    assert batch.snapshot == row.snapshot
    assert batch.snapshot_reads == row.snapshot_reads
    assert batch.version_entries == row.version_entries
    assert batch.max_chain_depth == row.max_chain_depth
    # The right kernels actually ran (no silent row-vs-row comparison).
    assert batch.batch_path and batch_engine.temporal.batch_executions >= 1
    assert not row.batch_path and row_engine.temporal.row_executions >= 1
    assert diff_digests(engine_state_digest(batch_engine),
                        engine_state_digest(row_engine)) == []
    return batch


@settings(max_examples=12, deadline=None)
@given(events=st.lists(event_strategy(), max_size=24),
       query_text=query_strategy())
def test_batch_and_row_interval_paths_identical(events, query_text):
    batch_engine = build_engine(events)
    row_engine = build_engine(events)
    batch_engine.run_until(7_000)
    row_engine.run_until(7_000)

    batch = assert_twins_identical(batch_engine, row_engine, query_text)

    # Both kernels against the brute-force oracle (order-insensitive:
    # the oracle joins in history order, the engine in plan order).
    ast = parse_query(query_text)
    expected = reference_rows(ast, dump_history(batch_engine.store),
                              batch.snapshot)
    decoded = decode_result(batch.result, batch_engine.strings,
                            set(ast.interval_variables()))
    assert sorted(map(repr, decoded)) == sorted(map(repr, expected))


def kill_during_query_plan(ticks: int) -> FaultPlan:
    """Kill node 1 mid-ingestion for 2 ticks: the interval queries then
    run against the recovered, replayed store on both twins."""
    plan = FaultPlan(faults=[KillNode(at_tick=3, node_id=1, down_ticks=2)],
                     name="kill-during-query")
    plan.validate(2, ("Posts",), ticks, ticks_per_checkpoint=1)
    return plan


def build_chaos_engine(events, ticks):
    posts = [TimedTuple(Triple(actor, "po", f"t{post_id}"),
                        batch * 1000 + 500)
             for actor, post_id, batch in sorted(events, key=lambda e: e[2])]
    engine = WukongSEngine(
        schemas=[StreamSchema("Posts")],
        config=EngineConfig(num_nodes=2, batch_interval_ms=1000,
                            scalarization=False, fault_tolerance=True,
                            checkpoint_interval_ms=1000))
    engine.load_static(parse_triples(STATIC))
    source = StreamSource(engine.schemas["Posts"])
    source.queue_tuples(posts, 0, 1000)
    engine.attach_source(source)
    controller = ChaosController(kill_during_query_plan(ticks))
    controller.attach(engine, ticks=ticks)
    for _ in range(ticks):
        engine.step()
    return engine, controller


@settings(max_examples=6, deadline=None)
@given(events=st.lists(event_strategy(), min_size=4, max_size=20),
       query_text=query_strategy())
def test_batch_and_row_identical_under_kill_during_query(events, query_text):
    ticks = 8
    batch_engine, controller = build_chaos_engine(events, ticks)
    row_engine, _ = build_chaos_engine(events, ticks)
    # The fault must actually have fired and healed, or this test
    # degenerates into the fault-free case.
    assert controller.first_fault_ms is not None
    assert controller.heal_ms is not None

    assert_twins_identical(batch_engine, row_engine, query_text)


def test_deep_multi_node_meters_identical():
    """Regression: on a multi-node cluster, fractional remote-read
    charges do not commute with the integer binding charges between
    probes.  An earlier kernel revision aggregated bindings across the
    whole batch, which moved integers across fractional charges and
    diverged in the meter's last float bits once running totals crossed
    a binade — only visible at deep-history scale (thousands of probes,
    meter totals in the millions of ns).  The kernels now preserve the
    row path's probe-vs-binding interleave on multi-node clusters."""
    from repro.bench.harness import build_wukongs
    from repro.bench.lsbench import LSBench, LSBenchConfig

    bench = LSBench(LSBenchConfig())
    engine = build_wukongs(bench, num_nodes=2, duration_ms=2000)
    engine.run_until(2000)
    stable = engine.coordinator.stable_sn
    hi = max(2, stable)
    queries = [
        "SELECT ?s ?o ?ts WHERE { ?s po ?o [?ts, ?te) . "
        f"FILTER ([?ts, ?te) OVERLAPS [1, {hi})) }}",
        "SELECT ?u ?f ?p ?ts WHERE { ?u fo ?f [?fts, ?fte) . "
        "?f po ?p [?ts, ?te) . FILTER ([?ts, ?te) DURING [1, *)) }",
    ]
    for query_text in queries:
        # Warm the twin plan cache; pin the home node so both runs see
        # identical placement (oneshot round-robins otherwise).
        engine.oneshot(query_text, home_node=0)
        batch = engine.oneshot(query_text, home_node=0)
        engine.temporal.use_batch = False
        row = engine.oneshot(query_text, home_node=0)
        engine.temporal.use_batch = True
        assert batch.batch_path and not row.batch_path
        assert batch.result.rows == row.result.rows
        assert batch.meter.ns == row.meter.ns
        assert batch.meter._breakdown == row.meter._breakdown
        assert batch.snapshot_reads == row.snapshot_reads
        assert batch.version_entries == row.version_entries
        assert batch.max_chain_depth == row.max_chain_depth
