"""SPARQL-T grammar: FROM SNAPSHOT, quintuple patterns, interval FILTERs."""

import pytest

from repro.errors import InvalidIntervalError
from repro.sparql.ast import OPEN_END
from repro.sparql.parser import ParseError, parse_query

pytestmark = pytest.mark.temporal


class TestFromSnapshot:
    def test_snapshot_scope_parses(self):
        query = parse_query(
            "SELECT ?F FROM SNAPSHOT <7> WHERE { User3 fo ?F }")
        assert query.snapshot == 7
        assert query.is_temporal
        assert not query.patterns[0].has_interval

    def test_plain_query_has_no_snapshot(self):
        query = parse_query("SELECT ?F WHERE { User3 fo ?F }")
        assert query.snapshot is None
        assert not query.is_temporal

    def test_snapshot_composes_with_aggregates(self):
        query = parse_query(
            "SELECT ?F COUNT(?F) AS ?N FROM SNAPSHOT <3> "
            "WHERE { User3 fo ?F } GROUP BY ?F")
        assert query.snapshot == 3
        assert query.aggregates

    def test_snapshot_changes_plan_cache_key(self):
        plain = parse_query("SELECT ?F WHERE { User3 fo ?F }")
        at3 = parse_query("SELECT ?F FROM SNAPSHOT <3> WHERE { User3 fo ?F }")
        at4 = parse_query("SELECT ?F FROM SNAPSHOT <4> WHERE { User3 fo ?F }")
        keys = {plain.cache_key(), at3.cache_key(), at4.cache_key()}
        assert len(keys) == 3

    def test_negative_snapshot_rejected(self):
        with pytest.raises(InvalidIntervalError):
            parse_query("SELECT ?F FROM SNAPSHOT <-1> WHERE { User3 fo ?F }")

    def test_duplicate_snapshot_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?F FROM SNAPSHOT <1> FROM SNAPSHOT <2> "
                        "WHERE { User3 fo ?F }")

    def test_snapshot_on_continuous_rejected(self):
        with pytest.raises(ParseError):
            parse_query(
                "REGISTER QUERY Q AS SELECT ?X FROM SNAPSHOT <1> "
                "FROM Posts [RANGE 1000ms STEP 1000ms] "
                "WHERE { GRAPH Posts { ?X po ?P } }")


class TestQuintuplePatterns:
    def test_quintuple_binds_interval_endpoints(self):
        query = parse_query(
            "SELECT ?P ?ts WHERE { User1 po ?P [?ts, ?te) }")
        pattern = query.patterns[0]
        assert pattern.has_interval
        assert pattern.ts == "?ts" and pattern.te == "?te"
        assert query.is_temporal
        # Interval endpoints ride after the graph variables.
        assert query.variables()[-2:] == ["?ts", "?te"]

    def test_endpoints_must_be_distinct_variables(self):
        with pytest.raises(InvalidIntervalError):
            parse_query("SELECT ?P WHERE { User1 po ?P [?t, ?t) }")
        with pytest.raises(InvalidIntervalError):
            parse_query("SELECT ?P WHERE { User1 po ?P [3, ?te) }")

    def test_endpoint_collision_with_graph_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?P WHERE { User1 po ?P [?P, ?te) }")

    def test_quintuple_inside_optional_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?P WHERE { User1 fo ?F "
                        "OPTIONAL { ?F po ?P [?ts, ?te) } }")

    def test_quintuple_with_aggregates_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?P COUNT(?P) AS ?N "
                        "WHERE { User1 po ?P [?ts, ?te) } GROUP BY ?P")


class TestIntervalFilters:
    def test_overlaps_filter_parses(self):
        query = parse_query(
            "SELECT ?P WHERE { User1 po ?P [?ts, ?te) "
            "FILTER ([?ts, ?te) OVERLAPS [2, 5)) }")
        (ifilter,) = query.interval_filters
        assert ifilter.op == "OVERLAPS"
        assert (ifilter.left_ts, ifilter.left_te) == ("?ts", "?te")
        assert (ifilter.right_ts, ifilter.right_te) == ("2", "5")

    def test_star_endpoint_is_open_end(self):
        query = parse_query(
            "SELECT ?P WHERE { User1 po ?P [?ts, ?te) "
            "FILTER ([?ts, ?te) DURING [0, *)) }")
        (ifilter,) = query.interval_filters
        assert ifilter.right_te == str(OPEN_END)

    def test_every_interval_op_accepted(self):
        for op in ("OVERLAPS", "DURING", "BEFORE", "AFTER", "STARTS"):
            query = parse_query(
                "SELECT ?P WHERE { User1 po ?P [?ts, ?te) "
                f"FILTER ([?ts, ?te) {op} [1, 4)) }}")
            assert query.interval_filters[0].op == op

    def test_unknown_interval_op_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?P WHERE { User1 po ?P [?ts, ?te) "
                        "FILTER ([?ts, ?te) MEETS [1, 4)) }")

    def test_empty_constant_interval_rejected(self):
        with pytest.raises(InvalidIntervalError):
            parse_query("SELECT ?P WHERE { User1 po ?P [?ts, ?te) "
                        "FILTER ([?ts, ?te) OVERLAPS [5, 5)) }")

    def test_unbound_filter_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?P WHERE { User1 po ?P [?ts, ?te) "
                        "FILTER ([?zs, ?te) OVERLAPS [1, 4)) }")

    def test_plain_filters_see_interval_bindings(self):
        query = parse_query(
            "SELECT ?P ?ts WHERE { User1 po ?P [?ts, ?te) "
            "FILTER (?ts >= 2) }")
        assert query.filters[0].left == "?ts"
