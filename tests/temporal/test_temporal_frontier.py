"""Snapshot pinning against the GC frontier.

The compactor's frontier (``Coordinator.compacted_through``) bounds how
far back a temporal read may reach: queries at or above the frontier
(up to the stable SN) are answerable; queries below it are refused with
a typed error — never answered silently wrong from relabelled history.
A pinned snapshot holds the frontier in place even while ingestion and
compaction keep running.
"""

import pytest

from repro.bench.harness import build_wukongs
from repro.bench.lsbench import LSBench, LSBenchConfig
from repro.errors import (SnapshotBelowGCFrontierError,
                          SnapshotNotYetStableError, TemporalError)

pytestmark = pytest.mark.temporal


def build_compacting_engine(duration_ms=2_000):
    """A scalarizing engine run long enough that compaction has bitten."""
    bench = LSBench(LSBenchConfig())
    engine = build_wukongs(bench, num_nodes=1, duration_ms=duration_ms)
    engine.run_until(duration_ms)
    assert engine.coordinator.compacted_through > 0, \
        "workload too short for compaction to advance"
    return bench, engine


def snapshot_query(bench, snapshot):
    return bench.temporal_query("T1", snapshot=snapshot)


class TestBoundaries:
    def test_read_at_frontier_succeeds(self):
        bench, engine = build_compacting_engine()
        frontier = engine.coordinator.compacted_through
        record = engine.oneshot(snapshot_query(bench, frontier))
        assert record.snapshot == frontier

    def test_read_between_frontier_and_stable_succeeds(self):
        bench, engine = build_compacting_engine()
        frontier = engine.coordinator.compacted_through
        stable = engine.coordinator.stable_sn
        for snapshot in sorted({frontier + 1, (frontier + stable) // 2,
                                stable}):
            if frontier <= snapshot <= stable:
                record = engine.oneshot(snapshot_query(bench, snapshot))
                assert record.snapshot == snapshot

    def test_read_below_frontier_refused(self):
        bench, engine = build_compacting_engine()
        frontier = engine.coordinator.compacted_through
        with pytest.raises(SnapshotBelowGCFrontierError) as excinfo:
            engine.oneshot(snapshot_query(bench, frontier - 1))
        assert excinfo.value.snapshot == frontier - 1
        assert excinfo.value.frontier == frontier
        assert isinstance(excinfo.value, TemporalError)

    def test_read_above_stable_refused(self):
        bench, engine = build_compacting_engine()
        stable = engine.coordinator.stable_sn
        with pytest.raises(SnapshotNotYetStableError) as excinfo:
            engine.oneshot(snapshot_query(bench, stable + 1))
        assert excinfo.value.snapshot == stable + 1
        assert excinfo.value.stable == stable

    def test_refused_reads_leave_no_pins(self):
        bench, engine = build_compacting_engine()
        frontier = engine.coordinator.compacted_through
        for bad in (frontier - 1, engine.coordinator.stable_sn + 1):
            with pytest.raises(TemporalError):
                engine.oneshot(snapshot_query(bench, bad))
        assert engine.coordinator.pinned_snapshots == {}


class TestPinsRaceCompaction:
    def test_pin_holds_frontier_while_ingestion_continues(self):
        bench, engine = build_compacting_engine(duration_ms=1_500)
        coordinator = engine.coordinator
        pinned = coordinator.stable_sn
        query = snapshot_query(bench, pinned)
        baseline = engine.oneshot(query).result.rows

        coordinator.pin_snapshot(pinned)
        try:
            engine.run_until(4_000)
            # Compaction kept running but could not pass the pin.
            assert coordinator.compacted_through <= pinned
            assert coordinator.stable_sn > pinned
            # The pinned snapshot stays exactly readable mid-race.
            assert engine.oneshot(query).result.rows == baseline
        finally:
            coordinator.unpin_snapshot(pinned)

        # Once released, the frontier is free to pass the old pin.
        engine.run_until(6_000)
        assert coordinator.compacted_through > pinned
        with pytest.raises(SnapshotBelowGCFrontierError):
            engine.oneshot(snapshot_query(bench, pinned - 1))

    def test_refcounted_pins_release_in_any_order(self):
        bench, engine = build_compacting_engine(duration_ms=1_500)
        coordinator = engine.coordinator
        stable = coordinator.stable_sn
        coordinator.pin_snapshot(stable)
        coordinator.pin_snapshot(stable)
        coordinator.unpin_snapshot(stable)
        assert coordinator.pinned_snapshots == {stable: 1}
        engine.run_until(4_000)
        assert coordinator.compacted_through <= stable
        coordinator.unpin_snapshot(stable)
        assert coordinator.pinned_snapshots == {}

    def test_pin_below_frontier_rejected(self):
        bench, engine = build_compacting_engine()
        frontier = engine.coordinator.compacted_through
        with pytest.raises(SnapshotBelowGCFrontierError):
            engine.coordinator.pin_snapshot(frontier - 1)
