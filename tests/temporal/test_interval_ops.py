"""Boundary semantics of :func:`interval_op_holds` (half-open intervals).

Exhaustive truth tables for the five operators at the edges: equal
endpoints, zero-width intervals, and :data:`OPEN_END` on either side —
the cases an off-by-one in the half-open convention would flip — plus
engine executions at boundary FILTER constants checked against the
brute-force history oracle (:mod:`repro.temporal.reference`).
"""

import pytest

from repro.core.engine import EngineConfig, WukongSEngine
from repro.errors import PlanError
from repro.rdf.parser import parse_triples
from repro.rdf.terms import TimedTuple, Triple
from repro.sparql.ast import OPEN_END
from repro.streams.source import StreamSource
from repro.streams.stream import StreamSchema
from repro.temporal.evaluate import interval_op_holds
from repro.temporal.reference import (decode_result, dump_history,
                                      reference_rows)

pytestmark = pytest.mark.temporal

OPS = ["OVERLAPS", "DURING", "BEFORE", "AFTER", "STARTS"]


def brute(op, s1, e1, s2, e2):
    """The half-open definitions, written independently of the code
    under test: interval membership is ``s <= x < e``.

    ``OVERLAPS`` is stated as set intersection, which matches the
    operator's strict-inequality formula exactly on non-empty
    intervals (the only kind the system constructs: the parser refuses
    empty constant intervals and pattern-bound intervals are
    ``[sn, OPEN_END)``) — the truth table therefore quantifies
    ``OVERLAPS`` over non-empty operands, and the degenerate zero-width
    behaviour is pinned separately in :func:`test_zero_width_intervals`.
    """
    if op == "OVERLAPS":
        # Shares at least one snapshot: a non-empty intersection.
        return max(s1, s2) < min(e1, e2)
    if op == "DURING":
        return s1 >= s2 and e1 <= e2
    if op == "BEFORE":
        return e1 <= s2
    if op == "AFTER":
        return s1 >= e2
    return s1 == s2  # STARTS


#: Endpoint values covering equal endpoints, zero-width, and OPEN_END.
POINTS = [0, 1, 2, OPEN_END]


@pytest.mark.parametrize("op", OPS)
def test_truth_table_against_brute_force(op):
    for s1 in POINTS:
        for e1 in POINTS:
            for s2 in POINTS:
                for e2 in POINTS:
                    if op == "OVERLAPS" and (s1 >= e1 or s2 >= e2):
                        continue  # empty operand: pinned separately
                    assert interval_op_holds(op, s1, e1, s2, e2) == \
                        brute(op, s1, e1, s2, e2), (op, s1, e1, s2, e2)


def test_equal_endpoint_boundaries():
    # Touching intervals do not OVERLAP (half-open): [1,2) vs [2,3).
    assert not interval_op_holds("OVERLAPS", 1, 2, 2, 3)
    assert not interval_op_holds("OVERLAPS", 2, 3, 1, 2)
    # ...but BEFORE/AFTER accept exact adjacency.
    assert interval_op_holds("BEFORE", 1, 2, 2, 3)
    assert interval_op_holds("AFTER", 2, 3, 1, 2)
    # An interval is DURING itself, and STARTS itself.
    assert interval_op_holds("DURING", 1, 3, 1, 3)
    assert interval_op_holds("STARTS", 1, 3, 1, 9)


def test_zero_width_intervals():
    # Zero-width intervals cannot be written as constants (the parser
    # raises InvalidIntervalError on ``[2, 2)``) and never come from
    # patterns (always ``[sn, OPEN_END)``); they arise only through
    # variable aliasing in FILTER operands, where the operator's
    # strict-inequality formula treats ``[x, x)`` as the point ``x``:
    # it OVERLAPS an interval containing ``x`` strictly inside, but not
    # one starting (half-open) or ending at ``x``.
    assert interval_op_holds("OVERLAPS", 2, 2, 0, 5)
    assert interval_op_holds("OVERLAPS", 0, 5, 2, 2)
    assert not interval_op_holds("OVERLAPS", 2, 2, 2, 5)
    assert not interval_op_holds("OVERLAPS", 0, 2, 2, 2)
    assert not interval_op_holds("OVERLAPS", 2, 2, 2, 2)
    # The empty interval is vacuously DURING anything that brackets its
    # position, and both BEFORE and AFTER itself.
    assert interval_op_holds("DURING", 2, 2, 0, 5)
    assert interval_op_holds("BEFORE", 2, 2, 2, 2)
    assert interval_op_holds("AFTER", 2, 2, 2, 2)
    assert interval_op_holds("STARTS", 2, 2, 2, 7)


def test_open_end_on_either_side():
    # Live entries [s, OPEN_END) overlap every non-empty later window.
    assert interval_op_holds("OVERLAPS", 3, OPEN_END, 0, 4)
    assert interval_op_holds("OVERLAPS", 0, 4, 3, OPEN_END)
    assert not interval_op_holds("OVERLAPS", 3, OPEN_END, 0, 3)
    # A live entry is never BEFORE anything readable...
    assert not interval_op_holds("BEFORE", 3, OPEN_END, OPEN_END - 1,
                                 OPEN_END)
    # ...except an interval starting at OPEN_END itself.
    assert interval_op_holds("BEFORE", 3, OPEN_END, OPEN_END, OPEN_END)
    assert interval_op_holds("AFTER", OPEN_END, OPEN_END, 3, OPEN_END)
    # DURING tolerates the shared open end.
    assert interval_op_holds("DURING", 5, OPEN_END, 3, OPEN_END)
    assert not interval_op_holds("DURING", 3, OPEN_END, 5, OPEN_END)
    assert interval_op_holds("STARTS", OPEN_END, OPEN_END, OPEN_END, 0)


def test_unknown_operator_is_typed_error():
    with pytest.raises(PlanError):
        interval_op_holds("MEETS", 0, 1, 0, 1)


# --- engine vs oracle at the boundary constants -----------------------

STATIC = "u0 fo u1 .\nu1 fo u2 ."

#: Posts inserted at batches 0..3 -> insertion SNs land at the small
#: constants the FILTERs below probe the edges of.
EVENTS = [("u0", 0, 0), ("u0", 1, 1), ("u1", 1, 1), ("u1", 2, 2),
          ("u0", 3, 3), ("u1", 3, 3)]

BOUNDARY_QUERIES = [
    # Zero-width left operand via variable aliasing: the point ?ts
    # against a constant window (constants cannot express [2, 2)).
    "SELECT ?U ?P ?ts WHERE { ?U po ?P [?ts, ?te) "
    "FILTER ([?ts, ?ts) OVERLAPS [2, 5)) }",
    # Adjacency: BEFORE accepts te == right start exactly.
    "SELECT ?U ?P ?ts WHERE { ?U po ?P [?ts, ?te) "
    "FILTER ([?ts, 3) BEFORE [3, 5)) }",
    # AFTER at the shared endpoint.
    "SELECT ?U ?P ?ts WHERE { ?U po ?P [?ts, ?te) "
    "FILTER ([?ts, ?te) AFTER [0, 2)) }",
    # DURING with equal endpoints on both sides.
    "SELECT ?P ?ts WHERE { u0 po ?P [?ts, ?te) "
    "FILTER ([?ts, ?ts) DURING [?ts, ?ts)) }",
    # STARTS against a constant lower endpoint.
    "SELECT ?U ?P WHERE { ?U po ?P [?ts, ?te) "
    "FILTER ([?ts, ?te) STARTS [2, 9)) }",
]


def _build_engine():
    posts = [TimedTuple(Triple(actor, "po", f"t{post}"), batch * 1000 + 500)
             for actor, post, batch in EVENTS]
    engine = WukongSEngine(
        schemas=[StreamSchema("Posts")],
        config=EngineConfig(num_nodes=2, batch_interval_ms=1000,
                            scalarization=False))
    engine.load_static(parse_triples(STATIC))
    source = StreamSource(engine.schemas["Posts"])
    source.queue_tuples(posts, 0, 1000)
    engine.attach_source(source)
    engine.run_until(6_000)
    return engine


@pytest.mark.parametrize("use_batch", [True, False],
                         ids=["batch", "row_path"])
@pytest.mark.parametrize("query", BOUNDARY_QUERIES)
def test_boundary_filters_match_oracle(query, use_batch):
    engine = _build_engine()
    engine.temporal.use_batch = use_batch
    record = engine.oneshot(query)
    from repro.sparql.parser import parse_query
    ast = parse_query(query)
    history = dump_history(engine.store)
    expected = reference_rows(ast, history, record.snapshot)
    interval_vars = set(ast.interval_variables())
    decoded = decode_result(record.result, engine.strings, interval_vars)
    assert sorted(map(repr, decoded)) == sorted(map(repr, expected))
