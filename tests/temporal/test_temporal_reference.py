"""LSBench temporal queries vs the brute-force reference evaluator.

Both sides read the same store: the engine through its planned
snapshot/interval paths, the reference by exhaustive join over the
dumped version history.  Scalarization is off so the full insertion-SN
history stays readable (exact deep history, frontier pinned at base).
"""

import pytest

from repro.bench.harness import build_wukongs
from repro.bench.lsbench import LSBench, LSBenchConfig
from repro.sparql.parser import parse_query
from repro.temporal import dump_history, reference_rows
from repro.temporal.reference import decode_result

pytestmark = pytest.mark.temporal

DURATION_MS = 600


@pytest.fixture(scope="module")
def workload():
    bench = LSBench(LSBenchConfig())
    engine = build_wukongs(bench, num_nodes=2, duration_ms=DURATION_MS,
                           scalarization=False)
    engine.run_until(DURATION_MS)
    history = dump_history(engine.store)
    return bench, engine, history


def check_against_reference(engine, history, text):
    query = parse_query(text)
    record = engine.oneshot(text)
    snapshot = record.snapshot
    interval_vars = set(query.interval_variables())
    got = decode_result(record.result, engine.strings, interval_vars)
    want = reference_rows(query, history, snapshot)
    assert sorted(map(str, got)) == sorted(map(str, want)), text
    return record


@pytest.mark.parametrize("name", ["T1", "T2", "T3", "T4"])
def test_lsbench_temporal_catalogue(workload, name):
    bench, engine, history = workload
    record = check_against_reference(engine, history,
                                     bench.temporal_query(name))
    if name in ("T2", "T3", "T4"):
        assert record.interval_path
        assert record.snapshot_reads > 0


def test_lsbench_snapshot_scoped_catalogue(workload):
    bench, engine, history = workload
    stable = engine.coordinator.stable_sn
    for snapshot in sorted({1, stable // 2, stable}):
        check_against_reference(
            engine, history,
            bench.temporal_query("T1", snapshot=snapshot))


@pytest.mark.parametrize("op,lo,hi", [
    ("OVERLAPS", 1, 3), ("DURING", 0, 4), ("BEFORE", 3, 4),
    ("AFTER", 0, 2), ("STARTS", 2, 3),
])
def test_interval_operators_match_reference(workload, op, lo, hi):
    bench, engine, history = workload
    text = ("SELECT ?U ?P ?ts WHERE { ?U po ?P [?ts, ?te) "
            f"FILTER ([?ts, ?te) {op} [{lo}, {hi})) }}")
    check_against_reference(engine, history, text)


def test_open_end_and_numeric_filters_match_reference(workload):
    bench, engine, history = workload
    stable = engine.coordinator.stable_sn
    for text in [
        "SELECT ?U ?P ?ts WHERE { ?U po ?P [?ts, ?te) "
        "FILTER ([?ts, ?te) OVERLAPS [1, *)) }",
        "SELECT ?U ?P ?ts WHERE { ?U po ?P [?ts, ?te) "
        f"FILTER (?ts >= 1) FILTER (?ts < {max(2, stable)}) }}",
    ]:
        check_against_reference(engine, history, text)


def test_two_hop_interval_join_matches_reference(workload):
    bench, engine, history = workload
    text = ("SELECT ?F ?P ?fts ?pts WHERE { "
            f"{LSBench.user(0)} fo ?F [?fts, ?fte) . "
            "?F po ?P [?pts, ?pte) FILTER (?pts >= ?fts) }")
    check_against_reference(engine, history, text)


def test_limit_and_offset_respected(workload):
    bench, engine, history = workload
    base = "SELECT ?U ?P ?ts WHERE { ?U po ?P [?ts, ?te) }"
    full = engine.oneshot(base)
    limited = engine.oneshot(base + " LIMIT 3")
    assert len(limited.result.rows) == min(3, len(full.result.rows))
    shifted = engine.oneshot(base + " LIMIT 3 OFFSET 2")
    assert shifted.result.rows == full.result.rows[2:5]
