"""Observability hooks of the temporal engine: metrics and trace spans."""

import pytest

from repro.bench.harness import build_wukongs
from repro.bench.lsbench import LSBench, LSBenchConfig

pytestmark = pytest.mark.temporal


@pytest.fixture(scope="module")
def traced():
    bench = LSBench(LSBenchConfig())
    engine = build_wukongs(bench, num_nodes=1, duration_ms=500,
                           scalarization=False)
    engine.enable_observability()
    engine.run_until(500)
    snapshot = engine.coordinator.stable_sn
    engine.oneshot(bench.temporal_query("T1", snapshot=snapshot))
    engine.oneshot(bench.temporal_query("T2"))
    return bench, engine


def test_temporal_metrics_accumulate(traced):
    bench, engine = traced
    registry = engine.metrics
    assert registry.counter("temporal_snapshot_reads").value > 0
    assert registry.counter("temporal_version_entries").value > 0
    assert registry.histogram("temporal_ns").count == 2


def test_temporal_spans_carry_traversal_labels(traced):
    bench, engine = traced
    spans = engine.tracer.activities("temporal")
    assert len(spans) == 2
    by_path = {span.labels["path"]: span for span in spans}
    assert set(by_path) == {"snapshot", "interval"}
    for span in spans:
        assert span.labels["snapshot"] >= 0
        assert "snapshot_reads" in span.labels
        assert "rows" in span.labels
    assert by_path["interval"].labels["max_chain_depth"] >= 1


def test_records_expose_traversal_depth(traced):
    bench, engine = traced
    snapshot_rec, interval_rec = engine.temporal.records[-2:]
    assert not snapshot_rec.interval_path
    assert interval_rec.interval_path
    assert interval_rec.version_entries >= interval_rec.snapshot_reads
    assert interval_rec.max_chain_depth >= 1
