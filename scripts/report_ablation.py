#!/usr/bin/env python
"""Ablation report: per-phase latency attribution from recorded traces.

Drives a traced two-node LSBench workload (the six continuous L-queries
plus the six S one-shots), reconstructs every activity's critical path
(``repro.obs.analysis``), and aggregates the recorded phase spans into
per-query attribution tables: how much of each query's simulated latency
went to dispatch vs planning vs exploration (including fork-join
sections) vs projection.  This is the measurement behind "which phase
does an optimization actually ablate" — phase totals are exact meter
readings, so two runs of the same workload produce identical tables.

Attribution per activity:

* each PHASE span (``dispatch``, ``plan``, ``explore``, ``project``,
  ``contention``) contributes its recorded duration under its own name;
* JOIN spans (fork-join step groups and the result gather) are summed
  as ``fork-join`` — the phase marks deliberately exclude them;
* any remaining root-track time (e.g. routing and bulk-transfer charges
  between fork-join sections, which no phase mark covers) is reported as
  ``other``.

Window activities carry a ``query=`` label; one-shot activities do not,
so the S one-shots are named by execution order (the driver runs them in
a fixed order after the streaming workload).  After the plain S set the
driver re-runs each S query as its ``FROM SNAPSHOT <latest>`` temporal
twin; the temporal table reports the version-chain traversal behind each
twin (``snapshot_reads``, ``version_entries``, ``max_chain``) and the
kernel family that served it (``path``: columnar batch vs row) from the
temporal engine's execution records, and check mode asserts every twin's
simulated latency is bit-identical to its plain one-shot (DESIGN.md §8).  The window table also
carries a ``replans`` column (the workload runs with adaptive
re-planning enabled): how many times the plan monitor swapped each
continuous query's ordering mid-run — the companion figure to the phase
attribution when judging whether an optimization moved ``explore`` or
the planner moved the plan.

Usage::

    PYTHONPATH=src python scripts/report_ablation.py [--duration-ms N]
        [--json PATH] [--check]

``--check`` is the CI smoke mode: fails unless every traced activity's
critical path is exact, every one-shot shows the plan/explore/project
phases, and both tables are non-empty.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Sequence

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.harness import build_wukongs  # noqa: E402
from repro.bench.lsbench import LSBench, LSBenchConfig  # noqa: E402
from repro.obs import critical_path  # noqa: E402
from repro.obs.trace import JOIN, PHASE, Span  # noqa: E402

L_QUERIES = ["L1", "L2", "L3", "L4", "L5", "L6"]
S_QUERIES = ["S1", "S2", "S3", "S4", "S5", "S6"]

#: Column order of the attribution tables (phases first, then the
#: derived buckets).  Phases outside this list would land in ``other``.
PHASE_COLUMNS = ["dispatch", "plan", "explore", "fork-join", "project",
                 "contention", "other"]


def run_traced_workload(duration_ms: int):
    """The check_trace workload: L-queries streaming, then S one-shots.

    Runs with ``adaptive_replan`` on so the window table's ``replans``
    column reports live numbers: how often the plan monitor actually
    swapped each query's ordering (0 on a workload whose statistics
    never justify a swap — that is the honest figure, not a dead
    column).
    """
    bench = LSBench(LSBenchConfig())
    engine = build_wukongs(bench, num_nodes=2, duration_ms=duration_ms,
                           adaptive_replan=True)
    engine.enable_observability()
    for name in L_QUERIES:
        engine.register_continuous(bench.continuous_query(name))
    engine.run_until(duration_ms)
    for name in S_QUERIES:
        engine.oneshot(bench.oneshot_query(name))
    # Temporal twins: the same S set pinned at the latest stable SN.
    # Bit-identical charges to the plain runs (asserted in check mode),
    # plus version-chain traversal counters for the temporal table.
    stable = engine.coordinator.stable_sn
    for name in S_QUERIES:
        engine.oneshot(bench.oneshot_query(name).replace(
            "WHERE", f"FROM SNAPSHOT <{stable}> WHERE", 1))
    return engine


def attribute(spans: Sequence[Span], activity: Span) -> Dict[str, float]:
    """Per-phase simulated-ns attribution for one activity."""
    buckets: Dict[str, float] = {}
    for span in spans:
        if span.parent != activity.sid:
            continue
        if span.kind == PHASE:
            name = span.name if span.name in PHASE_COLUMNS else "other"
            buckets[name] = buckets.get(name, 0.0) + span.ns
        elif span.kind == JOIN:
            buckets["fork-join"] = buckets.get("fork-join", 0.0) + span.ns
    total = activity.t1 - activity.t0
    residual = total - sum(buckets.values())
    if residual:
        buckets["other"] = buckets.get("other", 0.0) + residual
    buckets["total"] = total
    return buckets


def _merge(rows: List[Dict[str, float]]) -> Dict[str, float]:
    merged: Dict[str, float] = {}
    for row in rows:
        for name, ns in row.items():
            merged[name] = merged.get(name, 0.0) + ns
    return merged


def format_table(title: str, rows: Dict[str, Dict[str, float]],
                 counts: Dict[str, int],
                 extra_columns: Dict[str, Dict[str, int]] = None) -> str:
    """One attribution table (values in simulated microseconds).

    ``extra_columns`` appends plain (non-``_us``) integer columns, e.g.
    the window table's per-query re-plan counts.
    """
    extra_columns = extra_columns or {}
    header = ["query", "runs", "total_us"] + \
        [f"{name}_us" for name in PHASE_COLUMNS] + list(extra_columns)
    lines = [title, "  ".join(f"{h:>12}" for h in header)]
    for query in sorted(rows):
        buckets = rows[query]
        runs = counts[query]
        cells = [f"{query:>12}", f"{runs:>12}",
                 f"{buckets.get('total', 0.0) / 1e3 / runs:>12.3f}"]
        for name in PHASE_COLUMNS:
            cells.append(f"{buckets.get(name, 0.0) / 1e3 / runs:>12.3f}")
        for name, values in extra_columns.items():
            cells.append(f"{values.get(query, 0):>12}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def build_report(engine) -> dict:
    """Attribution tables plus critical-path exactness for the run."""
    spans = engine.tracer.spans
    problems: List[str] = []

    def paths_exact(activities):
        exact = 0
        for activity in activities:
            path = critical_path(spans, activity)
            if path.exact:
                exact += 1
            else:
                problems.append(
                    f"{activity.name}#{activity.sid}: "
                    + "; ".join(path.problems))
        return exact

    oneshots = engine.tracer.activities("oneshot")
    windows = engine.tracer.activities("window")
    exact = paths_exact(oneshots) + paths_exact(windows)

    # The driver runs the plain S queries in order after the workload,
    # then their FROM SNAPSHOT twins; name the trailing one-shot
    # activities accordingly (their spans carry no query label).  The
    # twins' inner executions are also one-shot activities — the plain
    # set sits just before them.
    oneshot_rows: Dict[str, Dict[str, float]] = {}
    oneshot_counts: Dict[str, int] = {}
    tail = oneshots[-2 * len(S_QUERIES):-len(S_QUERIES)]
    for name, activity in zip(S_QUERIES, tail):
        oneshot_rows[name] = attribute(spans, activity)
        oneshot_counts[name] = 1

    temporal_rows: Dict[str, Dict[str, float]] = {}
    temporal_matches: Dict[str, bool] = {}
    twins = engine.temporal.records[-len(S_QUERIES):]
    for name, record in zip(S_QUERIES, twins):
        temporal_rows[name] = {
            "total_us": record.meter.ns / 1e3,
            "rows": record.row_count,
            "snapshot_reads": record.snapshot_reads,
            "version_entries": record.version_entries,
            "max_chain": record.max_chain_depth,
            "path": "batch" if record.batch_path else "row",
        }
        plain_total = oneshot_rows.get(name, {}).get("total", 0.0)
        temporal_matches[name] = record.meter.ns == plain_total

    window_rows: Dict[str, Dict[str, float]] = {}
    window_counts: Dict[str, int] = {}
    for activity in windows:
        query = activity.labels.get("query", "?")
        window_counts[query] = window_counts.get(query, 0) + 1
        window_rows.setdefault(query, [])
    grouped: Dict[str, List[Dict[str, float]]] = \
        {query: [] for query in window_counts}
    for activity in windows:
        grouped[activity.labels.get("query", "?")].append(
            attribute(spans, activity))
    window_rows = {query: _merge(rows) for query, rows in grouped.items()}

    return {
        "oneshots": oneshot_rows,
        "oneshot_counts": oneshot_counts,
        "windows": window_rows,
        "window_counts": window_counts,
        "window_replans": {name: len(handle.replans)
                           for name, handle
                           in engine.continuous.queries.items()},
        "temporal": temporal_rows,
        "temporal_matches": temporal_matches,
        "activities": len(oneshots) + len(windows),
        "exact_paths": exact,
        "problems": problems,
    }


def check_report(report: dict) -> List[str]:
    """CI smoke assertions over a built report (empty = pass)."""
    problems = list(report["problems"])
    if report["exact_paths"] != report["activities"]:
        problems.append(
            f"only {report['exact_paths']}/{report['activities']} "
            f"critical paths are exact")
    if not report["oneshots"]:
        problems.append("no one-shot activities recorded")
    if not report["windows"]:
        problems.append("no window activities recorded")
    for query, buckets in report["oneshots"].items():
        for required in ("dispatch", "plan", "explore", "project"):
            if required not in buckets:
                problems.append(
                    f"one-shot {query}: phase {required!r} missing "
                    f"from its trace")
    for query, buckets in report["windows"].items():
        if "explore" not in buckets:
            problems.append(
                f"window {query}: phase 'explore' missing from its trace")
    if not report["temporal"]:
        problems.append("no temporal twin executions recorded")
    for query, row in report["temporal"].items():
        if row["snapshot_reads"] <= 0:
            problems.append(
                f"temporal twin {query}: no snapshot reads counted")
        if not report["temporal_matches"].get(query, False):
            problems.append(
                f"temporal twin {query}: simulated latency diverged from "
                f"its plain one-shot")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration-ms", type=int, default=1_500,
                        help="simulated workload length (default 1500)")
    parser.add_argument("--json", default=None,
                        help="also write the report as JSON to this path")
    parser.add_argument("--check", action="store_true",
                        help="CI smoke mode: fail on any inexact critical "
                        "path or missing phase")
    args = parser.parse_args(argv)

    engine = run_traced_workload(args.duration_ms)
    report = build_report(engine)

    print(format_table("one-shot queries (simulated us per execution)",
                       report["oneshots"], report["oneshot_counts"]))
    print()
    print(format_table("continuous windows (simulated us per execution, "
                       "mean over runs)",
                       report["windows"], report["window_counts"],
                       extra_columns={"replans": report["window_replans"]}))
    print()
    temporal_header = ["query", "total_us", "rows", "snapshot_reads",
                       "version_entries", "max_chain", "path"]
    lines = ["temporal twins (FROM SNAPSHOT <latest>, simulated us)",
             "  ".join(f"{h:>15}" for h in temporal_header)]
    for query in sorted(report["temporal"]):
        row = report["temporal"][query]
        lines.append("  ".join(
            [f"{query:>15}", f"{row['total_us']:>15.3f}"] +
            [f"{row[name]:>15}" for name in temporal_header[2:]]))
    print("\n".join(lines))
    print()
    print(f"critical path exact for {report['exact_paths']}/"
          f"{report['activities']} activities")

    if args.json is not None:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.check:
        problems = check_report(report)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print("ablation report check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
