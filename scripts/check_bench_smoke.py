"""Bench smoke gate: fail when a quick run regresses the committed report.

Compares ``speedup_vs_seed`` of a fresh ``bench_wallclock.py --quick`` run
against the committed ``BENCH_wallclock.json`` (recorded in full mode from
the same tree state).  Each scenario must retain at least ``THRESHOLD``
of its committed speedup.

The floor is deliberately loose: the quick run uses a shorter workload
and a different (quick-mode) seed baseline than the committed full run,
and on shared CI machines back-to-back quick runs were observed to swing
a scenario's speedup by 30-40% on load noise alone.  What the smoke must
catch is a *fast path falling off* — the batch kernels silently disabled,
a cache no longer hit — which shows up as a 2-10x collapse, far below
any noise floor.  0.6x separates those two regimes cleanly; chasing
single-digit-percent regressions is the full bench's job, not CI's.

Usage::

    python scripts/check_bench_smoke.py --committed BENCH_wallclock.json \
        --smoke .bench_smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: Minimum fraction of the committed speedup a smoke run must retain.
THRESHOLD = 0.6

#: Per-scenario overrides.  The continuous scenario gets a tighter floor:
#: its speedup comes from the columnar window views plus the incremental
#: window-delta cache, and losing either (views never built, deltas never
#: hit) collapses the speedup several-fold — well below 0.7x of the
#: committed figure even on a noisy machine.
#: The serving scenario's speedup is the unshared-vs-shared execution
#: ratio measured in the same run; both sides see the same machine
#: noise, so the ratio is steadier than cross-run comparisons.  What the
#: floor must catch is plan sharing silently disabled — every
#: subscription running its own window closes — which collapses the
#: ratio to ~1x, far below 0.6x of any committed figure.
#: The adaptive scenario's speedup is likewise a same-run ratio
#: (cold-pinned vs adaptive).  The failure it must catch is the plan
#: monitor never swapping — statistics gone stale, hysteresis broken,
#: swaps no longer landing between closes — which pins the ratio at
#: ~1.0x.  The committed full-mode figure is ~2.6x; quick mode's
#: shorter workload leaves fewer post-swap closes to win back (~2x
#: typical, with noisy runs to ~1.6x), so its floor is 0.5x committed
#: (~1.3x) — still clearly above the regressed ~1.0x regime.
#: The temporal scenario's speedup is the same-run batch-vs-row ratio
#: on the deep-history interval workload; both sides see the same
#: machine noise.  Quick mode's shorter run leaves shallower version
#: chains, which systematically trims the ratio ~20-30% below the
#: committed full-mode figure (a ~5x full run smokes at ~4x), so the
#: floor is 0.6x.  The failure it must catch is the columnar interval
#: kernels silently disabled (``use_batch`` stuck off, the batch store
#: reads unused) — which collapses the ratio to ~1x, far below 0.6x of
#: the committed multi-x figure.
SCENARIO_THRESHOLDS = {"continuous": 0.7, "serving": 0.6,
                       "adaptive": 0.5, "temporal": 0.6}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--committed", default="BENCH_wallclock.json")
    parser.add_argument("--smoke", required=True,
                        help="JSON report of the fresh --quick run")
    args = parser.parse_args(argv)

    with open(args.committed) as handle:
        committed = json.load(handle).get("speedup_vs_seed", {})
    with open(args.smoke) as handle:
        smoke = json.load(handle).get("speedup_vs_seed", {})

    if not committed:
        print(f"{args.committed} records no speedup_vs_seed; nothing to "
              "gate against")
        return 1

    failures = []
    for name, want in sorted(committed.items()):
        threshold = SCENARIO_THRESHOLDS.get(name, THRESHOLD)
        floor = threshold * want
        got = smoke.get(name)
        if got is None:
            failures.append(f"{name}: smoke run reports no speedup "
                            "(baseline file missing?)")
            continue
        status = "ok" if got >= floor else "REGRESSED"
        print(f"{name:12s} committed {want:.2f}x, smoke {got:.2f}x "
              f"(floor {floor:.2f}x) .. {status}")
        if got < floor:
            failures.append(
                f"{name}: {got:.2f}x < {floor:.2f}x "
                f"({threshold} * committed {want:.2f}x)")

    if failures:
        print("\nbench smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
