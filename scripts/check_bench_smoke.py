"""Bench smoke gate: fail when a quick run regresses the committed report.

Compares ``speedup_vs_seed`` of a fresh ``bench_wallclock.py --quick`` run
against the committed ``BENCH_wallclock.json`` (recorded in full mode from
the same tree state).  Each scenario must retain at least ``THRESHOLD``
(0.95x) of its committed speedup — loose enough for CI noise, tight
enough to catch a real fast-path regression.

Usage::

    python scripts/check_bench_smoke.py --committed BENCH_wallclock.json \
        --smoke .bench_smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: Minimum fraction of the committed speedup a smoke run must retain.
THRESHOLD = 0.95


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--committed", default="BENCH_wallclock.json")
    parser.add_argument("--smoke", required=True,
                        help="JSON report of the fresh --quick run")
    args = parser.parse_args(argv)

    with open(args.committed) as handle:
        committed = json.load(handle).get("speedup_vs_seed", {})
    with open(args.smoke) as handle:
        smoke = json.load(handle).get("speedup_vs_seed", {})

    if not committed:
        print(f"{args.committed} records no speedup_vs_seed; nothing to "
              "gate against")
        return 1

    failures = []
    for name, want in sorted(committed.items()):
        floor = THRESHOLD * want
        got = smoke.get(name)
        if got is None:
            failures.append(f"{name}: smoke run reports no speedup "
                            "(baseline file missing?)")
            continue
        status = "ok" if got >= floor else "REGRESSED"
        print(f"{name:12s} committed {want:.2f}x, smoke {got:.2f}x "
              f"(floor {floor:.2f}x) .. {status}")
        if got < floor:
            failures.append(
                f"{name}: {got:.2f}x < {floor:.2f}x "
                f"(0.95 * committed {want:.2f}x)")

    if failures:
        print("\nbench smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
