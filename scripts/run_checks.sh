#!/bin/sh
# Tier-1 gate: the full test suite plus a quick wall-clock benchmark.
#
# The suite is split so the fast tier stays fast: the chaos suite
# (fault-injection equivalence, ~seconds but the slowest block) is marked
# `chaos` and run separately, followed by a drift check of the golden
# files (scripts/regen_goldens.py --check).
#
# The benchmark runs in --quick mode (shorter scenarios, fewer repeats)
# and writes BENCH_wallclock.json at the repo root; compare speedup_vs_seed
# there against the recorded seed baselines.  Use
# `python benchmarks/bench_wallclock.py` (no --quick) for citable numbers.
set -e
cd "$(dirname "$0")/.."

echo "== tier-1 tests (fast tier) =="
PYTHONPATH=src python -m pytest -x -q -m "not chaos"

echo "== chaos suite (fault injection + recovery equivalence) =="
PYTHONPATH=src python -m pytest -x -q -m chaos

echo "== golden drift check =="
python scripts/regen_goldens.py --check

echo "== wall-clock benchmark (quick) =="
PYTHONPATH=src python benchmarks/bench_wallclock.py --quick

echo "== done: see BENCH_wallclock.json =="
