#!/bin/sh
# Tier-1 gate: the full test suite plus a quick wall-clock benchmark.
#
# The benchmark runs in --quick mode (shorter scenarios, fewer repeats)
# and writes BENCH_wallclock.json at the repo root; compare speedup_vs_seed
# there against the recorded seed baselines.  Use
# `python benchmarks/bench_wallclock.py` (no --quick) for citable numbers.
set -e
cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q

echo "== wall-clock benchmark (quick) =="
PYTHONPATH=src python benchmarks/bench_wallclock.py --quick

echo "== done: see BENCH_wallclock.json =="
