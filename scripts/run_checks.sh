#!/bin/sh
# Tier-1 gate: the full test suite plus a quick wall-clock benchmark.
#
# The suite is split so the fast tier stays fast: the serving battery
# (thousands of concurrent subscriptions; marked `serving`), the
# chaos suite (fault-injection equivalence; marked `chaos`) and the
# adaptive re-planning suite (skew-inversion differentials; marked
# `adaptive`) and the temporal suite (SPARQL-T snapshot/interval
# differentials; marked `temporal`) are the slowest blocks and run as
# their own stages,
# followed by the columnar differential suite (batch vs row window
# closes must be bit-identical, including under a kill-during-close
# fault plan; DESIGN.md §4.9) and a drift check of the golden files
# (scripts/regen_goldens.py --check).  A test marked both serving and
# chaos runs in the chaos stage only.
#
# The obs stage exports a Chrome trace from a quick traced LSBench run
# and validates it (schema, lossless round trip, and per-activity
# critical paths summing bit-identically to the recorded meter latency);
# see scripts/check_trace.py.
#
# The bench-smoke stage runs the wall-clock benchmark in --quick mode
# (shorter scenarios, fewer repeats) to a scratch file and fails if any
# scenario retains less than its floor (0.6x of the speedup_vs_seed
# recorded in the committed BENCH_wallclock.json; 0.7x for continuous)
# (loose on purpose: it catches a fast
# path falling off, not load noise — see check_bench_smoke.py).  Use
# `python benchmarks/bench_wallclock.py` (no --quick) for citable numbers
# and to refresh BENCH_wallclock.json itself.
set -e
cd "$(dirname "$0")/.."

echo "== tier-1 tests (fast tier) =="
PYTHONPATH=src python -m pytest -x -q \
    -m "not chaos and not serving and not adaptive and not temporal"

echo "== serving battery (sharing, admission, fairness) =="
PYTHONPATH=src python -m pytest -x -q -m "serving and not chaos"

echo "== chaos suite (fault injection + recovery equivalence) =="
PYTHONPATH=src python -m pytest -x -q -m chaos

echo "== adaptive re-planning suite (swap differentials + hysteresis) =="
PYTHONPATH=src python -m pytest -x -q -m adaptive

echo "== temporal suite (SPARQL-T snapshot + interval differentials, batch-vs-row kernels) =="
PYTHONPATH=src python -m pytest -x -q -m temporal

echo "== columnar differential (batch vs row window closes) =="
PYTHONPATH=src python -m pytest -x -q \
    tests/core/test_columnar_slice.py \
    tests/chaos/test_columnar_differential.py

echo "== golden drift check =="
python scripts/regen_goldens.py --check

echo "== obs (trace export + critical-path exactness) =="
PYTHONPATH=src python scripts/check_trace.py

echo "== ablation report (per-phase attribution smoke) =="
PYTHONPATH=src python scripts/report_ablation.py --check --duration-ms 1000

echo "== bench smoke (quick run vs committed BENCH_wallclock.json) =="
PYTHONPATH=src python benchmarks/bench_wallclock.py --quick \
    --out .bench_smoke.json
python scripts/check_bench_smoke.py --committed BENCH_wallclock.json \
    --smoke .bench_smoke.json
rm -f .bench_smoke.json

echo "== done =="
