#!/usr/bin/env python
"""Regenerate (or verify) every golden file in the test suite.

Two goldens exist today:

* ``tests/core/golden_determinism.json`` — simulated latencies and cost
  breakdowns of the determinism workload (exact float equality);
* ``tests/chaos/golden_chaos.json`` — the chaos chronicle, gap ledger and
  result/state fingerprints of the hand-written multi-fault plan.

``--check`` recomputes both without writing and exits 1 on any drift —
run_checks.sh uses it to catch semantics changes that were not
accompanied by a deliberate golden regeneration.
"""

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, os.path.join(REPO, "tests"))


def _goldens():
    from chaos.chaos_workload import (GOLDEN_CHAOS_PATH, TICKS,
                                      build_engine, golden_plan)
    from core.determinism_workload import GOLDEN_PATH, run_workload
    from repro.chaos import chaos_run_facts

    yield ("determinism", GOLDEN_PATH, run_workload)
    yield ("chaos", GOLDEN_CHAOS_PATH,
           lambda: chaos_run_facts(build_engine, golden_plan(), TICKS))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify the goldens instead of rewriting them")
    args = parser.parse_args()

    drifted = 0
    for name, path, compute in _goldens():
        # Round-trip through JSON so recorded and recomputed facts share
        # one representation (tuples become lists, keys become strings).
        facts = json.loads(json.dumps(compute(), sort_keys=True))
        if args.check:
            if not os.path.exists(path):
                print(f"[{name}] MISSING: {path}")
                drifted += 1
                continue
            with open(path) as handle:
                recorded = json.load(handle)
            if recorded == facts:
                print(f"[{name}] ok: {path}")
            else:
                print(f"[{name}] DRIFT: recomputed facts differ from "
                      f"{path}; regenerate with scripts/regen_goldens.py "
                      f"if the change is intended")
                drifted += 1
        else:
            with open(path, "w") as handle:
                json.dump(facts, handle, indent=1, sort_keys=True)
                handle.write("\n")
            print(f"[{name}] wrote {path}")
    return 1 if drifted else 0


if __name__ == "__main__":
    sys.exit(main())
