#!/usr/bin/env python
"""Obs CI stage: export a trace from a quick LSBench run and validate it.

Drives a short two-node LSBench workload (continuous L-queries plus the
S one-shots) with the deterministic tracer attached, exports the Chrome
trace-event document, and fails unless:

1. the document passes the trace-event schema check
   (:func:`repro.obs.export.validate_chrome_trace`);
2. the spans reconstructed from the document are lossless
   (same count, bit-identical readings); and
3. for **every** traced activity — every one-shot query, window close and
   injection batch — the reconstructed critical path is exact: each
   fork-join section satisfies ``post == pre + critical_branch_ns`` and
   the walked total equals the activity meter's recorded latency bit for
   bit.

Usage::

    PYTHONPATH=src python scripts/check_trace.py [--out PATH]
        [--duration-ms N]

``--out`` keeps the exported trace file (default: a temp file, deleted).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.harness import build_wukongs  # noqa: E402
from repro.bench.lsbench import LSBench, LSBenchConfig  # noqa: E402
from repro.obs import (critical_path, spans_from_chrome,  # noqa: E402
                       validate_chrome_trace, write_chrome_trace)

L_QUERIES = ["L1", "L2", "L3", "L4", "L5", "L6"]
S_QUERIES = ["S1", "S2", "S3", "S4", "S5", "S6"]


def run_traced_workload(duration_ms: int):
    bench = LSBench(LSBenchConfig())
    engine = build_wukongs(bench, num_nodes=2, duration_ms=duration_ms)
    engine.enable_observability()
    for name in L_QUERIES:
        engine.register_continuous(bench.continuous_query(name))
    engine.run_until(duration_ms)
    records = [engine.oneshot(bench.oneshot_query(name))
               for name in S_QUERIES]
    return engine, records


def check_trace(document, original_spans) -> list:
    """All problems found in one exported document (empty = pass)."""
    problems = validate_chrome_trace(document)
    if problems:
        return [f"schema: {p}" for p in problems]

    spans = spans_from_chrome(document)
    if len(spans) != len(original_spans):
        return [f"round-trip lost spans: {len(spans)} != "
                f"{len(original_spans)}"]
    for restored, original in zip(spans, original_spans):
        if (restored.t0 != original.t0 or restored.t1 != original.t1
                or restored.anchor_ms != original.anchor_ms):
            problems.append(
                f"round-trip changed readings of span {original.sid} "
                f"({original.kind}:{original.name})")
    if problems:
        return problems

    activities = [s for s in spans if s.kind == "activity"]
    if not activities:
        return ["trace contains no activities"]
    exact = 0
    for activity in activities:
        path = critical_path(spans, activity)
        if not path.exact:
            problems.append(
                f"{activity.name}#{activity.sid} "
                f"(anchor {activity.anchor_ms}ms): "
                + "; ".join(path.problems))
        else:
            exact += 1
    print(f"critical path exact for {exact}/{len(activities)} activities "
          f"({len(spans)} spans)")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None,
                        help="keep the exported trace at this path")
    parser.add_argument("--duration-ms", type=int, default=1_500,
                        help="simulated workload length (default 1500)")
    args = parser.parse_args(argv)

    engine, records = run_traced_workload(args.duration_ms)
    keep = args.out is not None
    path = args.out
    if not keep:
        handle = tempfile.NamedTemporaryFile(
            suffix="_trace.json", delete=False)
        handle.close()
        path = handle.name
    try:
        document = write_chrome_trace(engine.tracer, path)
        # Validate what was actually written, not the in-memory dict.
        with open(path) as written:
            document = json.load(written)
        problems = check_trace(document, engine.tracer.spans)

        # The S one-shot records must appear with their exact latencies.
        oneshots = engine.tracer.activities("oneshot")
        tail = oneshots[-len(records):]
        for record, activity in zip(records, tail):
            if activity.labels.get("meter_ns") != record.meter.ns:
                problems.append(
                    f"oneshot#{activity.sid}: recorded meter_ns "
                    f"{activity.labels.get('meter_ns')} != record meter "
                    f"{record.meter.ns}")
    finally:
        if not keep:
            os.unlink(path)

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("trace check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
