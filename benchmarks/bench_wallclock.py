"""Wall-clock benchmark harness: how fast does the simulator itself run?

Every scientific figure of this reproduction is *simulated* nanoseconds,
but producing the figures is real Python executing the real algorithms, so
the wall-clock speed of the hot paths bounds how large a workload the
benchmark suite can afford.  This harness times the three pipeline phases
on a fixed LSBench workload and records the medians in
``BENCH_wallclock.json`` so successive PRs leave a perf trajectory:

``injection``
    Stream batches through Adaptor -> Dispatcher -> Injector -> stream
    index, with no queries registered.

``continuous``
    The same workload with L1-L6 registered: dominated by graph
    exploration and window reads (the headline scenario).

``oneshot``
    S1-S6 one-shot queries over the evolved store.

``distributed``
    The S-query plans executed in the distributed modes (fork-join and
    migrate) on a two-node cluster through the columnar batch kernels;
    the row-kernel timing of the same executions is reported as a
    ``row_path`` pseudo-phase, and the scenario's ``speedup_vs_seed``
    entry is the batch-vs-row ratio (the row kernels *are* the seed
    behaviour for this scenario — no seed baseline file predates it).

Simulated results are guarded separately (``tests/core/test_determinism``):
optimizations must move these numbers and *only* these numbers.

The oneshot scenario additionally reports a per-phase breakdown
(``plan`` / ``explore`` / ``project`` wall seconds, from the engine's
``wall_stats`` instrumentation) so plan-cache and executor changes are
attributable without a profiler run; the continuous scenario likewise
reports ``index_read`` (window-view advances plus columnar stream-index
reads) / ``explore`` / ``project``.

Usage::

    python benchmarks/bench_wallclock.py [--quick] [--out PATH]
        [--baseline PATH] [--profile]

``--quick`` is the CI smoke mode (shorter duration, fewer repeats).  With a
baseline file (default ``benchmarks/BENCH_wallclock_seed.json``, recorded
from the pre-fast-path seed), per-scenario speedups are included.
``--profile`` additionally runs each scenario once under cProfile and
prints the top 20 functions by cumulative time.

Observability modes (no timings are recorded in either)::

    python benchmarks/bench_wallclock.py --trace trace.json [--metrics]
    python benchmarks/bench_wallclock.py --metrics

``--trace PATH`` runs the workload once with the deterministic tracer
attached, writes a Chrome trace-event file (load it in ``chrome://tracing``
or Perfetto; timestamps are *simulated* microseconds) and prints a
flame-style rendering of the slowest one-shot and window activities.
``--metrics`` prints the engine's metrics registry and stats dashboard
after the run.  See DESIGN.md §6, "Observability model".
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import statistics
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.harness import build_wukongs  # noqa: E402
from repro.bench.lsbench import LSBench, LSBenchConfig  # noqa: E402

L_QUERIES = ["L1", "L2", "L3", "L4", "L5", "L6"]
S_QUERIES = ["S1", "S2", "S3", "S4", "S5", "S6"]

SEED_BASELINE = os.path.join(_HERE, "BENCH_wallclock_seed.json")
SEED_BASELINE_QUICK = os.path.join(_HERE, "BENCH_wallclock_seed_quick.json")
DEFAULT_OUT = os.path.join(os.path.dirname(_HERE), "BENCH_wallclock.json")


def _bench():
    return LSBench(LSBenchConfig())


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_injection(duration_ms: int) -> float:
    engine = build_wukongs(_bench(), num_nodes=1, duration_ms=duration_ms)
    return _timed(lambda: engine.run_until(duration_ms))


def run_continuous(duration_ms: int, phases=None) -> float:
    bench = _bench()
    engine = build_wukongs(bench, num_nodes=1, duration_ms=duration_ms)
    for name in L_QUERIES:
        engine.register_continuous(bench.continuous_query(name))
    if phases is not None:
        # Per-phase wall accumulation: window-view advances + columnar
        # stream-index reads ("index_read"), step execution ("explore"),
        # and result projection ("project").
        engine.continuous.wall_stats = phases
        engine.continuous.explorer.wall_stats = phases
    return _timed(lambda: engine.run_until(duration_ms))


def run_continuous_phased(duration_ms: int):
    phases = {}
    elapsed = run_continuous(duration_ms, phases=phases)
    # The access-side "index_read" seconds accrue *inside* the explorer's
    # "explore" span while window-view advances accrue outside it; fold
    # both into one index-read phase and report the explore remainder so
    # the three phases are disjoint.
    reads = phases.pop("index_read", 0.0)
    advance = phases.pop("window_advance", 0.0)
    out = {"index_read": reads + advance,
           "explore": max(0.0, phases.get("explore", 0.0) - reads),
           "project": phases.get("project", 0.0)}
    return elapsed, out


def run_oneshot(duration_ms: int, rounds: int = 10, phases=None) -> float:
    bench = _bench()
    engine = build_wukongs(bench, num_nodes=1, duration_ms=duration_ms)
    engine.run_until(duration_ms)
    queries = [bench.oneshot_query(name) for name in S_QUERIES]
    if phases is not None:
        # Per-phase wall accumulation (plan / explore / project).
        engine.oneshot_engine.wall_stats = phases
        engine.oneshot_engine.explorer.wall_stats = phases

    def execute_all():
        for _ in range(rounds):
            for text in queries:
                engine.oneshot(text)

    return _timed(execute_all)


def run_oneshot_phased(duration_ms: int):
    phases = {}
    elapsed = run_oneshot(duration_ms, phases=phases)
    return elapsed, phases


def run_distributed(duration_ms: int, rounds: int = 5):
    """The S-query plans in the *distributed* modes, batch vs row kernels.

    Two nodes force real fork-join (index starts) and migrate (constant
    starts) executions; both kernel families charge bit-identical
    simulated time, so the only thing this scenario measures is how fast
    the Python gets through them.  The primary timing is the columnar
    batch path; the row-kernel timing rides along as a pseudo-phase
    (``row_path``) so the report carries the batch-vs-row speedup.
    """
    from repro.sim.cost import LatencyMeter
    from repro.sparql.parser import parse_query
    from repro.sparql.planner import INDEX_START
    from repro.store.distributed import PersistentAccess
    from repro.store.executor import GraphExplorer

    bench = _bench()
    engine = build_wukongs(bench, num_nodes=2, duration_ms=duration_ms)
    engine.run_until(duration_ms)
    sn = engine.coordinator.stable_sn
    plans = [engine.oneshot_engine.plan(
        parse_query(bench.oneshot_query(name))) for name in S_QUERIES]
    modes = ["fork_join" if plan.steps and plan.steps[0].kind == INDEX_START
             else "migrate" for plan in plans]

    def factory(node_id):
        access = PersistentAccess(engine.store, home_node=node_id,
                                  max_sn=sn)
        return lambda pattern: access

    def execute_all(explorer):
        for _ in range(rounds):
            for plan, mode in zip(plans, modes):
                explorer.execute(plan, factory, LatencyMeter(), mode=mode)

    batch = GraphExplorer(engine.cluster, engine.store.strings,
                          use_batch=True)
    rows = GraphExplorer(engine.cluster, engine.store.strings,
                         use_batch=False)
    for plan, mode in zip(plans, modes):
        # Warm the adjacency-segment caches once so neither kernel
        # family pays the cold ``lookup`` misses (whichever ran first
        # would otherwise absorb them all, skewing the comparison).
        batch.execute(plan, factory, LatencyMeter(), mode=mode)
    batch_elapsed = _timed(lambda: execute_all(batch))
    row_elapsed = _timed(lambda: execute_all(rows))
    return batch_elapsed, {"row_path": row_elapsed}


SCENARIOS = {
    "injection": run_injection,
    "continuous": run_continuous_phased,
    "oneshot": run_oneshot_phased,
    "distributed": run_distributed,
}


def measure(duration_ms: int, repeats: int) -> dict:
    results = {}
    for name, runner in SCENARIOS.items():
        runs = []
        phase_runs = {}
        for _ in range(repeats):
            run = runner(duration_ms)
            if isinstance(run, tuple):
                run, phases = run
                for phase, value in phases.items():
                    phase_runs.setdefault(phase, []).append(value)
            runs.append(run)
        results[name] = {
            "median_s": statistics.median(runs),
            "runs_s": runs,
        }
        print(f"{name:12s} median {results[name]['median_s']:.3f}s "
              f"({', '.join(f'{r:.3f}' for r in runs)})", flush=True)
        if phase_runs:
            medians = {phase: statistics.median(values)
                       for phase, values in phase_runs.items()}
            results[name]["phases_s"] = medians
            breakdown = ", ".join(f"{phase} {medians[phase]:.3f}s"
                                  for phase in sorted(medians))
            print(f"{'':12s} phases: {breakdown}", flush=True)
    return results


def run_traced(duration_ms: int, trace_path=None,
               show_metrics: bool = False) -> None:
    """One traced run of the continuous + one-shot workload.

    Uses two nodes so fork-join queries appear in the trace.  Tracing is
    zero-cost in simulated time but not in wall time, so this mode never
    records timings.
    """
    from repro.core.stats import collect_stats
    from repro.obs import collect_metrics, render_flame, write_chrome_trace

    bench = _bench()
    engine = build_wukongs(bench, num_nodes=2, duration_ms=duration_ms)
    engine.enable_observability()
    for name in L_QUERIES:
        engine.register_continuous(bench.continuous_query(name))
    engine.run_until(duration_ms)
    for name in S_QUERIES:
        engine.oneshot(bench.oneshot_query(name))

    if trace_path:
        write_chrome_trace(engine.tracer, trace_path)
        print(f"wrote {trace_path} ({len(engine.tracer.spans)} spans)")
        for kind in ("oneshot", "window"):
            activities = engine.tracer.activities(kind)
            if activities:
                slowest = max(activities, key=lambda span: span.ns)
                print(f"\nslowest {kind} activity:")
                print(render_flame(engine.tracer.spans, slowest))
    if show_metrics:
        collect_metrics(engine)
        print("\n== metrics ==")
        print(engine.metrics.render())
        print("\n== engine stats ==")
        print(collect_stats(engine).format())


def profile_scenarios(duration_ms: int, top: int = 20) -> None:
    """Run each scenario once under cProfile; print top-N by cumtime."""
    for name, runner in SCENARIOS.items():
        print(f"\n--- profile: {name} ---", flush=True)
        profiler = cProfile.Profile()
        profiler.enable()
        runner(duration_ms)
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(top)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: shorter duration, 3 repeats")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the JSON report")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to compute speedups against")
    parser.add_argument("--profile", action="store_true",
                        help="also run each scenario once under cProfile "
                             "and print the top 20 functions by cumtime")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="run once with the tracer attached, write a "
                             "Chrome trace-event file and print flame "
                             "renderings (records no timings)")
    parser.add_argument("--metrics", action="store_true",
                        help="run once and print the metrics registry and "
                             "stats dashboard (records no timings)")
    args = parser.parse_args(argv)

    if args.trace or args.metrics:
        run_traced(1_500 if args.quick else 2_500,
                   trace_path=args.trace, show_metrics=args.metrics)
        return 0

    if args.baseline is None:
        args.baseline = SEED_BASELINE_QUICK if args.quick else SEED_BASELINE
    duration_ms = 1_500 if args.quick else 2_500
    repeats = 3 if args.quick else 5
    if args.profile:
        profile_scenarios(duration_ms)
    results = measure(duration_ms, repeats)

    report = {
        "mode": "quick" if args.quick else "full",
        "duration_ms": duration_ms,
        "repeats": repeats,
        "scenarios": results,
    }
    speedups = {}
    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        if baseline.get("mode") == report["mode"]:
            for name, result in results.items():
                base = baseline.get("scenarios", {}).get(name)
                if base and result["median_s"] > 0:
                    speedups[name] = base["median_s"] / result["median_s"]
            report["baseline"] = {
                name: base["median_s"]
                for name, base in baseline.get("scenarios", {}).items()
            }
    # The distributed scenario predates no seed baseline: its reference
    # is the row-kernel path it replaced, timed in the same run.
    distributed = results.get("distributed")
    if distributed and distributed["median_s"] > 0:
        row_path = distributed.get("phases_s", {}).get("row_path")
        if row_path:
            speedups["distributed"] = row_path / distributed["median_s"]
    if speedups:
        report["speedup_vs_seed"] = speedups
        for name, speedup in sorted(speedups.items()):
            print(f"{name:12s} speedup vs seed: {speedup:.2f}x",
                  flush=True)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
