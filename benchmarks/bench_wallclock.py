"""Wall-clock benchmark harness: how fast does the simulator itself run?

Every scientific figure of this reproduction is *simulated* nanoseconds,
but producing the figures is real Python executing the real algorithms, so
the wall-clock speed of the hot paths bounds how large a workload the
benchmark suite can afford.  This harness times the three pipeline phases
on a fixed LSBench workload and records the medians in
``BENCH_wallclock.json`` so successive PRs leave a perf trajectory:

``injection``
    Stream batches through Adaptor -> Dispatcher -> Injector -> stream
    index, with no queries registered.

``continuous``
    The same workload with L1-L6 registered: dominated by graph
    exploration and window reads (the headline scenario).

``oneshot``
    S1-S6 one-shot queries over the evolved store.

``distributed``
    The S-query plans executed in the distributed modes (fork-join and
    migrate) on a two-node cluster through the columnar batch kernels;
    the row-kernel timing of the same executions is recorded as a
    ``row_path`` control run, and the scenario's ``speedup_vs_seed``
    entry is the batch-vs-row ratio (the row kernels *are* the seed
    behaviour for this scenario — no seed baseline file predates it).

``serving``
    The concurrent-query serving layer: 1024 continuous subscriptions
    registered through the proxies against shared window state
    (common-subplan sharing dedupes them to a few dozen backing
    queries), with multi-tenant one-shot traffic fair-scheduled between
    window closes.  The same workload with sharing disabled — every
    subscription its own backing query — rides along as an
    ``unshared_path`` control run, and the scenario's
    ``speedup_vs_seed`` entry is the unshared-vs-shared ratio (per-query
    evaluation *is* the seed behaviour; no baseline file predates the
    serving layer).  The deterministic simulated-clock figures
    (aggregate throughput, one-shot and close p50/p99/p999) are recorded
    under the scenario's ``simulated`` key.

``adaptive``
    Adaptive re-planning (DESIGN.md §4.10): a skewed two-stream join
    whose hot predicate inverts a fraction of the way in, so the
    registration-time plan starts every post-inversion close from the
    heavy index.  The primary timing is an engine with
    ``adaptive_replan`` on (the plan monitor swaps the join order once
    the statistics prove the skew); the identical workload pinned to the
    cold registration-time order rides along as a ``pinned_path``
    control run, and ``speedup_vs_seed`` is the pinned-vs-adaptive ratio
    (the cold-pinned plan *is* the seed behaviour — re-planning did not
    exist before this scenario).  The swap evidence (replan count,
    orders, simulated per-close cost of both runs) is recorded under
    ``simulated``.

Control runs are recorded per scenario under ``controls_s`` — wall
timings of a same-run reference configuration, kept apart from
``phases_s`` (which breaks the *primary* timing into disjoint phases) so
the smoke gate compares like with like.

Simulated results are guarded separately (``tests/core/test_determinism``):
optimizations must move these numbers and *only* these numbers.

The oneshot scenario additionally reports a per-phase breakdown
(``plan`` / ``explore`` / ``project`` wall seconds, from the engine's
``wall_stats`` instrumentation) so plan-cache and executor changes are
attributable without a profiler run; the continuous scenario likewise
reports ``index_read`` (window-view advances plus columnar stream-index
reads) / ``explore`` / ``project``.

Usage::

    python benchmarks/bench_wallclock.py [--quick] [--out PATH]
        [--baseline PATH] [--profile]

``--quick`` is the CI smoke mode (shorter duration, fewer repeats).  With a
baseline file (default ``benchmarks/BENCH_wallclock_seed.json``, recorded
from the pre-fast-path seed), per-scenario speedups are included.
``--profile`` additionally runs each scenario once under cProfile and
prints the top 20 functions by cumulative time.

Observability modes (no timings are recorded in either)::

    python benchmarks/bench_wallclock.py --trace trace.json [--metrics]
    python benchmarks/bench_wallclock.py --metrics

``--trace PATH`` runs the workload once with the deterministic tracer
attached, writes a Chrome trace-event file (load it in ``chrome://tracing``
or Perfetto; timestamps are *simulated* microseconds) and prints a
flame-style rendering of the slowest one-shot and window activities.
``--metrics`` prints the engine's metrics registry and stats dashboard
after the run.  See DESIGN.md §6, "Observability model".
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import statistics
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.harness import build_wukongs  # noqa: E402
from repro.bench.lsbench import LSBench, LSBenchConfig  # noqa: E402

L_QUERIES = ["L1", "L2", "L3", "L4", "L5", "L6"]
S_QUERIES = ["S1", "S2", "S3", "S4", "S5", "S6"]

SEED_BASELINE = os.path.join(_HERE, "BENCH_wallclock_seed.json")
SEED_BASELINE_QUICK = os.path.join(_HERE, "BENCH_wallclock_seed_quick.json")
DEFAULT_OUT = os.path.join(os.path.dirname(_HERE), "BENCH_wallclock.json")


def _bench():
    return LSBench(LSBenchConfig())


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_injection(duration_ms: int) -> float:
    engine = build_wukongs(_bench(), num_nodes=1, duration_ms=duration_ms)
    return _timed(lambda: engine.run_until(duration_ms))


def run_continuous(duration_ms: int, phases=None) -> float:
    bench = _bench()
    engine = build_wukongs(bench, num_nodes=1, duration_ms=duration_ms)
    for name in L_QUERIES:
        engine.register_continuous(bench.continuous_query(name))
    if phases is not None:
        # Per-phase wall accumulation: window-view advances + columnar
        # stream-index reads ("index_read"), step execution ("explore"),
        # and result projection ("project").
        engine.continuous.wall_stats = phases
        engine.continuous.explorer.wall_stats = phases
    return _timed(lambda: engine.run_until(duration_ms))


def run_continuous_phased(duration_ms: int):
    phases = {}
    elapsed = run_continuous(duration_ms, phases=phases)
    # The access-side "index_read" seconds accrue *inside* the explorer's
    # "explore" span while window-view advances accrue outside it; fold
    # both into one index-read phase and report the explore remainder so
    # the three phases are disjoint.
    reads = phases.pop("index_read", 0.0)
    advance = phases.pop("window_advance", 0.0)
    out = {"index_read": reads + advance,
           "explore": max(0.0, phases.get("explore", 0.0) - reads),
           "project": phases.get("project", 0.0)}
    return elapsed, out


def run_oneshot(duration_ms: int, rounds: int = 10, phases=None) -> float:
    bench = _bench()
    engine = build_wukongs(bench, num_nodes=1, duration_ms=duration_ms)
    engine.run_until(duration_ms)
    queries = [bench.oneshot_query(name) for name in S_QUERIES]
    if phases is not None:
        # Per-phase wall accumulation (plan / explore / project).
        engine.oneshot_engine.wall_stats = phases
        engine.oneshot_engine.explorer.wall_stats = phases

    def execute_all():
        for _ in range(rounds):
            for text in queries:
                engine.oneshot(text)

    return _timed(execute_all)


def run_oneshot_phased(duration_ms: int):
    phases = {}
    elapsed = run_oneshot(duration_ms, phases=phases)
    return elapsed, phases


def run_distributed(duration_ms: int, rounds: int = 5):
    """The S-query plans in the *distributed* modes, batch vs row kernels.

    Two nodes force real fork-join (index starts) and migrate (constant
    starts) executions; both kernel families charge bit-identical
    simulated time, so the only thing this scenario measures is how fast
    the Python gets through them.  The primary timing is the columnar
    batch path; the row-kernel timing rides along as a control run
    (``row_path``) so the report carries the batch-vs-row speedup.
    """
    from repro.sim.cost import LatencyMeter
    from repro.sparql.parser import parse_query
    from repro.sparql.planner import INDEX_START
    from repro.store.distributed import PersistentAccess
    from repro.store.executor import GraphExplorer

    bench = _bench()
    engine = build_wukongs(bench, num_nodes=2, duration_ms=duration_ms)
    engine.run_until(duration_ms)
    sn = engine.coordinator.stable_sn
    plans = [engine.oneshot_engine.plan(
        parse_query(bench.oneshot_query(name))) for name in S_QUERIES]
    modes = ["fork_join" if plan.steps and plan.steps[0].kind == INDEX_START
             else "migrate" for plan in plans]

    def factory(node_id):
        access = PersistentAccess(engine.store, home_node=node_id,
                                  max_sn=sn)
        return lambda pattern: access

    def execute_all(explorer):
        for _ in range(rounds):
            for plan, mode in zip(plans, modes):
                explorer.execute(plan, factory, LatencyMeter(), mode=mode)

    batch = GraphExplorer(engine.cluster, engine.store.strings,
                          use_batch=True)
    rows = GraphExplorer(engine.cluster, engine.store.strings,
                         use_batch=False)
    for plan, mode in zip(plans, modes):
        # Warm the adjacency-segment caches once so neither kernel
        # family pays the cold ``lookup`` misses (whichever ran first
        # would otherwise absorb them all, skewing the comparison).
        batch.execute(plan, factory, LatencyMeter(), mode=mode)
    batch_elapsed = _timed(lambda: execute_all(batch))
    row_elapsed = _timed(lambda: execute_all(rows))
    return batch_elapsed, None, {"row_path": row_elapsed}


#: Serving-scenario shape: enough subscriptions to exercise the paper's
#: "thousands of registered queries" serving story, deduped by plan
#: sharing to a few dozen backing queries.
SERVING_SUBSCRIPTIONS = 1_024
SERVING_TENANTS = 8


def _serving_run(duration_ms: int, sharing: bool):
    """One serving run; returns the layer after the drive loop.

    The tiny dataset keeps the *unshared* control affordable (1024
    backing queries closing windows every 300 ms); what the scenario
    times is the serving layer — registration, sharing, fan-out, fair
    scheduling — not raw engine throughput, which ``continuous`` and
    ``oneshot`` already cover at full scale.
    """
    from repro.serving import AdmissionPolicy, ServingLayer

    bench = LSBench(LSBenchConfig.tiny())
    engine = build_wukongs(bench, num_nodes=2, duration_ms=duration_ms)
    policy = AdmissionPolicy(oneshot_slots_per_tick=32)
    serving = ServingLayer(engine, policy=policy, sharing=sharing)
    tenants = [f"tenant{i}" for i in range(SERVING_TENANTS)]
    for i in range(SERVING_SUBSCRIPTIONS):
        text = bench.continuous_query(f"L{1 + i % 4}",
                                      start_user=(i // 4) % 13,
                                      range_ms=600, step_ms=300)
        serving.register(tenants[i % SERVING_TENANTS], text)
    ticks = duration_ms // 100
    for tick in range(ticks):
        for j in range(4):
            serving.submit(tenants[(tick + j) % SERVING_TENANTS],
                           bench.oneshot_query(f"S{1 + (tick + j) % 3}",
                                               start_user=j))
        serving.tick()
    serving.tick()  # drain the final tick's submissions
    return serving


def run_serving(duration_ms: int):
    """Shared-serving wall time, with the unshared control riding along.

    Both runs serve the identical workload and produce identical
    per-subscriber results (``tests/serving/test_sharing_property.py``
    proves it); the wall-time gap is the executions the shared run never
    ran.  Simulated figures are taken from the shared run — they are
    deterministic, so one copy suffices.
    """
    shared_box = {}

    def shared_run():
        shared_box["serving"] = _serving_run(duration_ms, sharing=True)

    shared_elapsed = _timed(shared_run)
    unshared_elapsed = _timed(
        lambda: _serving_run(duration_ms, sharing=False))
    serving = shared_box["serving"]
    snapshot = serving.snapshot()
    seconds = duration_ms / 1_000.0
    simulated = {
        "subscriptions": snapshot.subscriptions,
        "shared_queries": snapshot.shared_queries,
        "sharing_ratio": round(snapshot.subscriptions
                               / max(1, snapshot.shared_queries), 2),
        "closes_evaluated": snapshot.closes_evaluated,
        "results_delivered": snapshot.results_delivered,
        "executions_saved": snapshot.executions_saved,
        "oneshots_served": snapshot.oneshots_served,
        "throughput_per_s": round(
            (snapshot.results_delivered + snapshot.oneshots_served)
            / seconds, 1),
        "oneshot_latency_ms": serving.latency_percentiles("oneshot"),
        "close_latency_ms": serving.latency_percentiles("close"),
    }
    return (shared_elapsed, None, {"unshared_path": unshared_elapsed},
            simulated)


#: Adaptive-scenario shape: per-tick tuple rates of the heavy and light
#: streams.  The skew inverts an eighth of the way in, so the cold
#: registration-time plan spends most of the run exploring from the
#: heavy index unless the monitor swaps it.
ADAPTIVE_HEAVY_RATE = 128
ADAPTIVE_LIGHT_RATE = 8
#: Identical continuous queries registered per run: injection cost is
#: paid once, so more copies weight the wall clock toward the per-close
#: exploration the plan swap actually changes.
ADAPTIVE_COPIES = 12

ADAPTIVE_QUERY = """
    REGISTER QUERY ADAPT{n} AS
    SELECT ?U ?L
    FROM A [RANGE 1000ms STEP 100ms]
    FROM B [RANGE 1000ms STEP 100ms]
    WHERE {{
        GRAPH A {{ ?U pa ?P }}
        GRAPH B {{ ?L pb ?P }}
    }}
"""


def _skew_tuples(duration_ms: int):
    """Two streams whose hot predicate inverts after the warm-up ticks.

    Objects are mostly unique (join fan-outs ~1, so plan cost is
    dominated by the index-start size) plus one shared hot id per tick
    so every close still joins rows.
    """
    ticks = duration_ms // 100
    invert_at = max(2, ticks // 8)
    pa, pb = [], []
    na = nb = 0
    for tick in range(1, ticks + 1):
        at = 100 * (tick - 1) + 10
        if tick <= invert_at:
            pa_rate, pb_rate = ADAPTIVE_LIGHT_RATE, ADAPTIVE_HEAVY_RATE
        else:
            pa_rate, pb_rate = ADAPTIVE_HEAVY_RATE, ADAPTIVE_LIGHT_RATE
        pa.append(f"ax{tick} pa h{tick % 3} @{at}")
        pb.append(f"bx{tick} pb h{tick % 3} @{at}")
        # Offsets capped so a tick's tuples never spill past the next
        # tick's base timestamp (timestamps must be non-decreasing).
        for i in range(pa_rate):
            pa.append(f"a{na} pa p{na} @{at + 1 + min(i, 88)}")
            na += 1
        for i in range(pb_rate):
            pb.append(f"b{nb} pb q{nb} @{at + 1 + min(i, 88)}")
            nb += 1
    return "\n".join(pa), "\n".join(pb)


def _adaptive_engine(duration_ms: int, adaptive: bool, fixed_order=None):
    from repro.core.engine import EngineConfig, WukongSEngine
    from repro.rdf.parser import parse_timed_tuples
    from repro.streams.source import StreamSource
    from repro.streams.stream import StreamSchema

    config = EngineConfig(num_nodes=2, batch_interval_ms=100,
                          adaptive_replan=adaptive, replan_check_closes=2)
    engine = WukongSEngine(schemas=[StreamSchema("A"), StreamSchema("B")],
                           config=config)
    pa_text, pb_text = _skew_tuples(duration_ms)
    for name, text in (("A", pa_text), ("B", pb_text)):
        source = StreamSource(engine.schemas[name])
        source.queue_tuples(parse_timed_tuples(text), 0, 100)
        engine.attach_source(source)
    handles = [engine.register_continuous(ADAPTIVE_QUERY.format(n=n),
                                          fixed_order=fixed_order)
               for n in range(ADAPTIVE_COPIES)]
    return engine, handles


def run_adaptive(duration_ms: int):
    """Adaptive re-planning vs the cold-pinned plan on a skew inversion.

    Both runs serve the identical stream; the adaptive engine's plan
    monitor swaps the join order once the statistics prove the inverted
    skew, while the control stays pinned to the registration-time order
    (``fixed_order``, exactly how golden workloads opt out).  The wall
    gap is the Python the swapped plan never executes; the simulated
    per-close costs of both runs ride along as swap evidence.
    """
    runs = {}

    def one_run(key, adaptive, fixed_order=None):
        def run():
            engine, query_handles = _adaptive_engine(duration_ms, adaptive,
                                                     fixed_order)
            engine.run_until(duration_ms)
            runs[key] = query_handles
        return run

    adaptive_elapsed = _timed(one_run("adaptive", adaptive=True))
    pinned_elapsed = _timed(one_run("pinned", adaptive=False,
                                    fixed_order=[0, 1]))
    handle = runs["adaptive"][0]
    first = handle.replans[0] if handle.replans else None
    adaptive_ns = sum(r.meter.ns
                      for h in runs["adaptive"] for r in h.executions)
    pinned_ns = sum(r.meter.ns
                    for h in runs["pinned"] for r in h.executions)
    simulated = {
        "replans": sum(len(h.replans) for h in runs["adaptive"]),
        "initial_order": list(first.old_order) if first
        else list(handle.plan_order),
        "final_order": list(handle.plan_order),
        "swap_close": first.close_index if first else None,
        "estimated_improvement": round(first.estimated_improvement, 2)
        if first else None,
        "closes": len(handle.executions),
        "adaptive_close_ms_total": round(adaptive_ns / 1e6, 3),
        "pinned_close_ms_total": round(pinned_ns / 1e6, 3),
        "simulated_speedup": round(pinned_ns / adaptive_ns, 2)
        if adaptive_ns else None,
    }
    return adaptive_elapsed, None, {"pinned_path": pinned_elapsed}, simulated


def run_temporal(duration_ms: int, rounds: int = 8):
    """SPARQL-T temporal queries (DESIGN.md §8), self-baselined.

    The primary timing is a deep-history *interval* workload — T2/T3
    range selections over the full retained ``?ts`` history (numeric
    FILTERs and a constant-interval ``OVERLAPS``) plus T4 two-hop
    quintuple joins from several start users — on the columnar batch
    kernels (:mod:`repro.temporal.kernels`).  The row evaluator rides
    along as the ``row_path`` control (``use_batch=False``; bit-identical
    rows and simulated charges, asserted per query under ``simulated``),
    so ``speedup_vs_seed`` is the batch-vs-row ratio: the row evaluator
    *is* the seed behaviour — the interval family ran row-based before
    the batch kernels landed.  Scalarization is disabled so the full
    version history stays readable; both timed sets run with warm
    parse and compiled-plan caches (the shared plan makes a cache hit
    identical work for either kernel).

    The previous primary — the S1-S6 set as ``FROM SNAPSHOT <latest>``
    twins vs their plain one-shots — is retained as the
    ``snapshot_latest`` / ``oneshot_plain`` control pair: their ~1.0x
    ratio is the temporal subsystem's overhead figure (snapshot
    validation + pinning + the counting access), unchanged by this
    scenario's interval focus.
    """
    bench = _bench()
    engine = build_wukongs(bench, num_nodes=1, duration_ms=duration_ms,
                           scalarization=False)
    engine.run_until(duration_ms)
    stable = engine.coordinator.stable_sn
    temporal = engine.temporal

    # Deep-history interval workload: full-range and half-range ?ts
    # selections, both FILTER phrasings, plus quintuple joins.
    hi = max(2, stable)
    mid = max(1, stable // 2)
    interval = [
        bench.temporal_query("T2", ts_from=1, ts_to=hi),
        bench.temporal_query("T3", ts_from=1, ts_to=hi),
        bench.temporal_query("T2", ts_from=mid, ts_to=hi),
        bench.temporal_query("T3", ts_from=1, ts_to=max(2, mid)),
    ]
    interval += [bench.temporal_query("T4", start_user=user)
                 for user in range(4)]

    def run_set(queries, times):
        for _ in range(times):
            for text in queries:
                engine.oneshot(text)

    # Warm both kernel families once (parse cache, compiled interval
    # plans, adjacency segments) so neither timed set pays cold misses.
    temporal.use_batch = True
    run_set(interval, 1)
    temporal.use_batch = False
    run_set(interval, 1)

    per_round = len(interval)
    temporal.use_batch = True
    batch_elapsed = _timed(lambda: run_set(interval, rounds))
    batch_records = temporal.records[-rounds * per_round:]
    temporal.use_batch = False
    row_elapsed = _timed(lambda: run_set(interval, rounds))
    row_records = temporal.records[-rounds * per_round:]
    temporal.use_batch = True

    # The retained overhead control: FROM SNAPSHOT <latest> twins vs
    # their plain one-shots (bit-identical charges; ~1.0x wall).
    plain = [bench.oneshot_query(name) for name in S_QUERIES]
    snapshot = [text.replace("WHERE", f"FROM SNAPSHOT <{stable}> WHERE", 1)
                for text in plain]
    run_set(snapshot + plain, 1)
    snapshot_elapsed = _timed(lambda: run_set(snapshot, rounds))
    plain_elapsed = _timed(lambda: run_set(plain, rounds))

    simulated = {
        "stable_sn": stable,
        "interval_workload": {
            "queries": per_round,
            "executions": len(batch_records),
            "rows": sum(r.row_count for r in batch_records),
            "snapshot_reads": sum(r.snapshot_reads
                                  for r in batch_records),
            "version_entries": sum(r.version_entries
                                   for r in batch_records),
            "max_chain_depth": max((r.max_chain_depth
                                    for r in batch_records), default=0),
            "simulated_ms_total": round(sum(r.meter.ns
                                            for r in batch_records) / 1e6,
                                        3),
            # Per-query (rows, simulated ns) equality between the timed
            # batch and row sets — the bench-level echo of the
            # differential suite's bit-identity proof.
            "controls_identical": (
                [(r.row_count, r.meter.ns) for r in batch_records]
                == [(r.row_count, r.meter.ns) for r in row_records]),
        },
        "plan_cache": {
            "hits": temporal.plan_cache_hits,
            "misses": temporal.plan_cache_misses,
            "evictions": temporal.plan_cache_evictions,
        },
    }
    return batch_elapsed, None, {
        "row_path": row_elapsed,
        "snapshot_latest": snapshot_elapsed,
        "oneshot_plain": plain_elapsed,
    }, simulated


SCENARIOS = {
    "injection": run_injection,
    "continuous": run_continuous_phased,
    "oneshot": run_oneshot_phased,
    "distributed": run_distributed,
    "serving": run_serving,
    "adaptive": run_adaptive,
    "temporal": run_temporal,
}

#: Scenarios whose seed behaviour is a same-run control path, not a
#: baseline file: control name -> the speedup is control / median.
SELF_BASELINED = {"distributed": "row_path", "serving": "unshared_path",
                  "adaptive": "pinned_path", "temporal": "row_path"}


def measure(duration_ms: int, repeats: int) -> dict:
    """Run every scenario ``repeats`` times; medians per scenario.

    Runner protocol: a bare float is the wall seconds of the primary
    configuration; tuple returns extend it positionally with ``phases``
    (disjoint breakdown of the primary timing), ``controls``
    (same-run reference configurations, e.g. the row kernels), and
    ``simulated`` (deterministic simulated-clock figures — identical
    across repeats, so the last copy is every copy).
    """
    results = {}
    for name, runner in SCENARIOS.items():
        runs = []
        phase_runs = {}
        control_runs = {}
        simulated = None
        for _ in range(repeats):
            run = runner(duration_ms)
            if isinstance(run, tuple):
                run, phases, controls, sim = \
                    run + (None,) * (4 - len(run))
                for phase, value in (phases or {}).items():
                    phase_runs.setdefault(phase, []).append(value)
                for control, value in (controls or {}).items():
                    control_runs.setdefault(control, []).append(value)
                if sim is not None:
                    simulated = sim
            runs.append(run)
        results[name] = {
            "median_s": statistics.median(runs),
            "runs_s": runs,
        }
        print(f"{name:12s} median {results[name]['median_s']:.3f}s "
              f"({', '.join(f'{r:.3f}' for r in runs)})", flush=True)
        for key, samples in (("phases_s", phase_runs),
                             ("controls_s", control_runs)):
            if not samples:
                continue
            medians = {part: statistics.median(values)
                       for part, values in samples.items()}
            results[name][key] = medians
            breakdown = ", ".join(f"{part} {medians[part]:.3f}s"
                                  for part in sorted(medians))
            print(f"{'':12s} {key.split('_')[0]}: {breakdown}", flush=True)
        if simulated is not None:
            results[name]["simulated"] = simulated
            if "oneshot_latency_ms" in simulated:
                oneshot = simulated["oneshot_latency_ms"]
                print(f"{'':12s} simulated: "
                      f"{simulated.get('throughput_per_s', 0):g} results/s, "
                      f"oneshot p50 {oneshot.get('p50_ms', 0):.3f}ms "
                      f"p99 {oneshot.get('p99_ms', 0):.3f}ms "
                      f"p99.9 {oneshot.get('p99_9_ms', 0):.3f}ms",
                      flush=True)
            else:
                pairs = ", ".join(f"{key}={value}"
                                  for key, value in simulated.items())
                print(f"{'':12s} simulated: {pairs}", flush=True)
    return results


def run_traced(duration_ms: int, trace_path=None,
               show_metrics: bool = False) -> None:
    """One traced run of the continuous + one-shot workload.

    Uses two nodes so fork-join queries appear in the trace.  Tracing is
    zero-cost in simulated time but not in wall time, so this mode never
    records timings.
    """
    from repro.core.stats import collect_stats
    from repro.obs import collect_metrics, render_flame, write_chrome_trace

    bench = _bench()
    engine = build_wukongs(bench, num_nodes=2, duration_ms=duration_ms)
    engine.enable_observability()
    for name in L_QUERIES:
        engine.register_continuous(bench.continuous_query(name))
    engine.run_until(duration_ms)
    for name in S_QUERIES:
        engine.oneshot(bench.oneshot_query(name))

    if trace_path:
        write_chrome_trace(engine.tracer, trace_path)
        print(f"wrote {trace_path} ({len(engine.tracer.spans)} spans)")
        for kind in ("oneshot", "window"):
            activities = engine.tracer.activities(kind)
            if activities:
                slowest = max(activities, key=lambda span: span.ns)
                print(f"\nslowest {kind} activity:")
                print(render_flame(engine.tracer.spans, slowest))
    if show_metrics:
        collect_metrics(engine)
        print("\n== metrics ==")
        print(engine.metrics.render())
        print("\n== engine stats ==")
        print(collect_stats(engine).format())


def profile_scenarios(duration_ms: int, top: int = 20) -> None:
    """Run each scenario once under cProfile; print top-N by cumtime."""
    for name, runner in SCENARIOS.items():
        print(f"\n--- profile: {name} ---", flush=True)
        profiler = cProfile.Profile()
        profiler.enable()
        runner(duration_ms)
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(top)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: shorter duration, 3 repeats")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="where to write the JSON report")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to compute speedups against")
    parser.add_argument("--profile", action="store_true",
                        help="also run each scenario once under cProfile "
                             "and print the top 20 functions by cumtime")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="run once with the tracer attached, write a "
                             "Chrome trace-event file and print flame "
                             "renderings (records no timings)")
    parser.add_argument("--metrics", action="store_true",
                        help="run once and print the metrics registry and "
                             "stats dashboard (records no timings)")
    args = parser.parse_args(argv)

    if args.trace or args.metrics:
        run_traced(1_500 if args.quick else 2_500,
                   trace_path=args.trace, show_metrics=args.metrics)
        return 0

    if args.baseline is None:
        args.baseline = SEED_BASELINE_QUICK if args.quick else SEED_BASELINE
    duration_ms = 1_500 if args.quick else 2_500
    repeats = 3 if args.quick else 5
    if args.profile:
        profile_scenarios(duration_ms)
    results = measure(duration_ms, repeats)

    report = {
        "mode": "quick" if args.quick else "full",
        "duration_ms": duration_ms,
        "repeats": repeats,
        "scenarios": results,
    }
    speedups = {}
    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        if baseline.get("mode") == report["mode"]:
            for name, result in results.items():
                base = baseline.get("scenarios", {}).get(name)
                if base and result["median_s"] > 0:
                    speedups[name] = base["median_s"] / result["median_s"]
            report["baseline"] = {
                name: base["median_s"]
                for name, base in baseline.get("scenarios", {}).items()
            }
    # Self-baselined scenarios predate no seed baseline: each one's
    # reference is the control path it replaced, timed in the same run.
    for name, control_name in SELF_BASELINED.items():
        result = results.get(name)
        if result and result["median_s"] > 0:
            control = result.get("controls_s", {}).get(control_name)
            if control:
                speedups[name] = control / result["median_s"]
    if speedups:
        report["speedup_vs_seed"] = speedups
        for name, speedup in sorted(speedups.items()):
            print(f"{name:12s} speedup vs seed: {speedup:.2f}x",
                  flush=True)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
