"""Shared constants and builders for the benchmark suite.

``PAPER_*`` dictionaries hold the numbers the paper reports, printed next
to our measurements in every table.  Absolute values are not expected to
match (our substrate is a simulated cluster and the dataset is scaled down
— see DESIGN.md §5); the *shape* — who wins, by roughly what factor, where
crossovers fall — is what each benchmark asserts.
"""

from __future__ import annotations

from repro.bench.citybench import CityBench, CityBenchConfig
from repro.bench.lsbench import LSBench, LSBenchConfig

L_QUERIES = ["L1", "L2", "L3", "L4", "L5", "L6"]
S_QUERIES = ["S1", "S2", "S3", "S4", "S5", "S6"]
C_QUERIES = [f"C{i}" for i in range(1, 12)]

# Table 2 (single node, LSBench-118M), milliseconds.
PAPER_TABLE2 = {
    "Wukong+S": {"L1": 0.13, "L2": 0.10, "L3": 0.13, "L4": 1.19,
                 "L5": 2.89, "L6": 2.14},
    "Storm+Wukong": {"L1": 0.20, "L2": 1.62, "L3": 1.29, "L4": 30.38,
                     "L5": 51.04, "L6": 65.04},
    "CSPARQL-engine": {"L1": 155, "L2": 708, "L3": 872, "L4": 291,
                       "L5": 1984, "L6": 3395},
}

# Table 3 (8 nodes, LSBench-3.75B), milliseconds.
PAPER_TABLE3 = {
    "Wukong+S": {"L1": 0.10, "L2": 0.08, "L3": 0.11, "L4": 1.78,
                 "L5": 3.50, "L6": 1.68},
    "Storm+Wukong": {"L1": 0.23, "L2": 1.64, "L3": 2.62, "L4": 31.14,
                     "L5": 40.77, "L6": 49.03},
    "Spark Streaming": {"L1": 219, "L2": 527, "L3": 712, "L4": 346,
                        "L5": 2215, "L6": 1422},
}

# Table 4 (8 nodes), milliseconds; None = unsupported ("x").
PAPER_TABLE4 = {
    "Heron+Wukong": {"L1": 0.24, "L2": 1.58, "L3": 2.35, "L4": 30.92,
                     "L5": 31.72, "L6": 45.78},
    "Structured Streaming": {"L1": 287, "L2": 743, "L3": 1698, "L4": None,
                             "L5": None, "L6": None},
    "Wukong/Ext": {"L1": 0.19, "L2": 0.14, "L3": 0.17, "L4": 6.91,
                   "L5": 7.36, "L6": 7.33},
}

# Table 5 (8 nodes): RDMA vs non-RDMA, milliseconds.
PAPER_TABLE5 = {
    "Wukong+S": {"L1": 0.10, "L2": 0.08, "L3": 0.11, "L4": 1.78,
                 "L5": 3.50, "L6": 1.68},
    "Non-RDMA": {"L1": 0.11, "L2": 0.08, "L3": 0.12, "L4": 6.22,
                 "L5": 6.14, "L6": 4.90},
}

# Table 6: per-mini-batch (100 ms) injection cost, milliseconds.
PAPER_TABLE6 = {
    "Injection": {"PO": 0.52, "PO_L": 1.77, "PH": 0.45, "PH_L": 0.16,
                  "GPS": 1.18},
    "Indexing": {"PO": 0.23, "PO_L": 0.43, "PH": 0.22, "PH_L": 0.21,
                 "GPS": 0.34},
}

# Table 7: MB/min of raw stream data vs stream index.
PAPER_TABLE7 = {
    "data": {"PO": 6.39, "PO_L": 38.22, "PH": 4.76, "PH_L": 7.90,
             "GPS": 5.45},
    "index": {"PO": 2.96, "PO_L": 0.60, "PH": 1.89, "PH_L": 0.51,
              "GPS": None},
}

# Table 8: one-shot queries (8 nodes), milliseconds.
PAPER_TABLE8 = {
    "Wukong": {"S1": 4.04, "S2": 0.11, "S3": 0.19, "S4": 23.1,
               "S5": 0.26, "S6": 60.2},
    "Wukong+S/Off": {"S1": 4.12, "S2": 0.12, "S3": 0.20, "S4": 24.1,
                     "S5": 0.28, "S6": 61.8},
    "Wukong+S/On": {"S1": 4.31, "S2": 0.11, "S3": 0.21, "S4": 25.5,
                    "S5": 0.29, "S6": 64.2},
}

# Table 9: CityBench (single node), milliseconds.
PAPER_TABLE9 = {
    "Wukong+S": {"C1": 0.24, "C2": 0.37, "C3": 0.26, "C4": 0.98,
                 "C5": 0.94, "C6": 0.26, "C7": 0.24, "C8": 0.27,
                 "C9": 1.15, "C10": 0.78, "C11": 0.16},
    "Storm+Wukong": {"C1": 4.40, "C2": 4.48, "C3": 4.10, "C4": 2.67,
                     "C5": 4.10, "C6": 1.91, "C7": 2.23, "C8": 2.05,
                     "C9": 3.91, "C10": 1.18, "C11": 0.17},
    "Spark Streaming": {"C1": 872, "C2": 1557, "C3": 675, "C4": 802,
                        "C5": 790, "C6": 764, "C7": 762, "C8": 692,
                        "C9": 1088, "C10": 1086, "C11": 193},
}

# Fig. 4: QC breakdown on Storm+Wukong (ms) and cross-system-cost share.
PAPER_FIG4 = {
    "interleaved": {"total_ms": 101.8, "cross_fraction": 0.391},
    "stream_first": {"total_ms": 249.2, "cross_fraction": 0.465},
}

# Fig. 14/15: peak throughput (queries/s).
PAPER_FIG14 = {2: 254_000, 8: 1_080_000}
PAPER_FIG15 = {2: 161_000, 8: 802_000}

# §6.8: fault tolerance overhead.
PAPER_FT = {"logging_delay_ms": 0.3, "throughput_drop": 0.112}


def small_lsbench() -> LSBench:
    """Single-node LSBench (stands in for LSBench-118M)."""
    return LSBench(LSBenchConfig.small())


def large_lsbench() -> LSBench:
    """Cluster LSBench (stands in for LSBench-3.75B)."""
    return LSBench(LSBenchConfig.large())


def default_citybench() -> CityBench:
    return CityBench(CityBenchConfig())


#: Default measurement horizon: leaves ~25 executions per query at the
#: 100 ms step after windows warm up (the paper uses 100 runs).
DURATION_MS = 4_000

#: Close times for baselines (after windows have fully warmed up).
def close_times(duration_ms: int = DURATION_MS, step_ms: int = 500,
                warmup_ms: int = 1_500):
    return list(range(warmup_ms, duration_ms + 1, step_ms))
