"""§6.7: the memory benefit of bounded snapshot scalarization.

Compares the persistent store's modelled footprint with scalarization on
(retired snapshots compacted into the base; bounded live segments per key)
against scalarization off (every snapshot's segments retained), and
against the strawman the paper rejects — stamping every streamed value
with a full vector timestamp.

Shape assertions: scalarization strictly reduces the footprint; the gap
widens as more snapshots accumulate; the per-value VTS strawman is the
most expensive and grows with the number of streams.
"""

from repro.bench.harness import build_wukongs, format_table

from common import large_lsbench

DURATION_MS = 6_000

#: Bytes of one vector-timestamp stamp per streamed value (5 streams x 8B).
VTS_STAMP_BYTES = 5 * 8


def run_experiment():
    bench = large_lsbench()
    out = {}
    for label, scalarization in (("bounded scalarization", True),
                                 ("no scalarization", False)):
        engine = build_wukongs(bench, num_nodes=8, duration_ms=DURATION_MS,
                               scalarization=scalarization)
        engine.run_until(DURATION_MS)
        streamed_entries = sum(inj.tuples_injected
                               for inj in engine.injectors)
        out[label] = {
            "store_bytes": engine.store_memory_bytes(),
            "streamed_entries": streamed_entries,
        }
    # Strawman: per-value vector timestamps instead of snapshot numbers.
    base = out["no scalarization"]
    out["per-value VTS"] = {
        "store_bytes": base["store_bytes"]
        + base["streamed_entries"] * VTS_STAMP_BYTES,
        "streamed_entries": base["streamed_entries"],
    }
    return out


def test_snapshot_memory(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    baseline = measured["bounded scalarization"]["store_bytes"]
    rows = []
    for label in ("bounded scalarization", "no scalarization",
                  "per-value VTS"):
        size = measured[label]["store_bytes"]
        rows.append([label, size / (1024.0 * 1024.0),
                     f"+{(size - baseline) / baseline:.1%}"
                     if size > baseline else "baseline"])
    report(format_table(
        "§6.7: store footprint under snapshot schemes (MiB)",
        ["Scheme", "store MiB", "vs bounded"],
        rows,
        note="paper: 2 streams/2 snapshots 37.7GB vs 44.0GB without "
             "scalarization; all 5 streams add nothing when bounded"))

    bounded = measured["bounded scalarization"]["store_bytes"]
    unbounded = measured["no scalarization"]["store_bytes"]
    strawman = measured["per-value VTS"]["store_bytes"]
    assert bounded < unbounded < strawman
