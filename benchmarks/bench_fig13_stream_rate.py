"""Fig. 13: latency of L1-L6 as the stream rate sweeps x1/4 to x4.

Shape assertions: group (I) queries produce fixed-size results and stay
stable across rates; group (II) latency grows with the rate (their window
contents and result sizes scale with it) while remaining far below the
baselines' regime.
"""

from repro.bench.harness import (build_wukongs, format_table,
                                 measure_wukongs, median_of)

from common import DURATION_MS, L_QUERIES, large_lsbench

#: Multipliers over the default (paper-scaled) rate, as in Fig. 13.
RATE_MULTIPLIERS = (0.25, 0.5, 1.0, 2.0, 4.0)


def run_experiment():
    bench = large_lsbench()
    base_scale = bench.config.rate_scale
    queries = {name: bench.continuous_query(name) for name in L_QUERIES}
    out = {}
    for multiplier in RATE_MULTIPLIERS:
        engine = build_wukongs(bench, num_nodes=8, duration_ms=DURATION_MS,
                               rate_scale=base_scale * multiplier)
        out[multiplier] = median_of(measure_wukongs(engine, queries,
                                                    DURATION_MS))
    return out


def test_fig13_stream_rate(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [[query] + [measured[m][query] for m in RATE_MULTIPLIERS]
            for query in L_QUERIES]
    report(format_table(
        "Fig. 13: Wukong+S latency (ms) vs stream rate, 8 nodes",
        ["Query"] + [f"x{m:g}" for m in RATE_MULTIPLIERS],
        rows,
        note="paper: group (I) flat; group (II) grows with rate but stays "
             "low (< 16 ms)"))
    from repro.bench.plots import line_chart
    report(line_chart(
        {query: [(m, measured[m][query]) for m in RATE_MULTIPLIERS]
         for query in L_QUERIES},
        title="Fig. 13 (log y)", x_label="rate multiplier",
        y_label="ms", log_y=True))

    # Group (I): stable at a microscopic level across a 16X rate sweep
    # (on the paper's axes these series are flat lines; the epsilon keeps
    # the relative check meaningful at microsecond magnitudes).
    for query in ("L1", "L2", "L3"):
        series = [measured[m][query] for m in RATE_MULTIPLIERS]
        assert max(series) < 0.15, query  # at the dispatch floor
        assert max(series) < 3.0 * min(series) + 0.01, query
    # Group (II): latency increases with the stream rate.
    for query in ("L4", "L5", "L6"):
        assert measured[4.0][query] > measured[0.25][query], query
