"""Ablation (§4.1): multi-threaded injectors.

"When multiple Injector threads are required due to massive streams or
high stream rate, Wukong+S will statically partition the key space of the
store and exclusively assign one partition to one thread."  This sweep
raises the stream rate 4x over the default and measures the per-batch
injection cost of the heaviest stream as injector threads grow.
"""

from repro.bench.harness import build_wukongs, format_table
from repro.bench.metrics import mean

from common import large_lsbench

THREADS = (1, 2, 4, 8)
DURATION_MS = 2_000


def run_experiment():
    bench = large_lsbench()
    rate = bench.config.rate_scale * 4
    out = {}
    for threads in THREADS:
        engine = build_wukongs(bench, num_nodes=4, duration_ms=DURATION_MS,
                               rate_scale=rate)
        engine.config.injector_threads = threads
        for injector in engine.injectors:
            injector.threads = threads
        engine.run_until(DURATION_MS)
        records = [r for r in engine.injection_records
                   if r.stream == "PO_L" and r.num_tuples > 0]
        out[threads] = {
            # Store-insert time alone: the part threads parallelize
            # (adapt/dispatch/indexing are outside the thread pool).
            "inject_ms": mean([r.meter.breakdown_ms.get("insert", 0.0)
                               for r in records]),
            "total_ms": mean([r.total_ms for r in records]),
            "tuples": mean([r.num_tuples for r in records]),
        }
    return out


def test_ablation_injector_threads(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [[f"{threads} threads",
             measured[threads]["inject_ms"],
             measured[threads]["total_ms"],
             f"{measured[1]['inject_ms'] / measured[threads]['inject_ms']:.2f}X"]
            for threads in THREADS]
    report(format_table(
        "Ablation: injector threads (PO_L at 4x rate, per 100 ms batch)",
        ["Threads", "insert ms", "batch total ms", "insert speedup"],
        rows,
        note="key-space partitioning parallelizes the store inserts "
             "without locks; adapt/dispatch/indexing stay serial"))

    assert measured[4]["inject_ms"] < measured[1]["inject_ms"]
    # Lock-free scaling is sub-linear but real.
    speedup = measured[8]["inject_ms"] / measured[1]["inject_ms"]
    assert speedup < 0.7