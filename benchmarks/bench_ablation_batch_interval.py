"""Ablation: the Adaptor's mini-batch interval.

The Adaptor groups stream tuples into mini-batches (§3); the interval
trades ingestion efficiency against visibility granularity.  Smaller
batches mean more per-batch fixed work (dispatch messages, VTS updates,
index slices — and more slices for every window to probe); larger batches
amortize that but coarsen the window step a query may use.  This sweep
measures total injection cost and query latency across intervals.
"""

from repro.bench.harness import build_wukongs, format_table
from repro.bench.metrics import mean, median

from common import large_lsbench

INTERVALS_MS = (50, 100, 200, 500)
DURATION_MS = 3_000


def run_experiment():
    bench = large_lsbench()
    out = {}
    for interval in INTERVALS_MS:
        engine = build_wukongs(bench, num_nodes=4,
                               duration_ms=DURATION_MS,
                               batch_interval_ms=interval)
        handle = engine.register_continuous(bench.continuous_query(
            "L5", step_ms=interval * 2, range_ms=interval * 10))
        engine.run_until(DURATION_MS)
        po_records = [r for r in engine.injection_records
                      if r.stream == "PO_L" and r.num_tuples > 0]
        out[interval] = {
            "inject_ms_per_s": sum(r.total_ms for r in po_records)
            / (DURATION_MS / 1000.0),
            "batches": len(po_records),
            "query_ms": median([r.latency_ms for r in handle.executions]),
        }
    return out


def test_ablation_batch_interval(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [[f"{interval} ms",
             measured[interval]["batches"],
             measured[interval]["inject_ms_per_s"],
             measured[interval]["query_ms"]]
            for interval in INTERVALS_MS]
    report(format_table(
        "Ablation: mini-batch interval (PO_L stream, L5 query)",
        ["Interval", "batches", "inject ms/s", "L5 median ms"],
        rows,
        note="smaller batches pay fixed per-batch costs more often and "
             "give windows more slices to probe"))

    # Total per-second injection cost falls as batches grow.
    assert measured[500]["inject_ms_per_s"] < \
        measured[50]["inject_ms_per_s"]
    # Batch counts scale inversely with the interval.
    assert measured[50]["batches"] > measured[500]["batches"]
