"""§6.8: fault-tolerance overhead.

Re-runs the mixed L1-L3 workload with logging + checkpointing enabled and
reports the logging delay per batch, the throughput drop and the latency
tail against the unprotected run.  Shape assertions follow the paper:
per-batch logging delay is sub-millisecond-scale, throughput drops by a
modest fraction (the paper measures 11.2%), and p90 is essentially
unchanged while the tail grows.
"""

from repro.bench.harness import build_wukongs, format_table
from repro.bench.workload import run_mixed_workload

from common import PAPER_FT, large_lsbench

DURATION_MS = 3_000


def run_experiment():
    bench = large_lsbench()
    out = {}
    for label, fault_tolerance in (("off", False), ("on", True)):
        engine = build_wukongs(bench, num_nodes=8, duration_ms=DURATION_MS,
                               fault_tolerance=fault_tolerance)
        result = run_mixed_workload(bench, ["L1", "L2", "L3"], 8,
                                    duration_ms=DURATION_MS, engine=engine)
        out[label] = {
            "throughput": result.throughput_qps,
            "p50": result.latency_percentile_ms(50),
            "p90": result.latency_percentile_ms(90),
            "p99": result.latency_percentile_ms(99),
            "logging_delay_ms": (engine.checkpoints.mean_logging_delay_ms()
                                 if engine.checkpoints else 0.0),
            "checkpoints": (engine.checkpoints.num_checkpoints
                            if engine.checkpoints else 0),
        }
    return out


def test_fault_tolerance_overhead(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    off, on = measured["off"], measured["on"]
    drop = 1.0 - on["throughput"] / off["throughput"]
    rows = [
        ["FT off", f"{off['throughput'] / 1e3:.0f}K", off["p50"],
         off["p90"], off["p99"], "-"],
        ["FT on", f"{on['throughput'] / 1e3:.0f}K", on["p50"],
         on["p90"], on["p99"], on["logging_delay_ms"]],
    ]
    report(format_table(
        "§6.8: fault-tolerance overhead (mixed L1-L3, 8 nodes)",
        ["Config", "Throughput", "p50 ms", "p90 ms", "p99 ms",
         "log delay ms"],
        rows,
        note=f"throughput drop: {drop:.1%} "
             f"(paper: {PAPER_FT['throughput_drop']:.1%}; "
             f"paper log delay ~{PAPER_FT['logging_delay_ms']}ms/batch)"))

    # Logging ran and checkpoints were taken.
    assert on["checkpoints"] >= 1
    assert on["logging_delay_ms"] > 0
    # The drop is real but modest (the paper measures 11.2%).
    assert 0.0 <= drop < 0.5
