"""Fig. 4: execution-time breakdown of QC on Storm+Wukong.

Runs the paper's QC through the composite engine under both query plans:
(a) interleaved GP1 -> GP2 -> GP3 and (b) stream-first (GP1 |><| GP3
first, then GP2).  The workload reproduces the paper's selectivity
profile — a modest tweet window (GP1), a friendship expansion (GP2) and a
like window an order of magnitude larger (GP3), so the stream-first join
emits a huge unpruned intermediate (the paper's 83,099 tuples).

Assertions check §2.3's two findings: cross-system cost is a large
fraction of the total, and the "fewer crossings" plan is *slower* overall
due to insufficient pruning.
"""

from repro.baselines.composite import CompositeEngine
from repro.bench.harness import format_table
from repro.bench.lsbench import LSBench, LSBenchConfig
from repro.sim.cluster import Cluster
from repro.sparql.parser import parse_query
from repro.streams.stream import batch_tuples

from common import PAPER_FIG4

#: Dedicated stream profile: likes dwarf posts, as in the paper's QC run
#: (GP1 = 831 tuples vs GP3 = 85,927).  Unscaled tuples/second.
FIG4_RATES = {"PO": 8_000.0, "PO_L": 430_000.0, "PH": 0.0, "PH_L": 0.0,
              "GPS": 0.0}
DURATION_MS = 10_000

QC = """
REGISTER QUERY QC AS
SELECT ?X ?Y ?Z
FROM PO [RANGE 10s STEP 1s]
FROM PO_L [RANGE 5s STEP 1s]
FROM X-Lab
WHERE {
    GRAPH PO { ?X po ?Z }
    GRAPH X-Lab { ?X fo ?Y }
    GRAPH PO_L { ?Y li ?Z }
}
"""


def run_experiment():
    bench = LSBench(LSBenchConfig(num_users=1_000, rate_scale=0.01))
    streams = bench.generate_streams(DURATION_MS, rates=FIG4_RATES)
    query = parse_query(QC)
    out = {}
    for plan in ("interleaved", "stream_first"):
        engine = CompositeEngine(Cluster(1), plan=plan)
        engine.load_static(bench.static_triples())
        for name, tuples in streams.items():
            for batch in batch_tuples(name, tuples, 0, 1_000):
                engine.ingest(batch)
        _, meter, breakdown = engine.execute_continuous(query, DURATION_MS)
        out[plan] = breakdown
    return out


def test_fig4_breakdown(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for plan in ("interleaved", "stream_first"):
        breakdown = measured[plan]
        rows.append([plan,
                     breakdown.processor_ms,
                     breakdown.wukong_ms,
                     breakdown.cross_ms,
                     breakdown.total_ms,
                     f"{breakdown.cross_fraction:.1%}",
                     PAPER_FIG4[plan]["total_ms"],
                     f"{PAPER_FIG4[plan]['cross_fraction']:.1%}"])
    report(format_table(
        "Fig. 4: QC breakdown on Storm+Wukong (ms)",
        ["Plan", "Storm", "Wukong", "CC", "Total", "CC%",
         "(paper total)", "(paper CC%)"],
        rows))

    inter = measured["interleaved"]
    first = measured["stream_first"]
    # Issue #1: the cross-system cost is a significant share of the total.
    assert inter.cross_fraction > 0.15
    # Issue #2: reducing crossings makes the plan *slower* overall...
    assert first.total_ms > inter.total_ms
    # ...because the unpruned stream-stream join ships a much larger
    # intermediate across the system boundary.
    assert first.cross_ms > inter.cross_ms
