"""Fig. 12: latency of L1-L6 while growing the cluster from 2 to 8 nodes.

Shape assertions: group (I) queries stay flat (in-place execution keeps
them stable regardless of cluster size); group (II) queries *speed up*
with more nodes thanks to fork-join parallelism over the partitioned
index.
"""

from repro.bench.harness import (build_wukongs, format_table,
                                 measure_wukongs, median_of)

from common import DURATION_MS, L_QUERIES, large_lsbench

NODE_COUNTS = (2, 4, 6, 8)


def run_experiment():
    bench = large_lsbench()
    queries = {name: bench.continuous_query(name) for name in L_QUERIES}
    out = {}
    for nodes in NODE_COUNTS:
        engine = build_wukongs(bench, num_nodes=nodes,
                               duration_ms=DURATION_MS)
        out[nodes] = median_of(measure_wukongs(engine, queries,
                                               DURATION_MS))
    return out


def test_fig12_scalability(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [[query] + [measured[n][query] for n in NODE_COUNTS]
            for query in L_QUERIES]
    report(format_table(
        "Fig. 12: Wukong+S latency (ms) vs cluster size, LSBench",
        ["Query"] + [f"{n} nodes" for n in NODE_COUNTS],
        rows,
        note="paper: group (I) flat; group (II) speedup 2.8X-3.2X "
             "from 2 to 8 nodes"))
    from repro.bench.plots import line_chart
    report(line_chart(
        {query: [(n, measured[n][query]) for n in NODE_COUNTS]
         for query in ("L4", "L5", "L6")},
        title="Fig. 12b (group II)", x_label="nodes", y_label="ms"))

    # Group (I): stable latency (within 2X across cluster sizes).
    for query in ("L1", "L2", "L3"):
        series = [measured[n][query] for n in NODE_COUNTS]
        assert max(series) < 2.0 * min(series), query
    # Group (II): more nodes reduce latency.
    for query in ("L4", "L5", "L6"):
        assert measured[8][query] < measured[2][query], query
    # Aggregate speedup for group (II) is a real parallel win (> 1.5X).
    speedups = [measured[2][q] / measured[8][q] for q in ("L4", "L5", "L6")]
    assert max(speedups) > 1.5
