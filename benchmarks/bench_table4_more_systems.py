"""Table 4: further systems on the 8-node LSBench setup.

Heron+Wukong (faster framework, same composite bottleneck), Structured
Streaming (L1-L3 only; stream-stream joins unsupported -> "x"), and
Wukong/Ext (no stream index, no GC).  Shape assertions: Heron helps the
stream-only query but not the cross-system ones; Structured Streaming is
slower than Spark Streaming and rejects L4-L6; Wukong+S outperforms
Wukong/Ext, with a larger gap on the big (group II) queries.
"""

from repro.baselines.composite import CompositeEngine
from repro.baselines.structured import StructuredStreamingEngine
from repro.baselines.wukong_ext import WukongExtEngine
from repro.bench.harness import (build_wukongs, feed_baseline, format_table,
                                 measure_baseline, measure_wukongs,
                                 median_of)
from repro.errors import UnsupportedOperationError
from repro.sim.cluster import Cluster
from repro.sparql.parser import parse_query

from common import L_QUERIES, PAPER_TABLE4, close_times, large_lsbench

#: This experiment needs a long absorbed history: Wukong/Ext's window
#: extraction cost grows with everything ever injected, which is exactly
#: the effect Table 4 quantifies.  (The paper's run had minutes of
#: 133K-tuple/s history behind each measurement.)
HISTORY_MS = 30_000
MEASURE_MS = 4_000


def run_experiment():
    bench = large_lsbench()
    queries = {name: bench.continuous_query(name) for name in L_QUERIES}
    closes = close_times(HISTORY_MS, step_ms=500,
                         warmup_ms=HISTORY_MS - MEASURE_MS)

    heron = feed_baseline(
        CompositeEngine(Cluster(num_nodes=8), framework="heron"),
        bench, HISTORY_MS)
    heron_lat = median_of(measure_baseline(
        heron, queries, closes,
        runner=lambda e, q, t: e.execute_continuous(q, t)[1].ms))

    structured = feed_baseline(StructuredStreamingEngine(), bench,
                               HISTORY_MS)
    structured_lat = {}
    for name, text in queries.items():
        query = parse_query(text)
        try:
            samples = [structured.execute_continuous(query, t)[1].ms
                       for t in closes]
            structured_lat[name] = sorted(samples)[len(samples) // 2]
        except UnsupportedOperationError:
            structured_lat[name] = float("nan")

    ext = feed_baseline(WukongExtEngine(Cluster(num_nodes=8)), bench,
                        HISTORY_MS)
    ext_lat = median_of(measure_baseline(
        ext, queries, closes,
        runner=lambda e, q, t: e.execute_continuous(q, t)[1].ms))

    wukongs = build_wukongs(bench, num_nodes=8, duration_ms=HISTORY_MS)
    wukongs_lat = median_of(measure_wukongs(
        wukongs, queries, HISTORY_MS,
        warmup_ms=HISTORY_MS - MEASURE_MS))

    return {"Wukong+S": wukongs_lat, "Heron+Wukong": heron_lat,
            "Structured Streaming": structured_lat, "Wukong/Ext": ext_lat}


def test_table4_more_systems(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for query in L_QUERIES:
        rows.append([query,
                     measured["Heron+Wukong"][query],
                     PAPER_TABLE4["Heron+Wukong"][query],
                     measured["Structured Streaming"][query],
                     PAPER_TABLE4["Structured Streaming"][query],
                     measured["Wukong/Ext"][query],
                     PAPER_TABLE4["Wukong/Ext"][query],
                     measured["Wukong+S"][query]])
    report(format_table(
        "Table 4: further systems, 8 nodes (ms)",
        ["Query", "Heron+W", "(paper)", "Structured", "(paper)", "W/Ext",
         "(paper)", "W+S here"],
        rows,
        note="'x' marks unsupported stream-stream joins, as in the paper"))

    # Structured Streaming cannot run the multi-stream queries.
    for query in ("L4", "L5", "L6"):
        assert measured["Structured Streaming"][query] != \
            measured["Structured Streaming"][query]  # NaN
    for query in ("L1", "L2", "L3"):
        assert measured["Structured Streaming"][query] > 0

    # Wukong+S beats Heron+Wukong on every query.
    for query in L_QUERIES:
        assert measured["Wukong+S"][query] < \
            measured["Heron+Wukong"][query], query
    # Against Wukong/Ext: strictly better on the heavy group-II queries
    # (where the stream index skips the scan of all absorbed history);
    # on group I both sit at the worker-dispatch floor, so the comparison
    # allows floor-level noise (a few microseconds).
    for query in ("L4", "L5", "L6"):
        assert measured["Wukong+S"][query] < \
            measured["Wukong/Ext"][query], query
    for query in ("L1", "L2", "L3"):
        assert measured["Wukong+S"][query] < \
            measured["Wukong/Ext"][query] + 0.005, query

    # The stream-index advantage is larger on the big group-II queries.
    gap = {q: measured["Wukong/Ext"][q] / measured["Wukong+S"][q]
           for q in L_QUERIES}
    assert max(gap[q] for q in ("L4", "L5", "L6")) > \
        min(gap[q] for q in ("L1", "L2", "L3"))
