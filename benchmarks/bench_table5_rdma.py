"""Table 5: the performance impact of RDMA on Wukong+S.

Re-runs L1-L6 on 8 nodes with the fabric in non-RDMA (TCP) mode, which
forces remote accesses onto kernel round trips.  Shape assertions follow
the paper: selective (group I) queries are insensitive — they complete
mostly within one node — while the distributed group-II queries slow down
by whole factors.
"""

from repro.bench.harness import (build_wukongs, format_table,
                                 measure_wukongs, median_of)
from repro.bench.metrics import geo_mean

from common import DURATION_MS, L_QUERIES, PAPER_TABLE5, large_lsbench


def run_experiment():
    bench = large_lsbench()
    queries = {name: bench.continuous_query(name) for name in L_QUERIES}
    out = {}
    for label, use_rdma in (("Wukong+S", True), ("Non-RDMA", False)):
        engine = build_wukongs(bench, num_nodes=8, duration_ms=DURATION_MS,
                               use_rdma=use_rdma)
        # Register after a short warmup so constant anchors that arrive on
        # the streams resolve and locality placement can route correctly.
        out[label] = median_of(measure_wukongs(engine, queries,
                                               DURATION_MS, warmup_ms=500))
    return out


def test_table5_rdma(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    slowdowns = {}
    for query in L_QUERIES:
        with_rdma = measured["Wukong+S"][query]
        without = measured["Non-RDMA"][query]
        slowdowns[query] = without / with_rdma
        paper_slow = (PAPER_TABLE5["Non-RDMA"][query]
                      / PAPER_TABLE5["Wukong+S"][query])
        rows.append([query, with_rdma, without,
                     f"{slowdowns[query]:.1f}X", f"{paper_slow:.1f}X"])
    rows.append(["Geo.M",
                 geo_mean(list(measured["Wukong+S"].values())),
                 geo_mean(list(measured["Non-RDMA"].values())),
                 f"{geo_mean(list(slowdowns.values())):.1f}X", "1.6X"])
    report(format_table(
        "Table 5: RDMA impact on Wukong+S, 8 nodes (ms)",
        ["Query", "RDMA", "Non-RDMA", "Slowdown", "(paper)"],
        rows))

    # Selective queries are insensitive to RDMA: they complete within one
    # node, touching no transfers at all (paper: 1.0-1.1X).
    for query in ("L1", "L2", "L3"):
        assert slowdowns[query] < 1.2, query
    # The distributed group-II queries slow down without RDMA because
    # their row migrations and gathers fall back to TCP (paper: 1.8-3.5X;
    # our smaller intermediates make the factor milder but still real).
    for query in ("L4", "L5", "L6"):
        assert slowdowns[query] > 1.1, query
    # Group I remains sub-millisecond even over TCP.
    for query in ("L1", "L2", "L3"):
        assert measured["Non-RDMA"][query] < 1.0, query
