"""Table 3: 8-node continuous-query latency on LSBench.

Wukong+S (8 simulated nodes) vs Storm+Wukong vs Spark Streaming.  Shape
assertions: the integrated design wins every query; Spark Streaming sits
orders of magnitude behind due to whole-table scans and mini-batch
scheduling.
"""

from repro.baselines.composite import CompositeEngine
from repro.baselines.spark import SparkStreamingEngine
from repro.bench.harness import (build_wukongs, feed_baseline, format_table,
                                 measure_baseline, measure_wukongs,
                                 median_of)
from repro.bench.metrics import geo_mean
from repro.sim.cluster import Cluster

from common import (DURATION_MS, L_QUERIES, PAPER_TABLE3, close_times,
                    large_lsbench)


def run_experiment():
    bench = large_lsbench()
    queries = {name: bench.continuous_query(name) for name in L_QUERIES}

    wukongs = build_wukongs(bench, num_nodes=8, duration_ms=DURATION_MS)
    wukongs_lat = median_of(measure_wukongs(wukongs, queries, DURATION_MS))

    composite = feed_baseline(CompositeEngine(Cluster(num_nodes=8)),
                              bench, DURATION_MS)
    composite_lat = median_of(measure_baseline(
        composite, queries, close_times(),
        runner=lambda e, q, t: e.execute_continuous(q, t)[1].ms))

    spark = feed_baseline(SparkStreamingEngine(), bench, DURATION_MS)
    spark_lat = median_of(measure_baseline(spark, queries, close_times()))

    return {"Wukong+S": wukongs_lat, "Storm+Wukong": composite_lat,
            "Spark Streaming": spark_lat}


def test_table3_cluster(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for query in L_QUERIES:
        rows.append([query,
                     measured["Wukong+S"][query],
                     PAPER_TABLE3["Wukong+S"][query],
                     measured["Storm+Wukong"][query],
                     PAPER_TABLE3["Storm+Wukong"][query],
                     measured["Spark Streaming"][query],
                     PAPER_TABLE3["Spark Streaming"][query]])
    rows.append(["Geo.M",
                 geo_mean(list(measured["Wukong+S"].values())), 0.46,
                 geo_mean(list(measured["Storm+Wukong"].values())), 6.29,
                 geo_mean(list(measured["Spark Streaming"].values())), 679])
    report(format_table(
        "Table 3: 8-node latency (ms), LSBench",
        ["Query", "W+S", "(paper)", "Storm+W", "(paper)", "Spark",
         "(paper)"],
        rows,
        note="paper scale: 3.75B triples; here: ~130K triples "
             "(DESIGN.md §5)"))

    for query in L_QUERIES:
        assert measured["Wukong+S"][query] < \
            measured["Storm+Wukong"][query], query
        assert measured["Storm+Wukong"][query] < \
            measured["Spark Streaming"][query], query
    for query in ("L1", "L2", "L3"):
        assert measured["Wukong+S"][query] < 1.0
    assert geo_mean(list(measured["Spark Streaming"].values())) > \
        100 * geo_mean(list(measured["Wukong+S"].values()))
