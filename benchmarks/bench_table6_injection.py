"""Table 6: data injection and indexing cost per 100 ms mini-batch.

Measures the per-batch injection pipeline (adapt + dispatch + insert) and
the stream-index build time for each of LSBench's five streams at their
default rates.  Shape assertions: the heaviest stream (PO-L at 86K/s
paper-scale) costs the most; indexing is a minor share of injection; GPS
(timing-only) builds no stream index at all.
"""

from repro.bench.harness import build_wukongs, format_table
from repro.bench.metrics import mean

from common import DURATION_MS, PAPER_TABLE6, large_lsbench

STREAMS = ("PO", "PO_L", "PH", "PH_L", "GPS")


def run_experiment():
    bench = large_lsbench()
    engine = build_wukongs(bench, num_nodes=8, duration_ms=DURATION_MS)
    engine.run_until(DURATION_MS)
    out = {}
    for stream in STREAMS:
        records = [r for r in engine.injection_records
                   if r.stream == stream and r.num_tuples > 0]
        out[stream] = {
            "injection": mean([r.injection_ms for r in records]),
            "indexing": mean([r.indexing_ms for r in records]),
            "total": mean([r.total_ms for r in records]),
            "tuples_per_batch": mean([r.num_tuples for r in records]),
        }
    return out


def test_table6_injection(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for stream in STREAMS:
        stats = measured[stream]
        rows.append([stream,
                     stats["injection"],
                     PAPER_TABLE6["Injection"][stream],
                     stats["indexing"] if stats["indexing"] else None,
                     PAPER_TABLE6["Indexing"][stream],
                     stats["total"],
                     f"{stats['tuples_per_batch']:.0f}"])
    report(format_table(
        "Table 6: injection + indexing cost per 100 ms mini-batch (ms)",
        ["Stream", "Inject", "(paper)", "Index", "(paper)", "Total",
         "tuples/batch"],
        rows,
        note="GPS is timing-only: no stream index is built (paper "
             "Table 7 shows '-' for it)"))

    # The heaviest stream costs the most to inject.
    assert measured["PO_L"]["injection"] == max(
        measured[s]["injection"] for s in STREAMS)
    # Indexing is a minority share of the injection pipeline.
    for stream in ("PO", "PO_L", "PH", "PH_L"):
        assert 0 < measured[stream]["indexing"] < \
            measured[stream]["injection"], stream
    # GPS builds no stream index.
    assert measured["GPS"]["indexing"] == 0.0
    # Injection stays well below the 100 ms batch interval (keeps up).
    for stream in STREAMS:
        assert measured[stream]["total"] < 100.0, stream
