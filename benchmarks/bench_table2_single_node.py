"""Table 2: single-node continuous-query latency on LSBench.

Compares Wukong+S, Storm+Wukong (composite) and CSPARQL-engine on L1-L6,
printing medians beside the paper's numbers.  Shape assertions: Wukong+S
beats the composite on every query; CSPARQL-engine is orders of magnitude
behind both; group (I) queries stay sub-millisecond on Wukong+S.
"""

from repro.baselines.composite import CompositeEngine
from repro.baselines.csparql_engine import CSparqlEngine
from repro.bench.harness import (build_wukongs, feed_baseline, format_table,
                                 measure_baseline, measure_wukongs,
                                 median_of)
from repro.bench.metrics import geo_mean
from repro.sim.cluster import Cluster

from common import (DURATION_MS, L_QUERIES, PAPER_TABLE2, close_times,
                    small_lsbench)


def run_experiment():
    bench = small_lsbench()
    queries = {name: bench.continuous_query(name) for name in L_QUERIES}

    wukongs = build_wukongs(bench, num_nodes=1, duration_ms=DURATION_MS)
    wukongs_lat = median_of(measure_wukongs(wukongs, queries, DURATION_MS))

    composite = feed_baseline(CompositeEngine(Cluster(num_nodes=1)),
                              bench, DURATION_MS)
    composite_lat = median_of(measure_baseline(
        composite, queries, close_times(),
        runner=lambda e, q, t: e.execute_continuous(q, t)[1].ms))

    csparql = feed_baseline(CSparqlEngine(), bench, DURATION_MS)
    csparql_lat = median_of(measure_baseline(csparql, queries,
                                             close_times()))

    return {"Wukong+S": wukongs_lat, "Storm+Wukong": composite_lat,
            "CSPARQL-engine": csparql_lat}


def test_table2_single_node(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for query in L_QUERIES:
        rows.append([query,
                     measured["Wukong+S"][query],
                     PAPER_TABLE2["Wukong+S"][query],
                     measured["Storm+Wukong"][query],
                     PAPER_TABLE2["Storm+Wukong"][query],
                     measured["CSPARQL-engine"][query],
                     PAPER_TABLE2["CSPARQL-engine"][query]])
    rows.append(["Geo.M",
                 geo_mean(list(measured["Wukong+S"].values())),
                 0.48,
                 geo_mean(list(measured["Storm+Wukong"].values())),
                 5.91,
                 geo_mean(list(measured["CSPARQL-engine"].values())),
                 757])
    report(format_table(
        "Table 2: single-node latency (ms), LSBench",
        ["Query", "W+S", "(paper)", "Storm+W", "(paper)", "CSPARQL",
         "(paper)"],
        rows,
        note="paper scale: 118M triples / 133K tuples-s; "
             "here: ~33K triples / ~1.3K tuples-s (DESIGN.md §5)"))

    for query in L_QUERIES:
        assert measured["Wukong+S"][query] < \
            measured["Storm+Wukong"][query], query
        assert measured["Storm+Wukong"][query] < \
            measured["CSPARQL-engine"][query], query
    # Group (I) stays sub-millisecond on the integrated design.
    for query in ("L1", "L2", "L3"):
        assert measured["Wukong+S"][query] < 1.0
    # CSPARQL-engine is orders of magnitude behind Wukong+S.
    assert geo_mean(list(measured["CSPARQL-engine"].values())) > \
        100 * geo_mean(list(measured["Wukong+S"].values()))
