"""Fig. 14: throughput and latency CDF for the L1-L3 mixed workload.

Emulated clients register randomized instances of the three selective
query classes; throughput follows the paper's worker model (each execution
occupies one worker for its latency; the class mix follows reciprocal
latency).  Shape assertions: throughput scales with the cluster (>= 3X
from 2 to 8 nodes), reaches a high rate on 8 nodes, and the median mixture
latency stays sub-millisecond.
"""

from repro.bench.harness import format_table
from repro.bench.metrics import cdf_points
from repro.bench.workload import run_mixed_workload

from common import PAPER_FIG14, large_lsbench

NODE_COUNTS = (2, 4, 6, 8)
DURATION_MS = 3_000


def run_experiment():
    bench = large_lsbench()
    return {nodes: run_mixed_workload(bench, ["L1", "L2", "L3"], nodes,
                                      duration_ms=DURATION_MS)
            for nodes in NODE_COUNTS}


def test_fig14_throughput_mix3(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for nodes in NODE_COUNTS:
        result = measured[nodes]
        rows.append([f"{nodes} nodes",
                     f"{result.throughput_qps / 1e6:.2f}M",
                     result.mixture_mean_latency_ms,
                     result.latency_percentile_ms(50),
                     result.latency_percentile_ms(99),
                     f"{PAPER_FIG14.get(nodes, 0) / 1e6:.2f}M"
                     if nodes in PAPER_FIG14 else "-"])
    report(format_table(
        "Fig. 14: mixed L1-L3 workload throughput",
        ["Cluster", "Throughput", "mean ms", "p50 ms", "p99 ms",
         "(paper tput)"],
        rows,
        note="paper: 1.08M q/s on 8 nodes (p50 0.11 ms, p99 0.90 ms)"))

    from repro.bench.plots import cdf_chart, line_chart
    report(line_chart(
        {"throughput": [(n, measured[n].throughput_qps / 1e6)
                        for n in NODE_COUNTS]},
        title="Fig. 14a", x_label="nodes", y_label="M queries/s"))
    report(cdf_chart(
        {name: measured[8].class_cdf(name) for name in ("L1", "L2", "L3")},
        title="Fig. 14b: latency CDF on 8 nodes"))

    # CDF sample of the dominant class on 8 nodes (Fig. 14b).
    cdf = measured[8].class_cdf("L1")
    assert cdf[0][1] > 0 and abs(cdf[-1][1] - 1.0) < 1e-9

    # Throughput scales with the cluster.
    scale = measured[8].throughput_qps / measured[2].throughput_qps
    assert scale > 3.0
    # Median latency under peak load stays sub-millisecond.
    assert measured[8].latency_percentile_ms(50) < 1.0
    # 8-node throughput reaches at least the paper's order of magnitude.
    assert measured[8].throughput_qps > 500_000
