"""Benchmark configuration: shared fixtures and import path."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture
def report(capsys):
    """Print an experiment table to the real terminal (and the tee'd log),
    bypassing pytest's capture so tables always appear in bench output."""
    def _report(text):
        with capsys.disabled():
            print("\n" + text, flush=True)
    return _report
