"""Table 8: one-shot query performance over the evolving store.

Compares three configurations on S1-S6, as §6.9 does:

* **Wukong** — the static base store, no streams attached;
* **Wukong+S/Off** — streams enabled and absorbing (snapshot-bounded
  reads), but no continuous queries running;
* **Wukong+S/On** — additionally serving continuous queries at the same
  time (worker contention on the shared store).

Shape assertions: the overhead of streaming is small (/Off within ~15% of
static) and contention adds a little more (/On >= /Off), preserving
Wukong's base performance.
"""

from repro.bench.harness import build_wukongs, format_table
from repro.bench.metrics import geo_mean, median
from repro.core.engine import EngineConfig, WukongSEngine

from common import PAPER_TABLE8, S_QUERIES, large_lsbench

DURATION_MS = 3_000
RUNS = 20


def run_experiment():
    bench = large_lsbench()
    queries = {name: bench.oneshot_query(name) for name in S_QUERIES}
    out = {}

    # Static Wukong: same store, no streams ever ingested.
    static = WukongSEngine(schemas=bench.schemas(), config=EngineConfig(
        num_nodes=8))
    static.load_static(bench.static_triples())
    out["Wukong"] = _measure(static, queries)

    # Wukong+S with streams absorbed, one-shot engine only.  The paper's
    # stored dataset (3.75B) dwarfs what its streams absorb during a run;
    # the reduced rate keeps the same stored:absorbed proportion here.
    off = build_wukongs(bench, num_nodes=8, duration_ms=DURATION_MS,
                        rate_scale=0.005)
    off.run_until(DURATION_MS)
    out["Wukong+S/Off"] = _measure(off, queries)

    # Wukong+S additionally running continuous queries.
    on = build_wukongs(bench, num_nodes=8, duration_ms=DURATION_MS,
                       rate_scale=0.005)
    for name in ("L1", "L3", "L5"):
        on.register_continuous(bench.continuous_query(name))
    on.run_until(DURATION_MS)
    out["Wukong+S/On"] = _measure(on, queries)
    return out


def _measure(engine, queries):
    medians = {}
    for name, text in queries.items():
        samples = [engine.oneshot(text, home_node=run % 8).latency_ms
                   for run in range(RUNS)]
        medians[name] = median(samples)
    return medians


def test_table8_oneshot(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for query in S_QUERIES:
        rows.append([query,
                     measured["Wukong"][query],
                     PAPER_TABLE8["Wukong"][query],
                     measured["Wukong+S/Off"][query],
                     PAPER_TABLE8["Wukong+S/Off"][query],
                     measured["Wukong+S/On"][query],
                     PAPER_TABLE8["Wukong+S/On"][query]])
    rows.append(["Geo.M",
                 geo_mean(list(measured["Wukong"].values())), 1.77,
                 geo_mean(list(measured["Wukong+S/Off"].values())), 1.83,
                 geo_mean(list(measured["Wukong+S/On"].values())), 1.93])
    report(format_table(
        "Table 8: one-shot latency (ms), 8 nodes",
        ["Query", "Wukong", "(paper)", "W+S/Off", "(paper)", "W+S/On",
         "(paper)"],
        rows))

    geo_static = geo_mean(list(measured["Wukong"].values()))
    geo_off = geo_mean(list(measured["Wukong+S/Off"].values()))
    geo_on = geo_mean(list(measured["Wukong+S/On"].values()))
    # Streams cost little; contention costs a little more.
    assert geo_off < 1.5 * geo_static
    assert geo_on > geo_off
    assert geo_on < 1.5 * geo_off
