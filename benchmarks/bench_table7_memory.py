"""Table 7: memory usage of raw streaming data vs the stream index.

Runs LSBench for one simulated minute-equivalent and compares, per stream,
the raw bytes that arrived against the bytes held by (replica-weighted)
stream indexes.  Shape assertions: the index is a small fraction of the
raw data overall; the like streams (many entries appended to few keys ->
coalesced spans) have much smaller index ratios than the post streams
(each post is a fresh key); GPS, being timing-only, has no index at all.
"""

from repro.bench.harness import build_wukongs, format_table

from common import PAPER_TABLE7, large_lsbench

STREAMS = ("PO", "PO_L", "PH", "PH_L", "GPS")
DURATION_MS = 6_000


def run_experiment():
    bench = large_lsbench()
    engine = build_wukongs(bench, num_nodes=8, duration_ms=DURATION_MS)
    # Register one consumer per indexed stream so each index has exactly
    # one replica, then keep GC off the measurement horizon.
    engine.config.gc_every_ticks = 0
    for name in ("L1", "L3", "L6"):
        engine.register_continuous(bench.continuous_query(name))
    engine.run_until(DURATION_MS)
    out = {}
    for stream in STREAMS:
        out[stream] = {
            "data": engine.raw_stream_bytes(stream),
            "index": engine.stream_index_bytes(stream),
        }
    return out


def test_table7_memory(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    total_data = total_index = 0
    for stream in STREAMS:
        data = measured[stream]["data"]
        index = measured[stream]["index"]
        total_data += data
        total_index += index
        ratio = f"{index / data:.1%}" if data and index else "-"
        paper_ratio = "-"
        if PAPER_TABLE7["index"][stream] is not None:
            paper_ratio = (f"{PAPER_TABLE7['index'][stream] / PAPER_TABLE7['data'][stream]:.1%}")
        rows.append([stream, data / 1024.0,
                     (index / 1024.0) if index else None, ratio,
                     paper_ratio])
    rows.append(["Total", total_data / 1024.0, total_index / 1024.0,
                 f"{total_index / total_data:.1%}", "9.5%"])
    report(format_table(
        "Table 7: raw stream data vs stream index (KiB over the run)",
        ["Stream", "data KiB", "index KiB", "ratio", "(paper ratio)"],
        rows,
        note="paper reports MB/min at full rate; ratios are the "
             "comparable shape"))

    # GPS (timing-only) has no stream index.
    assert measured["GPS"]["index"] == 0
    # The index is much smaller than the raw data overall.
    assert total_index < 0.6 * total_data
    # Like streams coalesce into fewer index entries per byte than post
    # streams (the paper's PO 46.3% vs PO-L 1.6% contrast).
    po_ratio = measured["PO"]["index"] / measured["PO"]["data"]
    pol_ratio = measured["PO_L"]["index"] / measured["PO_L"]["data"]
    assert pol_ratio < po_ratio
