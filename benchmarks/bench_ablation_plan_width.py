"""Ablation (§4.3): the SN-plan width — staleness vs injection flexibility.

The width of each SN->VTS mapping is the paper's explicit trade-off knob:
width 1 keeps one-shot results freshest but serializes injection across
streams; larger widths let unbalanced injectors run ahead while one-shot
queries read staler snapshots.  This ablation sweeps the width and
measures, at the end of the run, how many already-inserted batches the
stable snapshot lags behind (staleness) and how many live SN segments the
store carries (the memory side of bounded scalarization).
"""

from repro.bench.harness import build_wukongs, format_table

from common import large_lsbench

WIDTHS = (1, 2, 4, 8)
DURATION_MS = 3_000


def run_experiment():
    bench = large_lsbench()
    out = {}
    for width in WIDTHS:
        engine = build_wukongs(bench, num_nodes=4, duration_ms=DURATION_MS)
        engine.coordinator.plan_width = width
        engine.run_until(DURATION_MS)
        stable_vts = engine.coordinator.stable_vts()
        plan = engine.coordinator.plan
        stable_sn = engine.coordinator.stable_sn
        covered = plan.requirement_for(stable_sn) if stable_sn else \
            {s: 0 for s in plan.streams}
        staleness = {stream: stable_vts.get(stream) - covered[stream]
                     for stream in plan.streams}
        segments = sum(
            values.distinct_sns()
            for shard in engine.store.shards
            for values in shard._values.values())
        keys = sum(shard.num_keys for shard in engine.store.shards)
        out[width] = {
            "staleness_batches": max(staleness.values()),
            "segments_per_key": segments / max(1, keys),
            "stable_sn": stable_sn,
        }
    return out


def test_ablation_plan_width(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [[f"width {w}",
             measured[w]["stable_sn"],
             measured[w]["staleness_batches"],
             f"{measured[w]['segments_per_key']:.3f}"]
            for w in WIDTHS]
    report(format_table(
        "Ablation: SN-plan width (staleness vs flexibility)",
        ["Plan width", "stable SN", "stale batches", "SN segs/key"],
        rows,
        note="wider mappings admit more batches per snapshot: fewer "
             "snapshots, more stale batches behind the readable one"))

    # Wider plans leave more inserted-but-unreadable batches...
    assert measured[8]["staleness_batches"] >= \
        measured[1]["staleness_batches"]
    # ...and advance through fewer snapshot numbers.
    assert measured[8]["stable_sn"] < measured[1]["stable_sn"]
    # Bounded scalarization keeps live segments per key small throughout.
    for width in WIDTHS:
        assert measured[width]["segments_per_key"] < 3.0
