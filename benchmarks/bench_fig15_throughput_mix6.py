"""Fig. 15: throughput and latency CDF for the full L1-L6 mixed workload.

Like Fig. 14 but mixing all six classes, including the heavy group-II
queries.  Shape assertions: throughput is below the L1-L3 mix (heavier
queries), scales super-linearly with nodes (group-II latency shrinks on
bigger clusters, as §6.6 observes), and the group-II classes dominate the
tail.
"""

from repro.bench.harness import format_table
from repro.bench.metrics import mean
from repro.bench.workload import run_mixed_workload

from common import PAPER_FIG15, large_lsbench

NODE_COUNTS = (2, 4, 6, 8)
DURATION_MS = 3_000


def run_experiment():
    bench = large_lsbench()
    return {nodes: run_mixed_workload(
                bench, ["L1", "L2", "L3", "L4", "L5", "L6"], nodes,
                duration_ms=DURATION_MS, variants_per_class=2)
            for nodes in NODE_COUNTS}


def test_fig15_throughput_mix6(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for nodes in NODE_COUNTS:
        result = measured[nodes]
        rows.append([f"{nodes} nodes",
                     f"{result.throughput_qps / 1e3:.0f}K",
                     result.mixture_mean_latency_ms,
                     result.latency_percentile_ms(50),
                     result.latency_percentile_ms(99),
                     f"{PAPER_FIG15.get(nodes, 0) / 1e3:.0f}K"
                     if nodes in PAPER_FIG15 else "-"])
    report(format_table(
        "Fig. 15: mixed L1-L6 workload throughput",
        ["Cluster", "Throughput", "mean ms", "p50 ms", "p99 ms",
         "(paper tput)"],
        rows,
        note="paper: 802K q/s on 8 nodes; scaling 5.0X from 2 nodes "
             "(super-linear: group-II latency drops with cluster size)"))

    from repro.bench.plots import cdf_chart, line_chart
    report(line_chart(
        {"throughput": [(n, measured[n].throughput_qps / 1e3)
                        for n in NODE_COUNTS]},
        title="Fig. 15a", x_label="nodes", y_label="K queries/s"))
    report(cdf_chart(
        {name: measured[8].class_cdf(name)
         for name in ("L1", "L4", "L5", "L6")},
        title="Fig. 15b: latency CDF on 8 nodes"))

    # Mixing in group II lowers throughput vs the L1-L3 mix would give.
    eight = measured[8]
    assert eight.throughput_qps < 5_000_000

    # Throughput scales with cluster size.
    scale = eight.throughput_qps / measured[2].throughput_qps
    assert scale > 2.0

    # Group-II classes are the slow tail of the mixture.
    group1 = mean([mean(eight.per_class_latencies_ms[c])
                   for c in ("L1", "L2", "L3")])
    group2 = mean([mean(eight.per_class_latencies_ms[c])
                   for c in ("L4", "L5", "L6")])
    assert group2 > group1
