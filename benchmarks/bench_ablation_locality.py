"""Ablation (§4.2 + §5): locality-aware placement and index replication.

Two design choices make selective continuous queries single-node:

* the query is *placed on the node owning its constant start vertex*, so
  its window value reads stay local (in-place execution, §5);
* the stream index is *replicated to the consuming query's node* rather
  than partitioned with the data, saving one remote read per probe (§4.2).

This ablation runs the same selective query (L2) three ways — full design,
wrong placement, wrong placement without an index replica — and reports
the latency penalty of removing each choice.
"""

from repro.bench.harness import build_wukongs, format_table
from repro.bench.metrics import median

from common import large_lsbench

DURATION_MS = 3_000


def _run(engine, text, home_node=None, drop_replicas=False):
    handle = engine.register_continuous(text, home_node=home_node)
    if drop_replicas:
        for stream in handle.query.windows:
            engine.registry.drop_interest(stream, handle.home_node)
    engine.run_until(DURATION_MS)
    return handle, median([rec.latency_ms for rec in handle.executions])


def run_experiment():
    bench = large_lsbench()
    # L1 anchored on the most active user: its window really carries data,
    # so misplacement turns every span read into a remote one.
    text = bench.continuous_query("L1", start_user=0)
    out = {}

    # Full design: locality placement + replicated index.
    engine = build_wukongs(bench, num_nodes=8, duration_ms=DURATION_MS)
    handle, out["full design"] = _run(engine, text)
    natural_home = handle.home_node

    # No locality placement: the query lands on the "wrong" node; window
    # value reads cross the network (index still replicated there).
    engine = build_wukongs(bench, num_nodes=8, duration_ms=DURATION_MS)
    _, out["no locality placement"] = _run(
        engine, text, home_node=(natural_home + 1) % 8)

    # Additionally without an index replica on that node: every index
    # probe pays one more remote read.
    engine = build_wukongs(bench, num_nodes=8, duration_ms=DURATION_MS)
    _, out["no index replica"] = _run(
        engine, text, home_node=(natural_home + 1) % 8, drop_replicas=True)
    return out


def test_ablation_locality(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    baseline = measured["full design"]
    rows = [[label, value, f"{value / baseline:.2f}X"]
            for label, value in measured.items()]
    report(format_table(
        "Ablation: locality-aware placement + index replication (hot L1, ms)",
        ["Configuration", "median ms", "vs full"],
        rows))

    assert measured["full design"] <= measured["no locality placement"]
    assert measured["no locality placement"] < measured["no index replica"]
