"""Table 9: CityBench continuous queries on a single node.

Wukong+S vs Storm+Wukong vs Spark Streaming on C1-C11 with the default
(paper) stream rates and 3s/1s windows.  Shape assertions: Wukong+S is
sub-millisecond-scale and beats the composite on every stored-data query;
the composite's win shrinks to nothing on the stream-only queries (C10,
C11, where the paper shows 1.18/0.17 ms); Spark Streaming is orders of
magnitude behind.
"""

from repro.baselines.composite import CompositeEngine
from repro.baselines.spark import SparkStreamingEngine
from repro.bench.harness import (build_wukongs, feed_baseline, format_table,
                                 measure_baseline, measure_wukongs,
                                 median_of)
from repro.bench.metrics import geo_mean
from repro.sim.cluster import Cluster

from common import C_QUERIES, PAPER_TABLE9, default_citybench

DURATION_MS = 12_000
BATCH_INTERVAL_MS = 1_000


def run_experiment():
    bench = default_citybench()
    queries = {name: bench.continuous_query(name) for name in C_QUERIES}
    closes = list(range(6_000, DURATION_MS + 1, 1_000))

    wukongs = build_wukongs(bench, num_nodes=1, duration_ms=DURATION_MS,
                            batch_interval_ms=BATCH_INTERVAL_MS)
    wukongs_lat = median_of(measure_wukongs(wukongs, queries, DURATION_MS))

    composite = feed_baseline(CompositeEngine(Cluster(num_nodes=1)),
                              bench, DURATION_MS,
                              batch_interval_ms=BATCH_INTERVAL_MS)
    composite_lat = median_of(measure_baseline(
        composite, queries, closes,
        runner=lambda e, q, t: e.execute_continuous(q, t)[1].ms))

    spark = feed_baseline(SparkStreamingEngine(), bench, DURATION_MS,
                          batch_interval_ms=BATCH_INTERVAL_MS)
    spark_lat = median_of(measure_baseline(spark, queries, closes))

    return {"Wukong+S": wukongs_lat, "Storm+Wukong": composite_lat,
            "Spark Streaming": spark_lat}


def test_table9_citybench(benchmark, report):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for query in C_QUERIES:
        rows.append([query,
                     measured["Wukong+S"][query],
                     PAPER_TABLE9["Wukong+S"][query],
                     measured["Storm+Wukong"][query],
                     PAPER_TABLE9["Storm+Wukong"][query],
                     measured["Spark Streaming"][query],
                     PAPER_TABLE9["Spark Streaming"][query]])
    rows.append(["Geo.M",
                 geo_mean(list(measured["Wukong+S"].values())), 0.41,
                 geo_mean(list(measured["Storm+Wukong"].values())), 2.21,
                 geo_mean(list(measured["Spark Streaming"].values())), 766])
    report(format_table(
        "Table 9: CityBench latency (ms), single node",
        ["Query", "W+S", "(paper)", "Storm+W", "(paper)", "Spark",
         "(paper)"],
        rows,
        note="default (paper) stream rates; windows RANGE 3s STEP 1s"))

    # Wukong+S wins every query against the composite design.
    for query in C_QUERIES:
        assert measured["Wukong+S"][query] <= \
            measured["Storm+Wukong"][query], query
        assert measured["Storm+Wukong"][query] < \
            measured["Spark Streaming"][query], query
    # Wukong+S stays in the sub-millisecond regime overall.
    assert geo_mean(list(measured["Wukong+S"].values())) < 1.0
    # The composite gap collapses on the stream-only queries (C10/C11).
    gap = {q: measured["Storm+Wukong"][q] / measured["Wukong+S"][q]
           for q in C_QUERIES}
    assert gap["C11"] < max(gap[q] for q in C_QUERIES if q not in
                            ("C10", "C11"))
