"""Stream schemas and batches.

A stream carries timed tuples; its *schema* declares which predicates are
**timing** data (meaningful only within a window, swept after expiry — e.g.
GPS positions) and which are **timeless** (facts to be absorbed into the
knowledge base — e.g. posts and likes).  The Adaptor uses this
classification to route tuples to the transient store or the persistent
store (§4.1).

Batches follow the paper's mini-batch model: the Adaptor groups tuples by
fixed time intervals; batch *k* (1-based) of a stream covers source
timestamps in ``[start + (k-1)*interval, start + k*interval)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Tuple

from repro.errors import StreamError
from repro.rdf.terms import TimedTuple


@dataclass(frozen=True)
class StreamSchema:
    """Static description of one stream.

    Attributes
    ----------
    name:
        Stream name as referenced by ``FROM``/``GRAPH`` clauses.
    timing_predicates:
        Predicates whose tuples are timing data (transient store); all
        other predicates are timeless (persistent store + stream index).
    """

    name: str
    timing_predicates: FrozenSet[str] = frozenset()

    def is_timing(self, predicate: str) -> bool:
        return predicate in self.timing_predicates


@dataclass
class StreamBatch:
    """One mini-batch of a stream: all tuples of one time interval."""

    stream: str
    batch_no: int
    start_ms: int
    end_ms: int
    tuples: List[TimedTuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.batch_no < 1:
            raise StreamError(f"batch numbers are 1-based, got {self.batch_no}")
        if self.end_ms <= self.start_ms:
            raise StreamError(
                f"empty batch interval: [{self.start_ms}, {self.end_ms})")
        for tup in self.tuples:
            self._check_tuple(tup)

    def _check_tuple(self, tup: TimedTuple) -> None:
        if not self.start_ms <= tup.timestamp_ms < self.end_ms:
            raise StreamError(
                f"tuple {tup} outside batch interval "
                f"[{self.start_ms}, {self.end_ms})")

    def add(self, tup: TimedTuple) -> None:
        self._check_tuple(tup)
        self.tuples.append(tup)

    def __len__(self) -> int:
        return len(self.tuples)

    def split(self, schema: StreamSchema
              ) -> Tuple[List[TimedTuple], List[TimedTuple]]:
        """Partition tuples into (timeless, timing) per the schema."""
        timeless: List[TimedTuple] = []
        timing: List[TimedTuple] = []
        for tup in self.tuples:
            if schema.is_timing(tup.triple.predicate):
                timing.append(tup)
            else:
                timeless.append(tup)
        return timeless, timing


def batch_tuples(stream: str, tuples: Iterable[TimedTuple], start_ms: int,
                 interval_ms: int) -> List[StreamBatch]:
    """Group timestamp-ordered tuples into consecutive batches.

    Produces every batch from #1 up to the batch containing the last tuple
    (intermediate empty batches included, so batch numbering always tracks
    time).  Raises on out-of-order timestamps: C-SPARQL's time model
    assumes monotonically non-decreasing timestamps per stream.
    """
    if interval_ms <= 0:
        raise StreamError(f"batch interval must be positive: {interval_ms}")
    batches: List[StreamBatch] = []

    def batch_for(no: int) -> StreamBatch:
        while len(batches) < no:
            k = len(batches) + 1
            batches.append(StreamBatch(
                stream=stream, batch_no=k,
                start_ms=start_ms + (k - 1) * interval_ms,
                end_ms=start_ms + k * interval_ms))
        return batches[no - 1]

    previous_ms = None
    for tup in tuples:
        if tup.timestamp_ms < start_ms:
            raise StreamError(
                f"tuple {tup} precedes stream start {start_ms}")
        if previous_ms is not None and tup.timestamp_ms < previous_ms:
            raise StreamError(
                f"out-of-order timestamp: {tup.timestamp_ms} after "
                f"{previous_ms} (stream {stream})")
        previous_ms = tup.timestamp_ms
        number = (tup.timestamp_ms - start_ms) // interval_ms + 1
        batch_for(number).add(tup)
    return batches
