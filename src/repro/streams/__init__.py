"""Stream abstractions: schemas, batches, replayable sources and window math."""

from repro.streams.stream import StreamSchema, StreamBatch
from repro.streams.source import StreamSource
from repro.streams.window import WindowPlanner

__all__ = [
    "StreamSchema",
    "StreamBatch",
    "StreamSource",
    "WindowPlanner",
]
