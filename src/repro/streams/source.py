"""Replayable stream sources (upstream backup).

The paper's fault-tolerance story assumes *upstream backup*: sources buffer
recently sent batches and replay them on request after a failure (§5).  A
:class:`StreamSource` wraps a batch supply with exactly that contract: the
engine acknowledges batches once they are covered by a durable checkpoint,
the source trims its buffer up to the acknowledgement, and replay
re-delivers everything still buffered after a given batch number.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterable, Iterator, List, Optional

from repro.errors import StreamError
from repro.rdf.terms import TimedTuple
from repro.streams.stream import StreamBatch, StreamSchema, batch_tuples


class StreamSource:
    """One stream's producer with an upstream-backup buffer.

    Parameters
    ----------
    schema:
        The stream's schema (name + timing predicates).
    batches:
        The batch supply, typically from
        :func:`repro.streams.stream.batch_tuples` or a workload generator.
    """

    def __init__(self, schema: StreamSchema,
                 batches: Iterable[StreamBatch] = ()):
        self.schema = schema
        self._pending: Deque[StreamBatch] = deque()
        self._backup: List[StreamBatch] = []
        self._acked_through = 0
        self._last_queued = 0
        for batch in batches:
            self.queue(batch)

    # -- producing -------------------------------------------------------
    def queue(self, batch: StreamBatch) -> None:
        """Append one batch to the supply (must arrive in order)."""
        if batch.stream != self.schema.name:
            raise StreamError(
                f"batch for {batch.stream!r} queued on stream "
                f"{self.schema.name!r}")
        if batch.batch_no != self._last_queued + 1:
            raise StreamError(
                f"batches must be queued in order: got #{batch.batch_no} "
                f"after #{self._last_queued}")
        self._last_queued = batch.batch_no
        self._pending.append(batch)

    def queue_tuples(self, tuples: Iterable[TimedTuple], start_ms: int,
                     interval_ms: int) -> int:
        """Batch raw tuples and queue them; returns the number of batches."""
        batches = batch_tuples(self.schema.name, tuples, start_ms, interval_ms)
        for batch in batches:
            self.queue(batch)
        return len(batches)

    # -- consuming ---------------------------------------------------------
    def next_batch(self) -> Optional[StreamBatch]:
        """Deliver the next batch (also retained in the backup buffer)."""
        if not self._pending:
            return None
        batch = self._pending.popleft()
        self._backup.append(batch)
        return batch

    def drain(self) -> Iterator[StreamBatch]:
        """Deliver every remaining batch."""
        while True:
            batch = self.next_batch()
            if batch is None:
                return
            yield batch

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    # -- upstream backup ------------------------------------------------------
    def ack(self, batch_no: int) -> None:
        """Durable-checkpoint acknowledgement: trim backup through ``batch_no``."""
        if batch_no < self._acked_through:
            raise StreamError(
                f"acknowledgements must not regress: {batch_no} < "
                f"{self._acked_through}")
        self._acked_through = batch_no
        self._backup = [b for b in self._backup if b.batch_no > batch_no]

    def replay(self, after_batch_no: int) -> List[StreamBatch]:
        """Batches delivered but newer than ``after_batch_no`` (for recovery).

        Raises if the request reaches below the acknowledged (trimmed)
        prefix: such data is gone by contract and must come from a
        checkpoint instead.
        """
        if after_batch_no < self._acked_through:
            raise StreamError(
                f"cannot replay from #{after_batch_no + 1}: batches through "
                f"#{self._acked_through} were acknowledged and trimmed")
        return [b for b in self._backup if b.batch_no > after_batch_no]

    @property
    def backup_size(self) -> int:
        return len(self._backup)

    @property
    def acked_through(self) -> int:
        """Highest batch number acknowledged (and trimmed from backup)."""
        return self._acked_through
