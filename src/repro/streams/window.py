"""Window arithmetic for continuous queries.

A continuous query declares, per stream, a window ``[RANGE r STEP s]``.
The engine is *data-driven* (§4.3): an execution closing at time ``t``
needs every stream batch whose interval ends at or before ``t``, and reads
tuples with timestamps in ``[t - r, t)``.  The :class:`WindowPlanner` does
the bookkeeping that converts between execution times and batch numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import StreamError
from repro.sparql.ast import WindowSpec


@dataclass(frozen=True)
class WindowPlanner:
    """Batch/window math for one stream consumed by one query.

    Parameters
    ----------
    window:
        The query's window over this stream.
    batch_interval_ms:
        The Adaptor's mini-batch interval for the stream.
    stream_start_ms:
        Timestamp at which the stream's batch #1 opens.
    """

    window: WindowSpec
    batch_interval_ms: int
    stream_start_ms: int = 0

    def __post_init__(self) -> None:
        if self.batch_interval_ms <= 0:
            raise StreamError(
                f"batch interval must be positive: {self.batch_interval_ms}")
        if self.window.step_ms % self.batch_interval_ms != 0:
            raise StreamError(
                f"window step {self.window.step_ms}ms must be a multiple of "
                f"the batch interval {self.batch_interval_ms}ms")

    def last_batch_needed(self, close_ms: int) -> int:
        """The highest batch number an execution closing at ``close_ms`` needs.

        Batch k covers ``[start+(k-1)*i, start+k*i)``; it is needed when its
        interval closes at or before ``close_ms``.
        """
        if close_ms < self.stream_start_ms:
            return 0
        return (close_ms - self.stream_start_ms) // self.batch_interval_ms

    def batch_range(self, close_ms: int) -> Tuple[int, int]:
        """Inclusive batch-number range ``(first, last)`` whose intervals
        overlap the window closing at ``close_ms`` (``first > last`` means
        the window is empty).

        Because the step is a whole number of batch intervals, consecutive
        closes slide both endpoints forward by ``step_ms /
        batch_interval_ms`` batches: each close drops that many expired
        batches from the front of the range and appends that many newly
        closed ones at the back.  The columnar window views
        (``core.stream_index.ColumnarSlice``) maintain their per-key
        columns incrementally off exactly this drop/extend delta.
        """
        window_start, window_end = self.window.span_at(close_ms)
        last = self.last_batch_needed(window_end)
        if window_start < self.stream_start_ms:
            first = 1
        else:
            first = (window_start - self.stream_start_ms) \
                // self.batch_interval_ms + 1
        return first, last

    def span_at(self, close_ms: int) -> Tuple[int, int]:
        """Tuple-timestamp interval ``[start, end)`` of the window closing
        at ``close_ms``."""
        return self.window.span_at(close_ms)


def next_execution_ms(registered_ms: int, step_ms: int, now_ms: int) -> int:
    """The first execution boundary at or after ``now_ms``.

    Executions fire at ``registered_ms + k*step_ms`` for k >= 1.
    """
    if now_ms <= registered_ms:
        return registered_ms + step_ms
    elapsed = now_ms - registered_ms
    k = (elapsed + step_ms - 1) // step_ms
    return registered_ms + max(1, k) * step_ms


def expiry_floor_ms(close_ms: int, windows: Dict[str, WindowSpec]) -> int:
    """The earliest timestamp any window closing at ``close_ms`` still needs.

    Data older than this is expired for these queries and may be garbage
    collected.
    """
    if not windows:
        return close_ms
    return min(close_ms - spec.range_ms for spec in windows.values())
