"""Tokenizer for the SPARQL / C-SPARQL subset.

Produces a flat token stream of words, variables, punctuation and
bracket/brace delimiters, with position information for error messages.
IRI angle brackets are stripped (``<X-Lab>`` tokenizes as the word
``X-Lab``); ``#`` comments run to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ParseError

#: Single-character punctuation tokens.
_PUNCT = "{}[].,()*"

#: Comparison operators (two-character forms matched first).
_TWO_CHAR_OPS = ("<=", ">=", "!=")
_ONE_CHAR_OPS = "<>=!"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    text: str
    line: int
    column: int

    @property
    def upper(self) -> str:
        return self.text.upper()


def tokenize(text: str) -> List[Token]:
    """Split query text into tokens.

    >>> [t.text for t in tokenize("SELECT ?X { ?X po T-13 . }")]
    ['SELECT', '?X', '{', '?X', 'po', 'T-13', '.', '}']
    """
    tokens: List[Token] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0]
        column = 0
        length = len(line)
        while column < length:
            char = line[column]
            if char.isspace():
                column += 1
                continue
            if char in _PUNCT:
                tokens.append(Token(char, lineno, column + 1))
                column += 1
                continue
            if char == "<" and _looks_like_iri(line, column):
                close = line.find(">", column)
                tokens.append(Token(line[column + 1:close], lineno, column + 1))
                column = close + 1
                continue
            if line[column:column + 2] in _TWO_CHAR_OPS:
                tokens.append(Token(line[column:column + 2], lineno,
                                    column + 1))
                column += 2
                continue
            if char in _ONE_CHAR_OPS:
                tokens.append(Token(char, lineno, column + 1))
                column += 1
                continue
            if char == '"':
                close = line.find('"', column + 1)
                if close == -1:
                    raise ParseError("unterminated string literal",
                                     line=lineno, column=column + 1)
                tokens.append(Token(line[column + 1:close], lineno, column + 1))
                column = close + 1
                continue
            start = column
            while (column < length and not line[column].isspace()
                   and line[column] not in _PUNCT
                   and line[column] not in _ONE_CHAR_OPS
                   and line[column] != '"'):
                column += 1
            tokens.append(Token(line[start:column], lineno, start + 1))
    return tokens


def _looks_like_iri(line: str, column: int) -> bool:
    """Whether a ``<`` at ``column`` opens an IRI (vs a comparison).

    IRIs contain no whitespace, so the closing ``>`` must appear before
    the next space.
    """
    close = line.find(">", column)
    if close == -1:
        return False
    return " " not in line[column:close] and "\t" not in line[column:close]


class TokenCursor:
    """Sequential reader over a token list with small lookahead helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._tokens)

    def peek(self, offset: int = 0) -> Token | None:
        """The token ``offset`` ahead, or None past the end."""
        index = self._pos + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def next(self) -> Token:
        """Consume and return the next token."""
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of query")
        self._pos += 1
        return token

    def expect(self, text: str) -> Token:
        """Consume the next token, requiring it to equal ``text`` (case-insensitive
        for keywords)."""
        token = self.next()
        if token.text != text and token.upper != text.upper():
            raise ParseError(
                f"expected {text!r}, found {token.text!r}",
                line=token.line, column=token.column)
        return token

    def accept(self, text: str) -> bool:
        """Consume the next token if it matches ``text``; return whether it did."""
        token = self.peek()
        if token is not None and (token.text == text or token.upper == text.upper()):
            self._pos += 1
            return True
        return False
