"""Shared evaluation of FILTER expressions and aggregates.

Both execution engines use these helpers — the graph explorer applies
filters as soon as their variables are bound (pruning mid-exploration) and
aggregates after projection; the relational baselines apply both after
their joins.  Keeping one implementation guarantees identical semantics,
which the cross-validation property tests rely on.

Values: terms are entity IDs internally; numeric comparisons and SUM/AVG
parse the entity *name* as a number (``95`` is numeric, ``Spots95`` is
not).  Rows whose operand is non-numeric fail ordering filters and are
skipped by numeric aggregates, following SPARQL's error-as-elimination
semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import PlanError
from repro.sparql.ast import Aggregate, FilterExpr, Query, is_variable

#: One variable-binding row (vids).
Row = Dict[str, int]

#: Resolves a vid back to its entity name.
NameOf = Callable[[int], str]

#: Resolves an entity name to its vid (None when unknown).
ResolveEntity = Callable[[str], Optional[int]]


def term_number(name: str) -> Optional[float]:
    """The numeric value of a term name, or None if it is not a number."""
    try:
        return float(name)
    except ValueError:
        return None


def _operand(term: str, row: Row, name_of: NameOf,
             resolve: ResolveEntity) -> Tuple[Optional[int], Optional[str]]:
    """Resolve one filter operand to ``(vid, name)`` under a row."""
    if is_variable(term):
        vid = row.get(term)
        if vid is None:
            raise PlanError(f"filter variable never bound: {term}")
        return vid, name_of(vid)
    return resolve(term), term


def filter_matches(expr: FilterExpr, row: Row, name_of: NameOf,
                   resolve: ResolveEntity) -> bool:
    """Whether one row satisfies one FILTER expression."""
    left_vid, left_name = _operand(expr.left, row, name_of, resolve)
    right_vid, right_name = _operand(expr.right, row, name_of, resolve)
    if expr.op == "=":
        if left_vid is not None and right_vid is not None:
            return left_vid == right_vid
        return left_name == right_name
    if expr.op == "!=":
        if left_vid is not None and right_vid is not None:
            return left_vid != right_vid
        return left_name != right_name
    left_num = term_number(left_name) if left_name is not None else None
    right_num = term_number(right_name) if right_name is not None else None
    if left_num is None or right_num is None:
        return False  # SPARQL: type errors eliminate the row
    if expr.op == "<":
        return left_num < right_num
    if expr.op == "<=":
        return left_num <= right_num
    if expr.op == ">":
        return left_num > right_num
    return left_num >= right_num


def apply_filters(rows: List[Row], filters: Sequence[FilterExpr],
                  name_of: NameOf, resolve: ResolveEntity,
                  meter=None, cost=None, strict: bool = True) -> List[Row]:
    """Keep the rows satisfying every filter.

    With ``strict=False``, a filter referencing a variable the row leaves
    unbound (an unmatched OPTIONAL) eliminates the row instead of raising
    — SPARQL's error-as-false semantics.
    """
    if not filters:
        return rows

    def matches(expr: FilterExpr, row: Row) -> bool:
        try:
            return filter_matches(expr, row, name_of, resolve)
        except PlanError:
            if strict:
                raise
            return False

    out = []
    for row in rows:
        if meter is not None and cost is not None:
            meter.charge(cost.filter_ns, times=len(filters),
                         category="filter")
        if all(matches(f, row) for f in filters):
            out.append(row)
    return out


def filters_by_step(query: Query, step_variables: Sequence[Set[str]]
                    ) -> Tuple[List[List[FilterExpr]], List[FilterExpr]]:
    """Assign each filter to the earliest step after which its variables
    are all bound (enabling mid-exploration pruning).

    ``step_variables[i]`` is the set of variables bound after step ``i``.
    Returns ``(per-step assignments, leftovers)``; leftovers reference
    variables only OPTIONAL groups bind and must run after those resolve.
    Raises when a filter references a variable the query never binds at
    all.
    """
    all_bound = set(query.variables())
    assignments: List[List[FilterExpr]] = [[] for _ in step_variables]
    leftovers: List[FilterExpr] = []
    for expr in query.filters:
        needed = set(expr.variables())
        if not needed <= all_bound:
            raise PlanError(
                f"filter references unbound variable(s): {expr}")
        placed = False
        for index, bound in enumerate(step_variables):
            if needed <= bound:
                assignments[index].append(expr)
                placed = True
                break
        if not placed:
            leftovers.append(expr)
    return assignments, leftovers


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

#: Aggregated values can be counts/sums (numbers), not vids.
Value = Union[int, float]


def _aggregate_value(agg: Aggregate, group: List[Row],
                     name_of: NameOf) -> Optional[Value]:
    if agg.func == "COUNT":
        if agg.var is None:
            return len(group)
        return sum(1 for row in group if agg.var in row)
    numbers: List[float] = []
    names: List[str] = []
    for row in group:
        vid = row.get(agg.var)
        if vid is None:
            continue
        name = name_of(vid)
        names.append(name)
        number = term_number(name)
        if number is not None:
            numbers.append(number)
    if agg.func == "SUM":
        return sum(numbers)
    if agg.func == "AVG":
        return sum(numbers) / len(numbers) if numbers else None
    # MIN/MAX: numeric when every value is numeric, else lexicographic.
    if not names:
        return None
    if len(numbers) == len(names):
        return min(numbers) if agg.func == "MIN" else max(numbers)
    return (min(names) if agg.func == "MIN" else max(names))  # type: ignore


def aggregate_rows(rows: List[Row], query: Query, name_of: NameOf,
                   meter=None, cost=None) -> List[tuple]:
    """Group + aggregate solution rows into final result tuples.

    Result columns are ``query.output_columns()``: the GROUP BY keys (as
    vids) followed by the aggregate values (as Python numbers/strings).
    Solutions are deduplicated on all their variables first (set
    semantics, matching the explorer's deduplicating projection).
    """
    if not query.aggregates:
        raise ValueError("query has no aggregates")
    distinct: Dict[tuple, Row] = {}
    all_vars = query.variables()
    for row in rows:
        key = tuple(row.get(var, -1) for var in all_vars)
        distinct.setdefault(key, row)
    groups: Dict[tuple, List[Row]] = {}
    for row in distinct.values():
        key = tuple(row.get(var, -1) for var in query.group_by)
        groups.setdefault(key, []).append(row)
        if meter is not None and cost is not None:
            meter.charge(cost.binding_ns, category="aggregate")
    out = []
    for key in sorted(groups):
        group = groups[key]
        values = tuple(_aggregate_value(agg, group, name_of)
                       for agg in query.aggregates)
        out.append(key + values)
    return out
