"""Recursive-descent parser for the SPARQL / C-SPARQL subset.

Grammar (keywords case-insensitive)::

    query      := prefix* register? (ASK | SELECT [DISTINCT] projection)
                  from* WHERE group groupby? (LIMIT n)? (OFFSET n)?
    prefix     := PREFIX name ':' iri
    register   := REGISTER QUERY name AS
    projection := '*' | item+
    item       := var | FUNC '(' (var | '*') ')' AS var
    from       := FROM SNAPSHOT n | FROM [NAMED] source window?
    window     := '[' RANGE duration STEP duration ']'
    duration   := integer ('ms' | 's' | 'm')
    group      := '{' clause* '}'
    clause     := GRAPH source group | FILTER filterbody | triple
    filterbody := '(' term op term ')'
                | '(' interval IOP interval ')'
    triple     := term term term interval? '.'?
    interval   := '[' endpoint ',' endpoint ')'
    groupby    := GROUP BY var+

``GRAPH`` clauses bind their patterns to the named stream or static graph;
bare patterns target the default stored graph.  A window-less ``FROM``
names a static graph; a ``FROM`` with a window declares a stream.
Aggregates (COUNT/SUM/AVG/MIN/MAX) implement C-SPARQL's online
aggregation over streams and stored data.

SPARQL-T (temporal) extensions, after wukong-cube's tRDF dialect:
``FROM SNAPSHOT <n>`` scopes a one-shot query to snapshot number ``n``
of the versioned store; a quintuple pattern ``?s ?p ?o [?ts, ?te)``
additionally binds each matched entry's valid-time interval (insertion
snapshot and open retirement end) to interval variables; interval
FILTERs (``FILTER ([?ts, ?te) OVERLAPS [3, 7))``, ops listed in
:data:`~repro.sparql.ast.INTERVAL_OPS`) constrain those intervals, with
``*`` as the open upper endpoint.  Interval endpoint variables also work
in ordinary comparison FILTERs (``FILTER (?ts >= 3)``).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import InvalidIntervalError, ParseError
from repro.sparql.ast import (AGGREGATE_FUNCS, Aggregate, FILTER_OPS,
                              FilterExpr, INTERVAL_OPS, IntervalFilter,
                              OPEN_END, Query, TriplePattern, WindowSpec,
                              is_variable)
from repro.sparql.lexer import Token, TokenCursor, tokenize

_DURATION_RE = re.compile(r"^(\d+)(ms|s|m)$", re.IGNORECASE)
_UNIT_MS = {"ms": 1, "s": 1_000, "m": 60_000}

#: Tokens that cannot begin a triple term.
_CLAUSE_KEYWORDS = {"GRAPH", "FILTER"}


def _parse_duration(token: Token) -> int:
    """Parse ``10s`` / ``100ms`` / ``2m`` into milliseconds."""
    match = _DURATION_RE.match(token.text)
    if not match:
        raise ParseError(f"bad duration: {token.text!r}",
                         line=token.line, column=token.column)
    return int(match.group(1)) * _UNIT_MS[match.group(2).lower()]


def _parse_count(cursor: TokenCursor, keyword: str) -> int:
    token = cursor.next()
    try:
        value = int(token.text)
    except ValueError:
        raise ParseError(f"{keyword} needs an integer, got {token.text!r}",
                         line=token.line, column=token.column) from None
    if value < 0:
        raise ParseError(f"{keyword} must be non-negative: {value}",
                         line=token.line, column=token.column)
    return value


def _parse_aggregate(cursor: TokenCursor) -> Aggregate:
    """Parse ``FUNC ( ?var | * ) AS ?alias``."""
    func = cursor.next().upper
    cursor.expect("(")
    arg_token = cursor.next()
    if arg_token.text == "*":
        if func != "COUNT":
            raise ParseError(f"{func}(*) is not valid; only COUNT(*)",
                             line=arg_token.line, column=arg_token.column)
        var = None
    elif is_variable(arg_token.text):
        var = arg_token.text
    else:
        raise ParseError(
            f"aggregate argument must be a variable or '*', got "
            f"{arg_token.text!r}", line=arg_token.line,
            column=arg_token.column)
    cursor.expect(")")
    cursor.expect("AS")
    alias_token = cursor.next()
    if not is_variable(alias_token.text):
        raise ParseError(f"aggregate alias must be a variable, got "
                         f"{alias_token.text!r}", line=alias_token.line,
                         column=alias_token.column)
    return Aggregate(func, var, alias_token.text)


def _parse_window(cursor: TokenCursor) -> WindowSpec:
    cursor.expect("[")
    cursor.expect("RANGE")
    range_ms = _parse_duration(cursor.next())
    cursor.expect("STEP")
    step_ms = _parse_duration(cursor.next())
    cursor.expect("]")
    return WindowSpec(range_ms=range_ms, step_ms=step_ms)


def _parse_quintuple_suffix(cursor: TokenCursor) -> Tuple[str, str]:
    """Parse a pattern's valid-time suffix ``[?ts, ?te)``.

    Pattern endpoints must be (distinct) variables: the suffix *binds*
    each matched entry's interval; constants go in interval FILTERs.
    """
    opener = cursor.expect("[")
    ts_token = cursor.next()
    cursor.expect(",")
    te_token = cursor.next()
    cursor.expect(")")
    for token in (ts_token, te_token):
        if not is_variable(token.text):
            raise InvalidIntervalError(
                f"quintuple interval endpoints must be variables, got "
                f"{token.text!r} (line {token.line}, column {token.column})")
    if ts_token.text == te_token.text:
        raise InvalidIntervalError(
            f"quintuple interval endpoints must be distinct variables, "
            f"got [{ts_token.text}, {te_token.text}) (line {opener.line}, "
            f"column {opener.column})")
    return ts_token.text, te_token.text


def _parse_triple(cursor: TokenCursor, graph: Optional[str],
                  out: List[TriplePattern]) -> None:
    terms = [cursor.next().text for _ in range(3)]
    ts: Optional[str] = None
    te: Optional[str] = None
    upcoming = cursor.peek()
    if upcoming is not None and upcoming.text == "[":
        ts, te = _parse_quintuple_suffix(cursor)
    cursor.accept(".")
    out.append(TriplePattern(terms[0], terms[1], terms[2], graph=graph,
                             ts=ts, te=te))


def _parse_union(cursor: TokenCursor, graph: Optional[str],
                 filters: List[FilterExpr],
                 unions: List[List[List[TriplePattern]]],
                 opener,
                 interval_filters: List[IntervalFilter]) -> None:
    """Parse ``{ branch } UNION { branch } [UNION ...]``."""
    branches: List[List[TriplePattern]] = []
    while True:
        branch: List[TriplePattern] = []
        _parse_group(cursor, graph, branch, filters, None, None,
                     interval_filters)
        if not branch:
            raise ParseError("empty UNION branch", line=opener.line,
                             column=opener.column)
        branches.append(branch)
        if not cursor.accept("UNION"):
            break
    cursor.accept(".")
    if len(branches) < 2:
        raise ParseError("a braced group must alternate with UNION",
                         line=opener.line, column=opener.column)
    first_vars = {v for p in branches[0] for v in p.variables()}
    for branch in branches[1:]:
        branch_vars = {v for p in branch for v in p.variables()}
        if branch_vars != first_vars:
            raise ParseError(
                "UNION branches must bind the same variables: "
                f"{sorted(first_vars)} vs {sorted(branch_vars)}",
                line=opener.line, column=opener.column)
    unions.append(branches)


def _parse_interval_endpoint(cursor: TokenCursor) -> str:
    """One interval-FILTER endpoint: a variable, a non-negative integer
    snapshot number, or ``*`` (normalized to :data:`OPEN_END`)."""
    token = cursor.next()
    text = token.text
    if text == "*":
        return str(OPEN_END)
    if is_variable(text):
        return text
    try:
        value = int(text)
    except ValueError:
        raise InvalidIntervalError(
            f"interval endpoint must be a variable, a non-negative "
            f"integer or '*', got {text!r} (line {token.line}, column "
            f"{token.column})") from None
    if value < 0:
        raise InvalidIntervalError(
            f"interval endpoint must be non-negative: {value} (line "
            f"{token.line}, column {token.column})")
    return text


def _parse_filter_interval(cursor: TokenCursor) -> Tuple[str, str]:
    cursor.expect("[")
    ts = _parse_interval_endpoint(cursor)
    cursor.expect(",")
    te = _parse_interval_endpoint(cursor)
    cursor.expect(")")
    return ts, te


def _parse_filter(cursor: TokenCursor, filters: List[FilterExpr],
                  interval_filters: List[IntervalFilter]) -> None:
    cursor.expect("(")
    upcoming = cursor.peek()
    if upcoming is not None and upcoming.text == "[":
        left_ts, left_te = _parse_filter_interval(cursor)
        op_token = cursor.next()
        if op_token.upper not in INTERVAL_OPS:
            raise ParseError(
                f"bad interval operator: {op_token.text!r}",
                line=op_token.line, column=op_token.column)
        right_ts, right_te = _parse_filter_interval(cursor)
        cursor.expect(")")
        cursor.accept(".")
        interval_filters.append(IntervalFilter(
            left_ts, left_te, op_token.upper, right_ts, right_te))
        return
    left = cursor.next().text
    op_token = cursor.next()
    if op_token.text not in FILTER_OPS:
        raise ParseError(f"bad filter operator: {op_token.text!r}",
                         line=op_token.line, column=op_token.column)
    right = cursor.next().text
    cursor.expect(")")
    cursor.accept(".")
    filters.append(FilterExpr(left, op_token.text, right))


def _parse_group(cursor: TokenCursor, graph: Optional[str],
                 out: List[TriplePattern],
                 filters: List[FilterExpr],
                 optionals: Optional[List[List[TriplePattern]]] = None,
                 unions: Optional[List[List[List[TriplePattern]]]] = None,
                 interval_filters: Optional[List[IntervalFilter]] = None
                 ) -> None:
    if interval_filters is None:
        interval_filters = []
    cursor.expect("{")
    while not cursor.accept("}"):
        token = cursor.peek()
        if token is None:
            raise ParseError("unterminated group: missing '}'")
        if token.text == "{":
            if unions is None:
                raise ParseError("nested alternation groups are "
                                 "unsupported here",
                                 line=token.line, column=token.column)
            _parse_union(cursor, graph, filters, unions, token,
                         interval_filters)
        elif token.upper == "GRAPH":
            cursor.next()
            source = cursor.next().text
            _parse_group(cursor, source, out, filters, optionals, unions,
                         interval_filters)
            cursor.accept(".")
        elif token.upper == "FILTER":
            cursor.next()
            _parse_filter(cursor, filters, interval_filters)
        elif token.upper == "OPTIONAL":
            if optionals is None:
                raise ParseError(
                    "OPTIONAL cannot be nested inside OPTIONAL",
                    line=token.line, column=token.column)
            cursor.next()
            group: List[TriplePattern] = []
            _parse_group(cursor, graph, group, filters, None,
                         interval_filters=interval_filters)
            cursor.accept(".")
            if not group:
                raise ParseError("empty OPTIONAL group",
                                 line=token.line, column=token.column)
            optionals.append(group)
        else:
            _parse_triple(cursor, graph, out)


def parse_query(text: str) -> Query:
    """Parse one SPARQL or C-SPARQL query.

    >>> q = parse_query('''
    ...     REGISTER QUERY QC AS
    ...     SELECT ?X ?Y ?Z
    ...     FROM Tweet_Stream [RANGE 10s STEP 1s]
    ...     FROM Like_Stream [RANGE 5s STEP 1s]
    ...     FROM X-Lab
    ...     WHERE {
    ...       GRAPH Tweet_Stream { ?X po ?Z }
    ...       GRAPH X-Lab { ?X fo ?Y }
    ...       GRAPH Like_Stream { ?Y li ?Z }
    ...     }''')
    >>> q.name, q.is_continuous, sorted(q.windows)
    ('QC', True, ['Like_Stream', 'Tweet_Stream'])
    """
    cursor = TokenCursor(tokenize(text))
    query = Query()

    prefixes: dict = {}
    while cursor.accept("PREFIX"):
        name_token = cursor.next()
        prefix = name_token.text
        if prefix.endswith(":"):
            prefix = prefix[:-1]
        else:
            cursor.accept(":")
        iri_token = cursor.next()
        prefixes[prefix] = iri_token.text

    if cursor.accept("REGISTER"):
        cursor.expect("QUERY")
        query.name = cursor.next().text
        cursor.accept("AS")

    if cursor.accept("ASK"):
        query.is_ask = True
    else:
        cursor.expect("SELECT")
        cursor.accept("DISTINCT")  # results are sets already
        if cursor.accept("*"):
            pass
        else:
            while True:
                token = cursor.peek()
                if token is None:
                    raise ParseError("query ends after SELECT")
                if is_variable(token.text):
                    query.select.append(cursor.next().text)
                elif token.upper in AGGREGATE_FUNCS:
                    query.aggregates.append(_parse_aggregate(cursor))
                else:
                    break
            if not query.select and not query.aggregates:
                raise ParseError(
                    "SELECT needs '*', variables or aggregates",
                    line=token.line, column=token.column)

    while cursor.accept("FROM"):
        if cursor.accept("SNAPSHOT"):
            token = cursor.next()
            try:
                snapshot = int(token.text)
            except ValueError:
                raise ParseError(
                    f"FROM SNAPSHOT needs an integer snapshot number, "
                    f"got {token.text!r}", line=token.line,
                    column=token.column) from None
            if snapshot < 0:
                raise InvalidIntervalError(
                    f"snapshot number must be non-negative: {snapshot}",
                    snapshot=snapshot)
            if query.snapshot is not None:
                raise ParseError("FROM SNAPSHOT declared twice",
                                 line=token.line, column=token.column)
            query.snapshot = snapshot
            continue
        cursor.accept("NAMED")
        source = cursor.next().text
        upcoming = cursor.peek()
        if upcoming is not None and upcoming.text == "[":
            window = _parse_window(cursor)
            if source in query.windows:
                raise ParseError(f"stream declared twice: {source}")
            query.windows[source] = window
        else:
            if source in query.static_graphs:
                raise ParseError(f"graph declared twice: {source}")
            query.static_graphs.append(source)

    cursor.expect("WHERE")
    _parse_group(cursor, None, query.patterns, query.filters,
                 query.optionals, query.unions, query.interval_filters)

    if cursor.accept("GROUP"):
        cursor.expect("BY")
        while True:
            token = cursor.peek()
            if token is None or not is_variable(token.text):
                break
            query.group_by.append(cursor.next().text)
        if not query.group_by:
            raise ParseError("GROUP BY needs at least one variable")

    if cursor.accept("LIMIT"):
        query.limit = _parse_count(cursor, "LIMIT")
    if cursor.accept("OFFSET"):
        query.offset = _parse_count(cursor, "OFFSET")

    if not cursor.exhausted:
        stray = cursor.next()
        raise ParseError(f"unexpected trailing token {stray.text!r}",
                         line=stray.line, column=stray.column)
    if not query.patterns and not query.unions:
        raise ParseError("WHERE block has no triple patterns")

    if prefixes:
        _expand_prefixes(query, prefixes)
    _validate(query)
    return query


def _expand_term(term: str, prefixes: dict) -> str:
    """Expand ``ex:Logan`` to the prefix's IRI + local part."""
    if is_variable(term) or ":" not in term:
        return term
    prefix, _, local = term.partition(":")
    base = prefixes.get(prefix)
    return base + local if base is not None else term


def _expand_prefixes(query: Query, prefixes: dict) -> None:
    def expand_group(group):
        return [TriplePattern(_expand_term(p.subject, prefixes),
                              _expand_term(p.predicate, prefixes),
                              _expand_term(p.object, prefixes),
                              graph=_expand_term(p.graph, prefixes)
                              if p.graph else None,
                              ts=p.ts, te=p.te)
                for p in group]

    query.patterns[:] = expand_group(query.patterns)

    query.optionals[:] = [expand_group(g) for g in query.optionals]
    query.unions[:] = [[expand_group(b) for b in union]
                       for union in query.unions]
    query.filters[:] = [
        FilterExpr(_expand_term(f.left, prefixes), f.op,
                   _expand_term(f.right, prefixes))
        for f in query.filters
    ]
    query.static_graphs[:] = [_expand_term(g, prefixes)
                              for g in query.static_graphs]
    for stream in list(query.windows):
        expanded = _expand_term(stream, prefixes)
        if expanded != stream:
            query.windows[expanded] = query.windows.pop(stream)


def _validate(query: Query) -> None:
    """Cross-checks between clauses."""
    known_sources = set(query.windows) | set(query.static_graphs)
    all_patterns = list(query.patterns) + \
        [p for group in query.optionals for p in group] + \
        [p for union in query.unions for branch in union for p in branch]
    for pattern in all_patterns:
        if pattern.graph is not None and known_sources and \
                pattern.graph not in known_sources:
            raise ParseError(
                f"GRAPH {pattern.graph} is not declared by any FROM clause")
    declared = set(query.select)
    available = set(query.variables())
    missing = declared - available
    if missing:
        raise ParseError(
            f"SELECT variables never bound by WHERE: {sorted(missing)}")

    for expr in query.filters:
        unbound = set(expr.variables()) - available
        if unbound:
            raise ParseError(
                f"FILTER variables never bound by WHERE: {sorted(unbound)}")

    _validate_temporal(query, available)

    if query.aggregates:
        for agg in query.aggregates:
            if agg.var is not None and agg.var not in available:
                raise ParseError(
                    f"aggregate over a variable WHERE never binds: "
                    f"{agg.var}")
            if agg.alias in available:
                raise ParseError(
                    f"aggregate alias collides with a pattern variable: "
                    f"{agg.alias}")
        stray_groups = set(query.group_by) - available
        if stray_groups:
            raise ParseError(
                f"GROUP BY variables never bound by WHERE: "
                f"{sorted(stray_groups)}")
        bare = declared - set(query.group_by)
        if bare:
            raise ParseError(
                f"non-aggregated SELECT variables must appear in GROUP "
                f"BY: {sorted(bare)}")
    elif query.group_by:
        raise ParseError("GROUP BY requires at least one aggregate")


def _validate_temporal(query: Query, available: set) -> None:
    """SPARQL-T cross-checks (no-ops on non-temporal queries)."""
    for group in query.optionals:
        for pattern in group:
            if pattern.has_interval:
                raise ParseError(
                    "quintuple patterns are not supported inside OPTIONAL")
    for union in query.unions:
        for branch in union:
            for pattern in branch:
                if pattern.has_interval:
                    raise ParseError(
                        "quintuple patterns are not supported inside UNION")
    if not query.is_temporal:
        return

    if query.is_continuous:
        raise ParseError(
            "temporal scopes (FROM SNAPSHOT, quintuple patterns, interval "
            "FILTERs) apply to one-shot queries only, not to queries over "
            f"stream windows: {sorted(query.windows)}")

    has_intervals = bool(query.interval_filters) or \
        any(p.has_interval for p in query.patterns)
    if has_intervals:
        # The interval evaluator handles conjunctive quintuple joins; the
        # aggregate / OPTIONAL / UNION machinery lives in the timeless
        # executors.  FROM SNAPSHOT alone composes with all of them.
        if query.aggregates:
            raise ParseError(
                "interval patterns/FILTERs cannot combine with aggregates")
        if query.optionals:
            raise ParseError(
                "interval patterns/FILTERs cannot combine with OPTIONAL")
        if query.unions:
            raise ParseError(
                "interval patterns/FILTERs cannot combine with UNION")

    graph_vars = set()
    for pattern in query.patterns:
        graph_vars.update(pattern.variables())
    collisions = graph_vars & set(query.interval_variables())
    if collisions:
        raise ParseError(
            f"interval endpoint variables collide with graph variables: "
            f"{sorted(collisions)}")

    for ifilter in query.interval_filters:
        unbound = set(ifilter.variables()) - available
        if unbound:
            raise ParseError(
                f"FILTER variables never bound by WHERE: {sorted(unbound)}")
        for ts, te in ((ifilter.left_ts, ifilter.left_te),
                       (ifilter.right_ts, ifilter.right_te)):
            if is_variable(ts) or is_variable(te):
                continue
            try:
                ts_value, te_value = int(ts), int(te)
            except ValueError:
                raise InvalidIntervalError(
                    f"non-integer constant interval endpoint in "
                    f"[{ts}, {te})") from None
            if te_value <= ts_value:
                raise InvalidIntervalError(
                    f"empty or inverted interval [{ts}, {te})")
