"""SPARQL / C-SPARQL front end: AST, lexer, parser and query planner."""

from repro.sparql.ast import (
    TriplePattern,
    WindowSpec,
    Query,
    is_variable,
)
from repro.sparql.parser import parse_query
from repro.sparql.planner import ExecutionPlan, PlannedStep, plan_query

__all__ = [
    "TriplePattern",
    "WindowSpec",
    "Query",
    "is_variable",
    "parse_query",
    "ExecutionPlan",
    "PlannedStep",
    "plan_query",
]
