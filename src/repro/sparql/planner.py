"""Query planner: selectivity-ordered graph exploration.

Wukong executes a query as *graph exploration*: start from a constant
vertex (or, failing that, a predicate-index vertex) and extend variable
bindings one triple pattern at a time, always preferring patterns whose
subject or object is already bound so each step is an indexed neighbour
lookup rather than a cross product.  The integrated design lets the planner
see stream and stored patterns together, which is exactly the global
optimisation opportunity the composite design lacks (§2.3, Issue #2).

The planner emits an ordered list of :class:`PlannedStep`, each annotated
with how the executor should evaluate it:

``const_subject`` / ``const_object``
    Start (or continue) from a constant vertex key.
``bound_subject`` / ``bound_object``
    Expand each existing binding row through a neighbour lookup.
``index``
    Enumerate vertices from the predicate index (used only when no
    constant or bound variable is available — the non-selective queries of
    the paper's group II start this way).

Cost-aware ordering: with per-predicate cardinality statistics (any
object exposing ``out_degree(predicate)``, ``in_degree(predicate)`` and
``index_size(predicate)``; see ``repro.core.stats.PredicateStatistics``)
the greedy pass breaks ties *within* an access-path class by estimated
selectivity — constant starts still precede bound expansions precede
index scans, but among equally-classified candidates the one expected to
produce the fewest rows runs first, and an index start picks the smallest
predicate index instead of the first one written.  When the statistics
provider additionally exposes per-constant degrees
(``subject_degree(predicate, term)`` / ``object_degree(predicate,
term)``, backed by the shards' top-k degree sketches), constant starts
estimate the *specific* vertex's fan-out, so a heavy-hitter constant no
longer masquerades as a selective start.  This is the adaptive,
statistics-driven plan ordering of Strider (arXiv:1705.05688) adapted to
exploration plans.  Ordering is deterministic: estimates are pure
functions of the store's cardinality counters, and the original pattern
position is the final tie-break.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.errors import PlanError
from repro.sparql.ast import Query, TriplePattern, is_variable

#: Step kinds, ordered from most to least selective.
CONST_SUBJECT = "const_subject"
CONST_OBJECT = "const_object"
BOUND_SUBJECT = "bound_subject"
BOUND_OBJECT = "bound_object"
INDEX_START = "index"


@dataclass(frozen=True)
class PlannedStep:
    """One pattern with the access path chosen by the planner."""

    pattern: TriplePattern
    kind: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.pattern}"


@dataclass
class ExecutionPlan:
    """The ordered steps for one query."""

    query: Query
    steps: List[PlannedStep]

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)


def _classify(pattern: TriplePattern, bound: Set[str]) -> Optional[str]:
    """The best access path for ``pattern`` given already-bound variables.

    Returns None when the pattern can only run as an index scan.
    """
    subject_const = not is_variable(pattern.subject)
    object_const = not is_variable(pattern.object)
    if subject_const:
        return CONST_SUBJECT
    if object_const:
        return CONST_OBJECT
    if pattern.subject in bound:
        return BOUND_SUBJECT
    if pattern.object in bound:
        return BOUND_OBJECT
    return None


def _score(kind: Optional[str]) -> int:
    """Lower scores are tried first (more selective)."""
    order = {CONST_SUBJECT: 0, CONST_OBJECT: 0, BOUND_SUBJECT: 1,
             BOUND_OBJECT: 1, None: 3}
    return order[kind]


def _estimate(pattern: TriplePattern, kind: Optional[str], stats) -> float:
    """Estimated rows produced per input row for ``pattern`` under ``kind``.

    Constant/bound starts expand through the predicate's average degree
    on the side being traversed; an index scan enumerates every edge of
    the predicate.  Without statistics every estimate is 0.0, which
    reduces the ordering to the purely positional greedy pass.
    """
    if stats is None:
        return 0.0
    predicate = pattern.predicate
    if kind == CONST_SUBJECT:
        # A constant start names a *specific* vertex: when the stats
        # provider tracks per-constant degrees (top-k sketch), use that
        # vertex's own fan-out instead of the predicate mean, so a hot
        # constant (e.g. a viral hashtag) is not mistaken for a selective
        # start.
        specific = getattr(stats, "subject_degree", None)
        if specific is not None:
            return specific(predicate, pattern.subject)
        return stats.out_degree(predicate)
    if kind == BOUND_SUBJECT:
        return stats.out_degree(predicate)
    if kind == CONST_OBJECT:
        specific = getattr(stats, "object_degree", None)
        if specific is not None:
            return specific(predicate, pattern.object)
        return stats.in_degree(predicate)
    if kind == BOUND_OBJECT:
        return stats.in_degree(predicate)
    return stats.index_size(predicate)


def plan_order(patterns: Sequence[TriplePattern], stats=None,
               prebound: Set[str] = frozenset()) -> List[int]:
    """The greedy pattern ordering, as a permutation of pattern indices.

    Separated from step construction so callers can use the order as a
    plan-cache key: the order is the only statistics-dependent part of a
    plan, so ``(normalized AST, order)`` uniquely identifies the compiled
    plan even as the store's cardinalities drift.
    """
    for pattern in patterns:
        if is_variable(pattern.predicate):
            raise PlanError(
                f"variable predicates are unsupported: {pattern}")
    remaining = list(range(len(patterns)))
    bound = set(prebound)
    order: List[int] = []
    while remaining:
        best_idx = None
        best_key = None
        for position, idx in enumerate(remaining):
            pattern = patterns[idx]
            kind = _classify(pattern, bound)
            key = (_score(kind), _estimate(pattern, kind, stats), position)
            if best_key is None or key < best_key:
                best_key = key
                best_idx = idx
        assert best_idx is not None
        order.append(best_idx)
        bound.update(patterns[best_idx].variables())
        remaining.remove(best_idx)
    return order


def estimate_plan_cost(patterns: Sequence[TriplePattern],
                       ordering: Sequence[int], stats,
                       prebound: Set[str] = frozenset()) -> float:
    """Estimated exploration cost of running ``patterns`` in ``ordering``.

    A uniform row-count model over the same per-step fan-out estimates the
    greedy ordering uses (:func:`_estimate`): walking the order, each step
    visits every current binding row once and produces ``fanout`` successor
    rows per input row, so it charges ``rows * (1 + fanout)`` and multiplies
    the row estimate by ``fanout``.  An index start enumerates the whole
    predicate index (fanout = index size).  The absolute number is
    meaningless; only *ratios between orderings of the same patterns under
    the same statistics* are — which is exactly what the adaptive re-planner
    (``repro.core.replan``) compares against its hysteresis threshold.
    Deterministic: a pure function of the statistics provider's counters.
    """
    rows = 1.0
    cost = 0.0
    bound = set(prebound)
    for idx in ordering:
        pattern = patterns[idx]
        kind = _classify(pattern, bound)
        fanout = _estimate(pattern, kind, stats)
        cost += rows * (1.0 + fanout)
        rows *= fanout
        bound.update(pattern.variables())
    return cost


def _steps_in_order(patterns: Sequence[TriplePattern],
                    ordering: Sequence[int],
                    prebound: Set[str] = frozenset()) -> List[PlannedStep]:
    """Classify each pattern's access path along a fixed ordering."""
    steps: List[PlannedStep] = []
    bound = set(prebound)
    for idx in ordering:
        pattern = patterns[idx]
        kind = _classify(pattern, bound) or INDEX_START
        steps.append(PlannedStep(pattern, kind))
        bound.update(pattern.variables())
    return steps


def plan_steps(patterns: Sequence[TriplePattern],
               prebound: Set[str] = frozenset(),
               stats=None) -> List[PlannedStep]:
    """Greedily order a bare pattern list, given already-bound variables.

    Used for sub-queries whose seed rows come from elsewhere (e.g. the
    composite design ships stream-side bindings into the Wukong
    subcomponent); ``prebound`` names the variables those seeds bind.
    ``stats`` enables selectivity tie-breaks (see module docstring).
    """
    ordering = plan_order(patterns, stats=stats, prebound=prebound)
    return _steps_in_order(patterns, ordering, prebound=prebound)


def plan_query(query: Query,
               fixed_order: Optional[Sequence[int]] = None,
               stats=None) -> ExecutionPlan:
    """Produce an execution plan for ``query``.

    With ``fixed_order`` (a permutation of pattern indices) the planner
    keeps that exact order and only classifies the access path of each
    step; benchmarks use this to reproduce the paper's deliberately
    sub-optimal composite plans (Fig. 4b).  ``stats`` (mutually exclusive
    with ``fixed_order``) orders patterns by estimated selectivity.
    """
    for pattern in query.patterns:
        if is_variable(pattern.predicate):
            raise PlanError(
                f"variable predicates are unsupported: {pattern}")

    if fixed_order is not None:
        ordering = list(fixed_order)
        if sorted(ordering) != list(range(len(query.patterns))):
            raise PlanError(
                f"fixed_order must permute 0..{len(query.patterns) - 1}: "
                f"{ordering}")
        return ExecutionPlan(query, _steps_in_order(query.patterns, ordering))

    return ExecutionPlan(query, plan_steps(query.patterns, stats=stats))
