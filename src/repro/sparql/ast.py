"""Abstract syntax for the supported SPARQL / C-SPARQL subset.

The subset covers everything the paper's workloads need (Fig. 2):

* ``SELECT`` with an explicit variable list or ``*``;
* ``FROM <graph>`` for static graphs and ``FROM <stream> [RANGE r STEP s]``
  for stream windows;
* ``WHERE`` blocks of triple patterns, optionally scoped by
  ``GRAPH <source> { ... }`` clauses binding patterns to a specific stream
  or static graph;
* ``REGISTER QUERY <name> AS`` prefixes marking continuous queries.

Variables are ``?``-prefixed tokens; anything else is a constant term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def is_variable(term: str) -> bool:
    """Whether a pattern term is a SPARQL variable (``?``-prefixed)."""
    return term.startswith("?")


#: Comparison operators supported in FILTER expressions.
FILTER_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: Aggregate functions supported in SELECT (C-SPARQL online aggregation).
AGGREGATE_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

#: Interval predicates supported in SPARQL-T interval FILTERs, over
#: half-open valid-time intervals ``[ts, te)`` in snapshot-number space:
#:
#: ``OVERLAPS``  the intervals share at least one snapshot;
#: ``DURING``    the left interval is contained in the right;
#: ``BEFORE``    the left interval ends at or before the right starts;
#: ``AFTER``     the left interval starts at or after the right ends;
#: ``STARTS``    the two intervals start at the same snapshot.
INTERVAL_OPS = ("OVERLAPS", "DURING", "BEFORE", "AFTER", "STARTS")

#: Sentinel upper endpoint of a still-open valid-time interval.  The
#: store is append-only, so a quintuple pattern binds its ``?te``
#: variable to this value for every live entry; query text writes an
#: open upper endpoint as ``*`` (e.g. ``FILTER ([?ts, ?te) DURING
#: [3, *))``).
OPEN_END = 1 << 62


@dataclass(frozen=True)
class FilterExpr:
    """One ``FILTER (left op right)`` condition.

    Either side may be a variable or a constant; equality works on any
    term, ordering comparisons require numeric values (integer literals or
    entity names that parse as integers, e.g. CityBench's ``Spots95`` is
    *not* numeric but ``95`` is).
    """

    left: str
    op: str
    right: str

    def __post_init__(self) -> None:
        if self.op not in FILTER_OPS:
            raise ValueError(f"unsupported filter operator: {self.op}")

    def variables(self) -> Tuple[str, ...]:
        return tuple(t for t in (self.left, self.right) if is_variable(t))

    def __str__(self) -> str:
        return f"FILTER ({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class IntervalFilter:
    """One SPARQL-T interval condition: ``FILTER ([ts, te) OP [ts, te))``.

    Each side is a half-open interval whose endpoints are variables
    (bound by a quintuple pattern's ``[?ts, ?te)`` suffix), non-negative
    integer snapshot numbers, or ``*`` (parsed to :data:`OPEN_END`) for a
    still-open upper endpoint.
    """

    left_ts: str
    left_te: str
    op: str
    right_ts: str
    right_te: str

    def __post_init__(self) -> None:
        if self.op not in INTERVAL_OPS:
            raise ValueError(f"unsupported interval operator: {self.op}")

    def variables(self) -> Tuple[str, ...]:
        return tuple(t for t in (self.left_ts, self.left_te,
                                 self.right_ts, self.right_te)
                     if is_variable(t))

    def __str__(self) -> str:
        return (f"FILTER ([{self.left_ts}, {self.left_te}) {self.op} "
                f"[{self.right_ts}, {self.right_te}))")


@dataclass(frozen=True)
class Aggregate:
    """One aggregate projection: ``FUNC(?var) AS ?alias``.

    ``var`` is None for ``COUNT(*)``.
    """

    func: str
    var: Optional[str]
    alias: str

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise ValueError(f"unsupported aggregate: {self.func}")
        if self.func != "COUNT" and self.var is None:
            raise ValueError(f"{self.func} requires a variable argument")

    def __str__(self) -> str:
        inner = self.var if self.var is not None else "*"
        return f"{self.func}({inner}) AS {self.alias}"


@dataclass(frozen=True)
class TriplePattern:
    """One ``subject predicate object`` pattern.

    ``graph`` names the source the pattern must match against: a stream
    name, a static graph name, or ``None`` meaning the default (stored)
    graph.  Patterns from ``GRAPH X { ... }`` clauses carry ``graph=X``.
    """

    subject: str
    predicate: str
    object: str
    graph: Optional[str] = None
    #: SPARQL-T valid-time endpoints from a quintuple suffix
    #: ``?s ?p ?o [?ts, ?te)``: variables binding each matched entry's
    #: insertion snapshot and (open) retirement snapshot.  ``None`` on
    #: ordinary (timeless) triple patterns.
    ts: Optional[str] = None
    te: Optional[str] = None

    @property
    def has_interval(self) -> bool:
        """Whether this pattern carries a valid-time interval suffix."""
        return self.ts is not None

    def variables(self) -> Tuple[str, ...]:
        """The distinct *graph* variables of this pattern, in s/p/o order.

        Interval endpoint variables are deliberately excluded: they bind
        snapshot numbers, not vertices, so they are never joinable graph
        bindings (see :meth:`interval_variables`).
        """
        seen: List[str] = []
        for term in (self.subject, self.predicate, self.object):
            if is_variable(term) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def interval_variables(self) -> Tuple[str, ...]:
        """The interval endpoint variables of this pattern, ts first."""
        return tuple(t for t in (self.ts, self.te)
                     if t is not None and is_variable(t))

    def constants(self) -> Tuple[str, ...]:
        """The constant terms of this pattern (subject/object only)."""
        return tuple(term for term in (self.subject, self.object)
                     if not is_variable(term))

    def __str__(self) -> str:
        scope = f"GRAPH {self.graph} " if self.graph else ""
        suffix = f" [{self.ts}, {self.te})" if self.has_interval else ""
        return (f"{scope}{{ {self.subject} {self.predicate} "
                f"{self.object}{suffix} }}")


@dataclass(frozen=True)
class WindowSpec:
    """A C-SPARQL sliding window: ``[RANGE r STEP s]`` in milliseconds.

    ``range_ms`` is how far back the window reaches; ``step_ms`` is the
    slide (and re-execution) interval.
    """

    range_ms: int
    step_ms: int

    def __post_init__(self) -> None:
        if self.range_ms <= 0:
            raise ValueError(f"window range must be positive: {self.range_ms}")
        if self.step_ms <= 0:
            raise ValueError(f"window step must be positive: {self.step_ms}")

    def span_at(self, close_ms: int) -> Tuple[int, int]:
        """The half-open interval ``[start, end)`` of the window closing at
        ``close_ms``."""
        return close_ms - self.range_ms, close_ms


@dataclass
class Query:
    """A parsed SPARQL or C-SPARQL query.

    Attributes
    ----------
    select:
        Projected variables (empty list means ``SELECT *``).
    patterns:
        All triple patterns in WHERE order, each tagged with its graph.
    windows:
        Stream name -> window spec, from ``FROM <stream> [RANGE..STEP..]``.
    static_graphs:
        Static graph names from plain ``FROM`` clauses.
    name:
        The registration name for continuous queries (``REGISTER QUERY n``).
    """

    select: List[str] = field(default_factory=list)
    patterns: List[TriplePattern] = field(default_factory=list)
    windows: Dict[str, WindowSpec] = field(default_factory=dict)
    static_graphs: List[str] = field(default_factory=list)
    name: Optional[str] = None
    filters: List[FilterExpr] = field(default_factory=list)
    aggregates: List[Aggregate] = field(default_factory=list)
    group_by: List[str] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    is_ask: bool = False
    #: OPTIONAL groups: each a pattern list to left-outer-join with the
    #: mandatory solution (unmatched rows keep the new variables unbound).
    optionals: List[List[TriplePattern]] = field(default_factory=list)
    #: UNION alternations: each a list of branches (pattern lists) whose
    #: solutions are concatenated; branches must bind the same variables.
    unions: List[List[List[TriplePattern]]] = field(default_factory=list)
    #: SPARQL-T point-in-time scope from ``FROM SNAPSHOT <n>``: the
    #: snapshot number the query reads at.  ``None`` means the current
    #: stable snapshot (the ordinary one-shot behaviour).
    snapshot: Optional[int] = None
    #: SPARQL-T interval conditions over quintuple-pattern endpoints.
    interval_filters: List[IntervalFilter] = field(default_factory=list)

    @property
    def is_continuous(self) -> bool:
        """Continuous queries consume at least one stream window."""
        return bool(self.windows)

    @property
    def is_temporal(self) -> bool:
        """Whether this query needs the temporal subsystem (an explicit
        snapshot scope, a quintuple pattern, or an interval filter)."""
        return (self.snapshot is not None or bool(self.interval_filters)
                or any(p.has_interval for p in self.patterns))

    def cache_key(self) -> Tuple:
        """A hashable normalized form of this query's semantics.

        Two queries with equal keys plan, compile and execute identically,
        so the key addresses compiled-plan caches.  The registration name
        is excluded (it never affects evaluation); window specs are sorted
        by stream name so dict ordering cannot split cache entries.  The
        snapshot scope is included: with the plan cache keyed on
        ``(cache_key, order)``, snapshot-scoped plans key on
        ``(AST, order, snapshot)`` and never collide with the live-query
        entry for the same pattern text.
        """
        def pat(p: TriplePattern) -> Tuple:
            return (p.subject, p.predicate, p.object, p.graph, p.ts, p.te)

        return (
            tuple(pat(p) for p in self.patterns),
            tuple(self.select),
            tuple(sorted((name, w.range_ms, w.step_ms)
                         for name, w in self.windows.items())),
            tuple(self.static_graphs),
            tuple((f.left, f.op, f.right) for f in self.filters),
            tuple((a.func, a.var, a.alias) for a in self.aggregates),
            tuple(self.group_by),
            self.limit,
            self.offset,
            self.is_ask,
            tuple(tuple(pat(p) for p in group) for group in self.optionals),
            tuple(tuple(tuple(pat(p) for p in branch) for branch in union)
                  for union in self.unions),
            self.snapshot,
            tuple((f.left_ts, f.left_te, f.op, f.right_ts, f.right_te)
                  for f in self.interval_filters),
        )

    def interval_variables(self) -> List[str]:
        """All distinct interval endpoint variables, in pattern order."""
        seen: List[str] = []
        for pattern in self.patterns:
            for var in pattern.interval_variables():
                if var not in seen:
                    seen.append(var)
        return seen

    def variables(self) -> List[str]:
        """All distinct variables mentioned by the patterns (mandatory
        graph variables first, then UNION/OPTIONAL groups, then interval
        endpoint variables), in first-use order."""
        seen: List[str] = []
        for pattern in self.patterns:
            for var in pattern.variables():
                if var not in seen:
                    seen.append(var)
        for union in self.unions:
            for branch in union:
                for pattern in branch:
                    for var in pattern.variables():
                        if var not in seen:
                            seen.append(var)
        for group in self.optionals:
            for pattern in group:
                for var in pattern.variables():
                    if var not in seen:
                        seen.append(var)
        for var in self.interval_variables():
            if var not in seen:
                seen.append(var)
        return seen

    def mandatory_variables(self) -> List[str]:
        """Variables bound by the mandatory patterns only."""
        seen: List[str] = []
        for pattern in self.patterns:
            for var in pattern.variables():
                if var not in seen:
                    seen.append(var)
        return seen

    def projected(self) -> List[str]:
        """The output variables (explicit SELECT list, or all variables).

        For aggregate queries this is the grouping prefix; aggregate
        aliases follow it in the final result columns.
        """
        if self.aggregates:
            return list(self.group_by)
        return list(self.select) if self.select else self.variables()

    def output_columns(self) -> List[str]:
        """All result column names (group keys then aggregate aliases)."""
        if self.aggregates:
            return list(self.group_by) + [a.alias for a in self.aggregates]
        return self.projected()

    def stream_patterns(self) -> List[TriplePattern]:
        """Patterns that match against a stream window."""
        return [p for p in self.patterns if p.graph in self.windows]

    def stored_patterns(self) -> List[TriplePattern]:
        """Patterns that match against stored (static/persistent) data."""
        return [p for p in self.patterns if p.graph not in self.windows]
