"""Brute-force reference evaluator for SPARQL-T correctness tests.

Dumps the persistent store's full recorded history — every out-edge
with its insertion snapshot, decoded back to strings — and evaluates
temporal queries over it by exhaustive conjunctive join.  Deliberately
simple (no planner, no indexes, no charges): every differential test
compares the engine's answers against this oracle.

Both sides read the *same* store, so compaction's SN coarsening (the GC
frontier relabelling old insertion SNs to the base snapshot) affects
them identically; tests needing exact deep history run with
scalarization disabled.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.rdf.ids import DIR_OUT, split_key
from repro.sparql.ast import OPEN_END, Query, is_variable
from repro.sparql.evaluate import term_number
from repro.temporal.evaluate import interval_op_holds

#: One recorded fact: ``(subject, predicate, object, insertion_sn)``,
#: all names decoded.
Fact = Tuple[str, str, str, int]


def dump_history(store) -> List[Fact]:
    """Every out-edge of the persistent store with its insertion SN."""
    strings = store.strings
    facts: List[Fact] = []
    for shard in store.shards:
        for key in shard.iter_keys():
            vid, eid, d = split_key(key)
            if d != DIR_OUT:
                continue
            vids, sns = shard.lookup_versions(key)
            subject = strings.entity_name(vid)
            predicate = strings.predicate_name(eid)
            for object_vid, sn in zip(vids, sns):
                facts.append((subject, predicate,
                              strings.entity_name(object_vid), sn))
    return facts


def _match(pattern, fact: Fact, row: Dict[str, object]
           ) -> Optional[Dict[str, object]]:
    """Extend ``row`` with one pattern/fact match, or None."""
    subject, predicate, obj, sn = fact
    if pattern.predicate != predicate:
        return None
    new = dict(row)
    for term, value in ((pattern.subject, subject), (pattern.object, obj)):
        if is_variable(term):
            if term in new:
                if new[term] != value:
                    return None
            else:
                new[term] = value
        elif term != value:
            return None
    for term, value in ((pattern.ts, sn), (pattern.te, OPEN_END)):
        if term is None:
            continue
        if term in new:
            if new[term] != value:
                return None
        else:
            new[term] = value
    return new


def _endpoint(term: str, row: Dict[str, object]) -> int:
    return row[term] if is_variable(term) else int(term)  # type: ignore


def _filter_ok(expr, row: Dict[str, object]) -> bool:
    """Ordinary FILTER semantics over name/int bindings."""
    def operand(term: str) -> object:
        return row[term] if is_variable(term) else term

    left, right = operand(expr.left), operand(expr.right)
    if expr.op in ("=", "!="):
        equal = str(left) == str(right)
        return equal if expr.op == "=" else not equal
    left_num = left if isinstance(left, int) else term_number(str(left))
    right_num = right if isinstance(right, int) else term_number(str(right))
    if left_num is None or right_num is None:
        return False
    if expr.op == "<":
        return left_num < right_num
    if expr.op == "<=":
        return left_num <= right_num
    if expr.op == ">":
        return left_num > right_num
    return left_num >= right_num


def reference_rows(query: Query, history: List[Fact],
                   snapshot: int) -> List[Tuple[object, ...]]:
    """Evaluate ``query`` over ``history`` at ``snapshot``, brute force.

    Returns distinct projected rows (graph variables as decoded names,
    interval variables as ints), in no particular order — compare as
    sets against the engine's decoded output.
    """
    visible = [fact for fact in history if fact[3] <= snapshot]
    rows: List[Dict[str, object]] = [{}]
    for pattern in query.patterns:
        rows = [new for row in rows for fact in visible
                for new in (_match(pattern, fact, row),) if new is not None]
        if not rows:
            break
    rows = [row for row in rows
            if all(_filter_ok(f, row) for f in query.filters)
            and all(interval_op_holds(f.op,
                                      _endpoint(f.left_ts, row),
                                      _endpoint(f.left_te, row),
                                      _endpoint(f.right_ts, row),
                                      _endpoint(f.right_te, row))
                    for f in query.interval_filters)]
    out_vars = query.projected()
    seen = set()
    out: List[Tuple[object, ...]] = []
    for row in rows:
        projected = tuple(row[v] for v in out_vars)
        if projected not in seen:
            seen.add(projected)
            out.append(projected)
    offset = query.offset or 0
    if offset:
        out = out[offset:]
    if query.limit is not None:
        out = out[:query.limit]
    return out


def decode_result(result, strings, interval_vars) -> List[Tuple[object, ...]]:
    """Decode an engine :class:`ExecutionResult` into reference space:
    graph-variable vids to names, interval variables kept as ints."""
    decoded: List[Tuple[object, ...]] = []
    for row in result.rows:
        decoded.append(tuple(
            value if variable in interval_vars
            else strings.entity_name(value)
            for variable, value in zip(result.variables, row)))
    return decoded
