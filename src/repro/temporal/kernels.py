"""Columnar batch kernels for SPARQL-T interval (quintuple) queries.

The row evaluator (:mod:`repro.temporal.evaluate`) pays the per-row
Python interpretation floor on every binding: a dict copy, a handful of
key writes, and a ``meter.charge`` call per produced row.  This module
is the batch twin — the same exploration expressed over parallel column
lists, with the SN (``?ts``) column threaded through every expansion
instead of being re-derived per row:

* store reads go through the batch version-carrying entry points
  (:meth:`ShardStore.lookup_versions_many` /
  :meth:`DistributedStore.neighbors_versions_batch`) — one probe per
  *distinct* start vertex in first-occurrence row order, integer
  charges aggregated through a :class:`~repro.sim.cost.ChargeSet`;
* FILTER application is compiled once per plan into a static schedule
  (:class:`CompiledIntervalPlan`): each ordinary and interval FILTER is
  pinned to the first step at which its variables are bound, and the
  compiled selectors (:class:`_CompiledPlainFilter` /
  :class:`_CompiledIntervalFilter`) evaluate each *distinct* operand
  tuple once per batch, mirroring the one-shot path's
  ``_CompiledFilter`` verdict memo;
* binding production charges ``binding_ns`` once per extend with
  ``times=<rows produced>`` instead of once per row.

Bit-identity discipline (the bar every kernel PR clears): produced
rows, their order, the meter total, the per-category breakdown, and the
state digest must equal the row evaluator's exactly.  The load-bearing
rules, all inherited from the PR 6 ``charges_commute`` analysis:

* integer-valued charges (``hash_probe_ns``, ``scan_entry_ns``,
  ``binding_ns``, ``filter_ns``) sum exactly in any grouping *between
  two fractional charges*, so they may be aggregated freely within
  such a gap;
* fractional charges (``rdma_byte_ns`` remote reads) must land on the
  same running meter total as in the row path, or their float rounding
  can differ in the last bit — so probes issue in first-occurrence row
  order, and on multi-node clusters (where probes can be remote) the
  bound-start and index-start expansions preserve the row evaluator's
  probe-vs-binding interleave: each probe's captured charges replay at
  its row position, with the binding charges of earlier rows emitted
  first (single-node clusters are fractional-free and keep the fully
  aggregated fast path — the same gate as the one-shot executor's
  ``charges_commute``);
* an aggregated charge with ``times=0`` still creates its breakdown
  category at ``0.0``, which the row path would not — every aggregate
  charge here is guarded by a positive count.

Row-order contract: each expansion produces rows in the row evaluator's
nested-loop order — anchor probes are shared (row-major, entry-minor),
bound-start expansions gather per row, and ``INDEX_START`` concatenates
per-subject parts (subject-major, then row, then entry).
"""

from __future__ import annotations

from itertools import chain, repeat
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.rdf.ids import DIR_IN, DIR_OUT
from repro.sim.cost import LatencyMeter
from repro.sparql.ast import (FilterExpr, IntervalFilter, OPEN_END, Query,
                              is_variable)
from repro.sparql.planner import (BOUND_OBJECT, BOUND_SUBJECT, CONST_OBJECT,
                                  CONST_SUBJECT, PlannedStep)
from repro.temporal.evaluate import (IntervalCounters, _plain_filter_matches,
                                     interval_op_holds)

#: Column store: graph variables map to vid columns, interval endpoint
#: variables map to snapshot-number columns; all columns share length.
Columns = Dict[str, List[int]]


class _ChargeScript:
    """Captures one probe's meter charges for ordered replay.

    On multi-node clusters a probe can price fractional remote reads,
    which must land on the same running meter total as in the row
    evaluator — after the binding charges of every earlier row.  The
    expansions below fetch through this shim first (the data is needed
    to compute binding counts at all), then replay each probe's exact
    charge sequence at its row position.
    """

    __slots__ = ("calls",)

    def __init__(self) -> None:
        self.calls: List[Tuple[float, int, Optional[str]]] = []

    def charge(self, ns: float, times: int = 1,
               category: Optional[str] = None) -> None:
        self.calls.append((ns, times, category))

    def replay(self, meter: LatencyMeter) -> None:
        for ns, times, category in self.calls:
            meter.charge(ns, times=times, category=category)


class _CompiledPlainFilter:
    """One ordinary FILTER compiled into a column selector.

    Evaluation is delegated to the row path's
    :func:`~repro.temporal.evaluate._plain_filter_matches` on a minimal
    one-row dict, memoized per distinct operand-value pair — semantics
    (including the unbound-variable :class:`PlanError`) stay shared with
    the control by construction.
    """

    __slots__ = ("expr",)

    def __init__(self, expr: FilterExpr):
        self.expr = expr

    def select(self, cols: Columns, indices, interval_vars, name_of,
               resolve) -> List[int]:
        if not indices:
            # Mirror the row path's short-circuit: a filter whose
            # predecessors emptied the batch is never evaluated, so an
            # unbound variable in it must not raise here either.
            return list(indices)
        expr = self.expr
        lterm, rterm = expr.left, expr.right
        lcol = cols.get(lterm) if is_variable(lterm) else None
        rcol = cols.get(rterm) if is_variable(rterm) else None
        if is_variable(lterm) and lcol is None:
            raise PlanError(f"filter variable never bound: {lterm}")
        if is_variable(rterm) and rcol is None:
            raise PlanError(f"filter variable never bound: {rterm}")
        memo: Dict[Tuple[Optional[int], Optional[int]], bool] = {}
        out: List[int] = []
        for i in indices:
            key = (lcol[i] if lcol is not None else None,
                   rcol[i] if rcol is not None else None)
            try:
                verdict = memo[key]
            except KeyError:
                row: Dict[str, int] = {}
                if lcol is not None:
                    row[lterm] = key[0]
                if rcol is not None:
                    row[rterm] = key[1]
                verdict = _plain_filter_matches(expr, row, interval_vars,
                                                name_of, resolve)
                memo[key] = verdict
            if verdict:
                out.append(i)
        return out


class _CompiledIntervalFilter:
    """One interval FILTER compiled into a column selector.

    Constant endpoints are resolved once at compile time; variable
    endpoints read their columns, and each distinct endpoint quadruple
    runs :func:`interval_op_holds` once per batch.
    """

    __slots__ = ("ifilter", "endpoints")

    def __init__(self, ifilter: IntervalFilter):
        self.ifilter = ifilter
        # Row-path _endpoint() order: left_ts, left_te, right_ts,
        # right_te — preserved so unbound-variable errors match.
        self.endpoints: List[Tuple[Optional[str], Optional[int]]] = [
            (term, None) if is_variable(term) else (None, int(term))
            for term in (ifilter.left_ts, ifilter.left_te,
                         ifilter.right_ts, ifilter.right_te)]

    def select(self, cols: Columns, indices) -> List[int]:
        if not indices:
            return list(indices)
        op = self.ifilter.op
        resolved: List[object] = []
        for term, const in self.endpoints:
            if term is None:
                resolved.append(const)
            else:
                col = cols.get(term)
                if col is None:
                    raise PlanError(
                        f"interval variable never bound: {term}")
                resolved.append(col)
        r0, r1, r2, r3 = resolved
        memo: Dict[Tuple[int, int, int, int], bool] = {}
        out: List[int] = []
        for i in indices:
            key = (r0[i] if type(r0) is list else r0,
                   r1[i] if type(r1) is list else r1,
                   r2[i] if type(r2) is list else r2,
                   r3[i] if type(r3) is list else r3)
            try:
                verdict = memo[key]
            except KeyError:
                verdict = interval_op_holds(op, *key)
                memo[key] = verdict
            if verdict:
                out.append(i)
        return out


class CompiledIntervalPlan:
    """An interval query's steps plus its static FILTER schedule.

    The row evaluator decides filter readiness dynamically (``prune``
    after every step); readiness depends only on which pattern
    variables each executed step binds, so the schedule is a pure
    function of ``(query, steps)`` and compiles once.  Filters whose
    variables are never bound by any step and lie outside
    ``query.variables()`` are dropped without evaluation — exactly the
    row path's silent leftover behaviour.
    """

    __slots__ = ("steps", "plain_at", "interval_at", "leftover_plain",
                 "leftover_interval")

    def __init__(self, query: Query, steps: Sequence[PlannedStep]):
        self.steps: List[PlannedStep] = list(steps)
        pending_plain = list(query.filters)
        pending_interval = list(query.interval_filters)
        self.plain_at: List[List[_CompiledPlainFilter]] = []
        self.interval_at: List[List[_CompiledIntervalFilter]] = []
        bound = set()
        for step in self.steps:
            bound.update(step.pattern.variables())
            bound.update(step.pattern.interval_variables())
            ready = [f for f in pending_plain
                     if set(f.variables()) <= bound]
            iready = [f for f in pending_interval
                      if set(f.variables()) <= bound]
            pending_plain = [f for f in pending_plain if f not in ready]
            pending_interval = [f for f in pending_interval
                                if f not in iready]
            self.plain_at.append(
                [_CompiledPlainFilter(f) for f in ready])
            self.interval_at.append(
                [_CompiledIntervalFilter(f) for f in iready])
        final = bound | set(query.variables())
        self.leftover_plain = [
            _CompiledPlainFilter(f) for f in pending_plain
            if set(f.variables()) <= final]
        self.leftover_interval = [
            _CompiledIntervalFilter(f) for f in pending_interval
            if set(f.variables()) <= final]


def _extend_shared(cols: Columns, nrows: int, anchor_var: Optional[str],
                   anchor_vid: int, other_term: str, ts_var: Optional[str],
                   te_var: Optional[str], vids: List[int], sns: List[int],
                   resolve, meter: LatencyMeter,
                   binding_ns: float) -> Tuple[Columns, int]:
    """Extend the batch against one shared probe's entry list.

    Covers ``CONST_SUBJECT``/``CONST_OBJECT`` (anchor is the constant,
    ``anchor_var`` is None) and one ``INDEX_START`` subject part
    (``anchor_var`` is the subject variable).  Binding targets are
    written in the row evaluator's assignment order — anchor, unbound
    other, ``?ts``, ``?te`` — with later writes winning on variable
    name collisions, exactly like its per-row dict assignments.
    """
    if is_variable(other_term):
        const_other = None
        other_col = cols.get(other_term)
    else:
        const_other = resolve(other_term)
        if const_other is None:
            return {}, 0
        other_col = None
    ts_col = cols.get(ts_var) if ts_var is not None else None
    te_col = cols.get(te_var) if te_var is not None else None
    bind_other = other_col is None and const_other is None

    if const_other is not None:
        sel_vids: List[int] = []
        sel_sns: List[int] = []
        for v, s in zip(vids, sns):
            if v == const_other:
                sel_vids.append(v)
                sel_sns.append(s)
    else:
        sel_vids, sel_sns = vids, sns

    out: Columns = {}
    if other_col is None and ts_col is None:
        # Uniform branch: every surviving row takes every selected
        # entry (cross product), so columns tile instead of gather.
        ksel = len(sel_vids)
        if te_col is not None:
            keep = [i for i in range(nrows) if te_col[i] == OPEN_END]
            nkeep = len(keep)
        else:
            keep = None
            nkeep = nrows
        total = nkeep * ksel
        if total == 0:
            return {}, 0
        for var, col in cols.items():
            base = col if keep is None else [col[i] for i in keep]
            out[var] = list(chain.from_iterable(
                map(repeat, base, repeat(ksel))))
        targets: Columns = {}
        if anchor_var is not None:
            targets[anchor_var] = [anchor_vid] * total
        if bind_other:
            targets[other_term] = sel_vids * nkeep
        if ts_var is not None:
            targets[ts_var] = sel_sns * nkeep
        if te_var is not None:
            targets[te_var] = [OPEN_END] * total
        out.update(targets)
        meter.charge(binding_ns, times=total, category="explore")
        return out, total

    # Constrained branch: a bound other-vertex or ``?ts`` column makes
    # the match per-row; index the entry pool once and gather.
    index: Dict = {}
    if other_col is not None and ts_col is not None:
        for pos, pair in enumerate(zip(sel_vids, sel_sns)):
            index.setdefault(pair, []).append(pos)
        keys = list(zip(other_col, ts_col))
    elif other_col is not None:
        for pos, v in enumerate(sel_vids):
            index.setdefault(v, []).append(pos)
        keys = other_col
    else:
        for pos, s in enumerate(sel_sns):
            index.setdefault(s, []).append(pos)
        keys = ts_col
    empty: Tuple[int, ...] = ()
    pos_lists = []
    for i in range(nrows):
        if te_col is not None and te_col[i] != OPEN_END:
            pos_lists.append(empty)
        else:
            pos_lists.append(index.get(keys[i], empty))
    counts = [len(p) for p in pos_lists]
    total = sum(counts)
    if total == 0:
        return {}, 0
    for var, col in cols.items():
        out[var] = list(chain.from_iterable(map(repeat, col, counts)))
    flat = [p for plist in pos_lists for p in plist]
    targets = {}
    if anchor_var is not None:
        targets[anchor_var] = [anchor_vid] * total
    if bind_other:
        targets[other_term] = [sel_vids[p] for p in flat]
    if ts_var is not None:
        targets[ts_var] = [sel_sns[p] for p in flat]
    if te_var is not None:
        targets[te_var] = [OPEN_END] * total
    out.update(targets)
    meter.charge(binding_ns, times=total, category="explore")
    return out, total


def _extend_bound(cols: Columns, nrows: int, start_term: str,
                  other_term: str, ts_var: Optional[str],
                  te_var: Optional[str], eid: int, direction: int, store,
                  home_node: int, snapshot: int, meter: LatencyMeter,
                  counters: IntervalCounters, resolve,
                  binding_ns: float) -> Tuple[Columns, int]:
    """Extend the batch through a bound-start expansion step.

    One batched probe per distinct start vertex in first-occurrence
    row order — the same probes, in the same order, as the row
    evaluator's per-step probe cache.  On a single-node cluster every
    probe charge is an integer and the whole batch charges aggregated;
    on multi-node clusters the probes capture their (possibly
    fractional) charges for replay interleaved with the binding
    charges, preserving the row path's charge sequence bit-for-bit.
    """
    starts = cols[start_term]
    if len(store.cluster.nodes) > 1:
        fetched = {}
        scripts: Optional[Dict[int, _ChargeScript]] = {}
        for start in starts:
            if start in fetched:
                continue
            shim = _ChargeScript()
            pair = store.neighbors_versions_from(
                home_node, start, eid, direction, shim, max_sn=snapshot,
                category="store")
            fetched[start] = pair
            scripts[start] = shim
            counters.record(len(pair[0]))
    else:
        scripts = None
        fetched = store.neighbors_versions_batch(
            home_node, starts, eid, direction, meter, max_sn=snapshot,
            category="store")
        for vlist, _ in fetched.values():
            counters.record(len(vlist))

    def charge_bindings(counts: Optional[List[int]], total: int) -> None:
        """Emit binding charges (and, multi-node, the probe replays).

        Replays each captured probe at its first-occurrence row, with
        the binding charges of earlier rows flushed first — the row
        evaluator's exact interleave.  ``counts`` is None when no row
        produces bindings (unresolvable constant other-vertex).
        """
        if scripts is None:
            if total:
                meter.charge(binding_ns, times=total, category="explore")
            return
        pending = 0
        remaining = dict(scripts)
        for i in range(nrows):
            shim = remaining.pop(starts[i], None)
            if shim is not None:
                if pending:
                    meter.charge(binding_ns, times=pending,
                                 category="explore")
                    pending = 0
                shim.replay(meter)
            if counts is not None:
                pending += counts[i]
        if pending:
            meter.charge(binding_ns, times=pending, category="explore")

    if is_variable(other_term):
        const_other = None
        other_col = cols.get(other_term)
    else:
        # Resolved after the probes on purpose: the row path issues its
        # cached probes before extend() discovers the constant is
        # unknown, so the probe charges land either way.
        const_other = resolve(other_term)
        if const_other is None:
            charge_bindings(None, 0)
            return {}, 0
        other_col = None
    ts_col = cols.get(ts_var) if ts_var is not None else None
    te_col = cols.get(te_var) if te_var is not None else None
    bind_other = other_col is None and const_other is None

    if const_other is not None:
        prepared: Dict[int, Tuple[List[int], List[int]]] = {}
        for start, (vlist, slist) in fetched.items():
            pv: List[int] = []
            ps: List[int] = []
            for v, s in zip(vlist, slist):
                if v == const_other:
                    pv.append(v)
                    ps.append(s)
            prepared[start] = (pv, ps)
    else:
        prepared = fetched

    out: Columns = {}
    if other_col is None and ts_col is None:
        counts = []
        for i in range(nrows):
            if te_col is not None and te_col[i] != OPEN_END:
                counts.append(0)
            else:
                counts.append(len(prepared[starts[i]][0]))
        total = sum(counts)
        charge_bindings(counts, total)
        if total == 0:
            return {}, 0
        for var, col in cols.items():
            out[var] = list(chain.from_iterable(map(repeat, col, counts)))
        targets: Columns = {}
        if bind_other:
            targets[other_term] = list(chain.from_iterable(
                prepared[starts[i]][0] for i in range(nrows) if counts[i]))
        if ts_var is not None:
            targets[ts_var] = list(chain.from_iterable(
                prepared[starts[i]][1] for i in range(nrows) if counts[i]))
        if te_var is not None:
            targets[te_var] = [OPEN_END] * total
        out.update(targets)
        return out, total

    # Constrained branch: lazy per-start indexes over the entry pools.
    indexes: Dict[int, Dict] = {}

    def index_for(start: int) -> Dict:
        idx = indexes.get(start)
        if idx is None:
            idx = {}
            pv, ps = prepared[start]
            if other_col is not None and ts_col is not None:
                for pos, pair in enumerate(zip(pv, ps)):
                    idx.setdefault(pair, []).append(pos)
            elif other_col is not None:
                for pos, v in enumerate(pv):
                    idx.setdefault(v, []).append(pos)
            else:
                for pos, s in enumerate(ps):
                    idx.setdefault(s, []).append(pos)
            indexes[start] = idx
        return idx

    empty: Tuple[int, ...] = ()
    pos_lists = []
    for i in range(nrows):
        if te_col is not None and te_col[i] != OPEN_END:
            pos_lists.append(empty)
            continue
        if other_col is not None and ts_col is not None:
            key = (other_col[i], ts_col[i])
        elif other_col is not None:
            key = other_col[i]
        else:
            key = ts_col[i]
        pos_lists.append(index_for(starts[i]).get(key, empty))
    counts = [len(p) for p in pos_lists]
    total = sum(counts)
    charge_bindings(counts, total)
    if total == 0:
        return {}, 0
    for var, col in cols.items():
        out[var] = list(chain.from_iterable(map(repeat, col, counts)))
    targets = {}
    if bind_other:
        targets[other_term] = [prepared[starts[i]][0][p]
                               for i in range(nrows) for p in pos_lists[i]]
    if ts_var is not None:
        targets[ts_var] = [prepared[starts[i]][1][p]
                           for i in range(nrows) for p in pos_lists[i]]
    if te_var is not None:
        targets[te_var] = [OPEN_END] * total
    out.update(targets)
    return out, total


def _extend_index(cols: Columns, nrows: int, pattern, eid: int, store,
                  home_node: int, snapshot: int, meter: LatencyMeter,
                  counters: IntervalCounters, resolve,
                  binding_ns: float) -> Tuple[Columns, int]:
    """``INDEX_START``: enumerate subjects, expand each subject part.

    Index vertices are deduplicated per shard and each vertex is owned
    by exactly one shard, so the gathered subjects are globally unique
    — the batch probe's distinct-vid dedup therefore issues exactly the
    row path's one probe per subject.  Parts concatenate subject-major
    (then row, then entry), matching the row evaluator's loop nesting.

    On a single-node cluster every probe charge is an integer, so all
    subjects fetch in one aggregated call up front.  On multi-node
    clusters a probe can price fractional remote reads, which must stay
    interleaved with the binding charges exactly as in the row path —
    each subject probes just in time, followed by that subject's
    binding charge (the one-shot executor's ``charges_commute`` gate).
    """
    subjects = store.gather_index(home_node, eid, DIR_OUT, meter,
                                  category="store")
    if len(store.cluster.nodes) > 1:
        fetched = None
    else:
        fetched = store.neighbors_versions_batch(
            home_node, subjects, eid, DIR_OUT, meter, max_sn=snapshot,
            category="store")
        for vlist, _ in fetched.values():
            counters.record(len(vlist))

    def probe(svid: int) -> Tuple[List[int], List[int]]:
        if fetched is not None:
            return fetched[svid]
        pair = store.neighbors_versions_from(
            home_node, svid, eid, DIR_OUT, meter, max_sn=snapshot,
            category="store")
        counters.record(len(pair[0]))
        return pair

    if nrows == 1 and not cols:
        # First-step fast path: the batch is the single empty row, so
        # every subject part is its (optionally constant-filtered)
        # entry list verbatim — no per-part column tiling needed.
        if is_variable(pattern.object):
            const_other = None
        else:
            const_other = resolve(pattern.object)
            if const_other is None:
                if fetched is None:
                    # The row path probes every subject before extend()
                    # discovers the constant is unknown.
                    for svid in subjects:
                        probe(svid)
                return {}, 0
        subj_col: List[int] = []
        obj_col: List[int] = []
        ts_col: List[int] = []
        for svid in subjects:
            vids, sns = probe(svid)
            if const_other is not None:
                keep = [k for k, v in enumerate(vids) if v == const_other]
                vids = [vids[k] for k in keep]
                sns = [sns[k] for k in keep]
            n = len(vids)
            if not n:
                continue
            if fetched is None:
                meter.charge(binding_ns, times=n, category="explore")
            subj_col.extend(repeat(svid, n))
            obj_col.extend(vids)
            ts_col.extend(sns)
        total = len(subj_col)
        if total == 0:
            return {}, 0
        # Row-path assignment order, later writes winning on variable
        # name collisions (subject, unbound object, ?ts, ?te).
        targets: Columns = {pattern.subject: subj_col}
        if const_other is None:
            targets[pattern.object] = obj_col
        if pattern.ts is not None:
            targets[pattern.ts] = ts_col
        if pattern.te is not None:
            targets[pattern.te] = [OPEN_END] * total
        if fetched is not None:
            meter.charge(binding_ns, times=total, category="explore")
        return targets, total

    parts: List[Columns] = []
    total = 0
    for svid in subjects:
        vids, sns = probe(svid)
        part, part_n = _extend_shared(
            cols, nrows, pattern.subject, svid, pattern.object,
            pattern.ts, pattern.te, vids, sns, resolve, meter, binding_ns)
        if part_n:
            parts.append(part)
            total += part_n
    if not parts:
        return {}, 0
    if len(parts) == 1:
        return parts[0], total
    merged = {var: list(chain.from_iterable(part[var] for part in parts))
              for var in parts[0]}
    return merged, total


def evaluate_interval_batch(query: Query, plan: CompiledIntervalPlan,
                            store, home_node: int, snapshot: int,
                            meter: LatencyMeter,
                            counters: Optional[IntervalCounters] = None
                            ) -> Tuple[List[str], List[Tuple[int, ...]]]:
    """Run an interval query on the columnar batch path.

    Drop-in twin of
    :func:`repro.temporal.evaluate.evaluate_interval_query`: same
    ``(variables, rows)`` result in the same order, same simulated
    charges (total and per-category breakdown), same traversal
    counters — proven by the batch-vs-row differential suite.
    """
    strings = store.strings
    cost = store.cluster.cost
    name_of = strings.entity_name
    resolve = strings.lookup_entity
    if counters is None:
        counters = IntervalCounters()
    interval_vars = set(query.interval_variables())
    binding_ns = cost.binding_ns
    filter_ns = cost.filter_ns

    cols: Columns = {}
    nrows = 1

    def apply_filters(plain, interval) -> None:
        nonlocal cols, nrows
        count = len(plain) + len(interval)
        if count == 0 or nrows == 0:
            # Guarded so a times=0 charge cannot create a breakdown
            # category the row path never touched.
            return
        meter.charge(filter_ns, times=nrows * count, category="filter")
        indices = range(nrows)
        for f in plain:
            indices = f.select(cols, indices, interval_vars, name_of,
                               resolve)
        for f in interval:
            indices = f.select(cols, indices)
        if len(indices) != nrows:
            cols = {var: [col[i] for i in indices]
                    for var, col in cols.items()}
            nrows = len(indices)

    for at, step in enumerate(plan.steps):
        pattern = step.pattern
        eid = strings.lookup_predicate(pattern.predicate)
        if eid is None:
            # Unknown predicate empties the batch before this step's
            # filters — the row path breaks before its prune() too.
            nrows = 0
            break
        if step.kind == CONST_SUBJECT:
            anchor = resolve(pattern.subject)
            if anchor is None:
                cols, nrows = {}, 0
            else:
                vids, sns = store.neighbors_versions_from(
                    home_node, anchor, eid, DIR_OUT, meter,
                    max_sn=snapshot, category="store")
                counters.record(len(vids))
                cols, nrows = _extend_shared(
                    cols, nrows, None, anchor, pattern.object,
                    pattern.ts, pattern.te, vids, sns, resolve, meter,
                    binding_ns)
        elif step.kind == CONST_OBJECT:
            anchor = resolve(pattern.object)
            if anchor is None:
                cols, nrows = {}, 0
            else:
                vids, sns = store.neighbors_versions_from(
                    home_node, anchor, eid, DIR_IN, meter,
                    max_sn=snapshot, category="store")
                counters.record(len(vids))
                cols, nrows = _extend_shared(
                    cols, nrows, None, anchor, pattern.subject,
                    pattern.ts, pattern.te, vids, sns, resolve, meter,
                    binding_ns)
        elif step.kind == BOUND_SUBJECT:
            cols, nrows = _extend_bound(
                cols, nrows, pattern.subject, pattern.object, pattern.ts,
                pattern.te, eid, DIR_OUT, store, home_node, snapshot,
                meter, counters, resolve, binding_ns)
        elif step.kind == BOUND_OBJECT:
            cols, nrows = _extend_bound(
                cols, nrows, pattern.object, pattern.subject, pattern.ts,
                pattern.te, eid, DIR_IN, store, home_node, snapshot,
                meter, counters, resolve, binding_ns)
        else:
            cols, nrows = _extend_index(
                cols, nrows, pattern, eid, store, home_node, snapshot,
                meter, counters, resolve, binding_ns)
        apply_filters(plan.plain_at[at], plan.interval_at[at])
        if nrows == 0:
            break

    apply_filters(plan.leftover_plain, plan.leftover_interval)

    out_vars = query.projected()
    if nrows == 0:
        out_rows: List[Tuple[int, ...]] = []
    elif out_vars:
        out_rows = list(dict.fromkeys(zip(*[cols[v] for v in out_vars])))
    else:
        out_rows = [()]
    offset = query.offset or 0
    if offset:
        out_rows = out_rows[offset:]
    if query.limit is not None:
        out_rows = out_rows[:query.limit]
    return out_vars, out_rows
