"""The SPARQL-T temporal query engine.

Answers point-in-time (``FROM SNAPSHOT <t>``) and interval (quintuple
pattern) queries from the persistent store's version chains, without
blocking ingestion: a temporal read pins its snapshot against the GC
frontier (:meth:`Coordinator.pin_snapshot`), runs while injectors keep
appending (append-only visibility makes the pinned prefix immutable),
and unpins when done.  Unanswerable snapshots — below the GC frontier
or above the stable SN — are refused with typed
:class:`~repro.errors.TemporalError` subclasses, never silently wrong.

Execution splits by query shape:

* *snapshot-only* queries (``FROM SNAPSHOT <t>``, no quintuple patterns
  or interval FILTERs) delegate to the one-shot engine's columnar fast
  path with the read snapshot overridden — same plans, same charges,
  same results as a plain one-shot at that snapshot (the differential
  suite proves ``FROM SNAPSHOT <latest>`` bit-identical to a plain
  one-shot);
* *interval* queries run on the columnar batch kernels
  (:mod:`repro.temporal.kernels`) over batched version-carrying store
  reads; the row-based evaluator (:mod:`repro.temporal.evaluate`)
  stays as the differential control (``use_batch=False``), proven
  bit-identical in rows, charges, and digest.

Compiled interval plans are LRU-cached (:data:`PLAN_CACHE_CAPACITY`)
keyed by AST, ordering, and snapshot, with hit/miss/eviction counters
surfaced in ``CacheStats``.

Both paths count version-chain traversal work (snapshot reads, entries
scanned, deepest chain) into the :class:`TemporalRecord` and — when
observability is enabled — into ``temporal_*`` metrics under a
``temporal`` trace span.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional

from repro.core.coordinator import Coordinator
from repro.core.oneshot import OneShotEngine, OneShotRecord
from repro.errors import UnsupportedOperationError
from repro.sim.cluster import Cluster
from repro.sim.cost import LatencyMeter
from repro.sparql.ast import Query
from repro.sparql.planner import plan_order, plan_steps
from repro.store.distributed import DistributedStore, PersistentAccess
from repro.store.executor import ExecutionResult
from repro.temporal.evaluate import (IntervalCounters,
                                     evaluate_interval_query)
from repro.temporal.kernels import (CompiledIntervalPlan,
                                    evaluate_interval_batch)

#: Bound on retained per-execution records (oldest dropped first).
RECORD_CAPACITY = 4096

#: Bound on cached compiled interval plans.  The cache key includes the
#: query's ``cache_key()`` — which carries the read snapshot — so a
#: client sweeping snapshots mints a fresh key per sweep step; without
#: eviction the cache would grow without limit (LRU, oldest-use first).
PLAN_CACHE_CAPACITY = 128


@dataclass
class TemporalRecord(OneShotRecord):
    """One completed temporal execution, with traversal statistics."""

    #: ``len(result.rows)`` — survives archiving (the bounded
    #: ``TemporalEngine.records`` copy drops the rows themselves so a
    #: retained history never holds query outputs alive).
    row_count: int = 0
    #: Version-carrying store probes issued (snapshot reads).
    snapshot_reads: int = 0
    #: Total version-chain entries traversed across those probes.
    version_entries: int = 0
    #: Longest single version chain traversed.
    max_chain_depth: int = 0
    #: Whether the interval evaluator ran (False = snapshot-only
    #: delegation to the columnar one-shot path).
    interval_path: bool = False
    #: Whether the columnar batch kernels ran (False = the row-based
    #: differential control, ``row_path`` in the bench harness).
    batch_path: bool = False


class _CountingAccess(PersistentAccess):
    """Persistent-store access that counts snapshot reads.

    Wraps the exact reads the one-shot executor would issue anyway —
    counting is wall-clock-only bookkeeping, so the delegated execution
    stays bit-identical (rows, meter, digest) to a plain one-shot.
    """

    def __init__(self, store: DistributedStore, counters: IntervalCounters,
                 home_node: int = 0, max_sn: Optional[int] = None):
        super().__init__(store, home_node=home_node, max_sn=max_sn)
        self._counters = counters

    def neighbors(self, vid: int, eid: int, d: int,
                  meter: LatencyMeter) -> List[int]:
        visible = super().neighbors(vid, eid, d, meter)
        self._counters.record(len(visible))
        return visible

    def neighbors_many(self, vids: Iterable[int], eid: int, d: int,
                       meter: LatencyMeter) -> Dict[int, List[int]]:
        fetched = super().neighbors_many(vids, eid, d, meter)
        for visible in fetched.values():
            self._counters.record(len(visible))
        return fetched


class TemporalEngine:
    """Executes SPARQL-T queries under snapshot pinning."""

    def __init__(self, cluster: Cluster, store: DistributedStore,
                 coordinator: Coordinator, oneshot: OneShotEngine,
                 use_batch: bool = True):
        self.cluster = cluster
        self.store = store
        self.coordinator = coordinator
        self.oneshot = oneshot
        #: Interval queries run the columnar batch kernels when True,
        #: the row-based evaluator (the differential control) when
        #: False.  Both share one compiled plan, so toggling changes
        #: only Python speed — never rows, charges, or digest.
        self.use_batch = use_batch
        self._next_home = 0
        #: Completed executions (bounded), newest last; the ablation
        #: report reads traversal statistics from here.
        self.records: List[TemporalRecord] = []
        #: Compiled interval plans, LRU-bounded at
        #: :data:`PLAN_CACHE_CAPACITY` entries, keyed
        #: ``(query.cache_key(), order)`` — AST + ordering + snapshot.
        self._plan_cache: Dict[tuple, CompiledIntervalPlan] = {}
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.plan_cache_evictions = 0
        #: Interval executions by kernel (snapshot-only delegations are
        #: counted by the one-shot engine's own executor counters).
        self.batch_executions = 0
        self.row_executions = 0
        #: Observability hooks (attached by ``engine.enable_observability``).
        self.tracer = None
        self.metrics = None

    def _plan_interval(self, query: Query) -> CompiledIntervalPlan:
        """The compiled plan for one interval query, LRU-cached.

        Plan compilation is pure wall-clock work (the simulated plan
        charge is the dispatch charge either way), so caching cannot
        move a single simulated nanosecond — both kernels replay the
        cached steps and filter schedule identically.
        """
        stats = self.oneshot._statistics()
        order = plan_order(query.patterns, stats=stats)
        key = (query.cache_key(), tuple(order))
        cache = self._plan_cache
        plan = cache.pop(key, None)
        if plan is not None:
            self.plan_cache_hits += 1
            cache[key] = plan  # re-insert: most recently used
            return plan
        self.plan_cache_misses += 1
        plan = CompiledIntervalPlan(
            query, plan_steps(query.patterns, stats=stats))
        cache[key] = plan
        if len(cache) > PLAN_CACHE_CAPACITY:
            del cache[next(iter(cache))]
            self.plan_cache_evictions += 1
        return plan

    def execute(self, query: Query, home_node: Optional[int] = None,
                contended: bool = False) -> TemporalRecord:
        """Run one temporal query at its (pinned) read snapshot.

        The snapshot defaults to the current stable SN when the query
        carries no ``FROM SNAPSHOT`` clause (interval queries over live
        data).  Raises a typed :class:`~repro.errors.TemporalError` when
        the snapshot is outside the readable range.
        """
        if query.is_continuous:
            raise UnsupportedOperationError(
                "temporal queries are one-shot; continuous queries cannot "
                "carry snapshot scopes or interval patterns")
        if home_node is None:
            home_node = self._next_home % self.cluster.num_nodes
            self._next_home += 1
        snapshot = query.snapshot if query.snapshot is not None \
            else self.coordinator.stable_sn
        interval_path = bool(query.interval_filters) or \
            any(p.has_interval for p in query.patterns)
        counters = IntervalCounters()

        # Validate-and-pin before touching any chain: advance() cannot
        # move the GC frontier past the pinned SN while the read runs.
        self.coordinator.pin_snapshot(snapshot)
        try:
            if interval_path:
                record = self._execute_interval(query, home_node, snapshot,
                                                contended, counters)
            else:
                record = self._execute_snapshot(query, home_node, snapshot,
                                                contended, counters)
        finally:
            self.coordinator.unpin_snapshot(snapshot)

        records = self.records
        if len(records) >= RECORD_CAPACITY:
            del records[0]
        # Archive without the rows: a temporal record can carry very
        # large outputs, and keeping thousands of them alive turns the
        # history buffer into allocator/GC pressure on later queries.
        records.append(replace(
            record, result=ExecutionResult(
                variables=record.result.variables, rows=[])))
        if self.metrics is not None:
            self.metrics.counter("temporal_snapshot_reads").inc(
                record.snapshot_reads)
            self.metrics.counter("temporal_version_entries").inc(
                record.version_entries)
            self.metrics.histogram("temporal_ns").observe(record.meter.ns)
        return record

    def _execute_snapshot(self, query: Query, home_node: int, snapshot: int,
                          contended: bool,
                          counters: IntervalCounters) -> TemporalRecord:
        """Snapshot-only path: the columnar one-shot engine at ``snapshot``.

        The counting access factory mirrors the default factory of
        ``OneShotEngine.execute`` exactly (same access object shape, same
        reads, same charges) and only adds wall-clock counters.
        """
        def factory(node_id):
            access = _CountingAccess(self.store, counters,
                                     home_node=node_id, max_sn=snapshot)
            return lambda pattern: access

        act = self.tracer.begin("temporal", "query", None,
                                snapshot=snapshot, path="snapshot",
                                home_node=home_node) \
            if self.tracer is not None else None
        inner = self.oneshot.execute(query, home_node=home_node,
                                     contended=contended, snapshot=snapshot,
                                     access_factory=factory)
        if act is not None:
            act.label(rows=len(inner.result.rows),
                      snapshot_reads=counters.snapshot_reads,
                      version_entries=counters.version_entries)
            act.end()
        return TemporalRecord(
            result=inner.result, meter=inner.meter, snapshot=snapshot,
            row_count=len(inner.result.rows),
            snapshot_reads=counters.snapshot_reads,
            version_entries=counters.version_entries,
            max_chain_depth=counters.max_chain_depth,
            interval_path=False,
            batch_path=self.oneshot.explorer.use_batch)

    def _execute_interval(self, query: Query, home_node: int, snapshot: int,
                          contended: bool,
                          counters: IntervalCounters) -> TemporalRecord:
        """Interval path: columnar batch kernels (or the row control)."""
        use_batch = self.use_batch
        meter = LatencyMeter()
        act = self.tracer.begin("temporal", "query", meter,
                                snapshot=snapshot, path="interval",
                                kernel="batch" if use_batch else "row",
                                home_node=home_node,
                                patterns=len(query.patterns)) \
            if self.tracer is not None else None
        meter.charge(self.cluster.cost.task_dispatch_ns, category="dispatch")
        plan = self._plan_interval(query)
        if act is not None:
            act.mark("plan", steps=len(plan.steps))
        if use_batch:
            self.batch_executions += 1
            variables, rows = evaluate_interval_batch(
                query, plan, self.store, home_node, snapshot, meter,
                counters=counters)
        else:
            self.row_executions += 1
            variables, rows = evaluate_interval_query(
                query, plan.steps, self.store, home_node, snapshot, meter,
                counters=counters)
        if contended and self.oneshot.contention_factor > 0:
            meter.charge(meter.ns * self.oneshot.contention_factor,
                         category="contention")
        if act is not None:
            act.label(rows=len(rows),
                      snapshot_reads=counters.snapshot_reads,
                      version_entries=counters.version_entries,
                      max_chain_depth=counters.max_chain_depth)
            act.end()
        result = ExecutionResult(variables=variables, rows=rows)
        return TemporalRecord(
            result=result, meter=meter, snapshot=snapshot,
            row_count=len(rows),
            snapshot_reads=counters.snapshot_reads,
            version_entries=counters.version_entries,
            max_chain_depth=counters.max_chain_depth,
            interval_path=True, batch_path=use_batch)
