"""Row-based evaluator for SPARQL-T interval (quintuple) queries.

Quintuple patterns need each matched entry's insertion snapshot next to
its value, which the columnar one-shot kernels deliberately do not carry
(their visible-prefix reads drop the SN column).  Interval queries
originally ran *only* here, on this row-based evaluator over
:meth:`DistributedStore.neighbors_versions_from`, precisely to avoid
threading SN columns through a hot batch path before the charge
discipline for doing so was proven.  That caveat is now resolved:
:mod:`repro.temporal.kernels` carries the ``?ts`` column through
batched, version-carrying store reads under the same
``charges_commute`` rules as every other kernel, and the temporal
engine runs it by default.  This evaluator stays as the differential
control (``use_batch=False``; ``row_path`` in the bench harness) — the
batch path must stay bit-identical to it in rows, simulated charges,
and state digest.

The evaluator reuses the planner's selectivity ordering
(:func:`repro.sparql.planner.plan_steps`) and mirrors the graph
explorer's shape: walk the ordered steps, expand binding rows through
version-carrying neighbour lookups, bind ``?ts`` to the entry's
insertion SN and ``?te`` to :data:`~repro.sparql.ast.OPEN_END` (the
store is append-only, so every visible entry is still live), and prune
with ordinary and interval FILTERs as soon as their variables are bound.

Charges are deterministic simulated time: store probes charge through
the version read (hash probe + visible-prefix scan + remote reads),
each produced binding charges ``binding_ns``, each filter application
``filter_ns``.  Interval queries are a new query family, so these
charges extend the cost model's coverage without touching any existing
golden workload.

Compaction note: bounded scalarization relabels SNs at or below the GC
frontier to the base snapshot, coarsening ``?ts`` for pre-frontier
entries.  Queries whose interval conditions need exact pre-frontier
history must run with scalarization disabled (or a larger
``keep_snapshots``); the snapshot pin taken by the engine guarantees
the frontier cannot move past the read snapshot *mid-query*.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import PlanError
from repro.rdf.ids import DIR_IN, DIR_OUT
from repro.sim.cost import LatencyMeter
from repro.sparql.ast import (IntervalFilter, FilterExpr, OPEN_END, Query,
                              is_variable)
from repro.sparql.evaluate import term_number
from repro.sparql.planner import (BOUND_OBJECT, BOUND_SUBJECT, CONST_OBJECT,
                                  CONST_SUBJECT, PlannedStep)

#: One binding row: graph variables map to vids, interval endpoint
#: variables map to snapshot numbers.
Row = Dict[str, int]


def interval_op_holds(op: str, s1: int, e1: int, s2: int, e2: int) -> bool:
    """Whether ``[s1, e1) op [s2, e2)`` holds (half-open semantics).

    ``OVERLAPS``: the intervals share at least one snapshot.
    ``DURING``: the left interval is contained in the right.
    ``BEFORE`` / ``AFTER``: the left ends at-or-before the right starts /
    starts at-or-after the right ends.  ``STARTS``: equal lower endpoints.
    """
    if op == "OVERLAPS":
        return s1 < e2 and s2 < e1
    if op == "DURING":
        return s1 >= s2 and e1 <= e2
    if op == "BEFORE":
        return e1 <= s2
    if op == "AFTER":
        return s1 >= e2
    if op == "STARTS":
        return s1 == s2
    raise PlanError(f"unsupported interval operator: {op}")


def _endpoint(term: str, row: Row) -> int:
    """Resolve one interval-filter endpoint under a row."""
    if is_variable(term):
        value = row.get(term)
        if value is None:
            raise PlanError(f"interval variable never bound: {term}")
        return value
    return int(term)


def interval_filter_matches(ifilter: IntervalFilter, row: Row) -> bool:
    """Whether one row satisfies one interval FILTER."""
    return interval_op_holds(
        ifilter.op,
        _endpoint(ifilter.left_ts, row), _endpoint(ifilter.left_te, row),
        _endpoint(ifilter.right_ts, row), _endpoint(ifilter.right_te, row))


def _plain_filter_matches(expr: FilterExpr, row: Row,
                          interval_vars: Set[str],
                          name_of: Callable[[int], str],
                          resolve: Callable[[str], Optional[int]]) -> bool:
    """Ordinary FILTER semantics extended to interval variables.

    An interval variable's binding *is* its numeric value (a snapshot
    number), where a graph variable's binding is a vid whose entity name
    may parse as a number — same comparison rules as
    :func:`repro.sparql.evaluate.filter_matches` otherwise.
    """
    def operand(term: str) -> Tuple[Optional[int], Optional[str]]:
        if is_variable(term):
            value = row.get(term)
            if value is None:
                raise PlanError(f"filter variable never bound: {term}")
            if term in interval_vars:
                return None, str(value)
            return value, name_of(value)
        return resolve(term), term

    left_vid, left_name = operand(expr.left)
    right_vid, right_name = operand(expr.right)
    if expr.op == "=":
        if left_vid is not None and right_vid is not None:
            return left_vid == right_vid
        return left_name == right_name
    if expr.op == "!=":
        if left_vid is not None and right_vid is not None:
            return left_vid != right_vid
        return left_name != right_name
    left_num = term_number(left_name) if left_name is not None else None
    right_num = term_number(right_name) if right_name is not None else None
    if left_num is None or right_num is None:
        return False  # SPARQL: type errors eliminate the row
    if expr.op == "<":
        return left_num < right_num
    if expr.op == "<=":
        return left_num <= right_num
    if expr.op == ">":
        return left_num > right_num
    return left_num >= right_num


class IntervalCounters:
    """Version-chain traversal statistics of one interval execution."""

    __slots__ = ("snapshot_reads", "version_entries", "max_chain_depth")

    def __init__(self) -> None:
        #: Version-carrying store probes issued (one per key read).
        self.snapshot_reads = 0
        #: Total version-chain entries traversed across all probes.
        self.version_entries = 0
        #: Longest single version chain traversed.
        self.max_chain_depth = 0

    def record(self, entries: int) -> None:
        self.snapshot_reads += 1
        self.version_entries += entries
        if entries > self.max_chain_depth:
            self.max_chain_depth = entries


def evaluate_interval_query(query: Query, steps: Sequence[PlannedStep],
                            store, home_node: int, snapshot: int,
                            meter: LatencyMeter,
                            counters: Optional[IntervalCounters] = None
                            ) -> Tuple[List[str], List[Tuple[int, ...]]]:
    """Run an interval (quintuple) query at a pinned ``snapshot``.

    Returns ``(variables, rows)`` ready for an ``ExecutionResult``:
    the projected columns, graph variables as vids and interval
    variables as snapshot numbers.
    """
    strings = store.strings
    cost = store.cluster.cost
    name_of = strings.entity_name
    resolve = strings.lookup_entity
    if counters is None:
        counters = IntervalCounters()

    interval_vars = set(query.interval_variables())
    plain_filters = list(query.filters)
    interval_filters = list(query.interval_filters)

    def versions(vid: int, eid: int, d: int) -> Tuple[List[int], List[int]]:
        vids, sns = store.neighbors_versions_from(
            home_node, vid, eid, d, meter, max_sn=snapshot,
            category="store")
        counters.record(len(vids))
        return vids, sns

    def prune(rows: List[Row], bound: Set[str]) -> List[Row]:
        """Apply every filter whose variables are now fully bound."""
        nonlocal plain_filters, interval_filters
        ready = [f for f in plain_filters if set(f.variables()) <= bound]
        iready = [f for f in interval_filters
                  if set(f.variables()) <= bound]
        if not ready and not iready:
            return rows
        plain_filters = [f for f in plain_filters if f not in ready]
        interval_filters = [f for f in interval_filters if f not in iready]
        kept: List[Row] = []
        for row in rows:
            meter.charge(cost.filter_ns, times=len(ready) + len(iready),
                         category="filter")
            if all(_plain_filter_matches(f, row, interval_vars,
                                         name_of, resolve) for f in ready) \
                    and all(interval_filter_matches(f, row) for f in iready):
                kept.append(row)
        return kept

    rows: List[Row] = [{}]
    bound: Set[str] = set()
    for step in steps:
        pattern = step.pattern
        eid = strings.lookup_predicate(pattern.predicate)
        if eid is None:
            rows = []
            break
        ts_var, te_var = pattern.ts, pattern.te
        next_rows: List[Row] = []

        def extend(row: Row, anchor_var: Optional[str],
                   anchor_vid: int, other_term: str,
                   vids: List[int], sns: List[int]) -> None:
            """Bind one probe's entries against ``row``."""
            other_is_var = is_variable(other_term)
            other_bound = other_is_var and other_term in row
            if not other_is_var:
                other_vid = resolve(other_term)
                if other_vid is None:
                    return
            elif other_bound:
                other_vid = row[other_term]
            else:
                other_vid = None
            for vid, sn in zip(vids, sns):
                if other_vid is not None and vid != other_vid:
                    continue
                if ts_var is not None and ts_var in row \
                        and row[ts_var] != sn:
                    continue
                if te_var is not None and te_var in row \
                        and row[te_var] != OPEN_END:
                    continue
                new = dict(row)
                if anchor_var is not None:
                    new[anchor_var] = anchor_vid
                if other_vid is None:
                    new[other_term] = vid
                if ts_var is not None:
                    new[ts_var] = sn
                if te_var is not None:
                    new[te_var] = OPEN_END
                meter.charge(cost.binding_ns, category="explore")
                next_rows.append(new)

        if step.kind == CONST_SUBJECT:
            subject_vid = resolve(pattern.subject)
            if subject_vid is not None:
                vids, sns = versions(subject_vid, eid, DIR_OUT)
                for row in rows:
                    extend(row, None, subject_vid, pattern.object,
                           vids, sns)
        elif step.kind == CONST_OBJECT:
            object_vid = resolve(pattern.object)
            if object_vid is not None:
                vids, sns = versions(object_vid, eid, DIR_IN)
                for row in rows:
                    extend(row, None, object_vid, pattern.subject,
                           vids, sns)
        elif step.kind == BOUND_SUBJECT:
            cache: Dict[int, Tuple[List[int], List[int]]] = {}
            for row in rows:
                subject_vid = row[pattern.subject]
                if subject_vid not in cache:
                    cache[subject_vid] = versions(subject_vid, eid, DIR_OUT)
                vids, sns = cache[subject_vid]
                extend(row, None, subject_vid, pattern.object, vids, sns)
        elif step.kind == BOUND_OBJECT:
            cache = {}
            for row in rows:
                object_vid = row[pattern.object]
                if object_vid not in cache:
                    cache[object_vid] = versions(object_vid, eid, DIR_IN)
                vids, sns = cache[object_vid]
                extend(row, None, object_vid, pattern.subject, vids, sns)
        else:  # INDEX_START: enumerate subjects, then expand each
            subjects = store.gather_index(home_node, eid, DIR_OUT, meter,
                                          category="store")
            for subject_vid in subjects:
                vids, sns = versions(subject_vid, eid, DIR_OUT)
                for row in rows:
                    extend(row, pattern.subject, subject_vid,
                           pattern.object, vids, sns)

        rows = next_rows
        bound.update(pattern.variables())
        bound.update(pattern.interval_variables())
        rows = prune(rows, bound)
        if not rows:
            break

    if plain_filters or interval_filters:
        # Every declared variable is bound once all steps ran; leftover
        # filters here mean the row set emptied before their step.
        rows = prune(rows, bound | set(query.variables()))

    out_vars = query.projected()
    seen: Set[Tuple[int, ...]] = set()
    out_rows: List[Tuple[int, ...]] = []
    for row in rows:
        projected = tuple(row[v] for v in out_vars)
        if projected not in seen:
            seen.add(projected)
            out_rows.append(projected)
    offset = query.offset or 0
    if offset:
        out_rows = out_rows[offset:]
    if query.limit is not None:
        out_rows = out_rows[:query.limit]
    return out_vars, out_rows
