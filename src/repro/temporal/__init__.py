"""SPARQL-T temporal querying over the versioned store (repro.temporal).

The store has paid for time-travel since day one — every value-list
entry carries the snapshot number of the batch that inserted it, and
the GC frontier (bounded scalarization) is the only thing that forgets.
This package turns that machinery into a query family, after
wukong-cube's tRDF/SPARQL-T dialect:

* ``FROM SNAPSHOT <t>`` point-in-time queries: the whole query reads at
  snapshot ``t`` instead of the current stable SN, pinned against the
  GC frontier for the duration of the read (``Coordinator.pin_snapshot``);
* quintuple patterns ``?s ?p ?o [?ts, ?te)`` binding each matched
  entry's valid-time interval (insertion SN, open end), with interval
  FILTERs (OVERLAPS / DURING / BEFORE / AFTER / STARTS).

Snapshots the version chains can no longer (or not yet) reconstruct are
refused with typed :class:`~repro.errors.TemporalError` subclasses —
never answered silently wrong.
"""

from repro.temporal.engine import TemporalEngine, TemporalRecord
from repro.temporal.evaluate import interval_op_holds
from repro.temporal.kernels import (CompiledIntervalPlan,
                                    evaluate_interval_batch)
from repro.temporal.reference import dump_history, reference_rows

__all__ = [
    "TemporalEngine",
    "TemporalRecord",
    "CompiledIntervalPlan",
    "evaluate_interval_batch",
    "interval_op_holds",
    "dump_history",
    "reference_rows",
]
