"""Latency statistics used throughout the evaluation.

The paper reports medians (50th percentile of one hundred runs), 90th/99th
percentiles, latency CDFs (Figs. 14b/15b) and geometric means across query
classes (the "Geo. M" rows of Tables 2-4 and 9).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (``p`` in [0, 100])."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100]: {p}")
    ordered = sorted(values)
    if p == 0:
        return ordered[0]
    rank = math.ceil(p / 100.0 * len(ordered))
    return ordered[rank - 1]


def median(values: Sequence[float]) -> float:
    """The 50th percentile."""
    return percentile(values, 50)


def geo_mean(values: Sequence[float]) -> float:
    """Geometric mean (requires strictly positive values)."""
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """The empirical CDF as (value, cumulative fraction) points."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)
