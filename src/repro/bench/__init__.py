"""Workload generators and the experiment harness.

``lsbench`` and ``citybench`` are deterministic miniatures of the two
benchmarks the paper evaluates with; ``harness`` builds engines, drives
experiments and formats paper-style tables; ``metrics`` provides
percentiles, CDFs and geometric means; ``workload`` drives the
mixed-concurrency throughput experiments (Figs. 14-15).
"""

from repro.bench.lsbench import LSBench, LSBenchConfig
from repro.bench.citybench import CityBench, CityBenchConfig
from repro.bench.metrics import cdf_points, geo_mean, median, percentile

__all__ = [
    "LSBench",
    "LSBenchConfig",
    "CityBench",
    "CityBenchConfig",
    "cdf_points",
    "geo_mean",
    "median",
    "percentile",
]
