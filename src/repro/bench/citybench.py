"""A deterministic miniature of CityBench (smart-city RSP benchmark).

CityBench [12] replays IoT sensor streams from the city of Aarhus: vehicle
traffic (VT1-2), parking availability (PK1-2), weather (WT), user location
(UL) and pollution (PL1-5), over a small static graph of sensors, roads,
areas and parking lots.  Rates are tiny (Table 1: 4-19 tuples/s) and are
used unscaled; windows default to the paper's RANGE 3s STEP 1s.

The static graph is generated so every query has matches: road *i*
connects road *i+1*; VT1/VT2 sensor *i* sits on road *i*; parking lots sit
near roads; weather stations, users and roads belong to areas.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.rdf.terms import TimedTuple, Triple
from repro.sim.rng import make_rng
from repro.streams.stream import StreamSchema

#: Paper stream rates in tuples per second (Table 1).
PAPER_RATES = {
    "VT1": 19.0,
    "VT2": 19.0,
    "WT": 12.0,
    "UL": 7.0,
    "PK1": 4.0,
    "PK2": 4.0,
    "PL1": 4.0,
    "PL2": 4.0,
    "PL3": 4.0,
    "PL4": 4.0,
    "PL5": 4.0,
}

#: Streams used by each continuous query (approximating Table 1's matrix).
QUERY_STREAMS = {
    "C1": ["VT1", "VT2"],
    "C2": ["VT1", "VT2"],
    "C3": ["VT2", "WT"],
    "C4": ["VT2", "UL"],
    "C5": ["VT2", "PK1"],
    "C6": ["PK1", "PK2"],
    "C7": ["PK1", "PK2"],
    "C8": ["WT", "UL"],
    "C9": ["PK1", "PK2"],
    "C10": ["PL1"],
    "C11": ["VT1"],
}

#: Queries with no stored part (run entirely on streaming data).
STREAM_ONLY = ("C10", "C11")

ALL_QUERIES = tuple(QUERY_STREAMS)


@dataclass
class CityBenchConfig:
    """Scale knobs (defaults approximate the paper's 139K-triple city)."""

    num_roads: int = 40
    num_areas: int = 8
    sensors_per_stream: int = 16
    lots_per_stream: int = 12
    num_stations: int = 8
    num_citizens: int = 64
    congestion_levels: int = 5
    window_range_ms: int = 3_000
    window_step_ms: int = 1_000
    seed: int = 7

    @staticmethod
    def tiny() -> "CityBenchConfig":
        return CityBenchConfig(num_roads=10, num_areas=3,
                               sensors_per_stream=5, lots_per_stream=4,
                               num_stations=3, num_citizens=12)


class CityBench:
    """Generator + query catalogue for C1-C11."""

    def __init__(self, config: Optional[CityBenchConfig] = None):
        self.config = config if config is not None else CityBenchConfig()

    # -- vocabulary ---------------------------------------------------------
    @staticmethod
    def road(i: int) -> str:
        return f"Road{i}"

    @staticmethod
    def area(i: int) -> str:
        return f"Area{i}"

    def schemas(self) -> List[StreamSchema]:
        """All eleven streams are timeless observations in our model."""
        return [StreamSchema(name) for name in PAPER_RATES]

    def rates(self) -> Dict[str, float]:
        return dict(PAPER_RATES)

    #: predicate per stream
    _STREAM_PRED = {
        "VT1": "congestion", "VT2": "congestion", "WT": "temp",
        "UL": "at", "PK1": "avail", "PK2": "avail",
        "PL1": "pollution", "PL2": "pollution", "PL3": "pollution",
        "PL4": "pollution", "PL5": "pollution",
    }

    def _subjects(self, stream: str) -> List[str]:
        cfg = self.config
        if stream in ("VT1", "VT2"):
            return [f"{stream}_S{i}" for i in range(cfg.sensors_per_stream)]
        if stream == "WT":
            return [f"WT_S{i}" for i in range(cfg.num_stations)]
        if stream == "UL":
            return [f"Citizen{i}" for i in range(cfg.num_citizens)]
        if stream in ("PK1", "PK2"):
            return [f"{stream}_L{i}" for i in range(cfg.lots_per_stream)]
        return [f"{stream}_S{i}" for i in range(cfg.sensors_per_stream)]

    # -- static data ----------------------------------------------------------
    def static_triples(self) -> List[Triple]:
        cfg = self.config
        triples: List[Triple] = []

        for i in range(cfg.num_roads):
            triples.append(Triple(self.road(i), "ty", "Road"))
            triples.append(Triple(self.road(i), "inArea",
                                  self.area(i % cfg.num_areas)))
            if i + 1 < cfg.num_roads:
                triples.append(Triple(self.road(i), "connects",
                                      self.road(i + 1)))

        for stream in ("VT1", "VT2"):
            for i, sensor in enumerate(self._subjects(stream)):
                triples.append(Triple(sensor, "ty", "TrafficSensor"))
                triples.append(Triple(sensor, "onRoad",
                                      self.road(i % cfg.num_roads)))

        for stream in ("PK1", "PK2"):
            for i, lot in enumerate(self._subjects(stream)):
                triples.append(Triple(lot, "ty", "ParkingLot"))
                triples.append(Triple(lot, "nearRoad",
                                      self.road(i % cfg.num_roads)))

        for i, station in enumerate(self._subjects("WT")):
            triples.append(Triple(station, "ty", "WeatherStation"))
            triples.append(Triple(station, "inArea",
                                  self.area(i % cfg.num_areas)))

        for pl in ("PL1", "PL2", "PL3", "PL4", "PL5"):
            for i, sensor in enumerate(self._subjects(pl)):
                triples.append(Triple(sensor, "ty", "PollutionSensor"))
                triples.append(Triple(sensor, "inArea",
                                      self.area(i % cfg.num_areas)))

        for i in range(cfg.num_citizens):
            triples.append(Triple(f"Citizen{i}", "ty", "Person"))

        return triples

    # -- streams -----------------------------------------------------------------
    def generate_streams(self, duration_ms: int, start_ms: int = 0
                         ) -> Dict[str, List[TimedTuple]]:
        """All eleven streams for ``duration_ms``, time-ordered."""
        cfg = self.config
        rng = make_rng(cfg.seed, "city-streams", duration_ms)
        out: Dict[str, List[TimedTuple]] = {name: [] for name in PAPER_RATES}

        heap: List[Tuple[float, int, str]] = []
        for order, (stream, rate) in enumerate(sorted(PAPER_RATES.items())):
            heapq.heappush(heap, (start_ms + 1000.0 / rate, order, stream))

        while heap:
            when, order, stream = heapq.heappop(heap)
            if when >= start_ms + duration_ms:
                continue
            heapq.heappush(heap, (when + 1000.0 / PAPER_RATES[stream],
                                  order, stream))
            subjects = self._subjects(stream)
            subject = subjects[rng.randrange(len(subjects))]
            predicate = self._STREAM_PRED[stream]
            if stream == "UL":
                value = self.area(rng.randrange(cfg.num_areas))
            elif stream in ("VT1", "VT2"):
                value = f"Level{rng.randrange(cfg.congestion_levels)}"
            elif stream == "WT":
                value = f"Temp{rng.randrange(-5, 35)}"
            elif stream in ("PK1", "PK2"):
                value = f"Spots{rng.randrange(0, 200)}"
            else:
                value = f"AQI{rng.randrange(0, 300)}"
            out[stream].append(TimedTuple(
                Triple(subject, predicate, value), int(when)))
        return out

    # -- queries -----------------------------------------------------------------
    def continuous_query(self, name: str, variant: int = 0,
                         range_ms: Optional[int] = None,
                         step_ms: Optional[int] = None) -> str:
        """The C-SPARQL text of C1..C11.

        ``variant`` rotates the constant start entities of selective
        queries across sensors/roads/citizens.
        """
        cfg = self.config
        r = range_ms if range_ms is not None else cfg.window_range_ms
        s = step_ms if step_ms is not None else cfg.window_step_ms

        def win(stream: str) -> str:
            return f"FROM {stream} [RANGE {r}ms STEP {s}ms]"

        vt1 = f"VT1_S{variant % cfg.sensors_per_stream}"
        road0 = self.road(variant % cfg.num_roads)
        citizen = f"Citizen{variant % cfg.num_citizens}"

        templates = {
            "C1": f"""
                REGISTER QUERY C1 AS
                SELECT ?L1 ?L2 ?S2
                {win('VT1')} {win('VT2')} FROM City
                WHERE {{
                    GRAPH City {{ {vt1} onRoad ?R . ?S2 onRoad ?R .
                                  ?S2 ty TrafficSensor }}
                    GRAPH VT1 {{ {vt1} congestion ?L1 }}
                    GRAPH VT2 {{ ?S2 congestion ?L2 }}
                }}
            """,
            "C2": f"""
                REGISTER QUERY C2 AS
                SELECT ?L1 ?L2 ?R2
                {win('VT1')} {win('VT2')} FROM City
                WHERE {{
                    GRAPH City {{ {vt1} onRoad ?R1 . ?R1 connects ?R2 .
                                  ?S2 onRoad ?R2 }}
                    GRAPH VT1 {{ {vt1} congestion ?L1 }}
                    GRAPH VT2 {{ ?S2 congestion ?L2 }}
                }}
            """,
            "C3": f"""
                REGISTER QUERY C3 AS
                SELECT ?S ?L ?T
                {win('VT2')} {win('WT')} FROM City
                WHERE {{
                    GRAPH City {{ ?S onRoad {road0} . ?W inArea ?A .
                                  {road0} inArea ?A }}
                    GRAPH VT2 {{ ?S congestion ?L }}
                    GRAPH WT {{ ?W temp ?T }}
                }}
            """,
            "C4": f"""
                REGISTER QUERY C4 AS
                SELECT ?A ?S ?L
                {win('VT2')} {win('UL')} FROM City
                WHERE {{
                    GRAPH UL {{ {citizen} at ?A }}
                    GRAPH City {{ ?R inArea ?A . ?S onRoad ?R }}
                    GRAPH VT2 {{ ?S congestion ?L }}
                }}
            """,
            "C5": f"""
                REGISTER QUERY C5 AS
                SELECT ?P ?N ?L
                {win('VT2')} {win('PK1')} FROM City
                WHERE {{
                    GRAPH City {{ ?P nearRoad {road0} . ?S onRoad {road0} }}
                    GRAPH PK1 {{ ?P avail ?N }}
                    GRAPH VT2 {{ ?S congestion ?L }}
                }}
            """,
            "C6": f"""
                REGISTER QUERY C6 AS
                SELECT ?P1 ?N1 ?P2 ?N2
                {win('PK1')} {win('PK2')} FROM City
                WHERE {{
                    GRAPH City {{ ?P1 nearRoad {road0} .
                                  ?P2 nearRoad {road0} }}
                    GRAPH PK1 {{ ?P1 avail ?N1 }}
                    GRAPH PK2 {{ ?P2 avail ?N2 }}
                }}
            """,
            "C7": f"""
                REGISTER QUERY C7 AS
                SELECT ?P1 ?P2 ?N1 ?N2
                {win('PK1')} {win('PK2')} FROM City
                WHERE {{
                    GRAPH City {{ ?P1 nearRoad ?R . ?R connects ?R2 .
                                  ?P2 nearRoad ?R2 }}
                    GRAPH PK1 {{ ?P1 avail ?N1 }}
                    GRAPH PK2 {{ ?P2 avail ?N2 }}
                }}
            """,
            "C8": f"""
                REGISTER QUERY C8 AS
                SELECT ?A ?W ?T
                {win('WT')} {win('UL')} FROM City
                WHERE {{
                    GRAPH UL {{ {citizen} at ?A }}
                    GRAPH City {{ ?W inArea ?A }}
                    GRAPH WT {{ ?W temp ?T }}
                }}
            """,
            "C9": f"""
                REGISTER QUERY C9 AS
                SELECT ?P1 ?P2 ?N1 ?N2
                {win('PK1')} {win('PK2')} FROM City
                WHERE {{
                    GRAPH City {{ ?P1 nearRoad ?R . ?P2 nearRoad ?R }}
                    GRAPH PK1 {{ ?P1 avail ?N1 }}
                    GRAPH PK2 {{ ?P2 avail ?N2 }}
                }}
            """,
            "C10": f"""
                REGISTER QUERY C10 AS
                SELECT ?S ?V
                {win('PL1')}
                WHERE {{ GRAPH PL1 {{ ?S pollution ?V }} }}
            """,
            "C11": f"""
                REGISTER QUERY C11 AS
                SELECT ?L
                {win('VT1')}
                WHERE {{ GRAPH VT1 {{ {vt1} congestion ?L }} }}
            """,
        }
        if name not in templates:
            raise KeyError(f"unknown CityBench query: {name}")
        return templates[name]
