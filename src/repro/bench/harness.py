"""Experiment harness: engine builders, latency drivers, table formatting.

Every benchmark under ``benchmarks/`` composes these helpers: build the
system(s) under test, feed them the same generated workload, collect
simulated latencies, and print a paper-style table with the paper's
reported numbers alongside for shape comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.baselines.composite import CompositeEngine
from repro.baselines.csparql_engine import CSparqlEngine
from repro.baselines.spark import SparkStreamingEngine
from repro.baselines.structured import StructuredStreamingEngine
from repro.baselines.wukong_ext import WukongExtEngine
from repro.bench.metrics import median
from repro.core.engine import EngineConfig, WukongSEngine
from repro.rdf.terms import TimedTuple
from repro.sim.cluster import Cluster
from repro.sim.cost import CostModel
from repro.sparql.parser import parse_query
from repro.streams.source import StreamSource
from repro.streams.stream import StreamBatch, batch_tuples

#: Protocol-ish type for all bench generators (LSBench / CityBench).
Bench = object


# --------------------------------------------------------------------------
# Engine builders
# --------------------------------------------------------------------------

def build_wukongs(bench: Bench, num_nodes: int, duration_ms: int,
                  batch_interval_ms: int = 100,
                  rate_scale: Optional[float] = None,
                  use_rdma: bool = True,
                  fault_tolerance: bool = False,
                  scalarization: bool = True,
                  adaptive_replan: bool = False,
                  workers_per_node: int = 16) -> WukongSEngine:
    """A Wukong+S engine loaded with the bench's static data and sources."""
    config = EngineConfig(
        num_nodes=num_nodes, workers_per_node=workers_per_node,
        use_rdma=use_rdma, batch_interval_ms=batch_interval_ms,
        fault_tolerance=fault_tolerance, scalarization=scalarization,
        adaptive_replan=adaptive_replan)
    engine = WukongSEngine(schemas=bench.schemas(), config=config)
    engine.load_static(bench.static_triples())
    if rate_scale is not None:
        streams = bench.generate_streams(duration_ms, rate_scale=rate_scale)
    else:
        streams = bench.generate_streams(duration_ms)
    for name, tuples in streams.items():
        source = StreamSource(engine.schemas[name])
        source.queue_tuples(tuples, 0, batch_interval_ms)
        engine.attach_source(source)
    return engine


def stream_batches_for(bench: Bench, duration_ms: int,
                       batch_interval_ms: int = 100,
                       rate_scale: Optional[float] = None
                       ) -> List[StreamBatch]:
    """The same workload as loose batches, for feeding baseline engines."""
    if rate_scale is not None:
        streams = bench.generate_streams(duration_ms, rate_scale=rate_scale)
    else:
        streams = bench.generate_streams(duration_ms)
    batches: List[StreamBatch] = []
    for name, tuples in streams.items():
        batches.extend(batch_tuples(name, tuples, 0, batch_interval_ms))
    return batches


def feed_baseline(engine, bench: Bench, duration_ms: int,
                  batch_interval_ms: int = 100,
                  rate_scale: Optional[float] = None):
    """Load static data + ingest the whole workload into a baseline."""
    engine.load_static(bench.static_triples())
    for batch in stream_batches_for(bench, duration_ms, batch_interval_ms,
                                    rate_scale):
        engine.ingest(batch)
    return engine


# --------------------------------------------------------------------------
# Latency drivers
# --------------------------------------------------------------------------

def measure_wukongs(engine: WukongSEngine, query_texts: Dict[str, str],
                    duration_ms: int,
                    warmup_ms: int = 0) -> Dict[str, List[float]]:
    """Register queries, run the simulation, return per-query latencies.

    With ``warmup_ms``, the engine first absorbs that much stream history
    (injection only) before the queries are registered — used by
    experiments that compare against engines whose cost depends on the
    accumulated history (Table 4's Wukong/Ext).
    """
    if warmup_ms:
        engine.run_until(warmup_ms)
    handles = {}
    for name, text in query_texts.items():
        handles[name] = engine.register_continuous(text)
    engine.run_until(duration_ms)
    return {name: [rec.latency_ms for rec in handle.executions]
            for name, handle in handles.items()}


def measure_baseline(engine, query_texts: Dict[str, str],
                     close_times_ms: Sequence[int],
                     runner: Optional[Callable] = None
                     ) -> Dict[str, List[float]]:
    """Run each query at each window close time on a fed baseline.

    ``runner`` adapts engines whose ``execute_continuous`` returns
    different tuples; the default handles the (rows, meter[, extra])
    shapes used across this package.
    """
    results: Dict[str, List[float]] = {}
    for name, text in query_texts.items():
        query = parse_query(text)
        samples: List[float] = []
        for close_ms in close_times_ms:
            if runner is not None:
                samples.append(runner(engine, query, close_ms))
            else:
                out = engine.execute_continuous(query, close_ms)
                meter = out[1]
                samples.append(meter.ms)
        results[name] = samples
    return results


def median_of(samples: Dict[str, List[float]]) -> Dict[str, float]:
    """Median latency per query (empty sample lists collapse to nan)."""
    return {name: (median(values) if values else float("nan"))
            for name, values in samples.items()}


# --------------------------------------------------------------------------
# Table formatting
# --------------------------------------------------------------------------

def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 note: str = "") -> str:
    """A fixed-width table in the style of the paper's latency tables."""
    body = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[0])
                         for i, cell in enumerate(cells))

    out = [f"== {title} ==", line(headers),
           line(["-" * w for w in widths])]
    out.extend(line(row) for row in body)
    if note:
        out.append(note)
    return "\n".join(out)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN renders as the paper's unsupported mark
            return "x"
        if value >= 100:
            return f"{value:,.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)
