"""Mixed-concurrency workloads: the throughput experiments (Figs. 14-15).

The paper emulates clients that register as many continuous queries as the
cluster can absorb: each node runs 16 dedicated query workers, every query
occupies one worker for its execution latency, and the class mix follows
the reciprocal of each class's average latency.  Peak throughput is then

    throughput = total_workers / mixture_mean_latency

which for the paper's numbers gives 128 workers / 0.118 ms = 1.08 M
queries/s — the model this driver implements on top of *measured*
per-class latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import build_wukongs
from repro.bench.metrics import cdf_points, mean, percentile
from repro.core.engine import WukongSEngine
from repro.sim.rng import make_rng


@dataclass
class MixedWorkloadResult:
    """Outcome of one mixed-workload run."""

    num_nodes: int
    total_workers: int
    per_class_latencies_ms: Dict[str, List[float]]
    mixture_weights: Dict[str, float] = field(default_factory=dict)

    @property
    def mixture_mean_latency_ms(self) -> float:
        """Mean latency under the reciprocal-latency class mixture."""
        means = {name: mean(samples)
                 for name, samples in self.per_class_latencies_ms.items()
                 if samples}
        inverse_sum = sum(1.0 / m for m in means.values())
        return len(means) / inverse_sum

    @property
    def throughput_qps(self) -> float:
        """Peak queries/second: workers divided by mixture mean latency."""
        mean_s = self.mixture_mean_latency_ms / 1e3
        return self.total_workers / mean_s

    def latency_percentile_ms(self, p: float) -> float:
        """Percentile over the mixture-weighted latency population."""
        population = self._mixture_population()
        return percentile(population, p)

    def class_cdf(self, name: str):
        """The latency CDF of one class (Fig. 14b / 15b)."""
        return cdf_points(self.per_class_latencies_ms[name])

    def _mixture_population(self) -> List[float]:
        means = {name: mean(samples)
                 for name, samples in self.per_class_latencies_ms.items()
                 if samples}
        inverse_sum = sum(1.0 / m for m in means.values())
        population: List[float] = []
        for name, samples in self.per_class_latencies_ms.items():
            if not samples:
                continue
            weight = (1.0 / means[name]) / inverse_sum
            # Replicate each class's samples proportionally to its share
            # of the executed-query mix.
            copies = max(1, round(weight * 100))
            population.extend(samples * copies)
        return population


def run_mixed_workload(bench, classes: Sequence[str], num_nodes: int,
                       duration_ms: int = 6_000,
                       variants_per_class: int = 4,
                       batch_interval_ms: int = 100,
                       seed: int = 11,
                       engine: Optional[WukongSEngine] = None
                       ) -> MixedWorkloadResult:
    """Register ``variants_per_class`` instances of each query class (with
    randomized constant start vertices, as §6.6 describes), run the
    simulation, and fold the measured latencies into throughput."""
    rng = make_rng(seed, "mixed", num_nodes, tuple(classes))
    if engine is None:
        engine = build_wukongs(bench, num_nodes, duration_ms,
                               batch_interval_ms=batch_interval_ms)
    handles: Dict[str, List] = {name: [] for name in classes}
    for class_name in classes:
        for k in range(variants_per_class):
            start_user = rng.randrange(bench.config.num_users) \
                if hasattr(bench.config, "num_users") else k
            text = bench.continuous_query(class_name, start_user)
            text = text.replace(f"QUERY {class_name} ",
                                f"QUERY {class_name}_{k} ")
            handles[class_name].append(engine.register_continuous(text))
    engine.run_until(duration_ms)

    latencies = {
        name: [rec.latency_ms
               for handle in class_handles
               for rec in handle.executions]
        for name, class_handles in handles.items()
    }
    return MixedWorkloadResult(
        num_nodes=num_nodes,
        total_workers=engine.cluster.total_workers,
        per_class_latencies_ms=latencies)
