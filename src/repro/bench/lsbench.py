"""A deterministic miniature of LSBench (Linked Stream Benchmark).

LSBench [28] models a social network: stored data holds user profiles and
friendship edges; five streams carry user activity — posts (PO), post-likes
(PO-L, the heaviest at 86K tuples/s in the paper), photos (PH), photo-likes
(PH-L) and GPS positions (GPS, the only *timing* stream).  This module
generates the same shape at a configurable scale (``rate_scale`` of the
paper's rates; see DESIGN.md §5 for the mapping) with fully deterministic
output for a given seed.

The six continuous queries L1-L6 keep the paper's grouping:

* group (I) — selective, constant-start, fixed-size results: L1 (stream
  only), L2, L3 (stream + stored);
* group (II) — non-selective index starts whose result size grows with the
  data: L4 (stream only), L5 (the paper's QC shape), L6 (photo variant).

S1-S6 are one-shot (SPARQL) queries over the evolving stored data
(Table 8).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.rdf.terms import TimedTuple, Triple
from repro.sim.rng import make_rng, zipf_choice
from repro.streams.stream import StreamSchema

#: Paper stream rates in tuples per second (Table 1).
PAPER_RATES = {
    "PO": 10_000.0,
    "PO_L": 86_000.0,
    "PH": 10_000.0,
    "PH_L": 7_500.0,
    "GPS": 20_000.0,
}

#: Streams used by each continuous query (Table 1's usage matrix).
QUERY_STREAMS = {
    "L1": ["PO"],
    "L2": ["PO"],
    "L3": ["PO_L"],
    "L4": ["PO"],
    "L5": ["PO", "PO_L"],
    "L6": ["PH", "PH_L"],
}

#: Queries whose plans start from a constant (group I) vs index (group II).
GROUP_I = ("L1", "L2", "L3")
GROUP_II = ("L4", "L5", "L6")


@dataclass
class LSBenchConfig:
    """Scale knobs (defaults give the 'small' single-node dataset)."""

    num_users: int = 1_000
    follows_per_user: int = 12
    initial_posts_per_user: int = 4
    initial_photos_per_user: int = 2
    likes_per_post: int = 2
    hashtag_count: int = 50
    hashtag_fraction: float = 0.4
    location_count: int = 64
    recent_pool: int = 256
    rate_scale: float = 0.04
    window_range_ms: int = 1_000
    window_step_ms: int = 100
    seed: int = 42

    @staticmethod
    def small() -> "LSBenchConfig":
        """Single-node dataset (stands in for the paper's 118M triples)."""
        return LSBenchConfig()

    @staticmethod
    def large() -> "LSBenchConfig":
        """Cluster dataset (stands in for the paper's 3.75B triples)."""
        return LSBenchConfig(num_users=4_000)

    @staticmethod
    def tiny() -> "LSBenchConfig":
        """Fast dataset for tests."""
        return LSBenchConfig(num_users=120, follows_per_user=6,
                             initial_posts_per_user=2,
                             initial_photos_per_user=1, hashtag_count=12)


class LSBench:
    """Generator + query catalogue."""

    def __init__(self, config: Optional[LSBenchConfig] = None):
        self.config = config if config is not None else LSBenchConfig()

    # -- vocabulary ---------------------------------------------------------
    @staticmethod
    def user(i: int) -> str:
        return f"User{i}"

    @staticmethod
    def tag(i: int) -> str:
        return f"Tag{i}"

    @staticmethod
    def location(i: int) -> str:
        return f"Loc{i}"

    def schemas(self) -> List[StreamSchema]:
        """The five stream schemas; only GPS carries timing data."""
        return [
            StreamSchema("PO"),
            StreamSchema("PO_L"),
            StreamSchema("PH"),
            StreamSchema("PH_L"),
            StreamSchema("GPS", frozenset({"ga"})),
        ]

    def rates(self) -> Dict[str, float]:
        """Scaled tuples/second per stream."""
        return {name: rate * self.config.rate_scale
                for name, rate in PAPER_RATES.items()}

    # -- static data ----------------------------------------------------------
    def static_triples(self) -> List[Triple]:
        """The initially stored social graph."""
        cfg = self.config
        rng = make_rng(cfg.seed, "static")
        users = [self.user(i) for i in range(cfg.num_users)]
        triples: List[Triple] = []

        for name in users:
            triples.append(Triple(name, "ty", "Person"))

        # The vocabulary catalogue: hashtags and places are part of the
        # knowledge base, so queries can anchor on them from the start.
        for i in range(cfg.hashtag_count):
            triples.append(Triple(self.tag(i), "ty", "Hashtag"))
        for i in range(cfg.location_count):
            triples.append(Triple(self.location(i), "ty", "Place"))

        # Friendships, skewed toward low-index (popular) users.
        for i, name in enumerate(users):
            chosen = set()
            while len(chosen) < min(cfg.follows_per_user, cfg.num_users - 1):
                target = zipf_choice(rng, users)
                if target != name:
                    chosen.add(target)
            for target in sorted(chosen):
                triples.append(Triple(name, "fo", target))

        # Initial posts with hashtags and likes.
        for i, name in enumerate(users):
            for k in range(cfg.initial_posts_per_user):
                post = f"Post_{i}_{k}"
                triples.append(Triple(name, "po", post))
                if rng.random() < cfg.hashtag_fraction:
                    triples.append(Triple(
                        post, "ht", self._pick_tag(rng)))
                for _ in range(cfg.likes_per_post):
                    fan = zipf_choice(rng, users)
                    triples.append(Triple(fan, "li", post))

        # Initial photos with likes.
        for i, name in enumerate(users):
            for k in range(cfg.initial_photos_per_user):
                photo = f"Photo_{i}_{k}"
                triples.append(Triple(name, "up", photo))
                for _ in range(cfg.likes_per_post):
                    fan = zipf_choice(rng, users)
                    triples.append(Triple(fan, "lp", photo))

        return triples

    # -- streams -----------------------------------------------------------------
    def generate_streams(self, duration_ms: int, start_ms: int = 0,
                         rate_scale: Optional[float] = None,
                         rates: Optional[Dict[str, float]] = None
                         ) -> Dict[str, List[TimedTuple]]:
        """All five streams for ``duration_ms``, time-ordered per stream.

        Streams are generated together so likes can reference recently
        posted stream content (PO-L likes PO posts, PH-L likes PH photos).
        ``rates`` overrides the paper's per-stream tuples/second before
        scaling (a rate of 0 disables a stream), used by experiments that
        need a specific stream-size profile (e.g. Fig. 4).
        """
        cfg = self.config
        scale = rate_scale if rate_scale is not None else cfg.rate_scale
        base_rates = dict(PAPER_RATES)
        if rates is not None:
            base_rates.update(rates)
        rng = make_rng(cfg.seed, "streams", duration_ms, scale,
                       tuple(sorted(base_rates.items())))
        users = [self.user(i) for i in range(cfg.num_users)]

        recent_posts: List[str] = [
            f"Post_{i}_{k}" for i in range(min(cfg.num_users, 64))
            for k in range(cfg.initial_posts_per_user)
        ][-cfg.recent_pool:]
        recent_photos: List[str] = [
            f"Photo_{i}_{k}" for i in range(min(cfg.num_users, 64))
            for k in range(cfg.initial_photos_per_user)
        ][-cfg.recent_pool:]

        out: Dict[str, List[TimedTuple]] = {name: [] for name in PAPER_RATES}
        last_post: Dict[str, str] = {}
        last_photo: Dict[str, str] = {}
        counters = {"post": 0, "photo": 0}

        # Merge the five per-stream schedules in global time order so that
        # cross-stream references (likes of stream posts) are causal.
        heap: List[Tuple[float, int, str]] = []
        for order, (stream, rate) in enumerate(sorted(base_rates.items())):
            scaled = rate * scale
            if scaled > 0:
                heapq.heappush(heap, (start_ms + 1000.0 / scaled, order,
                                      stream))

        while heap:
            when, order, stream = heapq.heappop(heap)
            if when >= start_ms + duration_ms:
                continue
            ts = int(when)
            scaled = base_rates[stream] * scale
            heapq.heappush(heap, (when + 1000.0 / scaled, order, stream))

            if stream == "PO":
                actor = zipf_choice(rng, users)
                if actor in last_post and \
                        rng.random() < cfg.hashtag_fraction:
                    tag = self._pick_tag(rng)
                    out["PO"].append(TimedTuple(
                        Triple(last_post.pop(actor), "ht", tag), ts))
                else:
                    post = f"SPost{counters['post']}"
                    counters["post"] += 1
                    out["PO"].append(TimedTuple(Triple(actor, "po", post),
                                                ts))
                    last_post[actor] = post
                    recent_posts.append(post)
                    if len(recent_posts) > cfg.recent_pool:
                        recent_posts.pop(0)
            elif stream == "PO_L":
                actor = zipf_choice(rng, users)
                # Likes are heavily skewed toward hot posts, which is what
                # lets the stream index coalesce many likes of one post
                # into a single fat-pointer span (Table 7's PO-L contrast).
                post = zipf_choice(rng, list(reversed(recent_posts)))
                out["PO_L"].append(TimedTuple(Triple(actor, "li", post), ts))
            elif stream == "PH":
                actor = zipf_choice(rng, users)
                photo = f"SPhoto{counters['photo']}"
                counters["photo"] += 1
                out["PH"].append(TimedTuple(Triple(actor, "up", photo), ts))
                last_photo[actor] = photo
                recent_photos.append(photo)
                if len(recent_photos) > cfg.recent_pool:
                    recent_photos.pop(0)
            elif stream == "PH_L":
                actor = zipf_choice(rng, users)
                photo = zipf_choice(rng, list(reversed(recent_photos)))
                out["PH_L"].append(TimedTuple(Triple(actor, "lp", photo),
                                              ts))
            else:  # GPS (timing data)
                actor = zipf_choice(rng, users)
                loc = self.location(rng.randrange(cfg.location_count))
                out["GPS"].append(TimedTuple(Triple(actor, "ga", loc), ts))
        return out

    # -- continuous queries ---------------------------------------------------------
    def _pick_tag(self, rng) -> str:
        """Hashtag popularity is Zipf-skewed, like real social tags."""
        ranks = list(range(self.config.hashtag_count))
        return self.tag(zipf_choice(rng, ranks))

    def rare_tag(self) -> str:
        """A deep-tail hashtag: it appears at a low, rate-independent
        trickle, which keeps queries anchored on it selective (group I)."""
        return self.tag(self.config.hashtag_count * 3 // 4)

    def quiet_user(self) -> int:
        """A deterministic mid-tail user with little activity.

        Group-I queries default to it: the paper's selective queries
        produce fixed-size results regardless of data size and complete
        within a single node, which requires a start entity whose window
        activity does not scale with the stream rate.
        """
        return self.config.num_users // 2 + 7

    def continuous_query(self, name: str, start_user: Optional[int] = None,
                         range_ms: Optional[int] = None,
                         step_ms: Optional[int] = None) -> str:
        """The C-SPARQL text of L1..L6.

        ``start_user`` varies the constant start vertex of group-I queries
        (the mixed workloads randomise it per registration, §6.6); it
        defaults to :meth:`quiet_user`.
        """
        r = range_ms if range_ms is not None else self.config.window_range_ms
        s = step_ms if step_ms is not None else self.config.window_step_ms
        if start_user is None:
            start_user = self.quiet_user()
        user = self.user(start_user)

        def win(stream: str) -> str:
            return f"FROM {stream} [RANGE {r}ms STEP {s}ms]"

        templates = {
            "L1": f"""
                REGISTER QUERY L1 AS
                SELECT ?P
                {win('PO')}
                WHERE {{ GRAPH PO {{ {user} po ?P }} }}
            """,
            "L2": f"""
                REGISTER QUERY L2 AS
                SELECT ?P ?U
                {win('PO')}
                FROM X-Lab
                WHERE {{
                    GRAPH PO {{ ?P ht {self.rare_tag()} }}
                    GRAPH X-Lab {{ ?U po ?P }}
                }}
            """,
            "L3": f"""
                REGISTER QUERY L3 AS
                SELECT ?L ?F
                {win('PO_L')}
                FROM X-Lab
                WHERE {{
                    GRAPH PO_L {{ ?L li SPost{start_user % 4} }}
                    GRAPH X-Lab {{ ?L fo ?F }}
                }}
            """,
            "L4": f"""
                REGISTER QUERY L4 AS
                SELECT ?U ?P ?T
                {win('PO')}
                WHERE {{ GRAPH PO {{ ?U po ?P . ?P ht ?T }} }}
            """,
            "L5": f"""
                REGISTER QUERY L5 AS
                SELECT ?X ?Y ?Z
                {win('PO')}
                {win('PO_L')}
                FROM X-Lab
                WHERE {{
                    GRAPH PO {{ ?X po ?Z }}
                    GRAPH X-Lab {{ ?X fo ?Y }}
                    GRAPH PO_L {{ ?Y li ?Z }}
                }}
            """,
            "L6": f"""
                REGISTER QUERY L6 AS
                SELECT ?X ?Y ?Z
                {win('PH')}
                {win('PH_L')}
                FROM X-Lab
                WHERE {{
                    GRAPH PH {{ ?X up ?Z }}
                    GRAPH X-Lab {{ ?X fo ?Y }}
                    GRAPH PH_L {{ ?Y lp ?Z }}
                }}
            """,
        }
        if name not in templates:
            raise KeyError(f"unknown LSBench query: {name}")
        return templates[name]

    # -- one-shot queries ---------------------------------------------------------
    def oneshot_query(self, name: str, start_user: int = 0) -> str:
        """The SPARQL text of S1..S6 (Table 8)."""
        user = self.user(start_user)
        tag = self.tag(0)
        templates = {
            # Medium: posts carrying a given hashtag and their authors.
            "S1": f"SELECT ?U ?P WHERE {{ ?P ht {tag} . ?U po ?P }}",
            # Tiny: one user's posts.
            "S2": f"SELECT ?P WHERE {{ {user} po ?P }}",
            # Small: friends-of-friends.
            "S3": f"SELECT ?F ?G WHERE {{ {user} fo ?F . ?F fo ?G }}",
            # Large: every post with its hashtag.
            "S4": "SELECT ?U ?P ?T WHERE { ?U po ?P . ?P ht ?T }",
            # Small: who likes this user's posts.
            "S5": f"SELECT ?P ?L WHERE {{ {user} po ?P . ?L li ?P }}",
            # Largest: friends' posts and their hashtags.
            "S6": "SELECT ?U ?F ?P ?T WHERE "
                  "{ ?U fo ?F . ?F po ?P . ?P ht ?T }",
        }
        if name not in templates:
            raise KeyError(f"unknown LSBench one-shot query: {name}")
        return templates[name]

    # -- temporal (SPARQL-T) queries ---------------------------------------------
    def temporal_query(self, name: str, start_user: int = 0,
                       snapshot: Optional[int] = None,
                       ts_from: int = 1, ts_to: int = 4) -> str:
        """The SPARQL-T text of T1..T4.

        ``snapshot`` scopes the point-in-time queries (defaults to the
        base snapshot — the initially loaded graph); ``[ts_from, ts_to)``
        bounds the interval queries' snapshot range.

        * **T1** — "friendships active at t": one user's friends as they
          stood at snapshot ``t`` (point-in-time, delegates to the
          columnar one-shot path).
        * **T2** — "posts within [t1, t2)": posts whose insertion SN
          falls inside the range, via numeric FILTERs on the bound
          ``?ts`` endpoint.
        * **T3** — the same range selection phrased as an interval
          FILTER (``OVERLAPS`` against a constant interval) — exercises
          the interval-predicate path end to end.
        * **T4** — deep history: friends' posts (a 2-hop join) where
          both edges carry valid-time intervals and the posting edge
          must not predate the friendship edge.
        """
        user = self.user(start_user)
        scope = f"FROM SNAPSHOT <{snapshot}> " if snapshot is not None \
            else ""
        templates = {
            "T1": f"SELECT ?F {scope}WHERE {{ {user} fo ?F }}",
            "T2": f"SELECT ?U ?P ?ts {scope}WHERE {{ ?U po ?P [?ts, ?te) "
                  f"FILTER (?ts >= {ts_from}) FILTER (?ts < {ts_to}) }}",
            "T3": f"SELECT ?U ?P {scope}WHERE {{ ?U po ?P [?ts, ?te) "
                  f"FILTER ([?ts, ?te) OVERLAPS [{ts_from}, {ts_to})) }}",
            "T4": f"SELECT ?F ?P ?fts ?pts {scope}WHERE {{ "
                  f"{user} fo ?F [?fts, ?fte) . ?F po ?P [?pts, ?pte) "
                  f"FILTER (?pts >= ?fts) }}",
        }
        if name not in templates:
            raise KeyError(f"unknown LSBench temporal query: {name}")
        return templates[name]
