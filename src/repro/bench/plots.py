"""Text-mode figure rendering for the benchmark harness.

The paper's figures (12-15) are line charts and latency CDFs; since the
benchmarks print to a terminal, this module renders them as ASCII grids so
`bench_output.txt` carries the figures, not just their tables.

Only the standard library is used; the renderer is deterministic and unit
tested (grid size, marker placement, axis bounds).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

#: Series markers, assigned in insertion order.
MARKERS = "*o+x#@%&"

Point = Tuple[float, float]


def _scale(value: float, lo: float, hi: float, size: int,
           log: bool = False) -> int:
    """Map ``value`` in [lo, hi] onto a cell index in [0, size-1]."""
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi <= lo:
        return 0
    ratio = (value - lo) / (hi - lo)
    return max(0, min(size - 1, round(ratio * (size - 1))))


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.3g}"
    return f"{value:.2g}"


def line_chart(series: Dict[str, Sequence[Point]], title: str = "",
               width: int = 56, height: int = 12,
               x_label: str = "", y_label: str = "",
               log_y: bool = False) -> str:
    """Render named (x, y) series on one ASCII grid.

    >>> chart = line_chart({"L1": [(1, 1.0), (2, 2.0)]}, title="demo")
    >>> "demo" in chart and "L1" in chart
    True
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    if log_y and min(ys) <= 0:
        raise ValueError("log_y needs strictly positive values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, pts) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height, log=log_y)
            grid[row][col] = marker

    top_tick = _format_tick(y_hi)
    bottom_tick = _format_tick(y_lo)
    gutter = max(len(top_tick), len(bottom_tick)) + 1
    out = []
    if title:
        out.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_tick
        elif row_index == height - 1:
            label = bottom_tick
        else:
            label = ""
        out.append(f"{label.rjust(gutter)} |{''.join(row)}")
    out.append(" " * gutter + " +" + "-" * width)
    x_axis = (f"{_format_tick(x_lo)}"
              f"{_format_tick(x_hi).rjust(width - len(_format_tick(x_lo)))}")
    out.append(" " * gutter + "  " + x_axis)
    footer = "   ".join(legend)
    if x_label or y_label:
        footer += f"   [x: {x_label}; y: {y_label}" + \
            (", log scale]" if log_y else "]")
    out.append(footer)
    return "\n".join(out)


def cdf_chart(series: Dict[str, Sequence[Point]], title: str = "",
              width: int = 56, height: int = 12,
              x_label: str = "latency ms") -> str:
    """Render latency CDFs: x = value, y = cumulative fraction (0..1)."""
    clamped = {
        name: [(x, max(0.0, min(1.0, y))) for x, y in pts]
        for name, pts in series.items()
    }
    return line_chart(clamped, title=title, width=width, height=height,
                      x_label=x_label, y_label="CDF")
