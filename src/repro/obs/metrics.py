"""Label-aware metrics: counters, gauges, simulated-time histograms.

A :class:`MetricsRegistry` is the second observability layer: cheap
always-on counters kept by the subsystems themselves (cache hit/miss
totals on the store and the engines, retry counters on proxies, GC
counters) are *pulled* into the registry by :func:`collect_metrics`, and
the engine's hot paths *push* latency observations (injection batches,
continuous window closes, one-shot executions) into simulated-time
histograms when a registry is attached via ``engine.metrics``.

Everything is deterministic: metric keys are ``name{label=value,...}``
with sorted labels, histograms bucket simulated nanoseconds on a fixed
ladder, and :meth:`MetricsRegistry.snapshot` returns canonically sorted
JSON-safe dicts — two runs of the same workload snapshot identically.

Like the tracer, the registry never touches a LatencyMeter: observing a
latency reads ``meter.ns``; it cannot move simulated time.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

#: Default histogram ladder for simulated latencies (ns): 1 us .. 10 s.
SIM_NS_BUCKETS = (1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10)


def _key(name: str, labels: Dict[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last set wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Bucketed distribution of simulated-time observations.

    ``buckets`` are inclusive upper bounds in ns; observations above the
    last bound land in the implicit overflow bucket.
    """

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Tuple[float, ...] = SIM_NS_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, ns: float) -> None:
        self.counts[bisect_left(self.buckets, ns)] += 1
        self.total += ns
        self.count += 1

    @property
    def mean_ns(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {"buckets_ns": list(self.buckets),
                "counts": list(self.counts),
                "total_ns": self.total, "count": self.count}


class MetricsRegistry:
    """Get-or-create registry of labelled metrics."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str,
                  buckets: Tuple[float, ...] = SIM_NS_BUCKETS,
                  **labels) -> Histogram:
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(buckets)
        return metric

    # -- inspection --------------------------------------------------------
    def snapshot(self) -> dict:
        """Canonical JSON-safe dump (sorted keys at every level)."""
        return {
            "counters": {k: self._counters[k].value
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value
                       for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].as_dict()
                           for k in sorted(self._histograms)},
        }

    def render(self) -> str:
        """A terminal dump: one metric per line."""
        lines: List[str] = []
        for key in sorted(self._counters):
            lines.append(f"{key} {self._counters[key].value}")
        for key in sorted(self._gauges):
            lines.append(f"{key} {self._gauges[key].value:g}")
        for key in sorted(self._histograms):
            hist = self._histograms[key]
            lines.append(f"{key} count={hist.count} "
                         f"mean={hist.mean_ns / 1e6:.3f}ms")
        return "\n".join(lines)


def collect_metrics(engine, registry: Optional[MetricsRegistry] = None,
                    proxies=None, serving=None) -> MetricsRegistry:
    """Pull every subsystem's always-on counters into ``registry``.

    ``engine`` is a :class:`~repro.core.engine.WukongSEngine`; ``proxies``
    an optional iterable of :class:`~repro.client.proxy.Proxy` (or a
    ``ProxyPool``, which iterates its proxies); ``serving`` an optional
    :class:`~repro.serving.server.ServingLayer` (its sharing/admission
    counters are pulled here; its per-tenant latency histograms live in
    the registry the layer pushes to).  Safe to call repeatedly:
    gauges are overwritten, pulled counters are set (not incremented), so
    the registry always reflects the engine's cumulative totals.
    """
    if registry is None:
        registry = engine.metrics if engine.metrics is not None \
            else MetricsRegistry()
    # Plan / parse caches (one-shot fast path).
    oneshot = engine.oneshot_engine
    registry.counter("plan_cache_hits").value = oneshot.plan_cache_hits
    registry.counter("plan_cache_misses").value = oneshot.plan_cache_misses
    registry.counter("parse_cache_hits").value = engine.parse_cache_hits
    registry.counter("parse_cache_misses").value = engine.parse_cache_misses
    # Continuous plan cache (re-plans miss into it by design: a new
    # ordering is a new key, hence a fresh compiled executor).
    continuous = engine.continuous
    registry.counter("continuous_plan_cache_hits").value = \
        continuous.plan_cache_hits
    registry.counter("continuous_plan_cache_misses").value = \
        continuous.plan_cache_misses
    # Temporal interval path: compiled-plan LRU and kernel split
    # (temporal_snapshot_reads / temporal_version_entries / temporal_ns
    # are pushed per-execution by the temporal engine itself).
    temporal = engine.temporal
    registry.counter("temporal_plan_cache_hits").value = \
        temporal.plan_cache_hits
    registry.counter("temporal_plan_cache_misses").value = \
        temporal.plan_cache_misses
    registry.counter("temporal_plan_cache_evictions").value = \
        temporal.plan_cache_evictions
    registry.counter("temporal_batch_executions").value = \
        temporal.batch_executions
    registry.counter("temporal_row_executions").value = \
        temporal.row_executions
    # Adaptive re-planning decisions (repro.core.replan); the per-query
    # planner_replans / planner_replan_skipped_* counters and the
    # estimated-vs-actual cost gauges are pushed by the monitor itself
    # when a registry is attached.
    monitor = getattr(engine, "plan_monitor", None)
    if monitor is not None:
        registry.counter("planner_replan_checks").value = monitor.checks
        registry.counter("planner_replans_total").value = monitor.replans
        registry.counter("planner_replans_skipped_hysteresis_total").value = \
            monitor.skipped_hysteresis
        registry.counter("planner_replans_skipped_cooldown_total").value = \
            monitor.skipped_cooldown
    budget = getattr(engine, "adjacency_budget", None)
    if budget is not None:
        registry.counter("adjacency_budget_grows").value = budget.grows
        registry.counter("adjacency_budget_shrinks").value = budget.shrinks
    # Adjacency-segment caches, per shard and total.
    hits = misses = evictions = entries = 0
    for node_id, shard in enumerate(engine.store.shards):
        registry.gauge("adjacency_cache_entries", node=node_id).set(
            len(shard._adjacency))
        registry.gauge("adjacency_cache_capacity", node=node_id).set(
            shard.adjacency_capacity)
        hits += shard.adjacency_hits
        misses += shard.adjacency_misses
        evictions += shard.adjacency_evictions
        entries += len(shard._adjacency)
    registry.counter("adjacency_cache_hits").value = hits
    registry.counter("adjacency_cache_misses").value = misses
    registry.counter("adjacency_cache_evictions").value = evictions
    registry.gauge("adjacency_cache_entries_total").set(entries)
    # Columnar window views (continuous fast path), per stream and total.
    w_hits = w_misses = w_evictions = d_hits = d_misses = 0
    for handle in engine.continuous.queries.values():
        for stream, view in handle.window_views.items():
            registry.gauge("window_view_columns", query=handle.name,
                           stream=stream).set(len(view._columns))
            w_hits += view.hits
            w_misses += view.misses
            w_evictions += view.evictions
            d_hits += view.delta_hits
            d_misses += view.delta_misses
    registry.counter("window_view_hits").value = w_hits
    registry.counter("window_view_misses").value = w_misses
    registry.counter("window_view_evictions").value = w_evictions
    registry.counter("window_delta_hits").value = d_hits
    registry.counter("window_delta_misses").value = d_misses
    # Store / stream index / transient footprints.
    registry.gauge("store_entries").set(engine.store.num_entries)
    registry.gauge("store_bytes").set(engine.store.memory_bytes())
    for name in engine.schemas:
        index = engine.registry.index(name)
        registry.gauge("stream_index_slices", stream=name).set(
            index.num_slices)
        registry.gauge("stream_index_bytes", stream=name).set(
            engine.registry.memory_bytes(name))
        registry.gauge("transient_slices", stream=name).set(
            sum(t.num_slices for t in engine.transients[name]))
    # Fabric traffic.
    fabric = engine.cluster.fabric.stats
    registry.counter("fabric_rdma_reads").value = fabric.rdma_reads
    registry.counter("fabric_messages").value = fabric.messages
    # GC.
    registry.counter("gc_runs").value = engine.gc.stats.runs
    registry.counter("gc_transient_slices_freed").value = \
        engine.gc.stats.transient_slices_freed
    registry.counter("gc_index_slices_freed").value = \
        engine.gc.stats.index_slices_freed
    # Injection totals.
    registry.counter("tuples_injected").value = \
        sum(i.tuples_injected for i in engine.injectors)
    # Per-node stream routing load (the serving layer's one-shot
    # placement signal).
    routed: Dict[int, int] = {}
    for dispatcher in engine.dispatchers.values():
        for node_id, tuples in dispatcher.tuples_routed.items():
            routed[node_id] = routed.get(node_id, 0) + tuples
    for node_id in sorted(routed):
        registry.gauge("dispatch_tuples_routed", node=node_id).set(
            routed[node_id])
    # Proxy retry behaviour.
    if proxies is not None:
        pool = getattr(proxies, "proxies", proxies)
        for proxy in pool:
            stats = proxy.stats
            labels = {"proxy": proxy.proxy_id}
            registry.counter("proxy_oneshot_requests", **labels).value = \
                stats.oneshot_requests
            registry.counter("proxy_timeouts", **labels).value = \
                stats.timeouts
            registry.counter("proxy_retries", **labels).value = stats.retries
            registry.counter("proxy_failures", **labels).value = \
                stats.failures
            registry.counter("proxy_multiplexed_subscriptions",
                             **labels).value = \
                stats.multiplexed_subscriptions
    # Serving layer: sharing, fan-out and admission counters.  The
    # per-tenant latency histograms are pushed by the layer itself into
    # its own registry as requests are served.
    if serving is not None:
        snapshot = serving.snapshot()
        registry.gauge("serving_subscriptions").set(snapshot.subscriptions)
        registry.gauge("serving_shared_queries").set(snapshot.shared_queries)
        registry.gauge("serving_backlog").set(snapshot.backlog)
        registry.counter("serving_shared_hits").value = snapshot.shared_hits
        registry.counter("serving_shared_misses").value = \
            snapshot.shared_misses
        registry.counter("serving_closes_evaluated").value = \
            snapshot.closes_evaluated
        registry.counter("serving_results_delivered").value = \
            snapshot.results_delivered
        registry.counter("serving_executions_saved").value = \
            snapshot.executions_saved
        registry.counter("serving_oneshots_served").value = \
            snapshot.oneshots_served
        registry.counter("serving_rejections_registration").value = \
            snapshot.registrations_rejected
        registry.counter("serving_rejections_backlog").value = \
            snapshot.oneshots_rejected
    return registry
