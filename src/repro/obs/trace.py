"""Deterministic trace spans keyed to the simulated clock.

A :class:`Tracer` records hierarchical *spans* for engine activities —
one-shot executions (with plan/explore/project phases), continuous window
closes, injection batches, fork-join per-node branches, chaos recovery
intervals.  Span timestamps are **readings of the activity's
LatencyMeter** (simulated nanoseconds since the activity began), anchored
at the engine clock's millisecond the activity started, so the whole
trace is a pure function of the simulation: two runs of the same workload
produce byte-identical traces.

The zero-simulated-cost invariant: the tracer only *reads* meters
(``meter.ns`` at span boundaries); it never charges them.  Enabling or
disabling tracing therefore cannot move a single simulated nanosecond —
guarded by ``tests/obs/test_trace_neutrality.py``, which replays the
golden determinism workload with tracing on.

Wall-clock cost is bounded by sampling: a tracer built with
``sample_every=n`` records every n-th activity of each name and returns
``None`` handles for the rest, and every instrumentation site is gated on
``tracer is not None`` so the trace-off engine pays one attribute check.

Parallel sections (fork-join branches, injection fan-out) are recorded
through :class:`ParallelGroup`: the group captures the owning meter's
reading before the branches run (``pre``) and after ``join_parallel``
folded them back (``post``), plus one branch span per spawned meter.  The
group re-derives the joined branch exactly as
:meth:`~repro.sim.cost.LatencyMeter.join_parallel` does (first strict
maximum) and marks it ``critical`` — the contract the critical-path
reconstructor (``repro.obs.analysis``) verifies: ``post == pre +
critical_branch.ns`` with bit-identical float equality.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.cost import LatencyMeter

#: Span kinds (the ``kind`` field).
ACTIVITY = "activity"
PHASE = "phase"
JOIN = "join"
BRANCH = "branch"
EVENT = "event"


class Span:
    """One recorded span.

    ``t0``/``t1`` are meter readings (simulated ns since the owning
    activity's meter started); ``anchor_ms`` is the simulated clock
    millisecond the activity began, so the absolute simulated position is
    ``anchor_ms * 1e6 + t0``.  ``track`` identifies the meter the
    readings came from (each activity root and each parallel branch gets
    its own track).
    """

    __slots__ = ("sid", "parent", "name", "cat", "kind", "track",
                 "t0", "t1", "anchor_ms", "labels", "group", "critical")

    def __init__(self, sid: int, parent: Optional[int], name: str,
                 cat: str, kind: str, track: int, t0: float, t1: float,
                 anchor_ms: int, labels: Optional[Dict] = None,
                 group: Optional[int] = None, critical: bool = False):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.cat = cat
        self.kind = kind
        self.track = track
        self.t0 = t0
        self.t1 = t1
        self.anchor_ms = anchor_ms
        self.labels = labels if labels is not None else {}
        self.group = group
        self.critical = critical

    @property
    def ns(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        """JSON-safe form (sorted labels; exact float readings)."""
        return {
            "sid": self.sid, "parent": self.parent, "name": self.name,
            "cat": self.cat, "kind": self.kind, "track": self.track,
            "t0_ns": self.t0, "t1_ns": self.t1,
            "anchor_ms": self.anchor_ms,
            "labels": dict(sorted(self.labels.items())),
            "group": self.group, "critical": self.critical,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.kind}:{self.name} track={self.track} "
                f"[{self.t0:.0f}, {self.t1:.0f}))")


class ParallelGroup:
    """One fork/join section inside an activity."""

    __slots__ = ("activity", "gid", "name", "pre", "post", "_branches")

    def __init__(self, activity: "Activity", gid: int, name: str):
        self.activity = activity
        self.gid = gid
        self.name = name
        #: Owning meter's reading when the group opened.
        self.pre = activity.meter.ns if activity.meter is not None else 0.0
        self.post: Optional[float] = None
        self._branches: List[Span] = []

    def branch(self, name: str, branch_meter: LatencyMeter,
               **labels) -> None:
        """Record one completed parallel branch (call after its work)."""
        activity = self.activity
        tracer = activity.tracer
        span = Span(
            sid=tracer._next_sid(), parent=activity.root.sid, name=name,
            cat=activity.root.cat, kind=BRANCH, track=tracer._next_track(),
            t0=0.0, t1=branch_meter.ns, anchor_ms=activity.root.anchor_ms,
            labels=labels, group=self.gid)
        self._branches.append(span)
        tracer.spans.append(span)

    def close(self) -> None:
        """Seal the group after ``join_parallel`` folded the branches.

        Replicates join_parallel's selection (first strict maximum) to
        mark the critical branch, and records one JOIN span on the
        activity's root track covering ``[pre, post)``.
        """
        activity = self.activity
        self.post = activity.meter.ns if activity.meter is not None else 0.0
        # The next phase mark starts after the join, not inside it.
        activity._last_mark = self.post
        if not self._branches:
            # join_parallel([]) is a no-op (pre == post): no JOIN span.
            return
        slowest: Optional[Span] = None
        for span in self._branches:
            if slowest is None or span.t1 > slowest.t1:
                slowest = span
        if slowest is not None:
            slowest.critical = True
        tracer = activity.tracer
        tracer.spans.append(Span(
            sid=tracer._next_sid(), parent=activity.root.sid,
            name=self.name, cat=activity.root.cat, kind=JOIN,
            track=activity.root.track, t0=self.pre, t1=self.post,
            anchor_ms=activity.root.anchor_ms,
            labels={"branches": len(self._branches)}, group=self.gid))


class Activity:
    """A live traced activity: one query execution, injection, recovery."""

    __slots__ = ("tracer", "meter", "root", "_last_mark", "_closed")

    def __init__(self, tracer: "Tracer", root: Span,
                 meter: Optional[LatencyMeter]):
        self.tracer = tracer
        self.meter = meter
        self.root = root
        self._last_mark = root.t0
        self._closed = False

    def mark(self, name: str, **labels) -> None:
        """Close one phase: a span from the previous mark to the meter's
        current reading, on the activity's root track."""
        now = self.meter.ns if self.meter is not None else 0.0
        tracer = self.tracer
        tracer.spans.append(Span(
            sid=tracer._next_sid(), parent=self.root.sid, name=name,
            cat=self.root.cat, kind=PHASE, track=self.root.track,
            t0=self._last_mark, t1=now, anchor_ms=self.root.anchor_ms,
            labels=labels))
        self._last_mark = now

    def group(self, name: str) -> ParallelGroup:
        """Open a fork/join section (close() it after join_parallel)."""
        group = ParallelGroup(self, self.tracer._next_gid(), name)
        self._last_mark = group.pre
        return group

    def label(self, **labels) -> None:
        """Attach labels to the activity's root span."""
        self.root.labels.update(labels)

    def end(self) -> None:
        """Seal the activity: the root span closes at the meter's final
        reading, which *is* the activity's simulated latency."""
        if self._closed:
            return
        self._closed = True
        self.root.t1 = self.meter.ns if self.meter is not None else 0.0
        self.root.labels.setdefault("meter_ns", self.root.t1)
        self.tracer._pop(self)


class Tracer:
    """Span recorder for one engine (attach via ``engine.tracer``)."""

    def __init__(self, sample_every: int = 1, clock=None):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        self.sample_every = sample_every
        #: Optional VirtualClock used to anchor activities; without one,
        #: callers pass ``anchor_ms`` explicitly (or spans anchor at 0).
        self.clock = clock
        self.spans: List[Span] = []
        self._sid = 0
        self._track = 0
        self._gid = 0
        self._stack: List[Activity] = []
        self._seen: Dict[str, int] = {}

    # -- id allocation ----------------------------------------------------
    def _next_sid(self) -> int:
        self._sid += 1
        return self._sid

    def _next_track(self) -> int:
        self._track += 1
        return self._track

    def _next_gid(self) -> int:
        self._gid += 1
        return self._gid

    # -- activity lifecycle -----------------------------------------------
    def begin(self, name: str, cat: str,
              meter: Optional[LatencyMeter] = None,
              anchor_ms: Optional[int] = None,
              **labels) -> Optional[Activity]:
        """Start an activity; returns None when sampled out.

        Nested begins attach to the enclosing activity (the span tree
        mirrors the call tree); sampling applies per activity *name* so a
        1-in-n tracer still sees every kind of activity.
        """
        seen = self._seen.get(name, 0)
        self._seen[name] = seen + 1
        if seen % self.sample_every:
            return None
        if anchor_ms is None:
            anchor_ms = self.clock.now_ms if self.clock is not None else 0
        parent = self._stack[-1].root.sid if self._stack else None
        start = meter.ns if meter is not None else 0.0
        root = Span(
            sid=self._next_sid(), parent=parent, name=name, cat=cat,
            kind=ACTIVITY, track=self._next_track(), t0=start, t1=start,
            anchor_ms=anchor_ms, labels=labels)
        self.spans.append(root)
        activity = Activity(self, root, meter)
        self._stack.append(activity)
        return activity

    @property
    def current(self) -> Optional[Activity]:
        """The innermost live activity (None when nothing is traced)."""
        return self._stack[-1] if self._stack else None

    def _pop(self, activity: Activity) -> None:
        if self._stack and self._stack[-1] is activity:
            self._stack.pop()

    def event_span(self, name: str, cat: str, ns: float,
                   anchor_ms: Optional[int] = None, **labels) -> Span:
        """Record one already-completed interval (e.g. a chaos recovery
        whose meter only exists after the fact)."""
        if anchor_ms is None:
            anchor_ms = self.clock.now_ms if self.clock is not None else 0
        span = Span(
            sid=self._next_sid(), parent=None, name=name, cat=cat,
            kind=EVENT, track=self._next_track(), t0=0.0, t1=ns,
            anchor_ms=anchor_ms, labels=labels)
        self.spans.append(span)
        return span

    # -- queries over the recording ----------------------------------------
    def activities(self, name: Optional[str] = None,
                   cat: Optional[str] = None) -> List[Span]:
        """Recorded activity root spans, optionally filtered."""
        return [span for span in self.spans
                if span.kind == ACTIVITY
                and (name is None or span.name == name)
                and (cat is None or span.cat == cat)]

    def children(self, sid: int) -> List[Span]:
        return [span for span in self.spans if span.parent == sid]

    def __len__(self) -> int:
        return len(self.spans)
