"""Critical-path reconstruction and flame-style rendering of traces.

The critical path of an activity is the chain of spans whose durations
*account for* the activity meter's reported latency: sequential phases on
the root track, plus — at every fork/join section — the branch
``join_parallel`` selected (the first strict maximum, exactly as the
meter folds branches).

Exactness contract: :func:`critical_path` re-walks the recorded readings
with the same float operations the meter performed.  Sequential segments
end at recorded readings (adopted, never re-derived by subtraction), and
each join is replayed as ``pre + critical_branch_ns``, the literal
addition :meth:`LatencyMeter.add` executed — so the walked total equals
the meter's final reading **bit for bit**, and any instrumentation gap or
branch-accounting error breaks one of the per-join equalities instead of
hiding in float noise.  ``CriticalPath.exact`` reports whether every
equality held; the obs CI stage (``scripts/check_trace.py``) fails when
it does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.trace import ACTIVITY, BRANCH, JOIN, PHASE, Span


@dataclass
class PathSegment:
    """One link of a critical path."""

    name: str
    kind: str  # "seq" (root-track interval) or "branch" (joined branch)
    ns: float
    labels: Dict = field(default_factory=dict)


@dataclass
class CriticalPath:
    """The reconstructed chain for one activity."""

    activity: Span
    segments: List[PathSegment]
    #: The walked total (== activity meter's final reading when exact).
    total_ns: float
    #: Every join equality ``post == pre + critical_branch_ns`` held and
    #: the chain covered the activity without unexplained readings.
    exact: bool
    problems: List[str] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6


def _index_spans(spans: Sequence[Span]):
    by_parent: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent, []).append(span)
    return by_parent


def critical_path(spans: Sequence[Span], activity: Span) -> CriticalPath:
    """Reconstruct the critical path of ``activity`` from its spans."""
    if activity.kind != ACTIVITY:
        raise ValueError(f"not an activity span: {activity!r}")
    children = _index_spans(spans).get(activity.sid, [])
    joins = sorted((s for s in children if s.kind == JOIN),
                   key=lambda s: (s.t0, s.sid))
    branches: Dict[int, List[Span]] = {}
    for span in children:
        if span.kind == BRANCH and span.group is not None:
            branches.setdefault(span.group, []).append(span)

    segments: List[PathSegment] = []
    problems: List[str] = []
    cur = activity.t0
    for join in joins:
        if join.t0 < cur:
            problems.append(
                f"join {join.name!r} starts at {join.t0} before the "
                f"walk reached it ({cur})")
        if join.t0 != cur:
            segments.append(PathSegment(name="seq", kind="seq",
                                        ns=join.t0 - cur))
        # Adopt the recorded reading: sequential work on the root track
        # is exact by construction (it *is* the meter's accumulation).
        cur = join.t0
        group = sorted(branches.get(join.group, []), key=lambda s: s.sid)
        critical = [s for s in group if s.critical]
        if len(critical) != 1:
            problems.append(
                f"join {join.name!r}: {len(critical)} critical branches "
                f"recorded (want exactly 1)")
            cur = join.t1
            continue
        chosen = critical[0]
        # Replay join_parallel's selection: first strict maximum.
        slowest = None
        for span in group:
            if slowest is None or span.t1 > slowest.t1:
                slowest = span
        if slowest is not chosen:
            problems.append(
                f"join {join.name!r}: marked critical branch "
                f"{chosen.name!r} is not the first maximum")
        # The literal float addition the meter performed at the join.
        walked = cur + chosen.ns
        if walked != join.t1:
            problems.append(
                f"join {join.name!r}: pre ({cur}) + branch "
                f"({chosen.ns}) = {walked} != post ({join.t1})")
        segments.append(PathSegment(
            name=f"{join.name}/{chosen.name}", kind="branch",
            ns=chosen.ns, labels=dict(chosen.labels)))
        cur = join.t1
    if activity.t1 < cur:
        problems.append(
            f"activity ends at {activity.t1} before its last join ({cur})")
    if activity.t1 != cur:
        segments.append(PathSegment(name="seq", kind="seq",
                                    ns=activity.t1 - cur))
    cur = activity.t1
    total = cur - activity.t0 if activity.t0 else cur
    meter_ns = activity.labels.get("meter_ns")
    if meter_ns is not None and total != meter_ns:
        problems.append(
            f"walked total {total} != recorded meter_ns {meter_ns}")
    return CriticalPath(activity=activity, segments=segments,
                        total_ns=total, exact=not problems,
                        problems=problems)


def _fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:.3f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def render_flame(spans: Sequence[Span], activity: Span,
                 width: int = 40) -> str:
    """Flame-style text rendering of one activity's span tree.

    Each line shows the span's share of the activity as a bar plus exact
    simulated duration; branch spans are indented under their join,
    critical branches marked ``*``.
    """
    total = activity.t1 - activity.t0
    by_parent = _index_spans(spans)

    def bar(ns: float) -> str:
        frac = ns / total if total else 0.0
        filled = int(round(frac * width))
        return "#" * filled + "." * (width - filled)

    lines = [f"{activity.name} [{activity.cat}] "
             f"total {_fmt_ns(total)} "
             + " ".join(f"{k}={v}" for k, v in
                        sorted(activity.labels.items())
                        if k != "meter_ns")]
    children = sorted(by_parent.get(activity.sid, []),
                      key=lambda s: (s.t0, s.sid))
    groups: Dict[int, List[Span]] = {}
    for span in children:
        if span.kind == BRANCH and span.group is not None:
            groups.setdefault(span.group, []).append(span)
    for span in children:
        if span.kind == PHASE and span.ns == 0 and span.name != "plan":
            continue
        if span.kind == BRANCH:
            continue  # rendered under their join below
        lines.append(f"  {bar(span.ns)} {_fmt_ns(span.ns):>10} "
                     f"{span.kind}:{span.name}")
        if span.kind == JOIN:
            for branch in sorted(groups.get(span.group, []),
                                 key=lambda s: s.sid):
                marker = "*" if branch.critical else " "
                lines.append(f"   {marker} {bar(branch.ns)} "
                             f"{_fmt_ns(branch.ns):>10} "
                             f"branch:{branch.name}")
    return "\n".join(lines)
