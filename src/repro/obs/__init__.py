"""repro.obs — deterministic observability for the simulated engine.

Three layers (see DESIGN.md §6, "Observability model"):

* **spans** (:mod:`repro.obs.trace`): hierarchical trace spans keyed to
  the simulated clock; enter/exit carry LatencyMeter readings, so the
  trace is a pure function of the simulation and costs zero simulated
  time.
* **metrics** (:mod:`repro.obs.metrics`): a label-aware registry of
  counters, gauges and simulated-time histograms fed by the executor,
  the kvstore caches, the stream index, proxy retries and GC.
* **analysis / export** (:mod:`repro.obs.analysis`,
  :mod:`repro.obs.export`): Chrome trace-event JSON export, fork-join
  critical-path reconstruction (bit-identical to the meter's latency),
  and flame-style text rendering.

Enable on an engine with ``engine.enable_observability()`` (or
``EngineConfig(tracing=True)``); everything is off by default and the
trace-off hot paths pay one attribute check per site.
"""

from repro.obs.analysis import CriticalPath, PathSegment, critical_path, \
    render_flame
from repro.obs.export import chrome_trace, spans_from_chrome, \
    validate_chrome_trace, write_chrome_trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, \
    SIM_NS_BUCKETS, collect_metrics
from repro.obs.trace import Activity, ParallelGroup, Span, Tracer

__all__ = [
    "Activity", "Counter", "CriticalPath", "Gauge", "Histogram",
    "MetricsRegistry", "ParallelGroup", "PathSegment", "SIM_NS_BUCKETS",
    "Span", "Tracer", "chrome_trace", "collect_metrics", "critical_path",
    "render_flame", "spans_from_chrome", "validate_chrome_trace",
    "write_chrome_trace",
]
