"""Chrome trace-event JSON export (and re-import for offline analysis).

:func:`chrome_trace` converts a tracer's recording into the Chrome
trace-event format (``chrome://tracing`` / Perfetto: a ``traceEvents``
list of complete ``"ph": "X"`` events).  Timestamps are **simulated**
microseconds — ``anchor_ms * 1000 + reading_ns / 1000`` — so the viewer
lays activities out on the simulation's own timeline; every parallel
branch gets its own ``tid`` row so fork-join fan-out is visible.

The exact meter readings ride along in each event's ``args`` (``t0_ns`` /
``t1_ns`` etc. at full float precision), which makes the export lossless:
:func:`spans_from_chrome` reconstructs the original spans, so
critical-path analysis runs identically on a live tracer or a trace file
— what ``scripts/check_trace.py`` relies on.

:func:`validate_chrome_trace` is the schema check used by the obs CI
stage: structural problems are returned as strings (empty = valid).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.obs.trace import Span, Tracer

#: args keys every exported event carries (the lossless span encoding).
_ARG_KEYS = ("sid", "parent", "kind", "track", "t0_ns", "t1_ns",
             "anchor_ms", "group", "critical", "labels")

#: Top-level event keys required by the trace-event format.
_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args")


def chrome_trace(tracer_or_spans) -> Dict:
    """The Chrome trace-event document for a tracer (or span list)."""
    spans: Sequence[Span] = tracer_or_spans.spans \
        if isinstance(tracer_or_spans, Tracer) else tracer_or_spans
    events: List[Dict] = []
    for span in spans:
        record = span.as_dict()
        labels = record.pop("labels")
        events.append({
            "name": span.name,
            "cat": f"{span.cat},{span.kind}",
            "ph": "X",
            "ts": span.anchor_ms * 1e3 + span.t0 / 1e3,
            "dur": (span.t1 - span.t0) / 1e3,
            "pid": 0,
            "tid": span.track,
            "args": dict(record, labels=labels),
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"time_domain": "simulated",
                      "producer": "repro.obs"},
    }


def write_chrome_trace(tracer_or_spans, path: str) -> Dict:
    """Write the export to ``path``; returns the document."""
    document = chrome_trace(tracer_or_spans)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return document


def spans_from_chrome(document: Dict) -> List[Span]:
    """Reconstruct spans from an exported document (lossless inverse)."""
    spans: List[Span] = []
    for event in document.get("traceEvents", []):
        args = event["args"]
        cat, _, kind = event["cat"].partition(",")
        spans.append(Span(
            sid=args["sid"], parent=args["parent"], name=event["name"],
            cat=cat, kind=args["kind"], track=args["track"],
            t0=args["t0_ns"], t1=args["t1_ns"],
            anchor_ms=args["anchor_ms"],
            labels=dict(args.get("labels") or {}),
            group=args.get("group"),
            critical=bool(args.get("critical"))))
    spans.sort(key=lambda span: span.sid)
    return spans


def validate_chrome_trace(document) -> List[str]:
    """Structural schema check; returns problems (empty list = valid)."""
    problems: List[str] = []

    def complain(msg: str) -> None:
        if len(problems) < 50:
            problems.append(msg)

    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, want object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    seen_sids = set()
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            complain(f"{where}: not an object")
            continue
        for key in _EVENT_KEYS:
            if key not in event:
                complain(f"{where}: missing key {key!r}")
        if event.get("ph") != "X":
            complain(f"{where}: ph={event.get('ph')!r}, want 'X'")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                complain(f"{where}: {key}={value!r}, want number >= 0")
        args = event.get("args")
        if not isinstance(args, dict):
            complain(f"{where}: args missing or not an object")
            continue
        for key in _ARG_KEYS:
            if key not in args:
                complain(f"{where}: args missing {key!r}")
        sid = args.get("sid")
        if sid in seen_sids:
            complain(f"{where}: duplicate sid {sid}")
        seen_sids.add(sid)
        t0, t1 = args.get("t0_ns"), args.get("t1_ns")
        if isinstance(t0, (int, float)) and isinstance(t1, (int, float)) \
                and t1 < t0:
            complain(f"{where}: t1_ns {t1} < t0_ns {t0}")
        parent = args.get("parent")
        if parent is not None and parent not in seen_sids:
            complain(f"{where}: parent {parent} not seen before child "
                     f"(sids must be recorded in tree order)")
    return problems
