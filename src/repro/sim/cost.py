"""Calibrated cost model and latency accounting.

The cost model prices every primitive operation that the paper's systems
perform, in simulated nanoseconds.  One single model instance is shared by
Wukong+S and all baselines in a given experiment, so differences in measured
latency come from differences in the *amount of work* each design performs
(number of probes, scans, network reads, cross-system transformations), not
from per-engine fudging of the same operation.

Calibration: the default constants are chosen so that the reproduction's
simulated latencies land in the same regimes the paper reports (Tables 2-5,
9) — sub-millisecond for selective queries on Wukong+S, tens of
milliseconds for the composite design, hundreds of milliseconds to seconds
for CSPARQL-engine and Spark Streaming.  The constants model, respectively:
DRAM hash probes, cache-line scans, one-sided RDMA verbs (~2 us), kernel
TCP/IP round trips (~60 us), per-tuple serialization in JVM streaming
frameworks, and mini-batch scheduler overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional


@dataclass(frozen=True)
class CostModel:
    """Prices (simulated nanoseconds) for primitive operations.

    Storage primitives
    ------------------
    hash_probe_ns:        one hash-table key lookup in the local store.
    scan_entry_ns:        scanning one entry of a neighbour/value list.
    insert_entry_ns:      appending one entry to a key's value list.
    create_key_ns:        allocating a fresh key/value pair.
    index_probe_ns:       one probe of a stream-index slice.
    binding_ns:           producing or extending one variable binding row
                          during graph exploration.
    timestamp_filter_ns:  checking one inline timestamp (Wukong/Ext path).
    gc_entry_ns:          reclaiming one entry during garbage collection.

    Network primitives
    ------------------
    rdma_read_ns:         base latency of a one-sided RDMA read.
    rdma_byte_ns:         incremental per-byte cost of an RDMA read.
    tcp_rtt_ns:           base round-trip over the 10 GbE fallback network.
    tcp_byte_ns:          incremental per-byte cost over TCP.
    fork_ns:              dispatching one sub-query to a node (fork-join).
    join_gather_ns:       gathering one node's sub-results (fork-join).

    Cross-system / framework overheads (composite + baselines)
    -----------------------------------------------------------
    transform_tuple_ns:   converting one tuple between a stream processor's
                          format and the store's query format.
    storm_tuple_ns:       per-tuple processing overhead inside a Storm bolt
                          (at-a-time model: serialization, queueing, ack).
    storm_execution_ns:   fixed per-window-execution overhead of the Storm
                          topology (trigger + bolt activation), excluding
                          the job scheduler as the paper's setup does.
    heron_tuple_ns:       the same per-tuple cost for Heron (faster).
    heron_execution_ns:   Heron's per-execution overhead.
    csparql_tuple_ns:     per-tuple overhead of the Esper-based window
                          engine inside CSPARQL-engine.
    csparql_base_ns:      fixed per-execution overhead of CSPARQL-engine
                          (query interpretation, Esper/Jena glue).
    jena_probe_ns:        one lookup in the Jena-like triple store.
    join_probe_ns:        one hash-join probe in a relational engine.
    join_build_ns:        inserting one row into a relational hash table.
    spark_task_ns:        fixed per-stage scheduling cost in Spark.
    spark_row_ns:         per-row cost of Spark's whole-table scans.
    structured_task_ns:   fixed per-trigger cost of Structured Streaming.
    structured_row_ns:    per-row cost of scanning the unbounded table.

    Engine bookkeeping
    ------------------
    task_dispatch_ns:     fixed per-query-execution overhead: enqueueing
                          the task, waking a worker, delivering results
                          (the ~0.1 ms floor visible across the paper's
                          latency tables).
    trigger_check_ns:     evaluating the readiness of one continuous query.
    filter_ns:            evaluating one FILTER expression on one row.
    vts_update_ns:        updating one vector-timestamp component.
    sn_publish_ns:        publishing one SN->VTS mapping.
    log_entry_ns:         writing one entry to the local checkpoint log.
    """

    # --- storage ---
    hash_probe_ns: float = 150.0
    scan_entry_ns: float = 3.0
    insert_entry_ns: float = 120.0
    create_key_ns: float = 300.0
    index_probe_ns: float = 100.0
    binding_ns: float = 25.0
    timestamp_filter_ns: float = 8.0
    gc_entry_ns: float = 15.0

    # --- network ---
    rdma_read_ns: float = 1_800.0
    rdma_byte_ns: float = 0.02
    tcp_rtt_ns: float = 60_000.0
    tcp_byte_ns: float = 0.8
    fork_ns: float = 12_000.0
    join_gather_ns: float = 8_000.0

    # --- cross-system / frameworks ---
    transform_tuple_ns: float = 3_000.0
    storm_tuple_ns: float = 2_600.0
    storm_execution_ns: float = 150_000.0
    heron_tuple_ns: float = 1_100.0
    heron_execution_ns: float = 80_000.0
    csparql_tuple_ns: float = 45_000.0
    csparql_base_ns: float = 40_000_000.0
    jena_probe_ns: float = 18_000.0
    join_probe_ns: float = 220.0
    join_build_ns: float = 260.0
    spark_task_ns: float = 45_000_000.0
    spark_row_ns: float = 900.0
    structured_task_ns: float = 80_000_000.0
    structured_row_ns: float = 1_100.0

    # --- engine bookkeeping ---
    task_dispatch_ns: float = 60_000.0
    trigger_check_ns: float = 200.0
    filter_ns: float = 30.0
    vts_update_ns: float = 80.0
    sn_publish_ns: float = 500.0
    log_entry_ns: float = 180.0

    def rdma_read_cost(self, nbytes: int) -> float:
        """Total cost of one one-sided RDMA read of ``nbytes``."""
        return self.rdma_read_ns + self.rdma_byte_ns * max(0, nbytes)

    def tcp_cost(self, nbytes: int) -> float:
        """Total cost of one TCP round trip carrying ``nbytes``."""
        return self.tcp_rtt_ns + self.tcp_byte_ns * max(0, nbytes)


class LatencyMeter:
    """Accumulates simulated nanoseconds, with optional category breakdown.

    A meter models the critical path of one logical activity (a query, an
    injection, a checkpoint).  Sequential work is added with :meth:`charge`;
    work that proceeds in parallel across nodes or threads is modelled by
    spawning one child meter per branch and folding them back with
    :meth:`join_parallel`, which adds the *maximum* branch time (the
    critical path) to this meter.

    >>> m = LatencyMeter()
    >>> m.charge(500)
    >>> a, b = m.spawn(), m.spawn()
    >>> a.charge(1_000); b.charge(3_000)
    >>> m.join_parallel([a, b])
    >>> m.ns
    3500.0
    """

    __slots__ = ("_ns", "_breakdown")

    def __init__(self) -> None:
        self._ns = 0.0
        self._breakdown: Dict[str, float] = {}

    # -- accumulation -------------------------------------------------
    def charge(self, ns: float, times: int = 1, category: Optional[str] = None) -> None:
        """Add ``ns * times`` to the meter, optionally tagged by category."""
        if ns < 0:
            raise ValueError(f"cannot charge negative time: {ns}")
        if times < 0:
            raise ValueError(f"cannot charge a negative number of times: {times}")
        total = ns * times
        self._ns += total
        if category is not None:
            self._breakdown[category] = self._breakdown.get(category, 0.0) + total

    def charge_many(self, charges: Iterable) -> None:
        """Apply many ``(ns, times, category)`` charges in one call.

        Each triple is applied exactly as :meth:`charge` would: because all
        hot-path cost constants are integer-valued, ``ns * times`` equals
        ``times`` separate additions bit-for-bit, so converting a per-entry
        charge loop to one aggregated call never moves simulated time.
        """
        for ns, times, category in charges:
            self.charge(ns, times=times, category=category)

    def add(self, other: "LatencyMeter") -> None:
        """Fold another meter in sequentially (sum of times)."""
        self._ns += other._ns
        for key, value in other._breakdown.items():
            self._breakdown[key] = self._breakdown.get(key, 0.0) + value

    def spawn(self) -> "LatencyMeter":
        """Create an empty child meter for one parallel branch."""
        return LatencyMeter()

    def join_parallel(self, branches: Iterable["LatencyMeter"]) -> None:
        """Fold parallel branches in: elapsed time grows by the slowest branch.

        The category breakdown of the *slowest* branch is merged, since the
        breakdown documents the critical path.
        """
        slowest: Optional[LatencyMeter] = None
        for branch in branches:
            if slowest is None or branch._ns > slowest._ns:
                slowest = branch
        if slowest is not None:
            self.add(slowest)

    # -- inspection ---------------------------------------------------
    @property
    def ns(self) -> float:
        """Elapsed simulated nanoseconds."""
        return self._ns

    @property
    def us(self) -> float:
        """Elapsed simulated microseconds."""
        return self._ns / 1e3

    @property
    def ms(self) -> float:
        """Elapsed simulated milliseconds."""
        return self._ns / 1e6

    @property
    def breakdown_ms(self) -> Dict[str, float]:
        """Per-category elapsed milliseconds (categories passed to charge)."""
        return {key: value / 1e6 for key, value in self._breakdown.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LatencyMeter(ms={self.ms:.4f})"


class ChargeSet:
    """Accumulates charges for one activity, flushed aggregated at the end.

    A ``ChargeSet`` quacks like a :class:`LatencyMeter` for charging (it
    exposes the same ``charge(ns, times=1, category=None)`` shape), so it
    can be handed to store primitives in place of a meter inside a hot
    loop.  It merely counts occurrences per ``(ns, category)`` pair;
    :meth:`flush` then issues one aggregated ``meter.charge`` per pair.
    With integer-valued cost constants the flushed total is bit-identical
    to charging each event individually (integer sums stay exact well
    below 2**53), while the Python-level overhead drops from one meter
    call per store entry to one per distinct price.
    """

    __slots__ = ("_acc",)

    def __init__(self) -> None:
        self._acc: Dict = {}

    def charge(self, ns: float, times: int = 1,
               category: Optional[str] = None) -> None:
        key = (ns, category)
        self._acc[key] = self._acc.get(key, 0) + times

    def flush(self, meter: LatencyMeter) -> None:
        """Emit one aggregated charge per distinct (ns, category) pair."""
        for (ns, category), times in self._acc.items():
            meter.charge(ns, times=times, category=category)
        self._acc.clear()


@dataclass
class MemoryModel:
    """Prices (bytes) for the memory-accounting experiments (Table 7, §6.7).

    entry_bytes:       one vid entry in a persistent-store value list.
    key_bytes:         one key (vid|eid|d, 64-bit packed) plus bucket slot.
    index_key_bytes:   one stream-index slice entry key (packed 64-bit,
                       open-addressed: no bucket overhead).
    fat_pointer_bytes: the paper's 96-bit fat pointer (address + size)
                       used by stream-index entries, rounded to 12 bytes.
    timestamp_bytes:   one stored timestamp (Wukong/Ext inline path).
    tuple_bytes:       one raw stream tuple (triple + timestamp) in wire
                       form (RDF terms are strings on the wire).
    sn_segment_bytes:  per-key bookkeeping for one snapshot segment.
    """

    entry_bytes: int = 8
    key_bytes: int = 16
    index_key_bytes: int = 8
    fat_pointer_bytes: int = 12
    timestamp_bytes: int = 8
    tuple_bytes: int = 64
    sn_segment_bytes: int = 16

    extras: Dict[str, int] = field(default_factory=dict)
