"""Simulated cluster: nodes, data partitioning and worker accounting.

A :class:`Cluster` stands in for the paper's 8-node rack.  Each
:class:`Node` models one server with a fixed number of query-worker threads
(one continuous-query engine and one one-shot engine in Wukong+S).  Data
placement uses the same hash partitioning as Wukong: a vertex ``vid`` lives
on node ``vid % num_nodes``.

Fault injection (``kill_node`` / ``restart_node``) drives the recovery path
of the fault-tolerance experiments (§6.8).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ReproError
from repro.sim.cost import CostModel
from repro.sim.network import Fabric


class Node:
    """One simulated server.

    Attributes
    ----------
    node_id:
        Zero-based identifier within the cluster.
    workers:
        Number of worker threads serving continuous queries.
    alive:
        False after :meth:`Cluster.kill_node` until restart.
    """

    def __init__(self, node_id: int, workers: int = 16):
        if workers <= 0:
            raise ValueError(f"node needs at least one worker, got {workers}")
        self.node_id = node_id
        self.workers = workers
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self.alive else "down"
        return f"Node(id={self.node_id}, workers={self.workers}, {status})"


class Cluster:
    """A set of simulated nodes joined by one fabric.

    Parameters
    ----------
    num_nodes:
        Cluster size (the paper evaluates 1 through 8).
    workers_per_node:
        Worker threads per node available for continuous queries.
    cost:
        Shared cost model; defaults to the calibrated :class:`CostModel`.
    use_rdma:
        Whether the fabric performs one-sided RDMA reads (Table 5 toggles
        this off).
    """

    def __init__(self, num_nodes: int = 8, workers_per_node: int = 16,
                 cost: CostModel | None = None, use_rdma: bool = True):
        if num_nodes <= 0:
            raise ValueError(f"cluster needs at least one node, got {num_nodes}")
        self.cost = cost if cost is not None else CostModel()
        self.fabric = Fabric(self.cost, use_rdma=use_rdma)
        self.nodes: List[Node] = [Node(i, workers_per_node) for i in range(num_nodes)]

    # -- placement ----------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def owner_of(self, vid: int) -> int:
        """The node that owns vertex ``vid`` (hash partitioning, as Wukong)."""
        return vid % len(self.nodes)

    def is_local(self, vid: int, node_id: int) -> bool:
        """Whether vertex ``vid`` is stored on ``node_id``."""
        return self.owner_of(vid) == node_id

    def alive_nodes(self) -> List[Node]:
        return [node for node in self.nodes if node.alive]

    def down_nodes(self) -> List[int]:
        """IDs of currently failed nodes."""
        return [node.node_id for node in self.nodes if not node.alive]

    @property
    def all_alive(self) -> bool:
        """Whether the cluster is fully healthy (no failed node)."""
        return all(node.alive for node in self.nodes)

    @property
    def total_workers(self) -> int:
        """Workers across live nodes (used for throughput accounting)."""
        return sum(node.workers for node in self.alive_nodes())

    # -- fault injection ------------------------------------------------
    def kill_node(self, node_id: int) -> None:
        """Mark a node failed (its in-memory state is considered lost)."""
        self._node(node_id).alive = False

    def restart_node(self, node_id: int) -> None:
        """Bring a failed node back (empty; recovery must reload state)."""
        self._node(node_id).alive = True

    def _node(self, node_id: int) -> Node:
        if not 0 <= node_id < len(self.nodes):
            raise ReproError(f"no such node: {node_id}")
        return self.nodes[node_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster(nodes={len(self.nodes)}, rdma={self.fabric.use_rdma})"
