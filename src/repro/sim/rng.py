"""Deterministic random-number helpers.

Every stochastic choice in the library (workload generation, query start
points, mixed-workload composition) flows through an explicitly seeded
:class:`random.Random` created here, so no run ever depends on global RNG
state or wall-clock seeding.
"""

from __future__ import annotations

import random
import zlib
from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def make_rng(seed: int, *salt: object) -> random.Random:
    """Create an isolated RNG from a base seed plus mixing salt.

    The salt lets independent components (e.g. each stream generator) derive
    non-overlapping deterministic substreams from one experiment seed.
    """
    mixed = hash((int(seed),) + tuple(str(s) for s in salt)) & 0x7FFF_FFFF_FFFF_FFFF
    return random.Random(mixed)


def stable_rng(seed: int, *salt: object) -> random.Random:
    """Like :func:`make_rng`, but stable across interpreter processes.

    ``make_rng`` mixes its salt with :func:`hash`, which for strings is
    randomized per process.  Components whose draws must be reproducible
    *between* runs — fault plans, retry jitter, anything golden-recorded —
    derive their seed through CRC32 instead, which is a pure function of
    the bytes.
    """
    text = repr((int(seed),) + tuple(str(s) for s in salt)).encode()
    mixed = zlib.crc32(text) ^ (int(seed) << 32)
    return random.Random(mixed & 0x7FFF_FFFF_FFFF_FFFF)


#: Cached cumulative Zipf weights, keyed by (population size, skew).
_ZIPF_CDF_CACHE: Dict[Tuple[int, float], List[float]] = {}


def _zipf_cdf(n: int, skew: float) -> List[float]:
    cached = _ZIPF_CDF_CACHE.get((n, skew))
    if cached is None:
        cached = []
        total = 0.0
        for rank in range(n):
            total += (rank + 1) ** -skew
            cached.append(total)
        _ZIPF_CDF_CACHE[(n, skew)] = cached
    return cached


def zipf_choice(rng: random.Random, items: Sequence[T], skew: float = 1.2) -> T:
    """Pick one item with a Zipf-like preference for earlier entries.

    Social-network activity is heavily skewed (a few users generate most
    posts); LSBench models this, and our generator follows suit.  The
    cumulative weight table is cached per (len(items), skew), so repeated
    draws cost one bisect each.
    """
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    cdf = _zipf_cdf(len(items), skew)
    target = rng.random() * cdf[-1]
    return items[bisect_left(cdf, target)]
