"""Deterministic simulation substrate.

The paper measures wall-clock latency on an 8-node RDMA cluster.  This
package replaces that hardware with a calibrated cost model: every primitive
operation (hash probe, value scan, RDMA read, TCP round trip, tuple
transformation...) charges simulated nanoseconds to a :class:`LatencyMeter`.
All engines in this repository — Wukong+S and every baseline — execute their
real algorithms on real data and are priced by the same model, so relative
orderings and scaling shapes are produced by actual work performed.
"""

from repro.sim.clock import VirtualClock
from repro.sim.cost import CostModel, LatencyMeter
from repro.sim.network import Fabric
from repro.sim.cluster import Cluster, Node

__all__ = [
    "VirtualClock",
    "CostModel",
    "LatencyMeter",
    "Fabric",
    "Cluster",
    "Node",
]
