"""Simulated network fabric (RDMA-capable with a TCP fallback).

The paper's cluster has two networks: 56 Gbps InfiniBand (RDMA) and 10 GbE
(TCP).  Wukong+S uses one-sided RDMA reads for in-place execution; with
``use_rdma=False`` (Table 5) it falls back to fork-join execution over TCP.
The fabric charges the appropriate cost to a :class:`LatencyMeter` and
counts the operations so benchmarks can report traffic statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.cost import CostModel, LatencyMeter


@dataclass
class FabricStats:
    """Operation counters for one fabric."""

    rdma_reads: int = 0
    rdma_bytes: int = 0
    messages: int = 0
    message_bytes: int = 0
    replays: int = 0
    replay_bytes: int = 0

    def reset(self) -> None:
        self.rdma_reads = 0
        self.rdma_bytes = 0
        self.messages = 0
        self.message_bytes = 0
        self.replays = 0
        self.replay_bytes = 0


class Fabric:
    """Prices remote operations between simulated nodes.

    Parameters
    ----------
    cost:
        The shared cost model.
    use_rdma:
        When True (default), :meth:`remote_read` is a one-sided RDMA read.
        When False, remote reads are full TCP round trips, as in the paper's
        non-RDMA configuration (Table 5).
    """

    def __init__(self, cost: CostModel, use_rdma: bool = True):
        self.cost = cost
        self.use_rdma = use_rdma
        self.stats = FabricStats()

    def remote_read(self, meter: LatencyMeter, nbytes: int,
                    category: str = "network") -> None:
        """Charge one remote read of ``nbytes`` from another node's memory."""
        if self.use_rdma:
            self.stats.rdma_reads += 1
            self.stats.rdma_bytes += nbytes
            meter.charge(self.cost.rdma_read_cost(nbytes), category=category)
        else:
            self.stats.messages += 1
            self.stats.message_bytes += nbytes
            meter.charge(self.cost.tcp_cost(nbytes), category=category)

    def message(self, meter: LatencyMeter, nbytes: int,
                category: str = "network") -> None:
        """Charge one request/response message exchange of ``nbytes``.

        Two-sided messaging is used for fork-join dispatch and by all
        baseline systems; it always pays the TCP-style round trip (the
        paper's baselines do not use one-sided RDMA).
        """
        self.stats.messages += 1
        self.stats.message_bytes += nbytes
        meter.charge(self.cost.tcp_cost(nbytes), category=category)

    def one_way(self, meter: LatencyMeter, nbytes: int,
                category: str = "network") -> None:
        """Charge a one-way send (half a round trip) of ``nbytes``."""
        self.stats.messages += 1
        self.stats.message_bytes += nbytes
        meter.charge(self.cost.tcp_cost(nbytes) / 2.0, category=category)

    def replay_transfer(self, meter: LatencyMeter, nbytes: int,
                        category: str = "replay") -> None:
        """Charge one upstream-backup replay of ``nbytes`` (§5 recovery).

        Sources sit outside the rack, so replay always travels as a one-way
        TCP send regardless of the fabric's RDMA capability.  Charged to
        the recovery meter, never to an injection record, so the simulated
        cost of the healthy path is unaffected by how a run was healed.
        """
        self.stats.replays += 1
        self.stats.replay_bytes += nbytes
        meter.charge(self.cost.tcp_cost(nbytes) / 2.0, category=category)

    def bulk_transfer(self, meter: LatencyMeter, nbytes: int,
                      category: str = "network") -> None:
        """Charge one bulk data movement between nodes.

        With RDMA the payload moves as a one-sided write at RDMA cost;
        without it, as a one-way TCP send.  Used by the distributed
        execution modes for row migration and result gathering — the
        medium is exactly what Table 5 toggles.
        """
        if self.use_rdma:
            self.stats.rdma_reads += 1
            self.stats.rdma_bytes += nbytes
            meter.charge(self.cost.rdma_read_cost(nbytes), category=category)
        else:
            self.stats.messages += 1
            self.stats.message_bytes += nbytes
            meter.charge(self.cost.tcp_cost(nbytes) / 2.0, category=category)
