"""Virtual time.

All timestamps in the system (stream tuple timestamps, window boundaries,
checkpoint intervals) are expressed in *simulated milliseconds* counted by a
:class:`VirtualClock`.  Nothing in the library ever reads the wall clock,
which keeps every run bit-for-bit reproducible.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically advancing simulated clock (milliseconds).

    >>> clock = VirtualClock(start_ms=800)
    >>> clock.now_ms
    800
    >>> clock.advance(100)
    900
    """

    def __init__(self, start_ms: int = 0):
        if start_ms < 0:
            raise ValueError(f"clock cannot start in negative time: {start_ms}")
        self._now_ms = int(start_ms)

    @property
    def now_ms(self) -> int:
        """The current simulated time in milliseconds."""
        return self._now_ms

    def advance(self, delta_ms: int) -> int:
        """Move the clock forward by ``delta_ms`` and return the new time."""
        if delta_ms < 0:
            raise ValueError(f"clock cannot move backwards: {delta_ms}")
        self._now_ms += int(delta_ms)
        return self._now_ms

    def advance_to(self, when_ms: int) -> int:
        """Move the clock forward to ``when_ms`` (no-op if already past it)."""
        if when_ms > self._now_ms:
            self._now_ms = int(when_ms)
        return self._now_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now_ms={self._now_ms})"
