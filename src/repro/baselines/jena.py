"""A Jena-like triple store: correct but slow, probe-priced lookups.

CSPARQL-engine pairs Esper with Apache Jena (§2.3).  This miniature keeps
triples in simple subject/object/predicate hash indexes and charges an
interpretive per-probe cost (:attr:`CostModel.jena_probe_ns`) plus
per-result scanning — orders of magnitude above the RDMA-priced Wukong
paths, matching the paper's "slow building blocks" observation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines.relational import Row, hash_join
from repro.rdf.string_server import StringServer
from repro.rdf.terms import Triple
from repro.sim.cost import CostModel, LatencyMeter
from repro.sparql.ast import TriplePattern, is_variable


class JenaStore:
    """In-memory triple store with (s,p) / (o,p) / (p) hash indexes."""

    def __init__(self, strings: StringServer, cost: CostModel):
        self.strings = strings
        self.cost = cost
        self._by_sp: Dict[Tuple[int, int], List[int]] = {}
        self._by_op: Dict[Tuple[int, int], List[int]] = {}
        self._by_p: Dict[int, List[Tuple[int, int]]] = {}
        self.num_triples = 0

    def load(self, triples: Iterable[Triple]) -> int:
        count = 0
        for triple in triples:
            enc = self.strings.encode_triple(triple)
            self._by_sp.setdefault((enc.s, enc.p), []).append(enc.o)
            self._by_op.setdefault((enc.o, enc.p), []).append(enc.s)
            self._by_p.setdefault(enc.p, []).append((enc.s, enc.o))
            self.num_triples += 1
            count += 1
        return count

    # -- pattern evaluation ------------------------------------------------
    def match(self, pattern: TriplePattern, seeds: List[Row],
              meter: LatencyMeter) -> List[Row]:
        """Extend seed rows through one pattern (probe-per-seed pricing)."""
        eid = self.strings.lookup_predicate(pattern.predicate)
        if eid is None:
            meter.charge(self.cost.jena_probe_ns, category="jena")
            return []
        out: List[Row] = []
        for seed in seeds:
            out.extend(self._match_one(pattern, eid, seed, meter))
        return out

    def _match_one(self, pattern: TriplePattern, eid: int, seed: Row,
                   meter: LatencyMeter) -> List[Row]:
        meter.charge(self.cost.jena_probe_ns, category="jena")
        s_bound = self._resolve(pattern.subject, seed)
        o_bound = self._resolve(pattern.object, seed)
        if s_bound == -1 or o_bound == -1:
            return []  # a constant term the store has never seen

        if s_bound is not None:
            objects = self._by_sp.get((s_bound, eid), [])
            meter.charge(self.cost.scan_entry_ns, times=len(objects),
                         category="jena")
            return self._emit(pattern, seed, [(s_bound, o) for o in objects],
                              o_bound, meter)
        if o_bound is not None:
            subjects = self._by_op.get((o_bound, eid), [])
            meter.charge(self.cost.scan_entry_ns, times=len(subjects),
                         category="jena")
            return self._emit(pattern, seed, [(s, o_bound) for s in subjects],
                              o_bound, meter)
        pairs = self._by_p.get(eid, [])
        meter.charge(self.cost.scan_entry_ns, times=len(pairs),
                     category="jena")
        return self._emit(pattern, seed, pairs, o_bound, meter)

    def _resolve(self, term: str, seed: Row) -> Optional[int]:
        """Bound value for a term: constant id, seed binding, or None.

        Returns -1 for a constant term unknown to the string server (the
        pattern can then never match).
        """
        if is_variable(term):
            return seed.get(term)
        vid = self.strings.lookup_entity(term)
        return vid if vid is not None else -1

    def _emit(self, pattern: TriplePattern, seed: Row,
              pairs: List[Tuple[int, int]], o_bound: Optional[int],
              meter: LatencyMeter) -> List[Row]:
        out: List[Row] = []
        for s, o in pairs:
            if o_bound is not None and o != o_bound:
                continue
            row = dict(seed)
            if is_variable(pattern.subject):
                if pattern.subject in row and row[pattern.subject] != s:
                    continue
                row[pattern.subject] = s
            if is_variable(pattern.object):
                if pattern.object in row and row[pattern.object] != o:
                    continue
                row[pattern.object] = o
            out.append(row)
            meter.charge(self.cost.binding_ns, category="jena")
        return out
