"""A Structured-Streaming-like engine: queries over an unbounded table.

Structured Streaming (Table 4) models each stream as an ever-growing
unbounded table and re-runs the query on triggers.  Two consequences the
paper measures:

* every stream-pattern scan touches the whole unbounded table (all history,
  not just the window), so latency exceeds even Spark Streaming's and grows
  as the stream ages;
* joins between two streaming datasets are **unsupported** — queries with
  more than one stream pattern raise
  :class:`~repro.errors.UnsupportedOperationError` and appear as "x" in the
  reproduction of Table 4, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines.relational import (Row, finalize, hash_join,
                                        scan_pattern)
from repro.errors import UnsupportedOperationError
from repro.rdf.string_server import StringServer
from repro.rdf.terms import EncodedTuple, Triple
from repro.sim.cost import CostModel, LatencyMeter
from repro.sparql.ast import Query
from repro.streams.stream import StreamBatch


class StructuredStreamingEngine:
    """Trigger-based execution over unbounded tables."""

    def __init__(self, cost: Optional[CostModel] = None):
        self.cost = cost if cost is not None else CostModel()
        self.strings = StringServer()
        self._stored_by_pred: Dict[int, List[EncodedTuple]] = {}
        self.num_stored = 0
        #: Unbounded per-stream tables: appended forever, never evicted.
        self._unbounded: Dict[str, List[EncodedTuple]] = {}

    # -- data ------------------------------------------------------------
    def load_static(self, triples: Iterable[Triple]) -> int:
        count = 0
        for triple in triples:
            enc = self.strings.encode_triple(triple)
            self._stored_by_pred.setdefault(enc.p, []).append(
                EncodedTuple(enc, 0))
            self.num_stored += 1
            count += 1
        return count

    def ingest(self, batch: StreamBatch) -> None:
        table = self._unbounded.setdefault(batch.stream, [])
        for tup in batch.tuples:
            table.append(self.strings.encode_tuple(tup))

    @property
    def unbounded_rows(self) -> int:
        """Total rows across the unbounded stream tables."""
        return sum(len(t) for t in self._unbounded.values())

    # -- execution ------------------------------------------------------------
    def execute_continuous(self, query: Query, close_ms: int,
                           meter: Optional[LatencyMeter] = None
                           ) -> Tuple[List[tuple], LatencyMeter]:
        """One trigger; raises for stream-stream joins."""
        if query.optionals or query.unions:
            raise UnsupportedOperationError(
                "Structured Streaming does not support OPTIONAL/UNION over "
                "streaming data")
        stream_patterns = query.stream_patterns()
        if len(stream_patterns) > 1:
            raise UnsupportedOperationError(
                "Structured Streaming does not support joins between two "
                "streaming datasets")
        if meter is None:
            meter = LatencyMeter()
        rows: Optional[List[Row]] = None
        for pattern in query.patterns:
            meter.charge(self.cost.structured_task_ns, category="scheduling")
            if pattern.graph in query.windows:
                window = query.windows[pattern.graph]
                start_ms, end_ms = window.span_at(close_ms)
                table = self._unbounded.get(pattern.graph, [])
                in_window = [t for t in table
                             if start_ms <= t.timestamp_ms < end_ms]
                # The scan really walks the whole unbounded table.
                scanned = scan_pattern(
                    in_window, pattern, self.strings, meter,
                    self.cost.structured_row_ns, self.cost,
                    modeled_rows=self.unbounded_rows, category="scan")
            else:
                eid = self.strings.lookup_predicate(pattern.predicate)
                tuples = self._stored_by_pred.get(eid, []) \
                    if eid is not None else []
                scanned = scan_pattern(
                    tuples, pattern, self.strings, meter,
                    self.cost.structured_row_ns, self.cost,
                    modeled_rows=self.num_stored, category="scan")
            rows = scanned if rows is None else \
                hash_join(rows, scanned, meter, self.cost)
        return finalize(rows or [], query, self.strings, meter,
                        self.cost), meter
