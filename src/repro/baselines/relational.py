"""Relational operators over tuple windows.

The stream processors the paper compares against (Esper inside
CSPARQL-engine, Storm/Heron bolts, Spark SQL) evaluate triple patterns as
relational *scans* over tuple tables followed by *hash joins* — precisely
the approach that suffers on highly linked data ("join bomb", §2.2): every
pattern scan materialises a binding table and every join pays build+probe
costs over potentially huge intermediates.

These operators produce correct bindings (cross-checked against the graph
explorer in tests) while charging engine-specific per-tuple costs supplied
by the caller.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.rdf.string_server import StringServer
from repro.rdf.terms import EncodedTuple
from repro.sim.cost import CostModel, LatencyMeter
from repro.sparql.ast import TriplePattern, is_variable

#: One relational binding row (same shape as the explorer's rows).
Row = Dict[str, int]


class WindowBuffer:
    """A stream processor's retained tuple buffer for one stream.

    Baseline systems duplicate streaming data into their own buffers (the
    redundancy the integrated design avoids).  ``window`` returns the
    tuples of a time range; ``evict_before`` models the processor's own
    window eviction.
    """

    def __init__(self, stream: str):
        self.stream = stream
        self._tuples: List[EncodedTuple] = []

    def append(self, encoded: EncodedTuple) -> None:
        if self._tuples and encoded.timestamp_ms < self._tuples[-1].timestamp_ms:
            raise ValueError(
                f"stream {self.stream}: out-of-order tuple at "
                f"{encoded.timestamp_ms}")
        self._tuples.append(encoded)

    def extend(self, batch: Sequence[EncodedTuple]) -> None:
        for encoded in batch:
            self.append(encoded)

    def window(self, start_ms: int, end_ms: int) -> List[EncodedTuple]:
        """Tuples with ``start_ms <= ts < end_ms``."""
        return [t for t in self._tuples
                if start_ms <= t.timestamp_ms < end_ms]

    def evict_before(self, cutoff_ms: int) -> int:
        """Drop tuples older than ``cutoff_ms``; returns how many."""
        kept = [t for t in self._tuples if t.timestamp_ms >= cutoff_ms]
        dropped = len(self._tuples) - len(kept)
        self._tuples = kept
        return dropped

    def __len__(self) -> int:
        return len(self._tuples)


def scan_pattern(tuples: Sequence[EncodedTuple], pattern: TriplePattern,
                 strings: StringServer, meter: LatencyMeter,
                 per_tuple_ns: float, cost: CostModel,
                 modeled_rows: Optional[int] = None,
                 category: str = "scan") -> List[Row]:
    """Filter a tuple table by one pattern, producing binding rows.

    ``per_tuple_ns`` is the engine's per-tuple processing overhead;
    ``modeled_rows`` overrides the number of rows charged for (engines that
    scan a larger physical table than the slice we iterate, e.g. Spark's
    whole-DataFrame scans, pass the full table size here).
    """
    eid = strings.lookup_predicate(pattern.predicate)
    charged = modeled_rows if modeled_rows is not None else len(tuples)
    meter.charge(per_tuple_ns, times=charged, category=category)
    if eid is None:
        return []

    s_const = None if is_variable(pattern.subject) else \
        strings.lookup_entity(pattern.subject)
    o_const = None if is_variable(pattern.object) else \
        strings.lookup_entity(pattern.object)
    if (not is_variable(pattern.subject) and s_const is None) or \
            (not is_variable(pattern.object) and o_const is None):
        return []

    rows: List[Row] = []
    for encoded in tuples:
        triple = encoded.triple
        if triple.p != eid:
            continue
        if s_const is not None and triple.s != s_const:
            continue
        if o_const is not None and triple.o != o_const:
            continue
        row: Row = {}
        if s_const is None:
            row[pattern.subject] = triple.s
        if o_const is None:
            if pattern.object == pattern.subject and \
                    row.get(pattern.subject) != triple.o:
                continue
            row[pattern.object] = triple.o
        rows.append(row)
        meter.charge(cost.binding_ns, category=category)
    return rows


def hash_join(left: List[Row], right: List[Row], meter: LatencyMeter,
              cost: CostModel, category: str = "join") -> List[Row]:
    """Natural hash join on the variables the two sides share.

    With no shared variable this degenerates to a cross product, exactly
    as a relational engine would behave.
    """
    if not left or not right:
        meter.charge(cost.join_build_ns, times=len(left), category=category)
        meter.charge(cost.join_probe_ns, times=len(right), category=category)
        return []
    shared = sorted(set(left[0].keys()) & set(right[0].keys()))

    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    table: Dict[tuple, List[Row]] = {}
    for row in build:
        key = tuple(row[var] for var in shared)
        table.setdefault(key, []).append(row)
        meter.charge(cost.join_build_ns, category=category)

    out: List[Row] = []
    for row in probe:
        key = tuple(row[var] for var in shared)
        meter.charge(cost.join_probe_ns, category=category)
        for match in table.get(key, ()):
            merged = dict(match)
            merged.update(row)
            out.append(merged)
            meter.charge(cost.binding_ns, category=category)
    return out


def left_join(left: List[Row], right: List[Row], meter: LatencyMeter,
              cost: CostModel, category: str = "join") -> List[Row]:
    """Left outer join: OPTIONAL semantics.

    Every left row compatible with no right row survives unextended; a
    shared variable is compatible when both sides bind it equally.
    """
    out: List[Row] = []
    for lrow in left:
        matched = False
        for rrow in right:
            meter.charge(cost.join_probe_ns, category=category)
            if all(lrow.get(key, value) == value
                   for key, value in rrow.items()):
                merged = dict(lrow)
                merged.update(rrow)
                out.append(merged)
                matched = True
                meter.charge(cost.binding_ns, category=category)
        if not matched:
            out.append(lrow)
    return out


def project(rows: List[Row], variables: Sequence[str],
            meter: LatencyMeter, cost: CostModel) -> List[tuple]:
    """Deduplicating projection to the output variables."""
    seen = set()
    out: List[tuple] = []
    for row in rows:
        key = tuple(row.get(var, -1) for var in variables)
        if key not in seen:
            seen.add(key)
            out.append(key)
            meter.charge(cost.binding_ns, category="project")
    return out


def finalize(rows: List[Row], query, strings: StringServer,
             meter: LatencyMeter, cost: CostModel) -> List[tuple]:
    """Apply the query's FILTERs, then aggregate or project.

    Relational engines evaluate filters after their joins (no
    mid-exploration pruning) and share the aggregation semantics of
    :mod:`repro.sparql.evaluate` with the graph explorer.
    """
    from repro.sparql.evaluate import aggregate_rows, apply_filters
    rows = apply_filters(rows, query.filters, strings.entity_name,
                         strings.lookup_entity, meter, cost)
    if query.is_ask:
        return [()] if rows else []
    if query.aggregates:
        out = aggregate_rows(rows, query, strings.entity_name, meter, cost)
    else:
        out = project(rows, query.projected(), meter, cost)
    if query.offset:
        out = out[query.offset:]
    if query.limit is not None:
        out = out[:query.limit]
    return out
