"""A Spark-Streaming-like engine: mini-batch relational joins over RDDs.

Spark Streaming (§6.2) represents both streaming and stored data as
in-memory DataFrames and runs each continuous query as Spark SQL: one
whole-table scan per triple pattern plus hash joins, under a fixed
per-stage scheduling overhead.  The stored DataFrame scan touches every
row regardless of the pattern's selectivity — the design choice that keeps
its latency in the hundreds of milliseconds while Wukong+S's exploration
touches only the data the query needs.

Result correctness is preserved (evaluation uses predicate indexes under
the hood) while costs are charged for the scans the engine would really
perform (``modeled_rows``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines.relational import (Row, WindowBuffer, finalize,
                                        hash_join, left_join, scan_pattern)
from repro.errors import UnsupportedOperationError
from repro.rdf.string_server import StringServer
from repro.rdf.terms import EncodedTuple, Triple
from repro.sim.cost import CostModel, LatencyMeter
from repro.sparql.ast import Query
from repro.streams.stream import StreamBatch


class SparkStreamingEngine:
    """Mini-batch relational execution over streaming + stored DataFrames."""

    def __init__(self, cost: Optional[CostModel] = None):
        self.cost = cost if cost is not None else CostModel()
        self.strings = StringServer()
        #: The stored DataFrame, predicate-indexed for fast evaluation.
        self._stored_by_pred: Dict[int, List[EncodedTuple]] = {}
        self.num_stored = 0
        self.buffers: Dict[str, WindowBuffer] = {}

    # -- data ------------------------------------------------------------
    def load_static(self, triples: Iterable[Triple]) -> int:
        count = 0
        for triple in triples:
            enc = self.strings.encode_triple(triple)
            self._stored_by_pred.setdefault(enc.p, []).append(
                EncodedTuple(enc, 0))
            self.num_stored += 1
            count += 1
        return count

    def ingest(self, batch: StreamBatch) -> None:
        buffer = self.buffers.setdefault(batch.stream,
                                         WindowBuffer(batch.stream))
        for tup in batch.tuples:
            buffer.append(self.strings.encode_tuple(tup))

    # -- execution ------------------------------------------------------------
    def execute_continuous(self, query: Query, close_ms: int,
                           meter: Optional[LatencyMeter] = None
                           ) -> Tuple[List[tuple], LatencyMeter]:
        """One mini-batch trigger of the query."""
        if meter is None:
            meter = LatencyMeter()
        rows: Optional[List[Row]] = None
        for pattern in query.patterns:
            scanned = self._scan(query, pattern, close_ms, meter)
            rows = scanned if rows is None else \
                hash_join(rows, scanned, meter, self.cost)
        for union in query.unions:
            branch_tables: List[Row] = []
            for branch in union:
                branch_rows: Optional[List[Row]] = None
                for pattern in branch:
                    scanned = self._scan(query, pattern, close_ms, meter)
                    branch_rows = scanned if branch_rows is None else \
                        hash_join(branch_rows, scanned, meter, self.cost)
                branch_tables.extend(branch_rows or [])
            rows = branch_tables if rows is None else \
                hash_join(rows, branch_tables, meter, self.cost)
        for group in query.optionals:
            group_rows: Optional[List[Row]] = None
            for pattern in group:
                scanned = self._scan(query, pattern, close_ms, meter)
                group_rows = scanned if group_rows is None else \
                    hash_join(group_rows, scanned, meter, self.cost)
            rows = left_join(rows or [], group_rows or [], meter, self.cost)
        return finalize(rows or [], query, self.strings, meter,
                        self.cost), meter

    def _scan(self, query: Query, pattern, close_ms: int,
              meter: LatencyMeter) -> List[Row]:
        """One Spark SQL stage: scan a DataFrame by one pattern."""
        meter.charge(self.cost.spark_task_ns, category="scheduling")
        if pattern.graph in query.windows:
            window = query.windows[pattern.graph]
            start_ms, end_ms = window.span_at(close_ms)
            buffer = self.buffers.get(pattern.graph)
            tuples = buffer.window(start_ms, end_ms) if buffer else []
            return scan_pattern(
                tuples, pattern, self.strings, meter,
                self.cost.spark_row_ns, self.cost, category="scan")
        eid = self.strings.lookup_predicate(pattern.predicate)
        tuples = self._stored_by_pred.get(eid, []) \
            if eid is not None else []
        return scan_pattern(
            tuples, pattern, self.strings, meter,
            self.cost.spark_row_ns, self.cost,
            modeled_rows=self.num_stored, category="scan")

    def execute_oneshot(self, query: Query,
                        meter: Optional[LatencyMeter] = None
                        ) -> Tuple[List[tuple], LatencyMeter]:
        """A Spark SQL query over the stored DataFrame only."""
        if query.is_continuous:
            raise UnsupportedOperationError(
                "one-shot path cannot take stream windows")
        return self.execute_continuous(query, close_ms=0, meter=meter)
