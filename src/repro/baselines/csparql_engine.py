"""CSPARQL-engine: Esper window scans + a Jena triple store, single node.

The de-facto reference implementation of C-SPARQL (§2.3) splits each
continuous query into a streaming part (run by Esper over its window
buffers) and a stored part (run by Jena), then joins the two result sets.
It is single-node and executes queries sequentially, so its throughput is
the reciprocal of its latency (§6.6).  Per the paper's setup, the stored
dataset is trimmed to the triples the queries can touch ("CSPARQL-engine
has limited capacity for processing stored data").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines.jena import JenaStore
from repro.baselines.relational import (Row, WindowBuffer, finalize,
                                        hash_join, left_join, project,
                                        scan_pattern)
from repro.errors import UnsupportedOperationError
from repro.rdf.string_server import StringServer
from repro.rdf.terms import Triple
from repro.sim.cost import CostModel, LatencyMeter
from repro.sparql.ast import Query
from repro.streams.stream import StreamBatch


class CSparqlEngine:
    """The Esper+Jena composite, with its fixed interpretive overhead."""

    def __init__(self, cost: Optional[CostModel] = None):
        self.cost = cost if cost is not None else CostModel()
        self.strings = StringServer()
        self.store = JenaStore(self.strings, self.cost)
        self.buffers: Dict[str, WindowBuffer] = {}

    # -- data ------------------------------------------------------------
    def load_static(self, triples: Iterable[Triple]) -> int:
        return self.store.load(triples)

    def ingest(self, batch: StreamBatch) -> None:
        buffer = self.buffers.setdefault(batch.stream,
                                         WindowBuffer(batch.stream))
        for tup in batch.tuples:
            buffer.append(self.strings.encode_tuple(tup))

    # -- execution ------------------------------------------------------------
    def execute_continuous(self, query: Query, close_ms: int,
                           meter: Optional[LatencyMeter] = None
                           ) -> Tuple[List[tuple], LatencyMeter]:
        """One sequential window execution."""
        if meter is None:
            meter = LatencyMeter()
        meter.charge(self.cost.csparql_base_ns, category="base")

        # Esper side: scan + join every stream pattern over its window.
        stream_rows: Optional[List[Row]] = None
        for pattern in query.stream_patterns():
            window = query.windows[pattern.graph]
            start_ms, end_ms = window.span_at(close_ms)
            buffer = self.buffers.get(pattern.graph)
            tuples = buffer.window(start_ms, end_ms) if buffer else []
            scanned = scan_pattern(tuples, pattern, self.strings, meter,
                                   self.cost.csparql_tuple_ns, self.cost,
                                   category="esper")
            stream_rows = scanned if stream_rows is None else \
                hash_join(stream_rows, scanned, meter, self.cost,
                          category="esper")

        # Jena side: evaluate stored patterns, seeded by the stream rows
        # when variables connect them (the engine pushes bindings down).
        stored_patterns = query.stored_patterns()
        if stored_patterns:
            seeds = stream_rows if stream_rows is not None else [{}]
            stored_rows = seeds
            for pattern in stored_patterns:
                stored_rows = self.store.match(pattern, stored_rows, meter)
            rows = stored_rows
        elif stream_rows is not None:
            rows = stream_rows
        else:
            # No mandatory patterns: a pure-UNION WHERE block starts from
            # the empty solution.
            rows = [{}] if not query.patterns else []

        for union in query.unions:
            branch_tables: List[Row] = []
            for branch in union:
                branch_tables.extend(
                    self._evaluate_group(query, branch, close_ms, meter))
            rows = hash_join(rows, branch_tables, meter, self.cost)
        for group in query.optionals:
            group_rows = self._evaluate_group(query, group, close_ms, meter)
            rows = left_join(rows, group_rows, meter, self.cost)
        return finalize(rows, query, self.strings, meter,
                        self.cost), meter

    def _evaluate_group(self, query: Query, group, close_ms: int,
                        meter: LatencyMeter) -> List[Row]:
        """Evaluate one OPTIONAL group independently (Esper + Jena)."""
        rows: Optional[List[Row]] = None
        for pattern in group:
            if pattern.graph in query.windows:
                window = query.windows[pattern.graph]
                start_ms, end_ms = window.span_at(close_ms)
                buffer = self.buffers.get(pattern.graph)
                tuples = buffer.window(start_ms, end_ms) if buffer else []
                scanned = scan_pattern(tuples, pattern, self.strings, meter,
                                       self.cost.csparql_tuple_ns, self.cost,
                                       category="esper")
                rows = scanned if rows is None else \
                    hash_join(rows, scanned, meter, self.cost,
                              category="esper")
            else:
                rows = self.store.match(pattern,
                                        rows if rows is not None else [{}],
                                        meter)
        return rows if rows is not None else []

    def execute_oneshot(self, query: Query,
                        meter: Optional[LatencyMeter] = None
                        ) -> Tuple[List[tuple], LatencyMeter]:
        """One-shot query over the (static) Jena store."""
        if query.is_continuous:
            raise UnsupportedOperationError(
                "one-shot path cannot take stream windows")
        if meter is None:
            meter = LatencyMeter()
        meter.charge(self.cost.csparql_base_ns, category="base")
        rows: List[Row] = [{}]
        for pattern in query.patterns:
            rows = self.store.match(pattern, rows, meter)
        return project(rows, query.projected(), meter, self.cost), meter
