"""Baseline systems the paper compares against, rebuilt in miniature.

Every baseline really executes its design's algorithm — relational window
scans and hash joins, cross-system tuple transformation, mini-batch
scheduling, unbounded-table scans — priced by the same
:class:`~repro.sim.cost.CostModel` as Wukong+S, so the measured gaps come
from the work each design performs.
"""

from repro.baselines.relational import WindowBuffer, scan_pattern, hash_join
from repro.baselines.composite import CompositeEngine
from repro.baselines.csparql_engine import CSparqlEngine
from repro.baselines.spark import SparkStreamingEngine
from repro.baselines.structured import StructuredStreamingEngine
from repro.baselines.wukong_ext import WukongExtEngine

__all__ = [
    "WindowBuffer",
    "scan_pattern",
    "hash_join",
    "CompositeEngine",
    "CSparqlEngine",
    "SparkStreamingEngine",
    "StructuredStreamingEngine",
    "WukongExtEngine",
]
