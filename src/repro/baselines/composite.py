"""The composite design: a stream processor plus a separate Wukong store.

This is the conventional architecture the paper dissects in §2.3
(Fig. 3a/4): the continuous query is split at ``GRAPH`` boundaries; stream
patterns run as relational scans + hash joins inside a Storm/Heron-like
bolt topology, stored patterns are shipped to a Wukong instance as embedded
sub-queries, and partial results cross the system boundary paying
transformation (per tuple) and transmission (per byte) costs — the
*cross-system cost* (CC) that dominates Fig. 4.

Two query plans are supported:

``interleaved`` (Fig. 4a)
    Walk the WHERE clause in order, crossing into Wukong whenever a stored
    segment appears (GP1 -> GP2 -> GP3 for QC).
``stream_first`` (Fig. 4b)
    Join all stream patterns inside the processor first, then ship one
    (much larger) intermediate to Wukong — fewer crossings, worse pruning.

The composite design is not fully stateful: one-shot queries run on the
static store and never observe streamed timeless data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.baselines.relational import (Row, WindowBuffer, finalize,
                                        hash_join, project, scan_pattern)
from repro.errors import UnsupportedOperationError
from repro.rdf.string_server import StringServer
from repro.rdf.terms import Triple
from repro.sim.cluster import Cluster
from repro.sim.cost import CostModel, LatencyMeter, MemoryModel
from repro.sparql.ast import Query, TriplePattern
from repro.sparql.planner import plan_steps
from repro.store.distributed import DistributedStore, PersistentAccess
from repro.store.executor import GraphExplorer
from repro.streams.stream import StreamBatch

#: Wire size of one intermediate binding row crossing the system boundary.
_ROW_BYTES = 24


@dataclass
class CompositeBreakdown:
    """Per-component execution time of one query run (Fig. 4 rows)."""

    processor_ms: float = 0.0
    wukong_ms: float = 0.0
    cross_ms: float = 0.0
    segments: List[Tuple[str, float, int]] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return self.processor_ms + self.wukong_ms + self.cross_ms

    @property
    def cross_fraction(self) -> float:
        total = self.total_ms
        return self.cross_ms / total if total else 0.0


class CompositeEngine:
    """Storm/Heron + Wukong, carefully co-located as in the paper's setup."""

    def __init__(self, cluster: Cluster, framework: str = "storm",
                 plan: str = "interleaved",
                 memory: Optional[MemoryModel] = None):
        if framework not in ("storm", "heron"):
            raise ValueError(f"unknown framework: {framework}")
        if plan not in ("interleaved", "stream_first"):
            raise ValueError(f"unknown composite plan: {plan}")
        self.cluster = cluster
        self.cost: CostModel = cluster.cost
        self.memory = memory if memory is not None else MemoryModel()
        self.framework = framework
        self.plan_style = plan
        self.per_tuple_ns = (self.cost.storm_tuple_ns if framework == "storm"
                             else self.cost.heron_tuple_ns)
        self.per_execution_ns = (self.cost.storm_execution_ns
                                 if framework == "storm"
                                 else self.cost.heron_execution_ns)
        self.strings = StringServer()
        self.store = DistributedStore(cluster, self.strings)
        self.explorer = GraphExplorer(cluster, self.strings)
        self.buffers: Dict[str, WindowBuffer] = {}

    # -- data ------------------------------------------------------------
    def load_static(self, triples: Iterable[Triple]) -> int:
        return self.store.load(triples)

    def ingest(self, batch: StreamBatch) -> None:
        """Buffer one stream batch inside the stream processor."""
        buffer = self.buffers.setdefault(batch.stream,
                                         WindowBuffer(batch.stream))
        for tup in batch.tuples:
            buffer.append(self.strings.encode_tuple(tup))

    # -- continuous execution ------------------------------------------------
    def execute_continuous(self, query: Query, close_ms: int,
                           meter: Optional[LatencyMeter] = None
                           ) -> Tuple[List[tuple], LatencyMeter,
                                      CompositeBreakdown]:
        """One window execution; returns (rows, meter, breakdown)."""
        if query.optionals or query.unions:
            raise UnsupportedOperationError(
                "the composite design cannot split OPTIONAL/UNION groups "
                "across the stream processor and the store")
        if meter is None:
            meter = LatencyMeter()
        breakdown = CompositeBreakdown()
        meter.charge(self.per_execution_ns, category="processor")
        breakdown.processor_ms += self.per_execution_ns / 1e6
        segments = self._segments(query)
        rows: Optional[List[Row]] = None
        for location, patterns in segments:
            if location == "stream":
                rows = self._run_stream_segment(query, patterns, close_ms,
                                                rows, meter, breakdown)
            else:
                rows = self._run_stored_segment(patterns, rows, meter,
                                                breakdown)
            if rows == []:
                break
        final = finalize(rows or [], query, self.strings, meter,
                         self.cost)
        return final, meter, breakdown

    def execute_oneshot(self, query: Query,
                        meter: Optional[LatencyMeter] = None
                        ) -> Tuple[List[tuple], LatencyMeter]:
        """One-shot query on the *static* store (composite statefulness gap)."""
        if query.is_continuous:
            raise UnsupportedOperationError(
                "one-shot path cannot take stream windows")
        if meter is None:
            meter = LatencyMeter()
        steps = plan_steps(query.patterns)
        access = PersistentAccess(self.store, home_node=0)
        rows = self.explorer.explore(steps, lambda p: access, meter)
        return project(rows, query.projected(), meter, self.cost), meter

    # -- segmentation ------------------------------------------------------------
    def _segments(self, query: Query
                  ) -> List[Tuple[str, List[TriplePattern]]]:
        """Group patterns into processor/store segments per the plan style."""
        def location(pattern: TriplePattern) -> str:
            return "stream" if pattern.graph in query.windows else "stored"

        if self.plan_style == "stream_first":
            stream = [p for p in query.patterns if location(p) == "stream"]
            stored = [p for p in query.patterns if location(p) == "stored"]
            segments = []
            if stream:
                segments.append(("stream", stream))
            if stored:
                segments.append(("stored", stored))
            return segments

        segments = []
        for pattern in query.patterns:
            where = location(pattern)
            if segments and segments[-1][0] == where:
                segments[-1][1].append(pattern)
            else:
                segments.append((where, [pattern]))
        return segments

    # -- segment execution ------------------------------------------------------
    def _run_stream_segment(self, query: Query,
                            patterns: List[TriplePattern], close_ms: int,
                            rows: Optional[List[Row]], meter: LatencyMeter,
                            breakdown: CompositeBreakdown) -> List[Row]:
        """Scan + join stream patterns inside the processor."""
        segment_meter = LatencyMeter()
        segment_rows = rows
        last_size = 0
        for pattern in patterns:
            window = query.windows[pattern.graph]
            start_ms, end_ms = window.span_at(close_ms)
            buffer = self.buffers.get(pattern.graph)
            tuples = buffer.window(start_ms, end_ms) if buffer else []
            scanned = scan_pattern(tuples, pattern, self.strings,
                                   segment_meter, self.per_tuple_ns,
                                   self.cost, category="processor")
            if segment_rows is None:
                segment_rows = scanned
            else:
                segment_rows = hash_join(segment_rows, scanned,
                                         segment_meter, self.cost,
                                         category="processor")
            last_size = len(segment_rows)
        breakdown.processor_ms += segment_meter.ms
        breakdown.segments.append(("processor", segment_meter.ms, last_size))
        meter.add(segment_meter)
        return segment_rows if segment_rows is not None else []

    def _run_stored_segment(self, patterns: List[TriplePattern],
                            rows: Optional[List[Row]], meter: LatencyMeter,
                            breakdown: CompositeBreakdown) -> List[Row]:
        """Cross into Wukong, run the stored patterns, cross back."""
        seeds = rows if rows is not None else [{}]

        # Outbound crossing: transform every seed row into Wukong's query
        # format and transmit (all tuples embedded into a single query to
        # minimise per-request costs, as the paper's careful setup does).
        cross_meter = LatencyMeter()
        cross_meter.charge(self.cost.transform_tuple_ns, times=len(seeds),
                           category="cross")
        self.cluster.fabric.message(cross_meter, _ROW_BYTES * len(seeds),
                                    category="cross")

        prebound: Set[str] = set().union(*(set(r) for r in seeds)) \
            if rows is not None else set()
        steps = plan_steps(patterns, prebound=prebound)
        access = PersistentAccess(self.store, home_node=0)
        wukong_meter = LatencyMeter()
        result = self.explorer.explore(steps, lambda p: access, wukong_meter,
                                       seeds=seeds)

        # Return crossing: transform and transmit the sub-results back.
        cross_meter.charge(self.cost.transform_tuple_ns, times=len(result),
                           category="cross")
        self.cluster.fabric.message(cross_meter, _ROW_BYTES * len(result),
                                    category="cross")

        breakdown.wukong_ms += wukong_meter.ms
        breakdown.cross_ms += cross_meter.ms
        breakdown.segments.append(("wukong", wukong_meter.ms, len(result)))
        meter.charge(wukong_meter.ns, category="wukong")
        meter.charge(cross_meter.ns, category="cross")
        return result
