"""Wukong/Ext: the intuitive extension of a static RDF store (§6.2).

Wukong/Ext bolts fast data injection onto Wukong: every stream tuple
(timing and timeless alike) is inserted straight into the underlying store
with its timestamp kept inline next to the value entry.  Consequences the
paper measures (Table 4):

* extracting a window means scanning the *entire* value list of each key
  and filtering by timestamp — no stream index, so latency grows with the
  amount of absorbed data (1.6x-4.4x slower than Wukong+S);
* timestamps and data are coupled in the store, so garbage collection is
  impractical: nothing is ever reclaimed and stale timestamps accumulate
  (its memory footprint grows without bound, unlike Wukong+S's GC'd
  index/transient slices).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.rdf.ids import DIR_IN, DIR_OUT, Key, make_key
from repro.rdf.string_server import StringServer
from repro.rdf.terms import Triple
from repro.sim.cluster import Cluster
from repro.sim.cost import CostModel, LatencyMeter, MemoryModel
from repro.sparql.ast import Query
from repro.sparql.planner import plan_query
from repro.store.distributed import DistributedStore, PersistentAccess
from repro.store.executor import ExecutionResult, GraphExplorer
from repro.streams.stream import StreamBatch


class _TimestampedWindowAccess:
    """Window reads by full-list scan + inline timestamp filtering."""

    def __init__(self, engine: "WukongExtEngine", start_ms: int, end_ms: int,
                 home_node: int):
        self.engine = engine
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.home_node = home_node

    def resolve_entity(self, name: str) -> Optional[int]:
        return self.engine.strings.lookup_entity(name)

    def resolve_predicate(self, name: str) -> Optional[int]:
        return self.engine.strings.lookup_predicate(name)

    def neighbors(self, vid: int, eid: int, d: int,
                  meter: LatencyMeter) -> List[int]:
        """Scan the whole value list, keeping in-window entries."""
        values = self.engine.store.neighbors_from(
            self.home_node, vid, eid, d, meter)
        stamps = self.engine.timestamps.get(make_key(vid, eid, d), [])
        meter.charge(self.engine.cost.timestamp_filter_ns,
                     times=len(values), category="ts-filter")
        out: List[int] = []
        for offset, value in enumerate(values):
            ts = stamps[offset] if offset < len(stamps) else 0
            if self.start_ms <= ts < self.end_ms:
                out.append(value)
        return out

    def index_vertices(self, eid: int, d: int,
                       meter: LatencyMeter) -> List[int]:
        """No windowed index exists: enumerate every vertex ever seen."""
        return self.engine.store.gather_index(self.home_node, eid, d, meter)


class WukongExtEngine:
    """Wukong with naive streaming absorption."""

    def __init__(self, cluster: Cluster, memory: Optional[MemoryModel] = None):
        self.cluster = cluster
        self.cost: CostModel = cluster.cost
        self.memory = memory if memory is not None else MemoryModel()
        self.strings = StringServer()
        self.store = DistributedStore(cluster, self.strings)
        self.explorer = GraphExplorer(cluster, self.strings)
        #: Inline timestamps, parallel to each key's value list.
        self.timestamps: Dict[Key, List[int]] = {}
        self.stream_entries = 0

    # -- data ------------------------------------------------------------
    def load_static(self, triples: Iterable[Triple]) -> int:
        count = 0
        for triple in triples:
            enc = self.strings.encode_triple(triple)
            spans = self.store.insert_encoded(enc)
            for span in spans.values():
                self.timestamps.setdefault(span.key, []).append(0)
            count += 1
        return count

    def ingest(self, batch: StreamBatch,
               meter: Optional[LatencyMeter] = None) -> None:
        """Absorb every tuple (timing and timeless) with inline timestamps."""
        for tup in batch.tuples:
            enc = self.strings.encode_tuple(tup)
            spans = self.store.insert_encoded(enc.triple, meter=meter)
            for span in spans.values():
                self.timestamps.setdefault(span.key, []).append(
                    enc.timestamp_ms)
            self.stream_entries += 2  # out + in halves

    # -- execution ------------------------------------------------------------
    def execute_continuous(self, query: Query, close_ms: int,
                           meter: Optional[LatencyMeter] = None,
                           home_node: int = 0
                           ) -> Tuple[ExecutionResult, LatencyMeter]:
        """One window execution via timestamp-filtered scans."""
        if meter is None:
            meter = LatencyMeter()
        meter.charge(self.cost.task_dispatch_ns, category="dispatch")
        spans = {stream: window.span_at(close_ms)
                 for stream, window in query.windows.items()}

        def factory(node_id):
            window_access = {
                stream: _TimestampedWindowAccess(self, start_ms, end_ms,
                                                 node_id)
                for stream, (start_ms, end_ms) in spans.items()
            }
            stored_access = PersistentAccess(self.store, home_node=node_id)

            def resolver(pattern):
                access = window_access.get(pattern.graph)
                return access if access is not None else stored_access

            return resolver

        result = self.explorer.execute(plan_query(query), factory, meter,
                                       home_node=home_node)
        return result, meter

    def execute_oneshot(self, query: Query,
                        meter: Optional[LatencyMeter] = None
                        ) -> Tuple[ExecutionResult, LatencyMeter]:
        if meter is None:
            meter = LatencyMeter()
        meter.charge(self.cost.task_dispatch_ns, category="dispatch")

        def factory(node_id):
            access = PersistentAccess(self.store, home_node=node_id)
            return lambda pattern: access

        result = self.explorer.execute(plan_query(query), factory, meter)
        return result, meter

    # -- memory (no GC: grows forever) --------------------------------------------
    def timestamp_bytes(self) -> int:
        """Inline-timestamp overhead that Wukong+S avoids entirely."""
        return sum(len(stamps) for stamps in self.timestamps.values()) \
            * self.memory.timestamp_bytes

    def memory_bytes(self) -> int:
        return self.store.memory_bytes() + self.timestamp_bytes()
