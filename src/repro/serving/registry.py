"""Common-subplan sharing: one backing registration serves N subscribers.

Strider (arXiv:1705.05688) motivates sharing evaluation work across
simultaneously registered streaming queries instead of evaluating each in
isolation.  The sharing rule here is exact-plan sharing: two registrations
share one backing continuous query iff their *normalized ASTs and window
specs* are equal — :meth:`repro.sparql.ast.Query.cache_key`, which
excludes the registration name and sorts window specs, so ``REGISTER
QUERY A`` and ``REGISTER QUERY B`` over the same patterns and windows
land on the same entry.  Equal keys plan, compile and execute
identically, which makes the sharing *provably* answer-preserving: the
shared execution is bit-identical (rows and simulated meters) to what
each subscriber's private evaluation would produce
(``tests/serving/test_sharing_property.py`` checks this differentially).

Each entry counts its subscribers; the backing registration is created on
the first subscriber and unregistered (dropping its stream-index
interest) when the last one leaves.

Adaptive re-planning (``repro.core.replan``) is transparent to sharing:
the sharing key is the *normalized AST*, never the plan, and a plan swap
mutates the backing :class:`~repro.core.continuous.RegisteredQuery` in
place — every subscriber's delivery cursor keeps pointing at the same
handle, so a re-planned backing query keeps serving all its subscribers
without re-registration (``tests/serving/test_replan_serving.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.continuous import RegisteredQuery
from repro.sparql.ast import Query


@dataclass
class SharedEntry:
    """One backing registration and its subscriber bookkeeping."""

    key: Tuple
    name: str
    handle: RegisteredQuery
    #: Live subscriber objects (the serving layer's subscriptions), in
    #: registration order — window-close fan-out iterates this list.
    subscribers: List[object] = field(default_factory=list)
    #: Executions already fanned out to subscribers (delivery cursor).
    delivered: int = 0
    #: Subscriber results delivered through this entry so far.
    fanned_out: int = 0

    @property
    def num_subscribers(self) -> int:
        return len(self.subscribers)


class SharedQueryRegistry:
    """Dedup of continuous registrations by normalized AST + window spec.

    With ``sharing=False`` every registration gets its own backing query
    (the differential baseline the tests and the bench compare against);
    the counters still tick so both modes report the same shape.
    """

    def __init__(self, engine, sharing: bool = True):
        self.engine = engine
        self.sharing = sharing
        self._entries: Dict[Tuple, SharedEntry] = {}
        self._next_id = 0
        #: Registrations served by an existing backing query (dedup hits)
        #: vs registrations that had to create one.
        self.shared_hits = 0
        self.shared_misses = 0

    # -- lookup ------------------------------------------------------------
    def peek(self, query: Query) -> Optional[SharedEntry]:
        """The entry ``query`` would share, if one exists (no side effects:
        admission control asks this before committing a registration)."""
        if not self.sharing:
            return None
        return self._entries.get(query.cache_key())

    def resolve(self, query: Query, subscriber: object,
                home_node: Optional[int] = None) -> SharedEntry:
        """Attach ``subscriber`` to the entry for ``query``, creating the
        backing registration on first use."""
        key = query.cache_key() if self.sharing else ("unshared",
                                                      self._next_id)
        entry = self._entries.get(key)
        if entry is None:
            self.shared_misses += 1
            name = f"shared{self._next_id}"
            self._next_id += 1
            handle = self.engine.register_continuous(query, name=name,
                                                     home_node=home_node)
            entry = SharedEntry(key=key, name=name, handle=handle)
            self._entries[key] = entry
        else:
            self.shared_hits += 1
        entry.subscribers.append(subscriber)
        return entry

    def release(self, entry: SharedEntry, subscriber: object) -> None:
        """Detach one subscriber; drop the backing query with the last."""
        entry.subscribers.remove(subscriber)
        if not entry.subscribers:
            self.engine.continuous.unregister(entry.name)
            del self._entries[entry.key]

    # -- iteration / accounting --------------------------------------------
    def entries(self) -> List[SharedEntry]:
        """All live entries, in creation order (dicts preserve it)."""
        return list(self._entries.values())

    @property
    def num_shared(self) -> int:
        """Distinct backing registrations currently live."""
        return len(self._entries)

    @property
    def num_subscribers(self) -> int:
        return sum(len(e.subscribers) for e in self._entries.values())

    @property
    def sharing_ratio(self) -> float:
        """Subscribers per backing registration (1.0 = no sharing)."""
        shared = self.num_shared
        return self.num_subscribers / shared if shared else 0.0

    @property
    def total_replans(self) -> int:
        """Adaptive plan swaps applied across live backing queries."""
        return sum(len(e.handle.replans) for e in self._entries.values())
