"""The serving layer: thousands of concurrent queries over shared state.

Ties the pieces together into the "millions of users" front end
(ROADMAP): a :class:`ServingLayer` fronts one engine with a proxy pool
and serves two traffic classes against the *same* window state —

* **Continuous subscriptions** (:meth:`register`): deduplicated through
  the :class:`~repro.serving.registry.SharedQueryRegistry`, so one window
  close feeds every subscriber of a shared plan; each tick fans fresh
  executions out to subscribers (delivery bookkeeping and per-tenant
  latency observation are eager, result decoding stays pull-based on
  :meth:`ServingSubscription.poll`).
* **One-shot traffic** (:meth:`submit`): queued per tenant and dispatched
  by the :class:`~repro.serving.scheduler.FairScheduler` between window
  closes, placed on the least injection-loaded node (the dispatchers'
  per-node routed-tuple counters).

Both classes pass :class:`~repro.serving.admission.AdmissionPolicy`
checks at the door; refusals raise typed errors, never drop silently.

Everything runs on the simulated clock: a served request's latency is
its queue wait (ticks spent in the backlog) plus the client-visible
execution latency, and the per-tenant p50/p99/p999 the bench records are
pure functions of the deterministic simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.metrics import percentile
from repro.client.library import ClientResult, ClientSubscription
from repro.client.proxy import ProxyPool, RetryPolicy
from repro.core.continuous import ExecutionRecord
from repro.core.engine import WukongSEngine
from repro.errors import AdmissionError, RegistrationError
from repro.obs.metrics import MetricsRegistry
from repro.serving.admission import AdmissionPolicy
from repro.serving.registry import SharedEntry, SharedQueryRegistry
from repro.serving.scheduler import (FairScheduler, OneshotRequest,
                                     ServedOneshot)

#: Percentiles the serving reports carry (the paper's latency trio).
REPORT_PERCENTILES = (50, 99, 99.9)


@dataclass
class TenantState:
    """Per-tenant serving bookkeeping (counters + latency samples)."""

    tenant: str
    subscriptions: int = 0
    oneshots_submitted: int = 0
    oneshots_served: int = 0
    oneshots_rejected: int = 0
    registrations_rejected: int = 0
    close_results: int = 0
    #: Simulated latencies (ns): shared-close deliveries and one-shots.
    close_latency_ns: List[float] = field(default_factory=list)
    oneshot_latency_ns: List[float] = field(default_factory=list)

    def latency_percentiles(self, kind: str = "oneshot") -> Dict[str, float]:
        samples = (self.oneshot_latency_ns if kind == "oneshot"
                   else self.close_latency_ns)
        if not samples:
            return {}
        return {f"p{str(p).replace('.', '_')}_ms": percentile(samples, p) / 1e6
                for p in REPORT_PERCENTILES}


@dataclass
class ServingStats:
    """One aggregate snapshot of a serving layer."""

    subscriptions: int
    shared_queries: int
    sharing_ratio: float
    shared_hits: int
    shared_misses: int
    closes_evaluated: int
    results_delivered: int
    executions_saved: int
    oneshots_served: int
    oneshots_rejected: int
    registrations_rejected: int
    backlog: int
    #: Adaptive plan swaps applied across all backing queries
    #: (``repro.core.replan``); re-planning is transparent to
    #: subscribers — the sharing key is the normalized AST, not the plan.
    replans: int = 0
    tenants: Dict[str, Dict[str, float]] = field(default_factory=dict)


class ServingSubscription:
    """One tenant's subscription, multiplexed onto a shared entry."""

    def __init__(self, serving: "ServingLayer", tenant: str,
                 entry: Optional[SharedEntry],
                 subscription: Optional[ClientSubscription]):
        self.serving = serving
        self.tenant = tenant
        self.entry = entry
        self._subscription = subscription
        self.cancelled = False

    @property
    def shared_name(self) -> str:
        """The backing registration's engine-side name."""
        return self.entry.name

    @property
    def num_cosubscribers(self) -> int:
        return self.entry.num_subscribers

    def poll(self) -> List[ClientResult]:
        """Decode executions delivered since the last poll."""
        return self._subscription.poll()

    def poll_gaps(self):
        """Gap markers of the backing query since the last call."""
        return self._subscription.poll_gaps()

    def cancel(self) -> None:
        """Drop this subscription (the backing query dies with its last
        subscriber, releasing its stream-index interest)."""
        self.serving.unregister(self)


class ServingLayer:
    """Concurrent-query serving over one engine's shared window state."""

    def __init__(self, engine: WukongSEngine,
                 policy: Optional[AdmissionPolicy] = None,
                 num_proxies: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 sharing: bool = True, seed: int = 0):
        self.engine = engine
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.proxies = ProxyPool(engine, num_proxies=num_proxies,
                                 policy=retry_policy, seed=seed)
        self.registry = SharedQueryRegistry(engine, sharing=sharing)
        self.scheduler = FairScheduler(self.policy.oneshot_slots_per_tick)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tenants: Dict[str, TenantState] = {}
        #: Running totals (cheap enough to keep always-on).
        self.closes_evaluated = 0
        self.results_delivered = 0
        self.executions_saved = 0
        self.oneshots_served = 0

    # -- tenants -----------------------------------------------------------
    def tenant(self, name: str) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            state = self.tenants[name] = TenantState(tenant=name)
        return state

    # -- registration ------------------------------------------------------
    def register(self, tenant: str, text: str) -> ServingSubscription:
        """Register a continuous query for ``tenant``.

        Admission first (typed errors; a refusal leaves no trace in the
        engine), then dedup through the shared registry: a plan already
        registered costs one delivery cursor, a new one costs a backing
        registration.
        """
        state = self.tenant(tenant)
        proxy = self.proxies.pick()
        procedure = proxy.prepare(text)
        if not procedure.is_continuous:
            raise RegistrationError(
                "one-shot queries are submitted, not registered; "
                "use submit()")
        creates = self.registry.peek(procedure.query) is None
        try:
            self.policy.admit_registration(
                tenant, total=self.registry.num_subscribers,
                tenant_total=state.subscriptions,
                shared=self.registry.num_shared, creates_shared=creates)
        except AdmissionError:
            state.registrations_rejected += 1
            self.metrics.counter("serving_rejections",
                                 kind="registration").inc()
            raise
        subscription = ServingSubscription(self, tenant, entry=None,
                                           subscription=None)
        entry = self.registry.resolve(procedure.query, subscription)
        subscription.entry = entry
        # Fan-out cursor for new subscribers starts at "now": a
        # subscriber only sees closes that fire after it registered
        # (matching what its own fresh registration would deliver).
        client = proxy.subscribe(procedure, entry.handle)
        client._delivered = len(entry.handle.executions)
        client._gaps_delivered = len(entry.handle.gaps)
        subscription._subscription = client
        state.subscriptions += 1
        return subscription

    def unregister(self, subscription: ServingSubscription) -> None:
        if subscription.cancelled:
            return
        subscription.cancelled = True
        self.registry.release(subscription.entry, subscription)
        self.tenant(subscription.tenant).subscriptions -= 1

    def disconnect_tenant(self, tenant: str) -> int:
        """A tenant's session ends mid-flight: cancel its subscriptions
        and discard its queued one-shots (removing its scheduler ring
        slot without disturbing the rotation; see
        :meth:`FairScheduler.remove_tenant`).  Returns the number of
        queued one-shots discarded.  The tenant's latency history stays
        for reporting; a later submission re-enters normally.
        """
        for entry in list(self.registry.entries()):
            for subscription in list(entry.subscribers):
                if subscription.tenant == tenant:
                    self.unregister(subscription)
        return self.scheduler.remove_tenant(tenant)

    # -- one-shot traffic --------------------------------------------------
    def submit(self, tenant: str, text: str,
               home_node: Optional[int] = None) -> OneshotRequest:
        """Queue a one-shot request; the next :meth:`tick` dispatches it
        (fairly) unless a backlog budget refuses it here."""
        state = self.tenant(tenant)
        try:
            self.policy.admit_oneshot(
                tenant, backlog=self.scheduler.backlog,
                tenant_backlog=self.scheduler.tenant_backlog(tenant))
        except AdmissionError:
            state.oneshots_rejected += 1
            self.metrics.counter("serving_rejections", kind="backlog").inc()
            raise
        request = OneshotRequest(tenant=tenant, text=text,
                                 arrival_ms=self.engine.clock.now_ms,
                                 home_node=home_node)
        self.scheduler.enqueue(request)
        state.oneshots_submitted += 1
        return request

    def _least_loaded_node(self) -> int:
        """The node with the fewest stream tuples routed to it (one-shot
        placement away from injection-hot nodes; ties pick the lowest id)."""
        load: Dict[int, int] = {
            node.node_id: 0 for node in self.engine.cluster.nodes}
        for dispatcher in self.engine.dispatchers.values():
            for node_id, routed in dispatcher.tuples_routed.items():
                load[node_id] += routed
        return min(load, key=lambda node_id: (load[node_id], node_id))

    def _execute(self, request: OneshotRequest,
                 now_ms: int) -> ServedOneshot:
        proxy = self.proxies.pick()
        home = request.home_node if request.home_node is not None \
            else self._least_loaded_node()
        result = proxy.submit(request.text, home_node=home)
        served = ServedOneshot(request=request, dispatch_ms=now_ms,
                               result=result)
        state = self.tenant(request.tenant)
        state.oneshots_served += 1
        state.oneshot_latency_ns.append(served.latency_ns)
        self.metrics.histogram("serving_oneshot_ns",
                               tenant=request.tenant).observe(
                                   served.latency_ns)
        self.oneshots_served += 1
        return served

    # -- the serve loop ----------------------------------------------------
    def tick(self) -> List[ServedOneshot]:
        """One simulated tick of the serve loop.

        Drains the tick's fair share of one-shot slots *before* the clock
        advances — requests queued since the last tick are picked up by
        the dedicated one-shot workers at the current simulated time, so
        an unsaturated tenant's latency is the execution itself
        (sub-millisecond), and only slot exhaustion pushes queue waits
        into tick multiples.  Then the engine steps (window closes
        execute data-driven inside) and fresh closes fan out to
        subscribers.
        """
        served = self.scheduler.drain(self.engine.clock.now_ms,
                                      self._execute)
        self.engine.step()
        self._fan_out()
        return served

    def run_until(self, when_ms: int) -> List[ServedOneshot]:
        served: List[ServedOneshot] = []
        while self.engine.clock.now_ms < when_ms:
            served.extend(self.tick())
        return served

    def _fan_out(self) -> None:
        """Deliver every fresh backing execution to its subscribers."""
        for entry in self.registry.entries():
            executions = entry.handle.executions
            fresh: List[ExecutionRecord] = executions[entry.delivered:]
            if not fresh:
                continue
            entry.delivered = len(executions)
            self.closes_evaluated += len(fresh)
            fanout = entry.num_subscribers
            entry.fanned_out += len(fresh) * fanout
            self.results_delivered += len(fresh) * fanout
            self.executions_saved += len(fresh) * (fanout - 1)
            self.metrics.counter("serving_shared_close_hits").inc(
                len(fresh) * (fanout - 1))
            for subscription in entry.subscribers:
                state = self.tenant(subscription.tenant)
                state.close_results += len(fresh)
                histogram = self.metrics.histogram(
                    "serving_close_ns", tenant=subscription.tenant)
                for record in fresh:
                    state.close_latency_ns.append(record.meter.ns)
                    histogram.observe(record.meter.ns)

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> ServingStats:
        tenants = {}
        for name in sorted(self.tenants):
            state = self.tenants[name]
            report = {"subscriptions": state.subscriptions,
                      "oneshots_served": state.oneshots_served,
                      "close_results": state.close_results}
            report.update({f"oneshot_{k}": v for k, v in
                           state.latency_percentiles("oneshot").items()})
            report.update({f"close_{k}": v for k, v in
                           state.latency_percentiles("close").items()})
            tenants[name] = report
        return ServingStats(
            subscriptions=self.registry.num_subscribers,
            shared_queries=self.registry.num_shared,
            sharing_ratio=self.registry.sharing_ratio,
            shared_hits=self.registry.shared_hits,
            shared_misses=self.registry.shared_misses,
            closes_evaluated=self.closes_evaluated,
            results_delivered=self.results_delivered,
            executions_saved=self.executions_saved,
            oneshots_served=self.oneshots_served,
            oneshots_rejected=sum(t.oneshots_rejected
                                  for t in self.tenants.values()),
            registrations_rejected=sum(t.registrations_rejected
                                       for t in self.tenants.values()),
            backlog=self.scheduler.backlog,
            replans=self.registry.total_replans,
            tenants=tenants)

    def latency_percentiles(self, kind: str = "oneshot"
                            ) -> Dict[str, float]:
        """Aggregate p50/p99/p999 (ms) across all tenants' samples."""
        samples: List[float] = []
        for state in self.tenants.values():
            samples.extend(state.oneshot_latency_ns if kind == "oneshot"
                           else state.close_latency_ns)
        if not samples:
            return {}
        return {f"p{str(p).replace('.', '_')}_ms": percentile(samples, p) / 1e6
                for p in REPORT_PERCENTILES}
