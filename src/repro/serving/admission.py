"""Admission control: bounded budgets with explicit, typed rejections.

"On measuring performances of C-SPARQL and CQELS" (arXiv:1611.08269)
shows stream engines fall over on the *number* of concurrently registered
queries, not on query difficulty — so a serving layer must bound what it
takes on.  The policy here bounds two resources:

* **Registrations** — total subscriptions, distinct shared plans (each
  one is a real evaluation every window close), and one tenant's share of
  the subscriptions (a tenant cannot squat the whole registration table).
* **Backlog** — queued one-shot requests, total and per tenant (a tenant
  flooding the queue is refused before it can crowd out everyone else's
  requests; the fair scheduler protects latency, the backlog budget
  protects memory and admission of *new* tenants).

Every refusal raises a typed :class:`~repro.errors.AdmissionError`
subclass carrying the tenant and the exhausted budget — never a silent
drop: work the serving layer accepts is always either served or failed
loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BacklogAdmissionError, RegistrationAdmissionError


@dataclass
class AdmissionPolicy:
    """Budgets of one serving layer (all counts, no rates).

    Defaults size a single-cell simulation comfortably above the paper's
    workloads while keeping every budget small enough that tests can
    saturate them; production cells would derive these from memory and
    close-rate headroom.
    """

    #: Total concurrently registered subscriptions (after sharing).
    max_subscriptions: int = 4096
    #: Distinct backing registrations (shared plans actually evaluated).
    max_shared_queries: int = 2048
    #: One tenant's share of the subscription budget.
    max_tenant_subscriptions: int = 2048
    #: Total queued one-shot requests across all tenants.
    max_backlog: int = 4096
    #: One tenant's queue depth.
    max_tenant_backlog: int = 1024
    #: One-shot executions the scheduler dispatches per simulated tick
    #: (the serving capacity the fair scheduler divides among tenants).
    oneshot_slots_per_tick: int = 64

    # -- checks (raise on refusal, return None on admit) -------------------
    def admit_registration(self, tenant: str, total: int, tenant_total: int,
                           shared: int, creates_shared: bool) -> None:
        """Admit one registration or raise.

        ``total``/``tenant_total`` are current subscription counts,
        ``shared`` the current distinct backing registrations, and
        ``creates_shared`` whether this registration would create a new
        backing plan (a dedup hit never charges the shared budget).
        """
        if total >= self.max_subscriptions:
            raise RegistrationAdmissionError(
                f"subscription budget exhausted "
                f"({total}/{self.max_subscriptions}); tenant {tenant!r} "
                f"must wait for capacity or use another cell",
                tenant=tenant, budget=self.max_subscriptions, in_use=total)
        if tenant_total >= self.max_tenant_subscriptions:
            raise RegistrationAdmissionError(
                f"tenant {tenant!r} holds {tenant_total}/"
                f"{self.max_tenant_subscriptions} subscriptions; "
                f"per-tenant registration budget exhausted",
                tenant=tenant, budget=self.max_tenant_subscriptions,
                in_use=tenant_total)
        if creates_shared and shared >= self.max_shared_queries:
            raise RegistrationAdmissionError(
                f"shared-plan budget exhausted "
                f"({shared}/{self.max_shared_queries}); registration by "
                f"tenant {tenant!r} would create a new backing query",
                tenant=tenant, budget=self.max_shared_queries,
                in_use=shared)

    def admit_oneshot(self, tenant: str, backlog: int,
                      tenant_backlog: int) -> None:
        """Admit one one-shot submission into the queue or raise."""
        if backlog >= self.max_backlog:
            raise BacklogAdmissionError(
                f"one-shot backlog full ({backlog}/{self.max_backlog}); "
                f"request from tenant {tenant!r} refused",
                tenant=tenant, budget=self.max_backlog, in_use=backlog)
        if tenant_backlog >= self.max_tenant_backlog:
            raise BacklogAdmissionError(
                f"tenant {tenant!r} has {tenant_backlog}/"
                f"{self.max_tenant_backlog} requests queued; per-tenant "
                f"backlog budget exhausted",
                tenant=tenant, budget=self.max_tenant_backlog,
                in_use=tenant_backlog)
