"""Per-tenant fair scheduling of one-shot traffic on the simulated clock.

The serving layer's one-shot capacity is a fixed number of execution
slots per simulated tick (dedicated one-shot workers, §5 of the paper —
continuous closes never compete for these slots; they run data-driven in
the engine step the scheduler interleaves with).  The scheduler divides
the slots round-robin across tenants, one request per tenant per round,
with a rotating starting tenant so slot exhaustion hits each tenant
equally in turn.  The guarantee is the classic one: in any tick where a
tenant has work queued, it receives at least ``floor(slots / active
tenants)`` slots — a tenant flooding its own queue lengthens *its* wait,
never a well-behaved neighbour's
(``tests/serving/test_admission_fairness.py`` asserts the p99 bound).

Everything is deterministic: tenants are visited in first-submission
order, queues are FIFO, and time comes from the engine's virtual clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional


@dataclass
class OneshotRequest:
    """One queued one-shot submission."""

    tenant: str
    text: str
    #: Simulated arrival time (clock at submission).
    arrival_ms: int
    #: Explicit home node; None lets the serving layer place the request
    #: on the least injection-loaded node.
    home_node: Optional[int] = None


@dataclass
class ServedOneshot:
    """One dispatched request with its client-visible latency."""

    request: OneshotRequest
    dispatch_ms: int
    result: object  # ClientResult

    @property
    def queue_wait_ms(self) -> float:
        return float(self.dispatch_ms - self.request.arrival_ms)

    @property
    def latency_ms(self) -> float:
        """Queue wait plus the client-visible execution latency."""
        return self.queue_wait_ms + self.result.client_latency_ms

    @property
    def latency_ns(self) -> float:
        return self.latency_ms * 1e6


class FairScheduler:
    """Rotating round-robin over per-tenant FIFO queues."""

    def __init__(self, slots_per_tick: int = 64):
        if slots_per_tick < 1:
            raise ValueError(
                f"need at least one slot per tick: {slots_per_tick}")
        self.slots_per_tick = slots_per_tick
        self._queues: Dict[str, Deque[OneshotRequest]] = {}
        #: Tenants in first-submission order (the round-robin ring).
        self._ring: List[str] = []
        #: Ring index the next drain starts at.
        self._cursor = 0

    # -- queueing ----------------------------------------------------------
    def enqueue(self, request: OneshotRequest) -> None:
        queue = self._queues.get(request.tenant)
        if queue is None:
            queue = self._queues[request.tenant] = deque()
            self._ring.append(request.tenant)
        queue.append(request)

    @property
    def backlog(self) -> int:
        """Total queued requests across all tenants."""
        return sum(len(q) for q in self._queues.values())

    def tenant_backlog(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    @property
    def tenants(self) -> List[str]:
        return list(self._ring)

    def remove_tenant(self, tenant: str) -> int:
        """Drop ``tenant``'s queue and ring slot (its session ended).

        Returns the number of queued requests discarded (0 for an unknown
        tenant).  The rotation pointer keeps aiming at the same *next*
        tenant: removing a slot before the cursor shifts the cursor back
        by one; removing the slot the cursor rests on leaves it pointing
        at that tenant's successor (mod the shrunken ring) — so the next
        drain neither skips a surviving tenant's turn nor dereferences
        the departed queue.  Re-submitting later re-enters the ring at
        the back, like any first submission.
        """
        queue = self._queues.pop(tenant, None)
        if queue is None:
            return 0
        index = self._ring.index(tenant)
        self._ring.pop(index)
        if not self._ring:
            self._cursor = 0
        else:
            if index < self._cursor:
                self._cursor -= 1
            self._cursor %= len(self._ring)
        return len(queue)

    # -- dispatch ----------------------------------------------------------
    def drain(self, now_ms: int,
              execute: Callable[[OneshotRequest, int], ServedOneshot]
              ) -> List[ServedOneshot]:
        """Dispatch up to ``slots_per_tick`` requests fairly.

        Visits tenants one request at a time starting at the rotating
        cursor; a tenant with an empty queue is skipped without consuming
        a slot.  The cursor ends just past the last tenant visited, so
        whoever missed out this tick goes first next tick.
        """
        served: List[ServedOneshot] = []
        ring = self._ring
        if not ring:
            return served
        slots = self.slots_per_tick
        size = len(ring)
        index = self._cursor % size
        empty_streak = 0
        while slots > 0 and empty_streak < size:
            tenant = ring[index % size]
            queue = self._queues[tenant]
            if queue:
                request = queue.popleft()
                served.append(execute(request, now_ms))
                slots -= 1
                empty_streak = 0
            else:
                empty_streak += 1
            index += 1
        self._cursor = index % size
        return served
