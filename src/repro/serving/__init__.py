"""``repro.serving``: the concurrent-query serving layer.

Thousands of continuous queries registered concurrently against shared
window state, with common-subplan sharing (one window close feeds N
subscribers of the same normalized plan), admission control (bounded
registration and backlog budgets, typed rejections) and per-tenant fair
scheduling of one-shot traffic interleaved with window closes on the
simulated clock.  See DESIGN.md §7 for the serving model.
"""

from repro.serving.admission import AdmissionPolicy
from repro.serving.registry import SharedEntry, SharedQueryRegistry
from repro.serving.scheduler import (FairScheduler, OneshotRequest,
                                     ServedOneshot)
from repro.serving.server import (ServingLayer, ServingStats,
                                  ServingSubscription, TenantState)

__all__ = [
    "AdmissionPolicy",
    "FairScheduler",
    "OneshotRequest",
    "ServedOneshot",
    "ServingLayer",
    "ServingStats",
    "ServingSubscription",
    "SharedEntry",
    "SharedQueryRegistry",
    "TenantState",
]
