"""Durable checkpoints on disk and cold-start recovery.

§5's full recovery recipe: "Wukong+S will reload initial RDF data first and
then all durable checkpoints in a proper order.  The latest stream index
and the transient store will be reloaded if needed.  Wukong+S will further
re-register continuous queries and the latest local and stable vector
timestamps."

:func:`save_engine` serializes everything durable — the initially stored
triples, the per-batch ingestion log (decoded to strings, so the dump is
portable), the SN plan, the registered continuous queries and the clock —
into one JSON file.  :func:`restore_engine` rebuilds a fresh engine from
it: replaying the log through the normal injection pipeline reconstructs
the persistent store, the stream indexes *and* the transient stores with
identical content (IDs re-allocate deterministically because the replay
order equals the original insertion order).  The caller re-attaches stream
sources afterwards and resumes from the recovered clock.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.engine import EngineConfig, WukongSEngine
from repro.errors import FaultToleranceError
from repro.rdf.terms import TimedTuple, Triple
from repro.sparql.ast import (Aggregate, FilterExpr, Query, TriplePattern,
                              WindowSpec)
from repro.streams.stream import StreamBatch, StreamSchema

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Query (de)serialization
# ---------------------------------------------------------------------------

def query_to_dict(query: Query) -> dict:
    """A JSON-safe dump of a parsed query (for the registration log)."""
    return {
        "select": list(query.select),
        "patterns": [[p.subject, p.predicate, p.object, p.graph]
                     for p in query.patterns],
        "optionals": [[[p.subject, p.predicate, p.object, p.graph]
                       for p in group] for group in query.optionals],
        "windows": {name: [w.range_ms, w.step_ms]
                    for name, w in query.windows.items()},
        "static_graphs": list(query.static_graphs),
        "name": query.name,
        "filters": [[f.left, f.op, f.right] for f in query.filters],
        "aggregates": [[a.func, a.var, a.alias] for a in query.aggregates],
        "group_by": list(query.group_by),
        "limit": query.limit,
        "offset": query.offset,
        "is_ask": query.is_ask,
    }


def query_from_dict(data: dict) -> Query:
    """Rebuild a query from :func:`query_to_dict` output."""
    return Query(
        select=list(data["select"]),
        patterns=[TriplePattern(s, p, o, graph=g)
                  for s, p, o, g in data["patterns"]],
        optionals=[[TriplePattern(s, p, o, graph=g)
                    for s, p, o, g in group]
                   for group in data.get("optionals", [])],
        windows={name: WindowSpec(r, s)
                 for name, (r, s) in data["windows"].items()},
        static_graphs=list(data["static_graphs"]),
        name=data["name"],
        filters=[FilterExpr(left, op, right)
                 for left, op, right in data.get("filters", [])],
        aggregates=[Aggregate(func, var, alias)
                    for func, var, alias in data.get("aggregates", [])],
        group_by=list(data.get("group_by", [])),
        limit=data.get("limit"),
        offset=data.get("offset", 0),
        is_ask=data.get("is_ask", False),
    )


# ---------------------------------------------------------------------------
# Engine (de)serialization
# ---------------------------------------------------------------------------

def _decode_batch_log(engine: WukongSEngine) -> List[dict]:
    """Group the durable log into per-(stream, batch) replayable records.

    The out-edge halves across nodes partition the batch's tuples exactly
    once, so their union reconstructs the original batch content.
    """
    if engine.checkpoints is None:
        raise FaultToleranceError(
            "engine has no durable log; enable fault_tolerance in "
            "EngineConfig before saving")
    strings = engine.strings
    grouped: Dict[tuple, dict] = {}
    for entry in engine.checkpoints._log:
        nb = entry.node_batch
        key = (nb.stream, nb.batch_no)
        record = grouped.setdefault(key, {
            "stream": nb.stream, "batch_no": nb.batch_no, "sn": entry.sn,
            "timeless": [], "timing": [],
        })
        for encoded in nb.out_timeless:
            record["timeless"].append([
                strings.entity_name(encoded.triple.s),
                strings.predicate_name(encoded.triple.p),
                strings.entity_name(encoded.triple.o),
                encoded.timestamp_ms,
            ])
        for encoded in nb.out_timing:
            record["timing"].append([
                strings.entity_name(encoded.triple.s),
                strings.predicate_name(encoded.triple.p),
                strings.entity_name(encoded.triple.o),
                encoded.timestamp_ms,
            ])
    # Replay order must respect global snapshot order (per-key SN
    # appends are monotonic), then stream/batch order within a snapshot.
    return [grouped[key] for key in
            sorted(grouped, key=lambda k: (grouped[k]["sn"], k))]


def save_engine(engine: WukongSEngine, path: str) -> None:
    """Serialize the engine's durable state to ``path`` (JSON)."""
    cfg = engine.config
    data = {
        "version": FORMAT_VERSION,
        "config": {
            "num_nodes": cfg.num_nodes,
            "workers_per_node": cfg.workers_per_node,
            "use_rdma": cfg.use_rdma,
            "batch_interval_ms": cfg.batch_interval_ms,
            "stream_start_ms": cfg.stream_start_ms,
            "plan_width": cfg.plan_width,
            "keep_snapshots": cfg.keep_snapshots,
            "scalarization": cfg.scalarization,
            "checkpoint_interval_ms": cfg.checkpoint_interval_ms,
            "injector_threads": cfg.injector_threads,
        },
        "schemas": [
            {"name": schema.name,
             "timing": sorted(schema.timing_predicates)}
            for schema in engine.schemas.values()
        ],
        "static": [[t.subject, t.predicate, t.object]
                   for t in engine._initial_triples],
        "log": _decode_batch_log(engine),
        "plan": [dict(m.upper) for m in engine.coordinator.plan._mappings],
        "queries": [
            {"query": query_to_dict(handle.query),
             "home_node": handle.home_node,
             "next_close_ms": handle.next_close_ms}
            for handle in engine.continuous.queries.values()
        ],
        "clock_ms": engine.clock.now_ms,
        "last_delivered": dict(engine._last_delivered),
        # Attachment order of the stream sources.  The sources themselves
        # live upstream and are not serialized, but the *order* they were
        # attached in is part of the engine's durable identity: restore
        # must re-attach in this order so a saved-restored-saved engine
        # round-trips bit-identically.
        "sources": list(engine.sources),
    }
    with open(path, "w") as handle:
        json.dump(data, handle)


def restore_engine(path: str, sources: Optional[List] = None
                   ) -> WukongSEngine:
    """Cold-start recovery: rebuild an engine from :func:`save_engine`.

    Stream sources are *not* part of the durable state (they live
    upstream), but their attachment order is recorded in the dump: pass
    the live :class:`~repro.streams.source.StreamSource` objects via
    ``sources`` (any iteration order) and they are re-attached in the
    *saved* order — earlier versions left re-attachment to the caller,
    which silently lost the order and broke save/restore idempotence.
    Sources for streams unknown to the dump are attached afterwards in
    name order, deterministically.  Continuous queries are re-registered
    with their original home nodes and execution schedules.
    """
    with open(path) as handle:
        data = json.load(handle)
    if data.get("version") != FORMAT_VERSION:
        raise FaultToleranceError(
            f"unsupported checkpoint version: {data.get('version')}")

    config = EngineConfig(fault_tolerance=True, **data["config"])
    schemas = [StreamSchema(item["name"], frozenset(item["timing"]))
               for item in data["schemas"]]
    engine = WukongSEngine(schemas=schemas, config=config)

    # 1. Initial data, in original order (deterministic ID re-allocation).
    engine.load_static(Triple(*t) for t in data["static"])

    # 2. The announced SN plan, so replayed batches land in their
    #    original snapshots.
    plan = engine.coordinator.plan
    plan._mappings.clear()
    for upper in data["plan"]:
        plan.publish(upper)

    # 3. Replay the durable log through the normal injection pipeline:
    #    this rebuilds the persistent store, stream indexes, transient
    #    stores and every node's Local_VTS.
    for record in data["log"]:
        interval = config.batch_interval_ms
        start = config.stream_start_ms + (record["batch_no"] - 1) * interval
        batch = StreamBatch(record["stream"], record["batch_no"], start,
                            start + interval)
        for s, p, o, ts in record["timeless"] + record["timing"]:
            batch.add(TimedTuple(Triple(s, p, o), ts))
        batch.tuples.sort(key=lambda t: t.timestamp_ms)
        engine._inject_batch(batch, record["sn"])
        engine._last_delivered[record["stream"]] = record["batch_no"]
    for stream, batch_no in data["last_delivered"].items():
        engine._last_delivered[stream] = max(
            engine._last_delivered.get(stream, 0), batch_no)
    engine.coordinator.advance(engine.store)

    # 4. Clock, then the continuous queries with their schedules.
    engine.clock.advance_to(data["clock_ms"])
    for item in data["queries"]:
        handle = engine.register_continuous(
            query_from_dict(item["query"]), home_node=item["home_node"])
        handle.next_close_ms = item["next_close_ms"]

    # 5. Re-attach the live sources in the recorded attachment order.
    if sources:
        by_name = {source.schema.name: source for source in sources}
        for name in data.get("sources", []):
            source = by_name.pop(name, None)
            if source is not None:
                engine.attach_source(source)
        for name in sorted(by_name):
            engine.attach_source(by_name[name])

    # 6. Drop whatever the recovered windows can no longer reach.
    engine.gc.run(engine.clock.now_ms)
    return engine
