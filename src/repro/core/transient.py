"""The time-based transient store (§4.1, Fig. 7).

Timing data (e.g. GPS positions) is only ever read by continuous queries
within their windows, so Wukong+S keeps it out of the persistent store
entirely: each stream gets a per-node sequence of *transient slices*, one
per mini-batch, arranged in time order inside a ring buffer with a fixed
memory budget.  The injector appends new slices on the late side; the
garbage collector frees expired slices from the early side — either
periodically or eagerly when the ring buffer fills.

Sharding matches the persistent store (subject owner for out-edges, object
owner for in-edges), co-locating a stream's timing and timeless data.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.rdf.ids import DIR_IN, DIR_OUT, Key, make_key
from repro.rdf.terms import EncodedTuple
from repro.sim.cost import CostModel, LatencyMeter, MemoryModel


class TransientSlice:
    """Timing tuples of one mini-batch, indexed like the base store."""

    __slots__ = ("batch_no", "kv", "subjects", "num_tuples")

    def __init__(self, batch_no: int):
        self.batch_no = batch_no
        self.kv: Dict[Key, List[int]] = {}
        #: (eid, d) -> vertices with such an edge in this slice.
        self.subjects: Dict[Tuple[int, int], Set[int]] = {}
        self.num_tuples = 0

    def add_out(self, s: int, p: int, o: int) -> None:
        self.kv.setdefault(make_key(s, p, DIR_OUT), []).append(o)
        self.subjects.setdefault((p, DIR_OUT), set()).add(s)
        self.num_tuples += 1

    def add_in(self, s: int, p: int, o: int) -> None:
        self.kv.setdefault(make_key(o, p, DIR_IN), []).append(s)
        self.subjects.setdefault((p, DIR_IN), set()).add(o)

    def memory_bytes(self, model: MemoryModel) -> int:
        total = 0
        for values in self.kv.values():
            total += model.key_bytes + model.entry_bytes * len(values)
        return total


class TransientStore:
    """One stream's transient slices on one node.

    ``budget_bytes`` models the fixed ring-buffer budget: when an append
    would exceed it, the earliest slices are *eagerly* collected (the
    paper's explicit-GC-on-full path).  A slice may only be evicted that
    way once it is expired for every registered query; violating that is a
    configuration error (the budget is too small for the windows in use).
    """

    def __init__(self, stream: str, cost: Optional[CostModel] = None,
                 budget_bytes: Optional[int] = None,
                 memory: Optional[MemoryModel] = None):
        self.stream = stream
        self.cost = cost if cost is not None else CostModel()
        self.memory = memory if memory is not None else MemoryModel()
        self.budget_bytes = budget_bytes
        self._slices: Deque[TransientSlice] = deque()
        self._expired_floor = 0  # highest batch_no known collectable
        self.evictions = 0

    # -- writes ---------------------------------------------------------
    def append_slice(self, batch_no: int, out_tuples: List[EncodedTuple],
                     in_tuples: List[EncodedTuple],
                     meter: Optional[LatencyMeter] = None) -> TransientSlice:
        """Build and append the slice for ``batch_no``.

        ``out_tuples`` are tuples whose subject lives on this node;
        ``in_tuples`` those whose object does (the two lists overlap when
        both endpoints are local).
        """
        if self._slices and batch_no <= self._slices[-1].batch_no:
            raise StoreError(
                f"slices must append in time order: #{batch_no} after "
                f"#{self._slices[-1].batch_no}")
        piece = TransientSlice(batch_no)
        for enc in out_tuples:
            piece.add_out(enc.triple.s, enc.triple.p, enc.triple.o)
        for enc in in_tuples:
            piece.add_in(enc.triple.s, enc.triple.p, enc.triple.o)
        inserted = len(out_tuples) + len(in_tuples)
        if meter is not None and inserted:
            meter.charge(self.cost.insert_entry_ns, times=inserted,
                         category="injection")
        self._slices.append(piece)
        self._enforce_budget(meter)
        return piece

    def note_expired(self, batch_no: int) -> None:
        """Record that slices through ``batch_no`` are expired for all queries."""
        if batch_no > self._expired_floor:
            self._expired_floor = batch_no

    def _enforce_budget(self, meter: Optional[LatencyMeter]) -> None:
        if self.budget_bytes is None:
            return
        while self.memory_bytes() > self.budget_bytes and self._slices:
            earliest = self._slices[0]
            if earliest.batch_no > self._expired_floor:
                raise StoreError(
                    f"transient budget of stream {self.stream} too small: "
                    f"slice #{earliest.batch_no} is still live")
            self._evict_one(meter)

    def _evict_one(self, meter: Optional[LatencyMeter]) -> None:
        piece = self._slices.popleft()
        if meter is not None:
            meter.charge(self.cost.gc_entry_ns,
                         times=sum(len(v) for v in piece.kv.values()),
                         category="gc")
        self.evictions += 1

    # -- GC -------------------------------------------------------------
    def collect(self, before_batch_no: int,
                meter: Optional[LatencyMeter] = None) -> int:
        """Free every slice with batch_no < ``before_batch_no``.

        Returns the number of slices freed.  Used by the background GC
        thread once windows slide past the data.
        """
        self.note_expired(before_batch_no - 1)
        freed = 0
        while self._slices and self._slices[0].batch_no < before_batch_no:
            self._evict_one(meter)
            freed += 1
        return freed

    # -- reads ------------------------------------------------------------
    def lookup(self, vid: int, eid: int, d: int, first_batch: int,
               last_batch: int,
               meter: Optional[LatencyMeter] = None) -> List[int]:
        """Neighbour vids within the batch range [first, last] (inclusive)."""
        key = make_key(vid, eid, d)
        found: List[int] = []
        probes = 0
        for piece in self._slices:
            if piece.batch_no < first_batch:
                continue
            if piece.batch_no > last_batch:
                break
            probes += 1
            values = piece.kv.get(key)
            if values:
                found.extend(values)
        if meter is not None and probes:
            meter.charge(self.cost.hash_probe_ns, times=probes,
                         category="store")
            meter.charge(self.cost.scan_entry_ns, times=len(found),
                         category="store")
        return found

    def vertices(self, eid: int, d: int, first_batch: int, last_batch: int,
                 meter: Optional[LatencyMeter] = None) -> List[int]:
        """Distinct vertices with an (eid, d) edge in the batch range."""
        out: List[int] = []
        seen: Set[int] = set()
        probes = 0
        scanned = 0
        for piece in self._slices:
            if piece.batch_no < first_batch:
                continue
            if piece.batch_no > last_batch:
                break
            probes += 1
            members = piece.subjects.get((eid, d), ())
            scanned += len(members)
            for vid in members:
                if vid not in seen:
                    seen.add(vid)
                    out.append(vid)
        if meter is not None and probes:
            meter.charge(self.cost.hash_probe_ns, times=probes,
                         category="store")
            meter.charge(self.cost.scan_entry_ns, times=scanned,
                         category="store")
        return out

    # -- stats ---------------------------------------------------------------
    @property
    def num_slices(self) -> int:
        return len(self._slices)

    @property
    def earliest_batch(self) -> Optional[int]:
        return self._slices[0].batch_no if self._slices else None

    def memory_bytes(self) -> int:
        return sum(piece.memory_bytes(self.memory) for piece in self._slices)
