"""Decentralized vector timestamps (§4.3).

Each node maintains a ``Local_VTS`` — per-stream counters of the last batch
fully inserted on that node.  The coordinator derives the ``Stable_VTS`` as
the element-wise minimum over all nodes: batches at or below the stable
vector are visible on every node and safe for queries (prefix integrity:
the order data arrives equals the order it becomes visible).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.errors import ConsistencyError


class VectorTimestamp:
    """Per-stream batch counters with monotonic updates.

    >>> vts = VectorTimestamp(["S0", "S1"])
    >>> vts.update("S0", 1); vts.update("S0", 2)
    >>> vts.get("S0")
    2
    """

    def __init__(self, streams: Iterable[str] = ()):
        self._v: Dict[str, int] = {name: 0 for name in streams}

    # -- updates ------------------------------------------------------------
    def update(self, stream: str, batch_no: int) -> None:
        """Record that ``batch_no`` of ``stream`` finished inserting here.

        Batches within a stream are inserted in order, so the counter must
        advance by exactly one.
        """
        current = self._v.get(stream)
        if current is None:
            raise ConsistencyError(f"unknown stream in VTS: {stream}")
        if batch_no != current + 1:
            raise ConsistencyError(
                f"stream {stream}: batch #{batch_no} after #{current} "
                f"(in-order insertion violated)")
        self._v[stream] = batch_no

    def add_stream(self, stream: str) -> None:
        """Dynamically register a new stream (starts at batch 0)."""
        if stream in self._v:
            raise ConsistencyError(f"stream already tracked: {stream}")
        self._v[stream] = 0

    # -- reads ------------------------------------------------------------
    def get(self, stream: str) -> int:
        value = self._v.get(stream)
        if value is None:
            raise ConsistencyError(f"unknown stream in VTS: {stream}")
        return value

    @property
    def streams(self) -> Iterable[str]:
        return self._v.keys()

    def as_dict(self) -> Dict[str, int]:
        return dict(self._v)

    def covers(self, requirement: Mapping[str, int]) -> bool:
        """Whether every required ``stream -> batch_no`` is at or below us."""
        for stream, needed in requirement.items():
            if self._v.get(stream, 0) < needed:
                return False
        return True

    def copy(self) -> "VectorTimestamp":
        clone = VectorTimestamp()
        clone._v = dict(self._v)
        return clone

    # -- combination -----------------------------------------------------------
    @staticmethod
    def stable(locals_: Iterable["VectorTimestamp"]) -> "VectorTimestamp":
        """Element-wise minimum: the cluster-wide stable vector."""
        result = VectorTimestamp()
        first = True
        for vts in locals_:
            if first:
                result._v = dict(vts._v)
                first = False
                continue
            if vts._v.keys() != result._v.keys():
                raise ConsistencyError(
                    "nodes disagree on the stream set: "
                    f"{sorted(vts._v)} vs {sorted(result._v)}")
            for stream, value in vts._v.items():
                if value < result._v[stream]:
                    result._v[stream] = value
        return result

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorTimestamp) and self._v == other._v

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ",".join(f"{s}={n}" for s, n in sorted(self._v.items()))
        return f"VTS[{inner}]"
