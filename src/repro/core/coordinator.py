"""The Coordinator: stable vector timestamps, SN plans and query triggering.

Responsibilities (§4.3, Fig. 10-11):

* track each node's ``Local_VTS`` and derive the cluster ``Stable_VTS``
  (element-wise minimum) — a continuous query execution fires only when the
  stable vector covers every batch its windows need (data-driven model);
* publish the SN->VTS plan ahead of injection and advance each node's
  ``Local_SN``/the cluster ``Stable_SN`` as insertion progresses, so
  one-shot queries read a consistent scalar snapshot;
* drive bounded scalarization: once a snapshot can no longer be read
  (older than the stable one), its segments are compacted into the base,
  keeping the per-key live-segment count bounded (typically two: one being
  read, one being inserted).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.snapshot import SNVTSPlan
from repro.core.vts import VectorTimestamp
from repro.errors import (ConsistencyError, SnapshotBelowGCFrontierError,
                          SnapshotNotYetStableError)
from repro.sim.cost import CostModel, LatencyMeter
from repro.store.distributed import DistributedStore


class Coordinator:
    """Cluster-wide consistency state.

    Parameters
    ----------
    num_nodes:
        Cluster size (one Local_VTS / Local_SN per node).
    streams:
        Initially registered stream names (more can be added dynamically).
    plan_width:
        Batches per stream admitted by each SN mapping — the paper's
        staleness/flexibility trade-off knob.  Width 1 keeps one-shot
        results freshest; larger widths let unbalanced injectors run ahead.
    keep_snapshots:
        Live SN segments to retain per key before compaction (>= 2: one
        readable, one being inserted).
    scalarization:
        Disable to reproduce the paper's "without bounded snapshot
        scalarization" memory comparison (§6.7): plans still exist but
        compaction never runs.
    """

    def __init__(self, num_nodes: int, streams: List[str],
                 plan_width: int = 4, keep_snapshots: int = 2,
                 scalarization: bool = True,
                 cost: Optional[CostModel] = None):
        if plan_width < 1:
            raise ConsistencyError(f"plan width must be >= 1: {plan_width}")
        if keep_snapshots < 2:
            raise ConsistencyError(
                f"need >= 2 live snapshots (read + insert): {keep_snapshots}")
        self.cost = cost if cost is not None else CostModel()
        self.plan_width = plan_width
        self.keep_snapshots = keep_snapshots
        self.scalarization = scalarization
        self.plan = SNVTSPlan(list(streams))
        self.local_vts: List[VectorTimestamp] = [
            VectorTimestamp(streams) for _ in range(num_nodes)
        ]
        self.local_sn: List[int] = [0] * num_nodes
        self._stable_sn = 0
        self._compacted_through = 0
        self._down: set = set()
        #: Snapshot pins held by in-flight temporal reads: SN -> refcount.
        #: Compaction never advances past the lowest pinned snapshot, so a
        #: pinned read stays exact while ingestion (and GC) continue.
        self._pins: Dict[int, int] = {}
        # The plan is announced ahead of injection (Fig. 11): publish the
        # first mapping immediately.
        self._publish_next()

    # -- stream lifecycle ------------------------------------------------
    def add_stream(self, stream: str) -> None:
        """Dynamically register a stream; transparent to one-shot queries."""
        for vts in self.local_vts:
            vts.add_stream(stream)
        self.plan.add_stream(stream)

    @property
    def streams(self) -> List[str]:
        return self.plan.streams

    # -- failure awareness -------------------------------------------------
    def mark_node_down(self, node_id: int) -> None:
        """A node failed: freeze SN publication until it recovers.

        While any node is down the cluster must not open new snapshots —
        the recovered node replays its durable log against the *same* SN
        plan the batches were originally admitted under, which keeps every
        value-list offset and shared stream-index span bit-identical to a
        never-faulted run (the recovery-equivalence invariant).
        """
        self._down.add(node_id)

    def mark_node_up(self, node_id: int) -> None:
        """A node finished recovery; normal SN publication may resume."""
        self._down.discard(node_id)

    @property
    def down_nodes(self) -> frozenset:
        return frozenset(self._down)

    # -- VTS updates -------------------------------------------------------
    def on_batch_inserted(self, node_id: int, stream: str, batch_no: int,
                          meter: Optional[LatencyMeter] = None) -> None:
        """A node's injector finished batch ``batch_no`` of ``stream``."""
        if node_id in self._down:
            raise ConsistencyError(
                f"node {node_id} is down; its injector cannot make progress")
        self.local_vts[node_id].update(stream, batch_no)
        if meter is not None:
            meter.charge(self.cost.vts_update_ns, category="vts")

    def stable_vts(self) -> VectorTimestamp:
        """The cluster-wide stable vector (element-wise minimum)."""
        return VectorTimestamp.stable(self.local_vts)

    def is_ready(self, requirement: Mapping[str, int]) -> bool:
        """Whether the stable vector covers a query's window requirement."""
        return self.stable_vts().covers(requirement)

    # -- SN machinery ----------------------------------------------------------
    def sn_for_batch(self, stream: str, batch_no: int) -> Optional[int]:
        """The snapshot number for an arriving batch; None = injector stalls."""
        return self.plan.sn_for(stream, batch_no)

    def advance(self, store: Optional[DistributedStore] = None,
                meter: Optional[LatencyMeter] = None) -> int:
        """Re-derive Local_SN/Stable_SN, publish new mappings when every
        node has reached the frontier, and compact retired snapshots.

        Returns the (possibly advanced) stable SN.
        """
        if self._down:
            return self._stable_sn
        for node_id, vts in enumerate(self.local_vts):
            sn = self.local_sn[node_id]
            while sn < self.plan.latest_sn and \
                    vts.covers(self.plan.requirement_for(sn + 1)):
                sn += 1
            self.local_sn[node_id] = sn
        stable = min(self.local_sn) if self.local_sn else 0
        if stable > self._stable_sn:
            self._stable_sn = stable
        # Publish a single new mapping once the current frontier is reached
        # on all nodes, keeping exactly one mapping open for insertion.
        while min(self.local_sn) == self.plan.latest_sn:
            self._publish_next(meter)
        if self.scalarization and store is not None:
            bound = self._stable_sn - (self.keep_snapshots - 1)
            if self._pins:
                # A pinned snapshot t stays exact as long as the frontier
                # does not pass it: entries relabelled to BASE by a
                # compaction bounded at <= t were already visible at t.
                bound = min(bound, min(self._pins))
            if bound > self._compacted_through:
                store.compact(bound)
                self._compacted_through = bound
        return self._stable_sn

    def _publish_next(self, meter: Optional[LatencyMeter] = None) -> None:
        previous: Dict[str, int]
        if self.plan.latest_sn:
            previous = self.plan.mapping(self.plan.latest_sn).upper
        else:
            previous = {s: 0 for s in self.plan.streams}
        upper = {s: previous[s] + self.plan_width for s in self.plan.streams}
        self.plan.publish(upper)
        if meter is not None:
            meter.charge(self.cost.sn_publish_ns, category="vts")

    @property
    def stable_sn(self) -> int:
        """The snapshot one-shot queries read at."""
        return self._stable_sn

    @property
    def compacted_through(self) -> int:
        return self._compacted_through

    # -- snapshot pinning (SPARQL-T reads vs the GC frontier) --------------
    def pin_snapshot(self, snapshot: int) -> int:
        """Pin ``snapshot`` against compaction for an in-flight read.

        Validates readability *and* holds the GC frontier at or below the
        pinned SN until :meth:`unpin_snapshot`, so a temporal read stays
        exact even if :meth:`advance` runs mid-query.  Raises a typed
        :class:`~repro.errors.TemporalError` — never returns silently
        wrong data — when the snapshot is outside the readable range
        ``[compacted_through, stable_sn]``.
        """
        if snapshot < self._compacted_through:
            raise SnapshotBelowGCFrontierError(
                f"snapshot {snapshot} predates the GC frontier "
                f"{self._compacted_through}: its version segments were "
                f"scalarized into the base snapshot",
                snapshot=snapshot, frontier=self._compacted_through,
                stable=self._stable_sn)
        if snapshot > self._stable_sn:
            raise SnapshotNotYetStableError(
                f"snapshot {snapshot} is above the stable SN "
                f"{self._stable_sn}: not every node has inserted the "
                f"batches it covers",
                snapshot=snapshot, frontier=self._compacted_through,
                stable=self._stable_sn)
        self._pins[snapshot] = self._pins.get(snapshot, 0) + 1
        return snapshot

    def unpin_snapshot(self, snapshot: int) -> None:
        """Release one pin on ``snapshot`` (idempotent per pin)."""
        count = self._pins.get(snapshot, 0)
        if count <= 1:
            self._pins.pop(snapshot, None)
        else:
            self._pins[snapshot] = count - 1

    @property
    def pinned_snapshots(self) -> Dict[int, int]:
        """A copy of the live pin table (SN -> refcount)."""
        return dict(self._pins)
