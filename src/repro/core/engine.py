"""The Wukong+S engine facade.

Wires the whole execution flow of Fig. 5 together: stream sources feed the
Adaptor (batching + classification), the Dispatcher partitions each batch
across nodes, per-node Injectors absorb it into the hybrid store while
building the stream index, the Coordinator advances vector timestamps and
the SN plan, and the continuous/one-shot engines serve queries.

Time is simulated: :meth:`WukongSEngine.step` advances one mini-batch
interval, performing everything due in it; :meth:`run_until` loops.  All
latency numbers come from :class:`~repro.sim.cost.LatencyMeter` accounting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.adaptor import AdaptedBatch, Adaptor
from repro.core.continuous import (ContinuousEngine, ExecutionRecord,
                                   RegisteredQuery)
from repro.core.coordinator import Coordinator
from repro.core.dispatcher import Dispatcher, NodeBatch
from repro.core.gc import GarbageCollector
from repro.core.injector import Injector
from repro.core.oneshot import OneShotEngine, OneShotRecord
from repro.core.stream_index import IndexSlice, StreamIndexRegistry
from repro.core.transient import TransientStore
from repro.errors import StreamError
from repro.rdf.string_server import StringServer
from repro.rdf.terms import Triple
from repro.sim.clock import VirtualClock
from repro.sim.cluster import Cluster
from repro.sim.cost import CostModel, LatencyMeter, MemoryModel
from repro.sparql.ast import Query
from repro.sparql.parser import parse_query
from repro.streams.source import StreamSource
from repro.streams.stream import StreamBatch, StreamSchema


@dataclass
class EngineConfig:
    """Tunables of one engine instance (defaults follow the paper's setup)."""

    num_nodes: int = 1
    workers_per_node: int = 16
    use_rdma: bool = True
    batch_interval_ms: int = 100
    stream_start_ms: int = 0
    plan_width: int = 1
    keep_snapshots: int = 2
    scalarization: bool = True
    injector_threads: int = 1
    gc_every_ticks: int = 10
    gc_retention_ms: int = 10_000
    oneshot_contention: float = 0.05
    fault_tolerance: bool = False
    checkpoint_interval_ms: int = 1_000
    auto_pad_streams: bool = True
    #: Deterministic tracing (``repro.obs``): off by default; enabling it
    #: never changes simulated time (spans only read meters).
    tracing: bool = False
    #: Record every n-th activity of each kind when tracing is on.
    trace_sample_every: int = 1
    #: Per-shard adjacency-segment cache size and eviction policy
    #: ("fifo" or "lru"); see ``repro.store.kvstore.ShardStore``.
    adjacency_cache_capacity: int = 1 << 16
    adjacency_cache_policy: str = "fifo"
    #: Entries-weighted eviction: interpret the capacity as a budget of
    #: cached neighbour entries (weight 1 + len(list)) instead of an
    #: entry count, so one hot high-degree vertex cannot evict a page of
    #: cheap segments for free.
    adjacency_cache_weighted: bool = False
    #: Columnar batch executor kernels (all execution modes); False keeps
    #: the row-at-a-time kernels.  Wall-clock-only — simulated charges
    #: are bit-identical either way (tests/store/test_batch_distributed).
    columnar_batch: bool = True
    #: Adaptive re-planning of registered continuous queries from live
    #: predicate statistics (``repro.core.replan.PlanMonitor``).  Off by
    #: default: a plan swap deliberately changes which simulated work
    #: each close performs, so golden/deterministic workloads must opt in
    #: (or pin their orders via ``register_continuous(fixed_order=...)``).
    adaptive_replan: bool = False
    #: Re-plan check cadence (executed closes between checks per query),
    #: hysteresis threshold (estimated old/new cost ratio required to
    #: swap) and swap cool-down (closes between swaps per query).
    replan_check_closes: int = 8
    replan_hysteresis: float = 1.5
    replan_cooldown_closes: int = 24
    #: Adaptive adjacency-cache sizing from hit/eviction telemetry
    #: (``repro.core.replan.AdjacencyBudget``): grows the per-shard
    #: capacity when the working set thrashes, shrinks it when idle.
    #: ``adjacency_cache_capacity`` above becomes the starting point
    #: rather than a fixed budget.  Wall-clock-only.
    adjacency_cache_adaptive: bool = False
    adjacency_cache_min: int = 1 << 10
    adjacency_cache_max: int = 1 << 20
    cost: CostModel = field(default_factory=CostModel)
    memory: MemoryModel = field(default_factory=MemoryModel)


@dataclass
class InjectionRecord:
    """Cost accounting for one injected batch (Table 6 inputs)."""

    stream: str
    batch_no: int
    num_tuples: int
    meter: LatencyMeter

    @property
    def indexing_ms(self) -> float:
        """Time spent building the batch's stream-index slice."""
        return self.meter.breakdown_ms.get("indexing", 0.0)

    @property
    def injection_ms(self) -> float:
        """Everything else on the batch's path: adapt, dispatch, insert."""
        return self.meter.ms - self.indexing_ms

    @property
    def total_ms(self) -> float:
        return self.meter.ms


class WukongSEngine:
    """The integrated stateful stream-querying engine."""

    def __init__(self, schemas: Iterable[StreamSchema],
                 config: Optional[EngineConfig] = None):
        self.config = config if config is not None else EngineConfig()
        cfg = self.config
        self.cluster = Cluster(cfg.num_nodes, cfg.workers_per_node,
                               cost=cfg.cost, use_rdma=cfg.use_rdma)
        self.strings = StringServer()
        # Imported here at runtime to avoid a cycle in module docs only.
        from repro.store.distributed import DistributedStore
        self.store = DistributedStore(
            self.cluster, self.strings,
            adjacency_capacity=cfg.adjacency_cache_capacity,
            adjacency_policy=cfg.adjacency_cache_policy,
            adjacency_weighted=cfg.adjacency_cache_weighted)
        self.clock = VirtualClock(cfg.stream_start_ms)

        self.schemas: Dict[str, StreamSchema] = {}
        self.registry = StreamIndexRegistry(cost=cfg.cost)
        self.transients: Dict[str, List[TransientStore]] = {}
        self.adaptors: Dict[str, Adaptor] = {}
        self.dispatchers: Dict[str, Dispatcher] = {}
        self.sources: Dict[str, StreamSource] = {}
        self._pending: Dict[str, Deque[StreamBatch]] = {}
        self._last_delivered: Dict[str, int] = {}
        self._raw_bytes: Dict[str, int] = {}

        for schema in schemas:
            self._add_stream_state(schema)

        self.coordinator = Coordinator(
            cfg.num_nodes, list(self.schemas), plan_width=cfg.plan_width,
            keep_snapshots=cfg.keep_snapshots,
            scalarization=cfg.scalarization, cost=cfg.cost)
        self.injectors = [
            Injector(node_id, self.store,
                     {s: shards[node_id] for s, shards in
                      self.transients.items()},
                     threads=cfg.injector_threads)
            for node_id in range(cfg.num_nodes)
        ]
        self.continuous = ContinuousEngine(
            self.cluster, self.store, self.strings, self.registry,
            self.transients, self.coordinator, self.schemas,
            cfg.batch_interval_ms, cfg.stream_start_ms,
            use_batch=cfg.columnar_batch)
        self.oneshot_engine = OneShotEngine(
            self.cluster, self.store, self.coordinator,
            contention_factor=cfg.oneshot_contention,
            use_batch=cfg.columnar_batch)
        # Imported at runtime: repro.temporal imports core modules.
        from repro.temporal import TemporalEngine
        self.temporal = TemporalEngine(
            self.cluster, self.store, self.coordinator, self.oneshot_engine,
            use_batch=cfg.columnar_batch)
        #: Query text -> parsed AST for repeated one-shot submissions
        #: (bounded; parsing is pure so entries never go stale).
        self._oneshot_parse_cache: Dict[str, Query] = {}
        self.gc = GarbageCollector(
            self.registry, self.transients, self.continuous,
            cfg.batch_interval_ms, cfg.stream_start_ms,
            retention_ms=cfg.gc_retention_ms)

        from repro.core.checkpoint import CheckpointManager
        self.checkpoints = CheckpointManager(
            cfg.cost, interval_ms=cfg.checkpoint_interval_ms,
            num_nodes=cfg.num_nodes) \
            if cfg.fault_tolerance else None

        #: Adaptive controllers (``repro.core.replan``); None unless the
        #: matching config knob opted in.  Imported at runtime: the stats
        #: module imports this one for type access.
        self.plan_monitor = None
        self.adjacency_budget = None
        if cfg.adaptive_replan:
            from repro.core.replan import PlanMonitor
            from repro.core.stats import PredicateStatistics
            self.plan_monitor = PlanMonitor(
                self.continuous, PredicateStatistics(self.store),
                check_every_closes=cfg.replan_check_closes,
                hysteresis=cfg.replan_hysteresis,
                cooldown_closes=cfg.replan_cooldown_closes)
        if cfg.adjacency_cache_adaptive:
            from repro.core.replan import AdjacencyBudget
            self.adjacency_budget = AdjacencyBudget(
                self.store, min_capacity=cfg.adjacency_cache_min,
                max_capacity=cfg.adjacency_cache_max)

        self.injection_records: List[InjectionRecord] = []
        self._initial_triples: List[Triple] = []
        self._ticks = 0
        #: Optional chaos controller (``repro.chaos``); None on the healthy
        #: path, where every hook below short-circuits.
        self.chaos = None
        #: One-shot parse-cache counters (always on; surfaced by
        #: ``core.stats.collect_stats`` and ``repro.obs``).
        self.parse_cache_hits = 0
        self.parse_cache_misses = 0
        #: Observability (``repro.obs``): both None unless enabled — the
        #: hot paths gate every hook on that, so trace-off runs pay one
        #: attribute check per site.
        self.tracer = None
        self.metrics = None
        if cfg.tracing:
            self.enable_observability(sample_every=cfg.trace_sample_every)

    # -- observability -----------------------------------------------------
    def enable_observability(self, sample_every: int = 1,
                             tracer=None, metrics=None):
        """Attach a :class:`~repro.obs.trace.Tracer` and a
        :class:`~repro.obs.metrics.MetricsRegistry` to every subsystem.

        Tracing is zero-cost in simulated time (spans only read meters;
        goldens are unchanged — see ``tests/obs/test_trace_neutrality``)
        and sampled in wall-clock: ``sample_every=n`` records every n-th
        activity of each kind.  Returns ``(tracer, metrics)``.
        """
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import Tracer
        if tracer is None:
            tracer = Tracer(sample_every=sample_every, clock=self.clock)
        elif tracer.clock is None:
            tracer.clock = self.clock
        if metrics is None:
            metrics = MetricsRegistry()
        self.tracer = tracer
        self.metrics = metrics
        self.continuous.tracer = tracer
        self.continuous.metrics = metrics
        self.continuous.explorer.tracer = tracer
        self.oneshot_engine.tracer = tracer
        self.oneshot_engine.metrics = metrics
        self.oneshot_engine.explorer.tracer = tracer
        self.temporal.tracer = tracer
        self.temporal.metrics = metrics
        if self.plan_monitor is not None:
            self.plan_monitor.tracer = tracer
            self.plan_monitor.metrics = metrics
        if self.adjacency_budget is not None:
            self.adjacency_budget.metrics = metrics
        return tracer, metrics

    # -- stream wiring -----------------------------------------------------
    def _add_stream_state(self, schema: StreamSchema) -> None:
        if schema.name in self.schemas:
            raise StreamError(f"stream declared twice: {schema.name}")
        cfg = self.config
        self.schemas[schema.name] = schema
        self.registry.create_stream(schema.name, memory=cfg.memory)
        self.transients[schema.name] = [
            TransientStore(schema.name, cost=cfg.cost, memory=cfg.memory)
            for _ in range(cfg.num_nodes)
        ]
        self.adaptors[schema.name] = Adaptor(schema, self.strings,
                                             cost=cfg.cost)
        source_node = len(self.dispatchers) % cfg.num_nodes
        self.dispatchers[schema.name] = Dispatcher(
            self.cluster, source_node=source_node, memory=cfg.memory)
        self._pending[schema.name] = deque()
        self._last_delivered[schema.name] = 0
        self._raw_bytes[schema.name] = 0

    def add_stream(self, schema: StreamSchema) -> None:
        """Dynamically register a new stream (§4.3: the SN plan extends
        transparently)."""
        self._add_stream_state(schema)
        self.coordinator.add_stream(schema.name)
        for injector in self.injectors:
            injector.transients[schema.name] = \
                self.transients[schema.name][injector.node_id]

    def attach_source(self, source: StreamSource) -> None:
        """Connect a stream source (its schema must be registered)."""
        name = source.schema.name
        if name not in self.schemas:
            raise StreamError(f"unknown stream: {name}")
        self.sources[name] = source

    # -- loading ---------------------------------------------------------------
    def load_static(self, triples: Iterable[Triple]) -> int:
        """Bulk-load the initially stored data (kept for recovery)."""
        count = 0
        for triple in triples:
            self._initial_triples.append(triple)
            self.store.insert_encoded(self.strings.encode_triple(triple))
            count += 1
        return count

    # -- queries -----------------------------------------------------------------
    def register_continuous(self, query: Union[str, Query],
                            home_node: Optional[int] = None,
                            name: Optional[str] = None,
                            fixed_order: Optional[List[int]] = None
                            ) -> RegisteredQuery:
        """Register a C-SPARQL continuous query (text or parsed).

        ``name`` overrides the registration name (serving-layer backing
        registrations pick synthetic names so identically named client
        queries never collide).  ``fixed_order`` pins the pattern
        ordering, exempting the query from adaptive re-planning (golden
        workloads pin their orders; see ``repro.core.replan``).
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        return self.continuous.register(parsed, self.clock.now_ms,
                                        home_node=home_node, name=name,
                                        fixed_order=fixed_order)

    def oneshot(self, query: Union[str, Query],
                home_node: Optional[int] = None) -> OneShotRecord:
        """Execute a one-shot SPARQL query at the stable snapshot."""
        if isinstance(query, str):
            parsed = self._oneshot_parse_cache.get(query)
            if parsed is None:
                self.parse_cache_misses += 1
                parsed = parse_query(query)
                cache = self._oneshot_parse_cache
                if len(cache) >= 256:
                    del cache[next(iter(cache))]
                cache[query] = parsed
            else:
                self.parse_cache_hits += 1
        else:
            parsed = query
        contended = bool(self.continuous.queries)
        if parsed.is_temporal:
            return self.temporal.execute(parsed, home_node=home_node,
                                         contended=contended)
        return self.oneshot_engine.execute(parsed, home_node=home_node,
                                           contended=contended)

    def oneshot_time_scoped(self, query: Union[str, Query], start_ms: int,
                            end_ms: int,
                            home_node: Optional[int] = None
                            ) -> OneShotRecord:
        """Time-scoped one-shot query: stream patterns read a historical
        interval instead of a sliding window.

        This is the paper's footnote-10 extension ("Wukong+S can support
        time-based one-shot queries by Time-ontology if needed"): the
        query's ``GRAPH <stream>`` patterns match tuples whose batches
        fall inside ``[start_ms, end_ms)`` — provided the stream index
        still retains them (raises :class:`~repro.errors.StoreError` once
        GC has reclaimed the interval); stored patterns read the stable
        snapshot as usual.
        """
        from repro.core.access import WindowAccess
        from repro.store.distributed import PersistentAccess
        from repro.errors import StoreError

        parsed = parse_query(query) if isinstance(query, str) else query
        if not parsed.windows:
            raise StoreError(
                "time-scoped queries need at least one stream GRAPH; "
                "use oneshot() for purely stored queries")
        if end_ms <= start_ms:
            raise StoreError(f"empty time scope: [{start_ms}, {end_ms})")
        cfg = self.config
        interval = cfg.batch_interval_ms
        first = (max(0, start_ms - cfg.stream_start_ms)) // interval + 1
        last = (end_ms - cfg.stream_start_ms + interval - 1) // interval
        if home_node is None:
            home_node = 0

        window_access = {}
        for stream in parsed.windows:
            if stream not in self.schemas:
                raise StreamError(f"unknown stream: {stream}")
            index = self.registry.index(stream)
            if first < index.collected_before:
                raise StoreError(
                    f"time scope [{start_ms}, {end_ms}) of stream "
                    f"{stream} was garbage-collected (batches below "
                    f"#{index.collected_before} are gone)")
            window_access[stream] = WindowAccess(
                cluster=self.cluster, store=self.store,
                strings=self.strings, registry=self.registry,
                stream_schema=self.schemas[stream],
                transients=self.transients[stream], first_batch=first,
                last_batch=last, home_node=home_node,
                force_local_index=True)
        stored = PersistentAccess(self.store, home_node=home_node,
                                  max_sn=self.coordinator.stable_sn)

        def factory(node_id):
            def resolver(pattern):
                access = window_access.get(pattern.graph)
                return access if access is not None else stored
            return resolver

        from repro.sparql.planner import plan_query as _plan
        from repro.sim.cost import LatencyMeter
        meter = LatencyMeter()
        meter.charge(cfg.cost.task_dispatch_ns, category="dispatch")
        result = self.oneshot_engine.explorer.execute(
            _plan(parsed), factory, meter, home_node=home_node)
        from repro.core.oneshot import OneShotRecord
        return OneShotRecord(result=result, meter=meter,
                             snapshot=self.coordinator.stable_sn)

    # -- simulation loop ------------------------------------------------------------
    @property
    def healthy(self) -> bool:
        """Whether normal progress is allowed this tick.

        False while any node is down or a chaos hold is in flight.  While
        degraded the engine stalls injection *globally* (preserving the
        exact global injection order — and with it every value-list offset,
        stream-index span and SN assignment — for recovery equivalence),
        skips checkpoints, and reports gap markers instead of executing
        continuous queries against a partial cluster.
        """
        return self.cluster.all_alive and \
            (self.chaos is None or not self.chaos.blocks_progress())

    def step(self) -> List[ExecutionRecord]:
        """Advance one mini-batch interval; returns new continuous results."""
        cfg = self.config
        now = self.clock.advance(cfg.batch_interval_ms)
        if self.chaos is not None:
            self.chaos.on_tick(self, now)
        self._deliver_batches(now)
        if self.healthy:
            self._pump_injection()
        # Re-checked after the pump: a scheduled mid-tick kill fires
        # between batch injections, degrading the rest of this tick.
        checkpointed = False
        if self.checkpoints is not None and self.healthy:
            checkpointed = self.checkpoints.maybe_checkpoint(
                now, self.coordinator, self.sources)
        if self.healthy:
            records = self.continuous.poll(now)
            if checkpointed and self.checkpoints is not None:
                # Queries co-scheduled with the incremental checkpoint wait
                # behind its write (the paper's p99 growth in §6.8).
                pause_ns = self.checkpoints.last_checkpoint_pause_ms * 1e6
                for record in records:
                    record.meter.charge(pause_ns, category="checkpoint")
            # Adaptive controllers run *after* the poll, so a plan swap
            # always lands between window closes (never mid-close) and
            # the next due close runs the new plan from its first step.
            if self.plan_monitor is not None:
                self.plan_monitor.on_tick(now)
            if self.adjacency_budget is not None:
                self.adjacency_budget.on_tick()
        else:
            self.continuous.note_gaps(now)
            records = []
        self._ticks += 1
        if cfg.gc_every_ticks and self._ticks % cfg.gc_every_ticks == 0:
            self.gc.run(now)
        return records

    def run_until(self, when_ms: int) -> List[ExecutionRecord]:
        """Step the simulation until the clock reaches ``when_ms``."""
        records: List[ExecutionRecord] = []
        while self.clock.now_ms < when_ms:
            records.extend(self.step())
        return records

    # -- internals -------------------------------------------------------------
    def _deliver_batches(self, now_ms: int) -> None:
        """Move batches whose interval has closed from sources to pending."""
        cfg = self.config
        for name in self.schemas:
            source = self.sources.get(name)
            pending = self._pending[name]
            while source is not None and source.has_pending:
                head = source.next_batch()
                assert head is not None
                if self.chaos is not None and \
                        self.chaos.intercept_delivery(self, head):
                    continue  # held or dropped in flight; chaos re-queues
                if head.end_ms > now_ms:
                    # Arrived from the future: keep for a later tick by
                    # pushing back is impossible (sources are FIFO), so
                    # stage it in pending; injection checks readiness.
                    pending.append(head)
                    break
                pending.append(head)
            if cfg.auto_pad_streams and \
                    (self.chaos is None or
                     not self.chaos.suppresses_padding(name)):
                self._pad_stream(name, now_ms)

    def _pad_stream(self, name: str, now_ms: int) -> None:
        """Synthesize empty batches so idle streams keep the VTS moving."""
        cfg = self.config
        last_known = self._last_delivered[name]
        pending = self._pending[name]
        if pending:
            last_known = max(last_known, pending[-1].batch_no)
        due = (now_ms - cfg.stream_start_ms) // cfg.batch_interval_ms
        for batch_no in range(last_known + 1, due + 1):
            start = cfg.stream_start_ms + (batch_no - 1) * cfg.batch_interval_ms
            pending.append(StreamBatch(
                stream=name, batch_no=batch_no, start_ms=start,
                end_ms=start + cfg.batch_interval_ms))

    def _pump_injection(self) -> None:
        """Inject every pending batch the SN plan currently admits."""
        progress = True
        while progress:
            progress = False
            for name in self.schemas:
                pending = self._pending[name]
                while pending:
                    if not self.cluster.all_alive:
                        return  # a mid-tick kill fired: stall till recovery
                    batch = pending[0]
                    if batch.end_ms > self.clock.now_ms:
                        break
                    sn = self.coordinator.sn_for_batch(name, batch.batch_no)
                    if sn is None:
                        break  # stalled until the next SN mapping
                    if self.chaos is not None and \
                            not self.chaos.admit_injection(self):
                        return  # chaos killed a node between batches
                    pending.popleft()
                    self._inject_batch(batch, sn)
                    self._last_delivered[name] = batch.batch_no
                    progress = True
                self.coordinator.advance(self.store)

    def _inject_batch(self, batch: StreamBatch, sn: int) -> None:
        """Run one batch through Adaptor -> Dispatcher -> Injectors."""
        meter = LatencyMeter()
        act = self.tracer.begin("inject", "injection", meter,
                                stream=batch.stream,
                                batch_no=batch.batch_no, sn=sn) \
            if self.tracer is not None else None
        adaptor = self.adaptors[batch.stream]
        adapted = adaptor.adapt(batch, meter=meter)
        self._raw_bytes[batch.stream] += \
            self.config.memory.tuple_bytes * adapted.num_tuples
        node_batches = self.dispatchers[batch.stream].dispatch(adapted,
                                                               meter=meter)
        if act is not None:
            act.mark("adapt+dispatch")
        needs_index = bool(adapted.timeless)
        index_slice = IndexSlice(batch.batch_no) if needs_index else None
        group = act.group("insert") if act is not None else None
        branches = []
        for node_id, node_batch in node_batches.items():
            branch = meter.spawn()
            self.injectors[node_id].inject(node_batch, sn, index_slice,
                                           meter=branch)
            if self.checkpoints is not None:
                self.checkpoints.log_batch(node_id, node_batch, sn,
                                           meter=branch)
            branches.append(branch)
            self.coordinator.on_batch_inserted(node_id, batch.stream,
                                               batch.batch_no, meter=branch)
            if group is not None:
                group.branch(f"node{node_id}", branch, node=node_id)
        meter.join_parallel(branches)
        if group is not None:
            group.close()
        if index_slice is not None:
            self.registry.index(batch.stream).append_slice(index_slice,
                                                           meter=meter)
        if act is not None:
            act.mark("index")
            act.label(num_tuples=adapted.num_tuples)
            act.end()
        if self.metrics is not None and adapted.num_tuples:
            self.metrics.histogram("injection_ns",
                                   stream=batch.stream).observe(meter.ns)
        self.injection_records.append(InjectionRecord(
            stream=batch.stream, batch_no=batch.batch_no,
            num_tuples=adapted.num_tuples, meter=meter))

    # -- fault injection / recovery -----------------------------------------------
    def crash_node(self, node_id: int) -> None:
        """Fail one node, losing its in-memory shard and transient stores."""
        from repro.store.kvstore import ShardStore
        self.cluster.kill_node(node_id)
        self.coordinator.mark_node_down(node_id)
        self.store.shards[node_id] = ShardStore(
            self.config.cost,
            adjacency_capacity=self.config.adjacency_cache_capacity,
            adjacency_policy=self.config.adjacency_cache_policy,
            adjacency_weighted=self.config.adjacency_cache_weighted)
        for shards in self.transients.values():
            shards[node_id] = TransientStore(
                shards[node_id].stream, cost=self.config.cost,
                memory=self.config.memory)
        self.injectors[node_id].transients = {
            stream: shards[node_id]
            for stream, shards in self.transients.items()
        }

    def recover_node(self, node_id: int):
        """Recover a crashed node from checkpoints + upstream backup (§5).

        Returns the :class:`~repro.core.checkpoint.RecoveryReport` with the
        replay counts and the recovery path's simulated cost.
        """
        if self.checkpoints is None:
            raise StreamError(
                "fault tolerance is disabled; enable it in EngineConfig")
        from repro.core.checkpoint import recover_node
        return recover_node(self, node_id)

    # -- accounting ------------------------------------------------------------
    def raw_stream_bytes(self, stream: str) -> int:
        """Raw bytes that have arrived on ``stream`` (Table 7 numerator)."""
        return self._raw_bytes[stream]

    def stream_index_bytes(self, stream: str) -> int:
        """Replica-weighted stream-index bytes (Table 7 denominator)."""
        return self.registry.memory_bytes(stream)

    def store_memory_bytes(self) -> int:
        return self.store.memory_bytes()
