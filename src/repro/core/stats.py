"""Engine observability: one-call snapshots of every subsystem's state.

Production stores ship a stats endpoint; this module aggregates the
counters the reproduction already keeps — store sizes, stream-index and
transient footprints, GC progress, fabric traffic, injection totals,
query registrations and latencies — into one typed snapshot with a
formatted dashboard, used by examples and operators alike.

It also hosts :class:`PredicateStatistics`, the live per-predicate
cardinality view the cost-aware planner consumes (collected at
load/injection time by ``ShardStore``; see ``repro.sparql.planner``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.metrics import mean, median, percentile
from repro.core.engine import WukongSEngine
from repro.rdf.ids import DIR_IN, DIR_OUT
from repro.store.distributed import DistributedStore


@dataclass(frozen=True)
class StatsSnapshot:
    """A frozen, point-in-time capture of :class:`PredicateStatistics`.

    The adaptive re-planner (``repro.core.replan``) must make its
    keep-or-swap decision and compute both plans' cost estimates from *one*
    consistent set of numbers — reading the live view twice could interleave
    with injection and compare plans under different statistics.  A snapshot
    captures every estimate a given pattern set can ask for (predicate
    means, index sizes, and the specific degrees of the constants that
    actually appear) into plain dicts, plus the ``epoch`` the capture was
    taken at, so a re-plan decision is a pure function of
    ``(patterns, epoch)`` and reproducible after the fact.

    Exposes the same five accessors as the live view, so it can be passed
    anywhere a statistics provider is accepted (``plan_order``,
    ``estimate_plan_cost``).
    """

    #: Monotone store-growth counter at capture time (see
    #: :meth:`PredicateStatistics.epoch`).
    epoch: int
    out_degrees: Dict[str, float]
    in_degrees: Dict[str, float]
    index_sizes: Dict[str, float]
    subject_degrees: Dict[Tuple[str, str], float]
    object_degrees: Dict[Tuple[str, str], float]

    def out_degree(self, predicate: str) -> float:
        return self.out_degrees.get(predicate, 0.0)

    def in_degree(self, predicate: str) -> float:
        return self.in_degrees.get(predicate, 0.0)

    def index_size(self, predicate: str) -> float:
        return self.index_sizes.get(predicate, 0.0)

    def subject_degree(self, predicate: str, term: str) -> float:
        return self.subject_degrees.get((predicate, term),
                                        self.out_degree(predicate))

    def object_degree(self, predicate: str, term: str) -> float:
        return self.object_degrees.get((predicate, term),
                                       self.in_degree(predicate))


class PredicateStatistics:
    """Selectivity estimates from the store's cardinality counters.

    A *live view*: every estimate reads the shards' current counters, so
    plans adapt as injection evolves the store without any refresh hook.
    All three accessors are pure functions of deterministic counters,
    which makes statistics-driven plan ordering reproducible run-to-run.
    Predicates the store has never seen estimate to 0.0 — unknown
    predicates produce empty results, the cheapest possible step.

    Estimates (Strider-style, arXiv:1705.05688):

    ``out_degree(p)``   mean neighbours per subject — the fan-out of a
                        forward traversal through ``p``.
    ``in_degree(p)``    mean neighbours per object — the fan-out of a
                        reverse traversal.
    ``index_size(p)``   total ``p`` edges — the enumeration cost of an
                        index-vertex start.

    Constant-specific estimates refine the means with the shards' top-k
    degree sketches (``ShardStore._TopKSketch``): a constant that is a
    tracked heavy hitter of its predicate estimates its *own* (sketched)
    degree, so the planner can tell a hot hashtag from a cold one instead
    of charging both the mean:

    ``subject_degree(p, term)``  degree of the specific subject constant.
    ``object_degree(p, term)``   degree of the specific object constant.
    """

    def __init__(self, store: DistributedStore):
        self.store = store
        self.strings = store.strings

    def _cardinality(self, predicate: str, d: int) -> Tuple[int, int]:
        eid = self.strings.lookup_predicate(predicate)
        if eid is None:
            return 0, 0
        return self.store.predicate_cardinality(eid, d)

    def out_degree(self, predicate: str) -> float:
        entries, keys = self._cardinality(predicate, DIR_OUT)
        return entries / keys if keys else 0.0

    def in_degree(self, predicate: str) -> float:
        entries, keys = self._cardinality(predicate, DIR_IN)
        return entries / keys if keys else 0.0

    def index_size(self, predicate: str) -> float:
        return float(self._cardinality(predicate, DIR_OUT)[0])

    def _specific_degree(self, predicate: str, term: str, d: int,
                         fallback) -> float:
        eid = self.strings.lookup_predicate(predicate)
        vid = self.strings.lookup_entity(term)
        if eid is not None and vid is not None:
            tracked = self.store.topk_degree(eid, d, vid)
            if tracked is not None:
                return float(tracked)
        return fallback(predicate)

    def subject_degree(self, predicate: str, term: str) -> float:
        """Fan-out of the specific constant subject ``term`` (sketched
        degree when tracked, else the predicate's mean out-degree)."""
        return self._specific_degree(predicate, term, DIR_OUT,
                                     self.out_degree)

    def object_degree(self, predicate: str, term: str) -> float:
        """Fan-in of the specific constant object ``term`` (sketched
        degree when tracked, else the predicate's mean in-degree)."""
        return self._specific_degree(predicate, term, DIR_IN,
                                     self.in_degree)

    def epoch(self) -> int:
        """A monotone counter of store growth: total adjacency entries
        inserted across every shard's per-predicate buckets.

        Inserts only ever increment the underlying counters, so two calls
        returning the same epoch saw the *same* statistics — which lets the
        adaptive re-planner stamp each decision with the epoch it was made
        under and lets tests assert that equal epochs imply equal
        snapshots.  Cheap: the sum walks per-(predicate, direction) buckets,
        not entries.
        """
        return sum(sum(shard._pred_entries.values())
                   for shard in self.store.shards)

    def snapshot(self, patterns) -> StatsSnapshot:
        """Freeze every estimate ``patterns`` can ask for (see
        :class:`StatsSnapshot`).  Constants are captured with their
        specific (sketched) degrees under the predicate they appear with."""
        from repro.sparql.ast import is_variable
        out_degrees: Dict[str, float] = {}
        in_degrees: Dict[str, float] = {}
        index_sizes: Dict[str, float] = {}
        subject_degrees: Dict[Tuple[str, str], float] = {}
        object_degrees: Dict[Tuple[str, str], float] = {}
        for pattern in patterns:
            predicate = pattern.predicate
            if predicate not in out_degrees:
                out_degrees[predicate] = self.out_degree(predicate)
                in_degrees[predicate] = self.in_degree(predicate)
                index_sizes[predicate] = self.index_size(predicate)
            if not is_variable(pattern.subject):
                subject_degrees[(predicate, pattern.subject)] = \
                    self.subject_degree(predicate, pattern.subject)
            if not is_variable(pattern.object):
                object_degrees[(predicate, pattern.object)] = \
                    self.object_degree(predicate, pattern.object)
        return StatsSnapshot(
            epoch=self.epoch(), out_degrees=out_degrees,
            in_degrees=in_degrees, index_sizes=index_sizes,
            subject_degrees=subject_degrees, object_degrees=object_degrees)


@dataclass
class StreamStats:
    """Per-stream ingestion and retention state."""

    name: str
    batches_delivered: int
    index_slices: int
    index_bytes: int
    index_replicas: int
    transient_slices: int
    transient_bytes: int
    raw_bytes: int


@dataclass
class QueryStats:
    """Per-continuous-query execution statistics."""

    name: str
    home_node: int
    executions: int
    median_ms: Optional[float]
    p99_ms: Optional[float]
    last_rows: Optional[int]
    #: Adaptive plan swaps applied so far (``repro.core.replan``).
    replans: int = 0


@dataclass
class CacheStats:
    """Hit/miss totals of the engine's wall-clock caches.

    All three caches only change wall-clock speed (hits charge exactly
    what the uncached path would); these counters quantify how often the
    fast paths fire.
    """

    plan_hits: int
    plan_misses: int
    parse_hits: int
    parse_misses: int
    adjacency_hits: int
    adjacency_misses: int
    adjacency_evictions: int
    adjacency_entries: int
    #: Executions served by the columnar batch kernels vs the row kernels
    #: (summed across the continuous and one-shot explorers) — verifies
    #: which path plans actually took, e.g. that FILTER-bearing one-shots
    #: stay on the batch path now that filters compile to column ops.
    batch_executions: int = 0
    row_executions: int = 0
    #: Columnar window-view counters (continuous fast path): column
    #: probes served from a registered query's window view vs rebuilt
    #: from the stream index (``window_*``), columns dropped when a view
    #: advances or resets (``window_evictions``), and window advances
    #: that reused the previous close's columns incrementally vs
    #: rematerialized from scratch (``window_delta_*``).
    window_hits: int = 0
    window_misses: int = 0
    window_evictions: int = 0
    window_delta_hits: int = 0
    window_delta_misses: int = 0
    #: Temporal engine counters: compiled interval-plan cache (LRU,
    #: keyed AST + ordering + snapshot, so snapshot sweeps churn it —
    #: evictions are the signal the bound is working) and interval
    #: executions by kernel (columnar batch vs the row-path control).
    temporal_plan_hits: int = 0
    temporal_plan_misses: int = 0
    temporal_plan_evictions: int = 0
    temporal_batch_executions: int = 0
    temporal_row_executions: int = 0

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def plan_hit_rate(self) -> float:
        return self._rate(self.plan_hits, self.plan_misses)

    @property
    def parse_hit_rate(self) -> float:
        return self._rate(self.parse_hits, self.parse_misses)

    @property
    def adjacency_hit_rate(self) -> float:
        return self._rate(self.adjacency_hits, self.adjacency_misses)

    @property
    def window_hit_rate(self) -> float:
        return self._rate(self.window_hits, self.window_misses)

    @property
    def window_delta_rate(self) -> float:
        return self._rate(self.window_delta_hits, self.window_delta_misses)

    @property
    def temporal_plan_hit_rate(self) -> float:
        return self._rate(self.temporal_plan_hits, self.temporal_plan_misses)


@dataclass
class EngineStats:
    """A full engine snapshot."""

    clock_ms: int
    num_nodes: int
    stable_sn: int
    stable_vts: Dict[str, int]
    store_entries: int
    store_bytes: int
    tuples_injected: int
    mean_injection_ms: float
    rdma_reads: int
    messages: int
    gc_runs: int
    gc_transient_freed: int
    gc_index_freed: int
    streams: List[StreamStats] = field(default_factory=list)
    queries: List[QueryStats] = field(default_factory=list)
    caches: Optional[CacheStats] = None

    def format(self) -> str:
        """A terminal dashboard."""
        lines = [
            f"engine @ t={self.clock_ms / 1000:.1f}s  "
            f"nodes={self.num_nodes}  stable SN={self.stable_sn}",
            f"store: {self.store_entries:,} entries, "
            f"{self.store_bytes / 1024:.0f} KiB; injected "
            f"{self.tuples_injected:,} tuples "
            f"(mean {self.mean_injection_ms:.3f} ms/batch)",
            f"network: {self.rdma_reads:,} one-sided reads, "
            f"{self.messages:,} messages; "
            f"gc: {self.gc_runs} runs, "
            f"{self.gc_transient_freed + self.gc_index_freed} slices freed",
        ]
        if self.caches is not None:
            caches = self.caches
            lines.append(
                f"caches: plan {caches.plan_hits}/"
                f"{caches.plan_hits + caches.plan_misses} hits, "
                f"parse {caches.parse_hits}/"
                f"{caches.parse_hits + caches.parse_misses} hits, "
                f"adjacency {caches.adjacency_hit_rate:.1%} hit rate "
                f"({caches.adjacency_entries:,} entries, "
                f"{caches.adjacency_evictions:,} evictions)")
            lines.append(
                f"executor: {caches.batch_executions:,} batch / "
                f"{caches.row_executions:,} row executions")
            lines.append(
                f"temporal: {caches.temporal_batch_executions:,} batch / "
                f"{caches.temporal_row_executions:,} row interval "
                f"executions, plans {caches.temporal_plan_hits}/"
                f"{caches.temporal_plan_hits + caches.temporal_plan_misses} "
                f"hits ({caches.temporal_plan_evictions:,} evictions)")
            lines.append(
                f"window views: columns {caches.window_hit_rate:.1%} hit "
                f"rate ({caches.window_evictions:,} evictions), deltas "
                f"{caches.window_delta_hits}/"
                f"{caches.window_delta_hits + caches.window_delta_misses} "
                f"incremental")
        for stream in self.streams:
            lines.append(
                f"  stream {stream.name}: batch #{stream.batches_delivered}"
                f", index {stream.index_slices} slices/"
                f"{stream.index_bytes / 1024:.1f} KiB x{stream.index_replicas}"
                f" replicas, transient {stream.transient_slices} slices")
        for query in self.queries:
            stats = "no executions yet"
            if query.executions:
                stats = (f"{query.executions} runs, p50 "
                         f"{query.median_ms:.3f} ms, p99 "
                         f"{query.p99_ms:.3f} ms, last {query.last_rows} rows")
            if query.replans:
                stats += f", {query.replans} replans"
            lines.append(f"  query {query.name} @node{query.home_node}: "
                         f"{stats}")
        return "\n".join(lines)


def collect_stats(engine: WukongSEngine) -> EngineStats:
    """Snapshot every subsystem of ``engine``."""
    fabric = engine.cluster.fabric.stats
    injection_ms = [r.total_ms for r in engine.injection_records
                    if r.num_tuples > 0]
    streams = []
    for name in engine.schemas:
        index = engine.registry.index(name)
        transients = engine.transients[name]
        streams.append(StreamStats(
            name=name,
            batches_delivered=engine._last_delivered.get(name, 0),
            index_slices=index.num_slices,
            index_bytes=index.memory_bytes(),
            index_replicas=max(1, len(engine.registry.replicas(name))),
            transient_slices=sum(t.num_slices for t in transients),
            transient_bytes=sum(t.memory_bytes() for t in transients),
            raw_bytes=engine.raw_stream_bytes(name),
        ))
    window_hits = window_misses = window_evictions = 0
    delta_hits = delta_misses = 0
    for handle in engine.continuous.queries.values():
        for view in handle.window_views.values():
            window_hits += view.hits
            window_misses += view.misses
            window_evictions += view.evictions
            delta_hits += view.delta_hits
            delta_misses += view.delta_misses
    caches = CacheStats(
        plan_hits=engine.oneshot_engine.plan_cache_hits,
        plan_misses=engine.oneshot_engine.plan_cache_misses,
        parse_hits=engine.parse_cache_hits,
        parse_misses=engine.parse_cache_misses,
        adjacency_hits=sum(s.adjacency_hits for s in engine.store.shards),
        adjacency_misses=sum(s.adjacency_misses
                             for s in engine.store.shards),
        adjacency_evictions=sum(s.adjacency_evictions
                                for s in engine.store.shards),
        adjacency_entries=sum(len(s._adjacency)
                              for s in engine.store.shards),
        batch_executions=(engine.continuous.explorer.batch_executions
                          + engine.oneshot_engine.explorer.batch_executions),
        row_executions=(engine.continuous.explorer.row_executions
                        + engine.oneshot_engine.explorer.row_executions),
        window_hits=window_hits,
        window_misses=window_misses,
        window_evictions=window_evictions,
        window_delta_hits=delta_hits,
        window_delta_misses=delta_misses,
        temporal_plan_hits=engine.temporal.plan_cache_hits,
        temporal_plan_misses=engine.temporal.plan_cache_misses,
        temporal_plan_evictions=engine.temporal.plan_cache_evictions,
        temporal_batch_executions=engine.temporal.batch_executions,
        temporal_row_executions=engine.temporal.row_executions,
    )
    queries = []
    for handle in engine.continuous.queries.values():
        latencies = [rec.latency_ms for rec in handle.executions]
        queries.append(QueryStats(
            name=handle.name,
            home_node=handle.home_node,
            executions=len(latencies),
            median_ms=median(latencies) if latencies else None,
            p99_ms=percentile(latencies, 99) if latencies else None,
            last_rows=(len(handle.executions[-1].result.rows)
                       if handle.executions else None),
            replans=len(handle.replans),
        ))
    return EngineStats(
        clock_ms=engine.clock.now_ms,
        num_nodes=engine.cluster.num_nodes,
        stable_sn=engine.coordinator.stable_sn,
        stable_vts=engine.coordinator.stable_vts().as_dict(),
        store_entries=engine.store.num_entries,
        store_bytes=engine.store.memory_bytes(),
        tuples_injected=sum(i.tuples_injected for i in engine.injectors),
        mean_injection_ms=mean(injection_ms) if injection_ms else 0.0,
        rdma_reads=fabric.rdma_reads,
        messages=fabric.messages,
        gc_runs=engine.gc.stats.runs,
        gc_transient_freed=engine.gc.stats.transient_slices_freed,
        gc_index_freed=engine.gc.stats.index_slices_freed,
        streams=streams,
        queries=queries,
        caches=caches,
    )
