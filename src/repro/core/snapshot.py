"""Bounded snapshot scalarization: the SN <-> VTS plan (§4.3, Fig. 11).

One-shot queries must read a consistent snapshot of the evolving persistent
store without the memory cost of stamping every value with a full vector
timestamp.  The coordinator therefore *scalarizes* vector timestamps into
snapshot numbers: it publishes, in advance, a plan mapping each SN to an
inclusive upper bound of batch numbers per stream.  Injectors tag persistent
inserts with the SN their batch falls into; when a batch lies beyond the
last announced mapping the injector must stall until the next mapping is
published — that hand-shake is what bounds the number of live SN segments
per key.

The width of each mapping (how many new batches one SN admits) is the
paper's staleness/flexibility knob: width 1 gives the freshest one-shot
results but serializes injection across streams; larger widths free the
injectors but age the readable snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.errors import ConsistencyError


@dataclass(frozen=True)
class SNMapping:
    """One published mapping: snapshot ``sn`` covers batches up to ``upper``.

    ``upper`` is inclusive per stream; a batch ``b`` of stream ``s`` belongs
    to the smallest published sn with ``upper[s] >= b``.
    """

    sn: int
    upper: Dict[str, int]


class SNVTSPlan:
    """The ordered sequence of published SN mappings.

    >>> plan = SNVTSPlan(["S0", "S1"])
    >>> plan.publish({"S0": 3, "S1": 9})   # SN 1
    1
    >>> plan.publish({"S0": 5, "S1": 12})  # SN 2
    2
    >>> plan.sn_for("S0", 4)
    2
    >>> plan.sn_for("S0", 6) is None       # beyond the plan: injector stalls
    True
    """

    def __init__(self, streams: List[str]):
        self._streams = list(streams)
        self._mappings: List[SNMapping] = []

    # -- publishing ---------------------------------------------------------
    def publish(self, upper: Mapping[str, int]) -> int:
        """Announce the next mapping; returns its snapshot number."""
        if set(upper) != set(self._streams):
            raise ConsistencyError(
                f"mapping must cover exactly the streams {self._streams}, "
                f"got {sorted(upper)}")
        previous = self._mappings[-1].upper if self._mappings else \
            {s: 0 for s in self._streams}
        for stream in self._streams:
            if upper[stream] < previous[stream]:
                raise ConsistencyError(
                    f"mapping must be monotonic: stream {stream} regresses "
                    f"from {previous[stream]} to {upper[stream]}")
        sn = len(self._mappings) + 1
        self._mappings.append(SNMapping(sn, dict(upper)))
        return sn

    def add_stream(self, stream: str) -> None:
        """Extend the VTS part of future mappings with a new stream.

        Existing mappings implicitly cover batch 0 of the new stream — the
        change is transparent to one-shot queries, which only see SNs.
        """
        if stream in self._streams:
            raise ConsistencyError(f"stream already planned: {stream}")
        self._streams.append(stream)
        patched = []
        for mapping in self._mappings:
            upper = dict(mapping.upper)
            upper[stream] = 0
            patched.append(SNMapping(mapping.sn, upper))
        self._mappings = patched

    # -- lookup ------------------------------------------------------------
    def sn_for(self, stream: str, batch_no: int) -> Optional[int]:
        """The SN that batch ``batch_no`` of ``stream`` belongs to.

        None means the batch lies beyond the announced plan and its
        injection must stall until more of the plan is published.
        """
        if stream not in self._streams:
            raise ConsistencyError(f"unknown stream: {stream}")
        if batch_no < 1:
            raise ConsistencyError(f"batch numbers are 1-based: {batch_no}")
        for mapping in self._mappings:
            if mapping.upper.get(stream, 0) >= batch_no:
                return mapping.sn
        return None

    def requirement_for(self, sn: int) -> Dict[str, int]:
        """The VTS a node must reach for snapshot ``sn`` to be complete there."""
        mapping = self.mapping(sn)
        return dict(mapping.upper)

    def mapping(self, sn: int) -> SNMapping:
        if not 1 <= sn <= len(self._mappings):
            raise ConsistencyError(f"snapshot {sn} was never published")
        return self._mappings[sn - 1]

    @property
    def latest_sn(self) -> int:
        """The highest published snapshot number (0 when nothing published)."""
        return len(self._mappings)

    @property
    def streams(self) -> List[str]:
        return list(self._streams)

    def __len__(self) -> int:
        return len(self._mappings)
