"""The Injector: absorbing dispatched batches into the hybrid store.

One injector per node inserts the node-local halves of each batch:

* timeless tuples go to the persistent store under the batch's snapshot
  number, and every inserted span is collected into the batch's stream-
  index slice (the index is built *along with* injection, §4.2);
* timing tuples go to the stream's transient store on this node;
* finally the node's Local_VTS advances, making the batch eligible to
  become visible once all nodes have done the same.

When massive streams or high rates demand it, an injector runs multiple
threads: "Wukong+S will statically partition the key space of the store
and exclusively assign one partition to one thread, which can avoid using
locks during injection" (§4.1).  Threads work in parallel, so the batch's
injection latency is the slowest partition's; the dispatcher's by-owner
partitioning already guarantees no cross-node contention.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.dispatcher import NodeBatch
from repro.core.stream_index import IndexSlice
from repro.core.transient import TransientStore
from repro.rdf.ids import DIR_IN, DIR_OUT, _EID_SHIFT, _VID_SHIFT
from repro.rdf.terms import EncodedTuple
from repro.sim.cost import ChargeSet, LatencyMeter
from repro.store.distributed import DistributedStore
from repro.store.kvstore import _PRED_BITS, _PRED_MASK, _TopKSketch

# The inlined fast path in ``_inject_half`` assumes a key's vid is its
# sketch id (note_insert bumps ``key >> _PRED_BITS``).
assert _PRED_BITS == _VID_SHIFT


class Injector:
    """The injector of one node (one or more lock-free threads)."""

    def __init__(self, node_id: int, store: DistributedStore,
                 transients: Dict[str, TransientStore], threads: int = 1):
        if threads < 1:
            raise ValueError(f"need at least one injector thread: {threads}")
        self.node_id = node_id
        self.store = store
        self.transients = transients
        self.threads = threads
        #: The cluster's placement stride: a node only holds vids congruent
        #: to its id modulo num_nodes, so the dispatcher delivers one
        #: residue class per injector.  Dividing it out re-densifies the
        #: local key space before thread partitioning (see ``_partition``).
        self._placement_stride = max(1, len(store.cluster.nodes))
        self.tuples_injected = 0
        #: Straggler multiplier (chaos harness): >1 inflates this node's
        #: injection-branch time by (slowdown-1)x, modelling a server whose
        #: cores are contended.  1.0 on the healthy path charges nothing.
        self.slowdown = 1.0

    def _partition(self, tuples: List[EncodedTuple],
                   by_subject: bool) -> List[List[EncodedTuple]]:
        """Statically split tuples by the key-space partition they touch.

        Thread partitioning must not alias the cluster's modulo placement:
        a node only holds vids congruent to its id modulo num_nodes, so
        ``vid % threads`` would collapse every local key into one slot
        whenever num_nodes shares a factor with threads.  Multiplicative
        mixing is not enough either — the low output bits of a Fibonacci
        hash stay periodic on a strided key domain, which still bucketed
        whole residue classes together.  Dividing the placement stride out
        first makes the node's key space dense again, and round-robin on
        that local index provably balances: over any dense range of local
        keys the slot buckets differ in size by at most one.
        """
        if self.threads == 1:
            return [tuples]
        stride = self._placement_stride
        threads = self.threads
        parts: List[List[EncodedTuple]] = [[] for _ in range(threads)]
        for encoded in tuples:
            key_vid = encoded.triple.s if by_subject else encoded.triple.o
            parts[(key_vid // stride) % threads].append(encoded)
        return parts

    def inject(self, node_batch: NodeBatch, sn: int,
               index_slice: Optional[IndexSlice],
               meter: Optional[LatencyMeter] = None) -> None:
        """Insert one node batch under snapshot ``sn``.

        ``index_slice`` is the (cluster-wide) stream-index slice being
        built for this batch; the injector contributes the spans it
        creates.  It is None for streams carrying only timing data (e.g.
        LSBench's GPS stream), which need no stream index.
        """
        base_ns = meter.ns if meter is not None else 0.0
        branches: List[LatencyMeter] = []
        out_parts = self._partition(node_batch.out_timeless, True)
        in_parts = self._partition(node_batch.in_timeless, False)
        # The dispatcher routes each half to its key's owner, so every
        # key this injector touches lives on the local shard.
        shard = self.store.shards[self.node_id]
        for thread in range(len(out_parts)):
            # Store primitives charge into a ChargeSet instead of a meter:
            # one aggregated flush per thread replaces one meter call per
            # inserted entry, with a bit-identical branch total.
            charges = ChargeSet() if meter is not None else None
            self._inject_half(shard, out_parts[thread], True, sn,
                              index_slice, charges)
            self.tuples_injected += len(out_parts[thread])
            self._inject_half(shard, in_parts[thread], False, sn,
                              index_slice, charges)
            if meter is not None:
                branch = meter.spawn()
                charges.flush(branch)
                branches.append(branch)
        if meter is not None:
            meter.join_parallel(branches)

        if node_batch.out_timing or node_batch.in_timing:
            self._append_timing(node_batch, meter)
        elif node_batch.stream in self.transients:
            # Keep slice numbering aligned even for batches without local
            # timing data: an empty slice is appended so windowed reads and
            # GC see a continuous timeline.
            self.transients[node_batch.stream].append_slice(
                node_batch.batch_no, [], [], meter=meter)

        if meter is not None and self.slowdown > 1.0:
            worked_ns = meter.ns - base_ns
            if worked_ns > 0:
                meter.charge((self.slowdown - 1.0) * worked_ns,
                             category="straggle")

    def _inject_half(self, shard, part: List[EncodedTuple],
                     by_subject: bool, sn: int,
                     index_slice: Optional[IndexSlice],
                     charges: Optional[ChargeSet]) -> None:
        """Insert one half (out- or in-edges) of one thread's partition.

        Two passes over the part, together equivalent to per-tuple
        ``insert_out_edge``/``insert_in_edge`` + ``add_span`` calls:

        * Pass A walks tuples in arrival order, grouping each key's
          values (a key's value list receives only its own tuples, so
          grouping never reorders any list) while bumping the per-entry
          degree sketches, whose eviction ties are order-sensitive.
        * Pass B bulk-appends the groups (``insert_groups``: value
          append + index registration per key) and registers the
          pre-coalesced spans with the stream-index slice, in
          first-occurrence key order — exactly the order keys first
          appeared in the per-entry path.

        All the charges involved are integer-valued and aggregate through
        the caller's :class:`ChargeSet`, so the flushed branch total is
        bit-identical to the per-tuple path's.
        """
        if not part:
            return
        d = DIR_OUT if by_subject else DIR_IN
        groups: Dict[int, List[int]] = {}
        groups_get = groups.get
        # Pass A inlines ``make_key`` (ids come from the string server,
        # already range-checked at allocation) and ``note_insert`` (see
        # kvstore) — both are per-tuple calls on the hottest loop of the
        # pipeline.
        pred_entries = shard._pred_entries
        entries_get = pred_entries.get
        sketches = shard._degree_sketches
        sketches_get = sketches.get
        for encoded in part:
            triple = encoded.triple
            if by_subject:
                vid = triple.s
                value = triple.o
            else:
                vid = triple.o
                value = triple.s
            key = (vid << _VID_SHIFT) | (triple.p << _EID_SHIFT) | d
            vals = groups_get(key)
            if vals is None:
                groups[key] = [value]
            else:
                vals.append(value)
            bucket = key & _PRED_MASK
            pred_entries[bucket] = entries_get(bucket, 0) + 1
            sketch = sketches_get(bucket)
            if sketch is None:
                sketch = sketches[bucket] = _TopKSketch()
            sketch.bump(vid)
        spans = shard.insert_groups(groups, sn=sn, meter=charges)
        if index_slice is not None:
            index_slice.add_batch_spans(self.node_id, spans, d)

    def _append_timing(self, node_batch: NodeBatch,
                       meter: Optional[LatencyMeter]) -> None:
        transient = self.transients[node_batch.stream]
        transient.append_slice(node_batch.batch_no,
                               node_batch.out_timing,
                               node_batch.in_timing, meter=meter)
        self.tuples_injected += len(node_batch.out_timing)
